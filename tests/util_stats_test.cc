// Unit tests of the statistics helpers used by every evaluation harness.

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace ams::util {
namespace {

TEST(RunningStatTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, -2.0, 8.0, 3.5};
  RunningStat stat;
  for (double x : xs) stat.Add(x);
  EXPECT_EQ(stat.count(), xs.size());
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / xs.size();
  EXPECT_NEAR(stat.mean(), mean, 1e-12);
  EXPECT_NEAR(stat.sum(), sum, 1e-12);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(stat.variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(ss / (xs.size() - 1)), 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), -2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 8.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  stat.Add(5.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(PercentileTest, KnownValues) {
  const std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);  // interpolated
}

TEST(PercentileTest, UnsortedInputAndSingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7.0);
}

class CdfPointsTest : public ::testing::TestWithParam<int> {};

TEST_P(CdfPointsTest, MonotoneAndBounded) {
  std::vector<double> values;
  for (int i = 0; i < 137; ++i) values.push_back(std::sin(i) * 10.0);
  const std::vector<CdfPoint> cdf = ComputeCdf(values, GetParam());
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].p, cdf[i - 1].p);
  }
  EXPECT_GT(cdf.front().p, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, CdfPointsTest,
                         ::testing::Values(2, 5, 20, 200));

TEST(CdfAtTest, StepFunctionSemantics) {
  const std::vector<double> sorted = {1.0, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 4.9), 0.75);
  EXPECT_DOUBLE_EQ(CdfAt(sorted, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(CdfAt({}, 3.0), 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace ams::util
