// Tests of the serve:: subsystem: admission-queue ordering (EDF within a
// class, weighted round-robin with a starvation bound between classes), all
// three overload policies including the per-class variants, seeded parity
// between the asynchronous runtime and offline Submit(), Drain() under
// concurrent enqueuers, shutdown semantics, the deterministic Clock seam,
// and the metrics registry. Timing-sensitive assertions run on a
// serve::ManualClock or wait on observable queue state (waiting_enqueuers)
// — no test here sleeps for a fixed wall-clock interval.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "serve/admission_queue.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "serve/priority_class.h"
#include "serve/server_runtime.h"

namespace ams::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- admission queue -------------------------------------------------------

QueuedRequest MakeRequest(uint64_t sequence, double slack_s,
                          PriorityClass cls = PriorityClass::kStandard) {
  QueuedRequest request;
  request.item = core::WorkItem::Stored(static_cast<int>(sequence));
  request.sequence = sequence;
  request.slack_s = slack_s;
  request.priority_class = cls;
  return request;
}

AdmissionConfig SingleBand(int capacity, OverloadPolicy policy,
                           const Clock* clock) {
  AdmissionConfig config;
  config.capacity = capacity;
  config.overload = policy;
  config.clock = clock;
  return config;
}

/// Spin (yield, no fixed sleep) until `predicate` holds: used to wait for a
/// peer thread to park inside a kBlock Enqueue. Deterministic in the sense
/// that the assertion only runs once the observable state is reached.
template <typename Predicate>
void AwaitState(const Predicate& predicate) {
  while (!predicate()) std::this_thread::yield();
}

TEST(AdmissionQueueTest, PopsEarliestDeadlineFirstWithFifoTieBreak) {
  // Frozen ManualClock: deadline == slack exactly, so ties are exact.
  ManualClock clock;
  AdmissionQueue queue(SingleBand(8, OverloadPolicy::kReject, &clock));
  std::vector<QueuedRequest> bounced;
  // Out-of-order deadlines, plus two deadline-less (infinite) requests.
  for (const auto& [seq, slack] : std::vector<std::pair<uint64_t, double>>{
           {0, kInf}, {1, 5.0}, {2, 1.0}, {3, kInf}, {4, 3.0}, {5, 1.0}}) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(seq, slack), &bounced),
              AdmitOutcome::kAccepted);
  }
  // EDF: 1.0s deadlines first (seq 2 before 5: FIFO tie-break), then 3.0,
  // 5.0, then the deadline-less pair in arrival order.
  const std::vector<uint64_t> expected = {2, 5, 4, 1, 0, 3};
  for (const uint64_t want : expected) {
    QueuedRequest popped;
    ASSERT_TRUE(queue.TryPop(&popped));
    EXPECT_EQ(popped.sequence, want);
  }
  QueuedRequest popped;
  EXPECT_FALSE(queue.TryPop(&popped));
  EXPECT_TRUE(bounced.empty());
}

TEST(AdmissionQueueTest, StampsArrivalAndDeadlineOnTheServeClock) {
  ManualClock clock(100.0);
  AdmissionQueue queue(SingleBand(4, OverloadPolicy::kReject, &clock));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 2.5), &bounced),
            AdmitOutcome::kAccepted);
  clock.Advance(10.0);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, 2.5), &bounced),
            AdmitOutcome::kAccepted);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 0u);
  EXPECT_DOUBLE_EQ(popped.enqueue_time_s, 100.0);
  EXPECT_DOUBLE_EQ(popped.deadline_s, 102.5);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_DOUBLE_EQ(popped.enqueue_time_s, 110.0);
  EXPECT_DOUBLE_EQ(popped.deadline_s, 112.5);
}

TEST(AdmissionQueueTest, RejectPolicyBouncesNewWorkWhenFull) {
  ManualClock clock;
  AdmissionQueue queue(SingleBand(2, OverloadPolicy::kReject, &clock));
  std::vector<QueuedRequest> bounced;
  EXPECT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, 0.5), &bounced),
            AdmitOutcome::kRejected);
  // The rejected request itself bounced back, even though its deadline was
  // the tightest — kReject is strict arrival-order admission control.
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 2u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(AdmissionQueueTest, ShedOldestPolicyEvictsStalestAcceptedWork) {
  ManualClock clock;
  AdmissionQueue queue(SingleBand(2, OverloadPolicy::kShedOldest, &clock));
  std::vector<QueuedRequest> bounced;
  EXPECT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &bounced),
            AdmitOutcome::kAccepted);
  // Full: admitting seq 2 sheds the oldest entry (seq 0), not the one with
  // the loosest deadline.
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, 3.0), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 0u);
  // Remaining pops are still EDF over the survivors.
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 1u);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 2u);
}

TEST(AdmissionQueueTest, BlockPolicyAppliesBackpressureUntilAPop) {
  ManualClock clock;
  AdmissionQueue queue(SingleBand(1, OverloadPolicy::kBlock, &clock));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  std::atomic<bool> second_accepted{false};
  std::thread enqueuer([&] {
    std::vector<QueuedRequest> thread_bounced;
    const AdmitOutcome outcome =
        queue.Enqueue(MakeRequest(1, 2.0), &thread_bounced);
    EXPECT_EQ(outcome, AdmitOutcome::kAccepted);
    second_accepted.store(true);
  });
  // Wait until the enqueuer has parked inside Enqueue — observable state,
  // not a timed sleep — then assert it is still blocked.
  AwaitState([&] { return queue.waiting_enqueuers() == 1; });
  EXPECT_FALSE(second_accepted.load());
  EXPECT_EQ(queue.size(), 1u);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  enqueuer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(AdmissionQueueTest, CloseWakesBlockedCallersAndKeepsQueuedWork) {
  ManualClock clock;
  AdmissionQueue queue(SingleBand(1, OverloadPolicy::kBlock, &clock));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  std::thread blocked_enqueuer([&] {
    std::vector<QueuedRequest> thread_bounced;
    EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &thread_bounced),
              AdmitOutcome::kClosed);
    EXPECT_EQ(thread_bounced.size(), 1u);
  });
  AwaitState([&] { return queue.waiting_enqueuers() == 1; });
  queue.Close();
  blocked_enqueuer.join();
  // Queued work survives Close (drain-then-stop) and WaitPop serves it
  // before reporting exhaustion.
  QueuedRequest popped;
  EXPECT_TRUE(queue.WaitPop(&popped));
  EXPECT_EQ(popped.sequence, 0u);
  EXPECT_FALSE(queue.WaitPop(&popped)) << "closed and empty: no more work";
}

// --- priority classes ------------------------------------------------------

AdmissionConfig ClassConfigured(int capacity, OverloadPolicy policy,
                                const Clock* clock, int w_interactive,
                                int w_standard, int w_batch,
                                int starvation_bound = 16) {
  AdmissionConfig config;
  config.capacity = capacity;
  config.overload = policy;
  config.clock = clock;
  config.starvation_bound = starvation_bound;
  config.classes[0].weight = w_interactive;
  config.classes[1].weight = w_standard;
  config.classes[2].weight = w_batch;
  return config;
}

std::vector<PriorityClass> PopClasses(AdmissionQueue* queue, int n) {
  std::vector<PriorityClass> order;
  QueuedRequest popped;
  for (int i = 0; i < n && queue->TryPop(&popped); ++i) {
    order.push_back(popped.priority_class);
  }
  return order;
}

TEST(AdmissionQueueTest, WeightedRoundRobinSharesPopsByClassWeight) {
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(64, OverloadPolicy::kReject, &clock, /*interactive=*/2,
                      /*standard=*/1, /*batch=*/1));
  std::vector<QueuedRequest> bounced;
  uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    for (const PriorityClass cls :
         {PriorityClass::kInteractive, PriorityClass::kStandard,
          PriorityClass::kBatch}) {
      ASSERT_EQ(queue.Enqueue(MakeRequest(seq++, kInf, cls), &bounced),
                AdmitOutcome::kAccepted);
    }
  }
  EXPECT_EQ(queue.class_size(PriorityClass::kInteractive), 4u);
  // Weights 2:1:1 with every class backlogged: turns of 2 interactive pops,
  // 1 standard, 1 batch; once interactive drains, standard and batch
  // alternate 1:1.
  using PC = PriorityClass;
  const std::vector<PriorityClass> expected = {
      PC::kInteractive, PC::kInteractive, PC::kStandard, PC::kBatch,
      PC::kInteractive, PC::kInteractive, PC::kStandard, PC::kBatch,
      PC::kStandard,    PC::kBatch,       PC::kStandard, PC::kBatch};
  EXPECT_EQ(PopClasses(&queue, 12), expected);
}

TEST(AdmissionQueueTest, StrictPriorityWithStarvationBoundStillDrainsBatch) {
  // Strict A-over-B: batch weight 0 means batch is served only by the
  // starvation guard (or when interactive is empty). K = 4 forces one
  // batch pop at least every 4 pops while batch has queued work.
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(64, OverloadPolicy::kReject, &clock, /*interactive=*/1,
                      /*standard=*/0, /*batch=*/0, /*starvation_bound=*/4));
  std::vector<QueuedRequest> bounced;
  uint64_t seq = 0;
  constexpr int kBatchRequests = 5;
  for (int i = 0; i < kBatchRequests; ++i) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(seq++, kInf, PriorityClass::kBatch),
                            &bounced),
              AdmitOutcome::kAccepted);
  }
  // Saturating interactive stream: top the band back up after every pop so
  // it is never empty — batch drains through the guard alone.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(
        queue.Enqueue(MakeRequest(seq++, kInf, PriorityClass::kInteractive),
                      &bounced),
        AdmitOutcome::kAccepted);
  }
  int pops = 0;
  int batch_drained = 0;
  int pops_since_batch = 0;
  QueuedRequest popped;
  while (batch_drained < kBatchRequests) {
    ASSERT_TRUE(queue.TryPop(&popped));
    ++pops;
    if (popped.priority_class == PriorityClass::kBatch) {
      ++batch_drained;
      pops_since_batch = 0;
    } else {
      ++pops_since_batch;
      // The bound: batch is never passed over for K = 4 consecutive pops.
      ASSERT_LT(pops_since_batch, 4);
      // Keep interactive saturated.
      ASSERT_EQ(
          queue.Enqueue(MakeRequest(seq++, kInf, PriorityClass::kInteractive),
                        &bounced),
          AdmitOutcome::kAccepted);
    }
  }
  // All batch work drained within |batch| * K pops despite saturation.
  EXPECT_LE(pops, kBatchRequests * 4);
}

TEST(AdmissionQueueTest, BatchPopsSpanClassesInContractOrder) {
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(64, OverloadPolicy::kReject, &clock, /*interactive=*/2,
                      /*standard=*/1, /*batch=*/1));
  std::vector<QueuedRequest> bounced;
  // 2 interactive (EDF-inverted arrival), 1 standard, 1 batch.
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 9.0, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, 3.0, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(2, 1.0, PriorityClass::kStandard), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(3, 1.0, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  // One TryPopBatch call spans all three classes exactly as four successive
  // TryPops would: interactive turn (EDF: seq 1 before 0), then standard,
  // then batch.
  std::vector<QueuedRequest> batch;
  EXPECT_EQ(queue.TryPopBatch(8, &batch), 4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].sequence, 1u);
  EXPECT_EQ(batch[1].sequence, 0u);
  EXPECT_EQ(batch[2].sequence, 2u);
  EXPECT_EQ(batch[3].sequence, 3u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(AdmissionQueueTest, ShedOldestTakesVictimsFromTheLeastImportantClass) {
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(4, OverloadPolicy::kShedOldest, &clock, 8, 4, 1));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(1, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(2, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(3, kInf, PriorityClass::kStandard), &bounced),
      AdmitOutcome::kAccepted);
  // Full. An interactive arrival sheds the OLDEST BATCH request (seq 1) —
  // not the globally oldest (seq 0, interactive).
  ASSERT_EQ(queue.Enqueue(MakeRequest(4, kInf, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 1u);
  EXPECT_EQ(bounced[0].priority_class, PriorityClass::kBatch);
  // Still full. A standard arrival sheds the remaining batch request.
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(5, kInf, PriorityClass::kStandard), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 2u);
  EXPECT_EQ(bounced[1].sequence, 2u);
  EXPECT_EQ(queue.class_size(PriorityClass::kBatch), 0u);
}

TEST(AdmissionQueueTest, ShedOldestShedsOwnClassWhenOnlyResidentClass) {
  // Satellite edge: every resident request belongs to the shedding class —
  // the arrival displaces its own class's oldest, preserving the
  // single-band shed semantics.
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(2, OverloadPolicy::kShedOldest, &clock, 8, 4, 1));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(0, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(1, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(2, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 0u);
  EXPECT_EQ(bounced[0].priority_class, PriorityClass::kBatch);
  EXPECT_EQ(queue.class_size(PriorityClass::kBatch), 2u);
}

TEST(AdmissionQueueTest, ShedOldestNeverDisplacesMoreImportantWork) {
  ManualClock clock;
  AdmissionQueue queue(
      ClassConfigured(2, OverloadPolicy::kShedOldest, &clock, 8, 4, 1));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, kInf, PriorityClass::kInteractive),
                          &bounced),
            AdmitOutcome::kAccepted);
  // A batch arrival cannot shed interactive work: the arrival itself
  // bounces as kRejected.
  EXPECT_EQ(
      queue.Enqueue(MakeRequest(2, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kRejected);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 2u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(AdmissionQueueTest, PerClassCapAndOverloadOverrideApply) {
  ManualClock clock;
  AdmissionConfig config =
      ClassConfigured(16, OverloadPolicy::kBlock, &clock, 8, 4, 1);
  // Batch rides a 2-deep sub-queue with fail-fast admission, while the
  // queue-wide policy stays kBlock.
  config.classes[2].queue_capacity = 2;
  config.classes[2].overload = OverloadPolicy::kReject;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(0, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      queue.Enqueue(MakeRequest(1, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kAccepted);
  // Class cap reached with plenty of global space: batch rejects.
  EXPECT_EQ(
      queue.Enqueue(MakeRequest(2, kInf, PriorityClass::kBatch), &bounced),
      AdmitOutcome::kRejected);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 2u);
  // Other classes are unaffected by the batch cap.
  EXPECT_EQ(
      queue.Enqueue(MakeRequest(3, kInf, PriorityClass::kStandard), &bounced),
      AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.size(), 3u);
}

// --- serving runtime -------------------------------------------------------

std::unique_ptr<rl::Agent> MakeAgent(const zoo::ModelZoo& zoo, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = zoo.labels().total_labels();
  config.hidden_dims = {64};
  config.output_dim = zoo.num_models() + 1;
  return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                     nn::NetKind::kMlp);
}

class ServerRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static core::ScheduleConstraints ParallelConstraints() {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return constraints;
  }

  static core::LabelingService BuildPredictorSession(rl::Agent* agent,
                                                     int workers) {
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(ParallelConstraints())
        .WithWorkers(workers)
        .Build();
  }

  // The acceptance fields: serving must not change what gets labeled.
  static void ExpectSameOutcome(const core::LabelOutcome& offline,
                                const core::LabelOutcome& served) {
    EXPECT_EQ(offline.recall, served.recall);
    EXPECT_EQ(offline.schedule.makespan_s, served.schedule.makespan_s);
    EXPECT_EQ(offline.schedule.num_executions, served.schedule.num_executions);
    EXPECT_EQ(offline.schedule.value, served.schedule.value);
    EXPECT_EQ(offline.schedule.peak_mem_mb, served.schedule.peak_mem_mb);
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* ServerRuntimeTest::zoo_ = nullptr;
data::Dataset* ServerRuntimeTest::dataset_ = nullptr;
data::Oracle* ServerRuntimeTest::oracle_ = nullptr;

TEST_F(ServerRuntimeTest, ServedOutcomesMatchOfflineSubmitExactly) {
  const int num_items = 40;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 7);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }

  core::LabelingService session = BuildPredictorSession(agent.get(), 3);
  ServeOptions options;
  options.workers = 3;
  options.max_resident_per_worker = 4;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << "item " << i;
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
}

TEST_F(ServerRuntimeTest, LiveScenesServeLikeOfflineSubmitAndMixWithStored) {
  // The WorkItem::Live seam through the async runtime: live scenes have no
  // stored id, no replay cache, and no recall accumulator. The borrowed
  // scene pointer must stay valid until the future resolves — here the
  // scenes live in the suite-static dataset, which outlives the runtime.
  // Interleaving live and stored requests in one queue checks neither path
  // corrupts the other's bookkeeping.
  const int num_items = 24;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 41);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected_live;
  std::vector<core::LabelOutcome> expected_stored;
  for (int i = 0; i < num_items; ++i) {
    expected_live.push_back(
        offline.Submit(core::WorkItem::Live(&dataset_->item(i).scene)));
    expected_stored.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }

  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.max_resident_per_worker = 4;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> live_futures;
  std::vector<std::future<ServeResult>> stored_futures;
  for (int i = 0; i < num_items; ++i) {
    live_futures.push_back(
        runtime.Enqueue(core::WorkItem::Live(&dataset_->item(i).scene)));
    stored_futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult live = live_futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(live.status, ServeStatus::kOk) << "live item " << i;
    ExpectSameOutcome(expected_live[static_cast<size_t>(i)], live.outcome);
    const ServeResult stored = stored_futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(stored.status, ServeStatus::kOk) << "stored item " << i;
    ExpectSameOutcome(expected_stored[static_cast<size_t>(i)],
                      stored.outcome);
  }
  runtime.Drain();
  EXPECT_EQ(runtime.metrics().completed.load(), 2 * num_items);
}

TEST_F(ServerRuntimeTest, PriorityClassesChangeOrderButNeverOutcomes) {
  // Items are independent: riding a different service band reorders work
  // but must not change any labeling result.
  const int num_items = 30;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 29);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }

  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.max_resident_per_worker = 4;
  ServerRuntime runtime(&session, options);
  const PriorityClass classes[] = {PriorityClass::kBatch,
                                   PriorityClass::kInteractive,
                                   PriorityClass::kStandard};
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(
        runtime.Enqueue(core::WorkItem::Stored(i), classes[i % 3]));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << "item " << i;
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
  // Per-class accounting: every class saw its share, all completed.
  const Metrics& metrics = runtime.metrics();
  for (const PriorityClass cls : classes) {
    EXPECT_EQ(metrics.for_class(cls).enqueued.load(), 10);
    EXPECT_EQ(metrics.for_class(cls).completed.load(), 10);
    EXPECT_EQ(metrics.for_class(cls).total_latency.count(), 10);
  }
}

TEST_F(ServerRuntimeTest, RandomPackingSessionsServeIdenticallyToo) {
  // The predictor-less baseline (seeded random packing) multiplexes as
  // well: stored items key their packing sequence by item id, so serving
  // order cannot change outcomes.
  const int num_items = 24;
  const auto build = [&] {
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithMode(core::ExecutionMode::kParallelRandom)
        .WithConstraints(ParallelConstraints())
        .WithSeed(91)
        .WithWorkers(2)
        .Build();
  };
  core::LabelingService offline = build();
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }
  core::LabelingService session = build();
  ServerRuntime runtime(&session, ServeOptions{});
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk);
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
}

TEST_F(ServerRuntimeTest, DrainCompletesAllAcceptedWorkUnderConcurrentEnqueuers) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 11);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.queue_capacity = 8;  // enqueuers outpace this: kBlock backpressure
  options.overload = OverloadPolicy::kBlock;
  ServerRuntime runtime(&session, options);

  constexpr int kEnqueuers = 4;
  constexpr int kPerThread = 25;
  std::vector<std::future<ServeResult>> futures[kEnqueuers];
  std::vector<std::thread> enqueuers;
  for (int t = 0; t < kEnqueuers; ++t) {
    enqueuers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            runtime.Enqueue(core::WorkItem::Stored((t * kPerThread + i) % 48)));
      }
    });
  }
  for (std::thread& thread : enqueuers) thread.join();
  runtime.Drain();

  // Everything accepted (kBlock never refuses) is complete by the time
  // Drain returns: every future must be immediately ready and ok.
  for (int t = 0; t < kEnqueuers; ++t) {
    for (std::future<ServeResult>& future : futures[t]) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      EXPECT_TRUE(future.get().ok());
    }
  }
  EXPECT_EQ(runtime.metrics().completed.load(), kEnqueuers * kPerThread);
  EXPECT_EQ(runtime.metrics().enqueued.load(), kEnqueuers * kPerThread);
  EXPECT_EQ(runtime.metrics().rejected.load(), 0);
  EXPECT_EQ(runtime.metrics().shed.load(), 0);
}

TEST_F(ServerRuntimeTest, RejectOverloadResolvesEveryFutureOneWayOrAnother) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 13);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.max_resident_per_worker = 1;
  options.overload = OverloadPolicy::kReject;
  ServerRuntime runtime(&session, options);

  constexpr int kRequests = 60;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  runtime.Drain();
  int ok = 0, refused = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status, ServeStatus::kRejected);
      ++refused;
    }
  }
  EXPECT_EQ(ok + refused, kRequests);
  EXPECT_GE(ok, 1) << "admitted work must still complete under overload";
  EXPECT_EQ(runtime.metrics().completed.load(), ok);
  EXPECT_EQ(runtime.metrics().rejected.load(), refused);
  // The default class rode every request: per-class slices mirror the
  // queue-wide counters.
  const ClassMetrics& standard =
      runtime.metrics().for_class(PriorityClass::kStandard);
  EXPECT_EQ(standard.completed.load(), ok);
  EXPECT_EQ(standard.rejected.load(), refused);
}

TEST_F(ServerRuntimeTest, ShedOldestOverloadDropsStaleWorkButCompletesRest) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 17);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.max_resident_per_worker = 1;
  options.overload = OverloadPolicy::kShedOldest;
  ServerRuntime runtime(&session, options);

  constexpr int kRequests = 60;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  runtime.Drain();
  int ok = 0, shed = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status, ServeStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GE(ok, 1);
  // Nothing is ever refused at the door under single-class shed-oldest; the
  // queue trades stale accepted work for fresh arrivals instead.
  EXPECT_EQ(runtime.metrics().rejected.load(), 0);
  EXPECT_EQ(runtime.metrics().shed.load(), shed);
  EXPECT_EQ(runtime.metrics().completed.load(), ok);
}

TEST_F(ServerRuntimeTest, ShutdownCompletesAcceptedWorkAndRefusesNewWork) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 19);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  runtime.Shutdown();
  for (std::future<ServeResult>& future : futures) {
    EXPECT_TRUE(future.get().ok()) << "accepted work survives shutdown";
  }
  const ServeResult refused =
      runtime.Enqueue(core::WorkItem::Stored(0)).get();
  EXPECT_EQ(refused.status, ServeStatus::kShutdown);
  EXPECT_EQ(runtime.metrics().shutdown_refused.load(), 1);
  runtime.Shutdown();  // idempotent
}

TEST_F(ServerRuntimeTest, ShutdownWakesEnqueuerBlockedOnAFullQueue) {
  // Satellite edge: an enqueuer parked on kBlock backpressure must be woken
  // by Shutdown and its future must resolve (kShutdown if still parked when
  // admission closed, kOk if a worker freed a slot first).
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 37);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.max_resident_per_worker = 1;
  options.overload = OverloadPolicy::kBlock;
  ServerRuntime runtime(&session, options);

  // Flood from a helper thread until it parks inside Enqueue.
  std::promise<std::future<ServeResult>> last_future;
  std::atomic<bool> stop_flooding{false};
  std::thread flooder([&] {
    std::vector<std::future<ServeResult>> kept;
    while (!stop_flooding.load()) {
      kept.push_back(runtime.Enqueue(core::WorkItem::Stored(0)));
    }
    last_future.set_value(std::move(kept.back()));
    for (std::future<ServeResult>& f : kept) {
      if (f.valid()) f.wait();
    }
  });
  AwaitState([&] { return runtime.admission_queue().waiting_enqueuers() > 0; });
  stop_flooding.store(true);
  runtime.Shutdown();
  flooder.join();
  const ServeResult last = last_future.get_future().get().get();
  EXPECT_TRUE(last.status == ServeStatus::kOk ||
              last.status == ServeStatus::kShutdown)
      << ServeStatusName(last.status);
}

TEST_F(ServerRuntimeTest, ManualClockMakesRuntimeLatenciesExact) {
  // The Clock seam end-to-end: with a frozen ManualClock every latency
  // field is exactly zero, every deadline is met by exactly the requested
  // slack, and the metrics histograms record deterministic values — the
  // deterministic port of the old wall-clock timing assertions.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 41);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ManualClock clock(50.0);
  ServeOptions options;
  options.workers = 2;
  options.clock = &clock;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(
        runtime.Enqueue(core::WorkItem::Stored(i), /*slack_s=*/4.0,
                        PriorityClass::kInteractive));
  }
  runtime.Drain();
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.latency_s, 0.0);
    EXPECT_DOUBLE_EQ(result.queue_delay_s, 0.0);
    EXPECT_DOUBLE_EQ(result.service_s, 0.0);
    EXPECT_DOUBLE_EQ(result.slack_s, 4.0);
    EXPECT_TRUE(result.deadline_met());
  }
  const Metrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.deadline_misses.load(), 0);
  EXPECT_EQ(metrics.for_class(PriorityClass::kInteractive).completed.load(),
            12);
  EXPECT_DOUBLE_EQ(metrics.total_latency.mean(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.total_latency.max(), 0.0);
  // Uptime runs on the same manual clock.
  clock.Advance(8.0);
  const std::string json = runtime.MetricsJson();
  EXPECT_NE(json.find("\"uptime_s\": 8"), std::string::npos) << json;
}

TEST_F(ServerRuntimeTest, MetricsSnapshotExportsCountersAndPercentiles) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 23);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.default_slack_s = 30.0;  // generous: no misses expected
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  runtime.Drain();
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.deadline_met());
    EXPECT_GE(result.latency_s, result.service_s);
  }

  const Metrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.completed.load(), 30);
  EXPECT_EQ(metrics.deadline_misses.load(), 0);
  EXPECT_EQ(metrics.total_latency.count(), 30);
  // Percentiles are monotone and bracketed by the recorded extremes.
  const double p50 = metrics.total_latency.Percentile(50);
  const double p95 = metrics.total_latency.Percentile(95);
  const double p99 = metrics.total_latency.Percentile(99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, metrics.total_latency.max() * 1.0001);

  const std::string json = runtime.MetricsJson();
  for (const char* key :
       {"\"counters\"", "\"completed\": 30", "\"gauges\"", "\"queue_delay\"",
        "\"p99_s\"", "\"completed_per_s\"", "\"classes\"", "\"interactive\"",
        "\"standard\"", "\"batch\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
}

TEST_F(ServerRuntimeTest, LatencyHistogramPercentilesApproximateSamples) {
  LatencyHistogram histogram;
  // 1..100 ms uniform: p50 ~ 50ms, p99 ~ 99ms (bucket resolution ~20%).
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 1e-3);
  EXPECT_EQ(histogram.count(), 100);
  EXPECT_NEAR(histogram.mean(), 0.0505, 1e-9);
  EXPECT_NEAR(histogram.Percentile(50), 0.050, 0.015);
  EXPECT_NEAR(histogram.Percentile(99), 0.099, 0.025);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.100);
}

TEST_F(ServerRuntimeTest, EmptyHistogramQueriesAreWellDefined) {
  // The documented empty contract (satellite fix): while nothing was
  // recorded, every query — including out-of-range and NaN percentiles —
  // returns exactly 0.0, never NaN or garbage.
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  for (const double p : {0.0, 50.0, 99.9, 100.0, -5.0, 250.0,
                         std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_DOUBLE_EQ(histogram.Percentile(p), 0.0) << "p = " << p;
  }
  // The JSON snapshot of an empty histogram is all-numeric zeros.
  EXPECT_EQ(histogram.SnapshotJson(),
            "{\"count\": 0, \"mean_s\": 0, \"p50_s\": 0, \"p95_s\": 0, "
            "\"p99_s\": 0, \"max_s\": 0}");
  // Populated histograms sanitize out-of-range p the same way.
  histogram.Record(0.010);
  EXPECT_DOUBLE_EQ(histogram.Percentile(-5.0), histogram.Percentile(0.0));
  EXPECT_DOUBLE_EQ(histogram.Percentile(250.0), histogram.Percentile(100.0));
}

TEST_F(ServerRuntimeTest, ValueDensityOrderingNeverChangesOutcomes) {
  // The estimator seam end-to-end: value-density admission (default
  // ProfileValueEstimator over the session) reorders service but items are
  // independent — every outcome must still equal offline Submit().
  const int num_items = 30;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 43);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }

  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.max_resident_per_worker = 4;
  options.within_class_order = WithinClassOrder::kValueDensity;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << "item " << i;
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
}

TEST_F(ServerRuntimeTest, ProfileValueEstimatorScoresItemsFromTheirProfiles) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 47);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  const ProfileValueEstimator estimator(&session);
  // Stored items: density = 1 / oracle valuable time — strictly positive
  // whenever the item has any value, and denser for cheaper items.
  for (int i = 0; i < 8; ++i) {
    const core::WorkEstimate estimate =
        session.EstimateWork(core::WorkItem::Stored(i));
    const double density = estimator.ValueDensity(core::WorkItem::Stored(i));
    if (estimate.expected_value > 0.0) {
      EXPECT_GT(estimate.expected_cost_s, 0.0) << "item " << i;
      EXPECT_NEAR(density, 1.0 / estimate.expected_cost_s, 1e-12);
    } else {
      EXPECT_EQ(density, 0.0);
    }
  }
  // Out-of-range stored items score zero instead of crashing.
  EXPECT_EQ(estimator.ValueDensity(core::WorkItem::Stored(1 << 20)), 0.0);
  // Live scenes: an empty scene promises no valuable output; a dog-only
  // scene charges exactly the dog-classification models' mean times.
  zoo::LatentScene empty_scene;
  empty_scene.scene_clarity = 0.1;  // too murky for a valuable place label
  EXPECT_EQ(estimator.ValueDensity(core::WorkItem::Live(&empty_scene)), 0.0);
  zoo::LatentScene dog_scene;
  dog_scene.scene_clarity = 0.1;
  dog_scene.has_dog = true;
  dog_scene.dog_visibility = 0.9;
  double dog_cost = 0.0;
  for (const int model : zoo_->ModelsForTask(zoo::TaskKind::kDogClassification)) {
    dog_cost += zoo_->model(model).time_s;
  }
  const core::WorkEstimate dog_estimate =
      session.EstimateWork(core::WorkItem::Live(&dog_scene));
  EXPECT_DOUBLE_EQ(dog_estimate.expected_value, 1.0);
  EXPECT_DOUBLE_EQ(dog_estimate.expected_cost_s, dog_cost);
  EXPECT_GT(estimator.ValueDensity(core::WorkItem::Live(&dog_scene)), 0.0);
}

TEST_F(ServerRuntimeTest, TenantQuotaRejectionsResolveAndCountPerTenant) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 53);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ManualClock clock(10.0);
  ServeOptions options;
  options.workers = 2;
  options.clock = &clock;
  // Tenant 1 may burst 2 requests and then refills glacially; tenant 2 is
  // unconstrained (no default quota).
  TenantQuota limited;
  limited.rate_per_s = 1e-6;
  limited.burst = 2.0;
  options.tenant_quotas.per_tenant[1] = limited;
  ServerRuntime runtime(&session, options);

  ServerRuntime::RequestOptions tenant1;
  tenant1.tenant_id = 1;
  ServerRuntime::RequestOptions tenant2;
  tenant2.tenant_id = 2;
  std::vector<std::future<ServeResult>> limited_futures, free_futures;
  for (int i = 0; i < 10; ++i) {
    limited_futures.push_back(
        runtime.Enqueue(core::WorkItem::Stored(i), tenant1));
    free_futures.push_back(
        runtime.Enqueue(core::WorkItem::Stored(i + 10), tenant2));
  }
  runtime.Drain();
  int ok = 0, quota_rejected = 0;
  for (std::future<ServeResult>& future : limited_futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status, ServeStatus::kRejected);
      ++quota_rejected;
    }
  }
  EXPECT_EQ(ok, 2) << "burst of 2, then the bucket is dry";
  EXPECT_EQ(quota_rejected, 8);
  for (std::future<ServeResult>& future : free_futures) {
    EXPECT_TRUE(future.get().ok()) << "tenant 2 is unconstrained";
  }

  const Metrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.quota_rejected.load(), 8);
  const TenantMetrics* slice1 = metrics.find_tenant(1);
  ASSERT_NE(slice1, nullptr);
  EXPECT_EQ(slice1->enqueued.load(), 10);
  EXPECT_EQ(slice1->completed.load(), 2);
  EXPECT_EQ(slice1->rejected.load(), 8);
  EXPECT_EQ(slice1->quota_rejected.load(), 8);
  const TenantMetrics* slice2 = metrics.find_tenant(2);
  ASSERT_NE(slice2, nullptr);
  EXPECT_EQ(slice2->completed.load(), 10);
  EXPECT_EQ(slice2->quota_rejected.load(), 0);
  EXPECT_EQ(metrics.find_tenant(99), nullptr);

  // The JSON snapshot breaks tenants out alongside classes.
  const std::string json = runtime.MetricsJson();
  for (const char* key :
       {"\"tenants\"", "\"1\": {\"enqueued\": 10", "\"quota_rejected\": 8"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
}

TEST_F(ServerRuntimeTest, TenantInFlightCapThrottlesAdmissionUntilCompletion) {
  // max_in_flight couples admission to the runtime's completion feedback
  // (AdmissionQueue::TenantFinished): with a cap of 1 and kReject overload,
  // a second same-tenant arrival is only admitted once the first completed.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 59);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.overload = OverloadPolicy::kReject;
  TenantQuota quota;
  quota.max_in_flight = 1;
  options.tenant_quotas.default_quota = quota;
  ServerRuntime runtime(&session, options);

  // Sequential enqueue-drain pairs are the deterministic proof that the
  // runtime reports completions back to the queue: with a cap of 1, request
  // i+1 is only admissible because request i's completion freed the
  // tenant's in-flight slot — were TenantFinished never called, every
  // request after the first would bounce.
  for (int i = 0; i < 4; ++i) {
    std::future<ServeResult> future =
        runtime.Enqueue(core::WorkItem::Stored(i));
    runtime.Drain();
    EXPECT_TRUE(future.get().ok()) << "request " << i;
  }
  EXPECT_EQ(runtime.metrics().quota_rejected.load(), 0);
  // A concurrent burst races worker pops against arrivals, so how many
  // bounce is timing-dependent — but every future resolves one way, the
  // quota counter matches the rejections exactly, and accepted work all
  // completes.
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  runtime.Drain();
  int ok = 0, rejected = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status, ServeStatus::kRejected);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 30);
  EXPECT_GE(ok, 1);
  EXPECT_EQ(runtime.metrics().quota_rejected.load(), rejected);
}

TEST_F(ServerRuntimeTest, SteppersRejectStatefulPolicySessions) {
  core::LabelingService session =
      core::LabelingServiceBuilder(zoo_)
          .WithOracle(oracle_)
          .WithMode(core::ExecutionMode::kSerial)
          .WithPolicy("random", {})
          .WithConstraints({/*time*/ 1.0})
          .Build();
  EXPECT_DEATH(session.NewItemStepper(0), "stateful policies");
}

TEST(PriorityClassTest, NamesRoundTrip) {
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const PriorityClass cls = static_cast<PriorityClass>(c);
    PriorityClass parsed = PriorityClass::kInteractive;
    ASSERT_TRUE(PriorityClassFromName(PriorityClassName(cls), &parsed));
    EXPECT_EQ(parsed, cls);
  }
  PriorityClass parsed = PriorityClass::kBatch;
  EXPECT_FALSE(PriorityClassFromName("premium", &parsed));
  EXPECT_FALSE(PriorityClassFromName(nullptr, &parsed));
  EXPECT_EQ(parsed, PriorityClass::kBatch) << "failed parse must not write";
}

TEST(ManualClockTest, AdvancesAndRejectsTimeTravel) {
  ManualClock clock(2.0);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 2.0);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 2.5);
  clock.Set(4.0);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 4.0);
  EXPECT_DEATH(clock.Advance(-1.0), "cannot go backwards");
  EXPECT_DEATH(clock.Set(3.0), "cannot go backwards");
}

}  // namespace
}  // namespace ams::serve
