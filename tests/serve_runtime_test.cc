// Tests of the serve:: subsystem: admission-queue ordering and all three
// overload policies, seeded parity between the asynchronous runtime and
// offline Submit(), Drain() under concurrent enqueuers, shutdown semantics,
// and the metrics registry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "serve/admission_queue.h"
#include "serve/metrics.h"
#include "serve/server_runtime.h"

namespace ams::serve {
namespace {

// --- admission queue -------------------------------------------------------

QueuedRequest MakeRequest(uint64_t sequence, double deadline_s) {
  QueuedRequest request;
  request.item = core::WorkItem::Stored(static_cast<int>(sequence));
  request.sequence = sequence;
  request.deadline_s = deadline_s;
  return request;
}

TEST(AdmissionQueueTest, PopsEarliestDeadlineFirstWithFifoTieBreak) {
  AdmissionQueue queue(8, OverloadPolicy::kReject);
  std::vector<QueuedRequest> bounced;
  // Out-of-order deadlines, plus two deadline-less (infinite) requests.
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& [seq, deadline] :
       std::vector<std::pair<uint64_t, double>>{
           {0, inf}, {1, 5.0}, {2, 1.0}, {3, inf}, {4, 3.0}, {5, 1.0}}) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(seq, deadline), &bounced),
              AdmitOutcome::kAccepted);
  }
  // EDF: 1.0s deadlines first (seq 2 before 5: FIFO tie-break), then 3.0,
  // 5.0, then the deadline-less pair in arrival order.
  const std::vector<uint64_t> expected = {2, 5, 4, 1, 0, 3};
  for (const uint64_t want : expected) {
    QueuedRequest popped;
    ASSERT_TRUE(queue.TryPop(&popped));
    EXPECT_EQ(popped.sequence, want);
  }
  QueuedRequest popped;
  EXPECT_FALSE(queue.TryPop(&popped));
  EXPECT_TRUE(bounced.empty());
}

TEST(AdmissionQueueTest, RejectPolicyBouncesNewWorkWhenFull) {
  AdmissionQueue queue(2, OverloadPolicy::kReject);
  std::vector<QueuedRequest> bounced;
  EXPECT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, 0.5), &bounced),
            AdmitOutcome::kRejected);
  // The rejected request itself bounced back, even though its deadline was
  // the tightest — kReject is strict arrival-order admission control.
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 2u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(AdmissionQueueTest, ShedOldestPolicyEvictsStalestAcceptedWork) {
  AdmissionQueue queue(2, OverloadPolicy::kShedOldest);
  std::vector<QueuedRequest> bounced;
  EXPECT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &bounced),
            AdmitOutcome::kAccepted);
  // Full: admitting seq 2 sheds the oldest entry (seq 0), not the one with
  // the loosest deadline.
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, 3.0), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 0u);
  // Remaining pops are still EDF over the survivors.
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 1u);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 2u);
}

TEST(AdmissionQueueTest, BlockPolicyAppliesBackpressureUntilAPop) {
  AdmissionQueue queue(1, OverloadPolicy::kBlock);
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  std::atomic<bool> second_accepted{false};
  std::thread enqueuer([&] {
    std::vector<QueuedRequest> thread_bounced;
    const AdmitOutcome outcome =
        queue.Enqueue(MakeRequest(1, 2.0), &thread_bounced);
    EXPECT_EQ(outcome, AdmitOutcome::kAccepted);
    second_accepted.store(true);
  });
  // The enqueuer must not get through while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_accepted.load());
  EXPECT_EQ(queue.size(), 1u);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  enqueuer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(AdmissionQueueTest, CloseWakesBlockedCallersAndKeepsQueuedWork) {
  AdmissionQueue queue(1, OverloadPolicy::kBlock);
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 1.0), &bounced),
            AdmitOutcome::kAccepted);
  std::thread blocked_enqueuer([&] {
    std::vector<QueuedRequest> thread_bounced;
    EXPECT_EQ(queue.Enqueue(MakeRequest(1, 2.0), &thread_bounced),
              AdmitOutcome::kClosed);
    EXPECT_EQ(thread_bounced.size(), 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  blocked_enqueuer.join();
  // Queued work survives Close (drain-then-stop) and WaitPop serves it
  // before reporting exhaustion.
  QueuedRequest popped;
  EXPECT_TRUE(queue.WaitPop(&popped));
  EXPECT_EQ(popped.sequence, 0u);
  EXPECT_FALSE(queue.WaitPop(&popped)) << "closed and empty: no more work";
}

// --- serving runtime -------------------------------------------------------

std::unique_ptr<rl::Agent> MakeAgent(const zoo::ModelZoo& zoo, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = zoo.labels().total_labels();
  config.hidden_dims = {64};
  config.output_dim = zoo.num_models() + 1;
  return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                     nn::NetKind::kMlp);
}

class ServerRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static core::ScheduleConstraints ParallelConstraints() {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return constraints;
  }

  static core::LabelingService BuildPredictorSession(rl::Agent* agent,
                                                     int workers) {
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(ParallelConstraints())
        .WithWorkers(workers)
        .Build();
  }

  // The acceptance fields: serving must not change what gets labeled.
  static void ExpectSameOutcome(const core::LabelOutcome& offline,
                                const core::LabelOutcome& served) {
    EXPECT_EQ(offline.recall, served.recall);
    EXPECT_EQ(offline.schedule.makespan_s, served.schedule.makespan_s);
    EXPECT_EQ(offline.schedule.num_executions, served.schedule.num_executions);
    EXPECT_EQ(offline.schedule.value, served.schedule.value);
    EXPECT_EQ(offline.schedule.peak_mem_mb, served.schedule.peak_mem_mb);
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* ServerRuntimeTest::zoo_ = nullptr;
data::Dataset* ServerRuntimeTest::dataset_ = nullptr;
data::Oracle* ServerRuntimeTest::oracle_ = nullptr;

TEST_F(ServerRuntimeTest, ServedOutcomesMatchOfflineSubmitExactly) {
  const int num_items = 40;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 7);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }

  core::LabelingService session = BuildPredictorSession(agent.get(), 3);
  ServeOptions options;
  options.workers = 3;
  options.max_resident_per_worker = 4;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << "item " << i;
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
}

TEST_F(ServerRuntimeTest, RandomPackingSessionsServeIdenticallyToo) {
  // The predictor-less baseline (seeded random packing) multiplexes as
  // well: stored items key their packing sequence by item id, so serving
  // order cannot change outcomes.
  const int num_items = 24;
  const auto build = [&] {
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithMode(core::ExecutionMode::kParallelRandom)
        .WithConstraints(ParallelConstraints())
        .WithSeed(91)
        .WithWorkers(2)
        .Build();
  };
  core::LabelingService offline = build();
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < num_items; ++i) {
    expected.push_back(offline.Submit(core::WorkItem::Stored(i)));
  }
  core::LabelingService session = build();
  ServerRuntime runtime(&session, ServeOptions{});
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  for (int i = 0; i < num_items; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk);
    ExpectSameOutcome(expected[static_cast<size_t>(i)], result.outcome);
  }
}

TEST_F(ServerRuntimeTest, DrainCompletesAllAcceptedWorkUnderConcurrentEnqueuers) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 11);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.queue_capacity = 8;  // enqueuers outpace this: kBlock backpressure
  options.overload = OverloadPolicy::kBlock;
  ServerRuntime runtime(&session, options);

  constexpr int kEnqueuers = 4;
  constexpr int kPerThread = 25;
  std::vector<std::future<ServeResult>> futures[kEnqueuers];
  std::vector<std::thread> enqueuers;
  for (int t = 0; t < kEnqueuers; ++t) {
    enqueuers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            runtime.Enqueue(core::WorkItem::Stored((t * kPerThread + i) % 48)));
      }
    });
  }
  for (std::thread& thread : enqueuers) thread.join();
  runtime.Drain();

  // Everything accepted (kBlock never refuses) is complete by the time
  // Drain returns: every future must be immediately ready and ok.
  for (int t = 0; t < kEnqueuers; ++t) {
    for (std::future<ServeResult>& future : futures[t]) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      EXPECT_TRUE(future.get().ok());
    }
  }
  EXPECT_EQ(runtime.metrics().completed.load(), kEnqueuers * kPerThread);
  EXPECT_EQ(runtime.metrics().enqueued.load(), kEnqueuers * kPerThread);
  EXPECT_EQ(runtime.metrics().rejected.load(), 0);
  EXPECT_EQ(runtime.metrics().shed.load(), 0);
}

TEST_F(ServerRuntimeTest, RejectOverloadResolvesEveryFutureOneWayOrAnother) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 13);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.max_resident_per_worker = 1;
  options.overload = OverloadPolicy::kReject;
  ServerRuntime runtime(&session, options);

  constexpr int kRequests = 60;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  runtime.Drain();
  int ok = 0, refused = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status, ServeStatus::kRejected);
      ++refused;
    }
  }
  EXPECT_EQ(ok + refused, kRequests);
  EXPECT_GE(ok, 1) << "admitted work must still complete under overload";
  EXPECT_EQ(runtime.metrics().completed.load(), ok);
  EXPECT_EQ(runtime.metrics().rejected.load(), refused);
}

TEST_F(ServerRuntimeTest, ShedOldestOverloadDropsStaleWorkButCompletesRest) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 17);
  core::LabelingService session = BuildPredictorSession(agent.get(), 1);
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.max_resident_per_worker = 1;
  options.overload = OverloadPolicy::kShedOldest;
  ServerRuntime runtime(&session, options);

  constexpr int kRequests = 60;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  runtime.Drain();
  int ok = 0, shed = 0;
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status, ServeStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GE(ok, 1);
  // Nothing is ever refused at the door under shed-oldest; the queue trades
  // stale accepted work for fresh arrivals instead.
  EXPECT_EQ(runtime.metrics().rejected.load(), 0);
  EXPECT_EQ(runtime.metrics().shed.load(), shed);
  EXPECT_EQ(runtime.metrics().completed.load(), ok);
}

TEST_F(ServerRuntimeTest, ShutdownCompletesAcceptedWorkAndRefusesNewWork) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 19);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  runtime.Shutdown();
  for (std::future<ServeResult>& future : futures) {
    EXPECT_TRUE(future.get().ok()) << "accepted work survives shutdown";
  }
  const ServeResult refused =
      runtime.Enqueue(core::WorkItem::Stored(0)).get();
  EXPECT_EQ(refused.status, ServeStatus::kShutdown);
  EXPECT_EQ(runtime.metrics().shutdown_refused.load(), 1);
  runtime.Shutdown();  // idempotent
}

TEST_F(ServerRuntimeTest, MetricsSnapshotExportsCountersAndPercentiles) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 23);
  core::LabelingService session = BuildPredictorSession(agent.get(), 2);
  ServeOptions options;
  options.workers = 2;
  options.default_slack_s = 30.0;  // generous: no misses expected
  ServerRuntime runtime(&session, options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  runtime.Drain();
  for (std::future<ServeResult>& future : futures) {
    const ServeResult result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.deadline_met());
    EXPECT_GE(result.latency_s, result.service_s);
  }

  const Metrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.completed.load(), 30);
  EXPECT_EQ(metrics.deadline_misses.load(), 0);
  EXPECT_EQ(metrics.total_latency.count(), 30);
  // Percentiles are monotone and bracketed by the recorded extremes.
  const double p50 = metrics.total_latency.Percentile(50);
  const double p95 = metrics.total_latency.Percentile(95);
  const double p99 = metrics.total_latency.Percentile(99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, metrics.total_latency.max() * 1.0001);

  const std::string json = runtime.MetricsJson();
  for (const char* key :
       {"\"counters\"", "\"completed\": 30", "\"gauges\"", "\"queue_delay\"",
        "\"p99_s\"", "\"completed_per_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
}

TEST_F(ServerRuntimeTest, LatencyHistogramPercentilesApproximateSamples) {
  LatencyHistogram histogram;
  // 1..100 ms uniform: p50 ~ 50ms, p99 ~ 99ms (bucket resolution ~20%).
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 1e-3);
  EXPECT_EQ(histogram.count(), 100);
  EXPECT_NEAR(histogram.mean(), 0.0505, 1e-9);
  EXPECT_NEAR(histogram.Percentile(50), 0.050, 0.015);
  EXPECT_NEAR(histogram.Percentile(99), 0.099, 0.025);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.100);
}

TEST_F(ServerRuntimeTest, SteppersRejectStatefulPolicySessions) {
  core::LabelingService session =
      core::LabelingServiceBuilder(zoo_)
          .WithOracle(oracle_)
          .WithMode(core::ExecutionMode::kSerial)
          .WithPolicy("random", {})
          .WithConstraints({/*time*/ 1.0})
          .Build();
  EXPECT_DEATH(session.NewItemStepper(0), "stateful policies");
}

}  // namespace
}  // namespace ams::serve
