// Unit tests of the Eq. 3 reward, its shaping variants, the scheduling MDP
// and the profit transform used by the constraint algorithms.

#include <gtest/gtest.h>

#include <cmath>

#include "core/env.h"
#include "core/predictor.h"
#include "core/reward.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "zoo/model_zoo.h"

namespace ams::core {
namespace {

TEST(RewardTest, Equation3Exactly) {
  const std::vector<zoo::LabelOutput> outputs = {{1, 0.8}, {2, 0.6}};
  // r = ln(theta * sum_conf + 1)
  EXPECT_NEAR(ModelReward(outputs, 1.0), std::log(1.4 + 1.0), 1e-12);
  EXPECT_NEAR(ModelReward(outputs, 5.0), std::log(5.0 * 1.4 + 1.0), 1e-12);
  // Empty O' is punished with -1 regardless of theta.
  EXPECT_DOUBLE_EQ(ModelReward({}, 1.0), kNoOutputPunishment);
  EXPECT_DOUBLE_EQ(ModelReward({}, 10.0), -1.0);
}

TEST(RewardTest, ShapingVariants) {
  const std::vector<zoo::LabelOutput> outputs = {{1, 0.8}, {2, 0.6}};
  EXPECT_NEAR(ModelReward(outputs, 1.0, RewardShaping::kAverage), 0.7, 1e-12);
  EXPECT_NEAR(ModelReward(outputs, 1.0, RewardShaping::kRawSum), 1.4, 1e-12);
  EXPECT_NEAR(ModelReward(outputs, 2.0, RewardShaping::kRawSum), 2.8, 1e-12);
  // Log smoothing compresses: a 70-label output gets << 70x one label's
  // reward (the SIV-A bias argument).
  std::vector<zoo::LabelOutput> many;
  for (int i = 0; i < 70; ++i) many.push_back({i, 0.8});
  const double many_log = ModelReward(many, 1.0, RewardShaping::kLogSum);
  const double one_log = ModelReward({{0, 0.8}}, 1.0, RewardShaping::kLogSum);
  EXPECT_LT(many_log, one_log * 10.0);
  const double many_raw = ModelReward(many, 1.0, RewardShaping::kRawSum);
  const double one_raw = ModelReward({{0, 0.8}}, 1.0, RewardShaping::kRawSum);
  EXPECT_NEAR(many_raw, one_raw * 70.0, 1e-9);
}

TEST(SchedulingProfitTest, MonotoneAndPositive) {
  double prev = 0.0;
  for (double q = -5.0; q <= 5.0; q += 0.1) {
    const double p = SchedulingProfit(q);
    EXPECT_GT(p, 0.0);
    EXPECT_GT(p, prev) << "strictly increasing at q=" << q;
    prev = p;
  }
  // Decompression: for confidently positive Q the profit approximates the
  // inverse of the log reward, e^q - 1.
  EXPECT_NEAR(SchedulingProfit(2.0), std::expm1(2.0), 0.05 * std::expm1(2.0));
}

class EnvTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), 40, 77));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* EnvTest::zoo_ = nullptr;
data::Dataset* EnvTest::dataset_ = nullptr;
data::Oracle* EnvTest::oracle_ = nullptr;

TEST_F(EnvTest, DimensionsMatchPaper) {
  SchedulingEnv env(oracle_, EnvConfig{});
  EXPECT_EQ(env.feature_dim(), 1104);
  EXPECT_EQ(env.num_models(), 30);
  EXPECT_EQ(env.num_actions(), 31);
  EXPECT_EQ(env.end_action(), 30);
}

TEST_F(EnvTest, EpisodeMechanics) {
  SchedulingEnv env(oracle_, EnvConfig{});
  env.Reset(0);
  EXPECT_FALSE(env.done());
  EXPECT_EQ(env.ValidActions().size(), 31u);
  const StepResult step = env.Step(5);
  EXPECT_FALSE(env.ActionValid(5)) << "executed models become invalid";
  EXPECT_EQ(env.ValidActions().size(), 30u);
  EXPECT_GT(env.TimeSpent(), 0.0);
  // Reward consistent with the model's fresh output.
  EXPECT_NEAR(step.reward, ModelReward(step.fresh, 1.0), 1e-12);
}

TEST_F(EnvTest, EndActionTerminatesWithZeroReward) {
  SchedulingEnv env(oracle_, EnvConfig{});
  env.Reset(1);
  const StepResult step = env.Step(env.end_action());
  EXPECT_TRUE(step.done);
  EXPECT_TRUE(env.done());
  EXPECT_DOUBLE_EQ(step.reward, kEndActionReward);
}

TEST_F(EnvTest, EndActionCanBeDisabled) {
  EnvConfig config;
  config.enable_end_action = false;
  SchedulingEnv env(oracle_, config);
  env.Reset(0);
  EXPECT_FALSE(env.ActionValid(env.end_action()));
  EXPECT_EQ(env.ValidActions().size(), 30u);
}

TEST_F(EnvTest, ExecutingAllModelsReachesFullRecallAndDone) {
  SchedulingEnv env(oracle_, EnvConfig{});
  env.Reset(2);
  for (int m = 0; m < env.num_models(); ++m) {
    EXPECT_FALSE(env.done());
    env.Step(m);
  }
  EXPECT_TRUE(env.done());
  EXPECT_NEAR(env.Recall(), 1.0, 1e-12);
  EXPECT_NEAR(env.Value(), oracle_->TrueTotalValue(2), 1e-9);
  EXPECT_NEAR(env.TimeSpent(), oracle_->TotalTime(2), 1e-9);
}

TEST_F(EnvTest, DuplicateTaskOutputsEarnPunishment) {
  SchedulingEnv env(oracle_, EnvConfig{});
  // Find an item where the large place model is valuable, run it, then run
  // the small one: the small one's scene label is no longer fresh, and since
  // place models emit at most the scene label valuably, it gets -1.
  const auto place_models =
      oracle_->zoo().ModelsForTask(zoo::TaskKind::kPlaceClassification);
  for (int item = 0; item < oracle_->num_items(); ++item) {
    const auto& large_out = oracle_->ValuableOutput(item, place_models[2]);
    const auto& small_out = oracle_->ValuableOutput(item, place_models[0]);
    if (large_out.empty() || small_out.empty()) continue;
    if (large_out[0].label_id != small_out[0].label_id) continue;
    env.Reset(item);
    env.Step(place_models[2]);
    const StepResult duplicate = env.Step(place_models[0]);
    EXPECT_DOUBLE_EQ(duplicate.reward, kNoOutputPunishment);
    return;
  }
  GTEST_SKIP() << "no suitable item in this tiny dataset";
}

}  // namespace
}  // namespace ams::core
