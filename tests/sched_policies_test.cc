// Unit tests of the scheduling policies against a deterministic fake
// predictor and the shared oracle fixture.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/predictor.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "sched/basic_policies.h"
#include "sched/cost_q_greedy.h"
#include "sched/rule_based.h"
#include "sched/serial_runner.h"

namespace ams::sched {
namespace {

// Fake predictor returning fixed Q values regardless of state.
class FakePredictor : public core::ModelValuePredictor {
 public:
  explicit FakePredictor(std::vector<double> q) : q_(std::move(q)) {}
  std::vector<double> PredictValues(const std::vector<float>&) override {
    return q_;
  }
  int num_actions() const override { return static_cast<int>(q_.size()); }

 private:
  std::vector<double> q_;
};

class PoliciesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), 60, 13));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static ItemContext Context(int item) {
    return ItemContext{oracle_, zoo_, item, -1};
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* PoliciesTest::zoo_ = nullptr;
data::Dataset* PoliciesTest::dataset_ = nullptr;
data::Oracle* PoliciesTest::oracle_ = nullptr;

TEST_F(PoliciesTest, RandomPolicyCoversAllModelsWithoutBudget) {
  RandomPolicy policy(5);
  policy.BeginItem(Context(0));
  core::LabelingState state(1104, 30);
  std::set<int> seen;
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 30; ++i) {
    const int m = policy.NextModel(state, inf);
    ASSERT_GE(m, 0);
    EXPECT_TRUE(seen.insert(m).second) << "repeated model " << m;
    state.Apply(m, {});
  }
  EXPECT_EQ(policy.NextModel(state, inf), -1);
}

TEST_F(PoliciesTest, RandomPolicySkipsModelsOverBudget) {
  RandomPolicy policy(6);
  policy.BeginItem(Context(1));
  core::LabelingState state(1104, 30);
  const double budget = 0.1;  // only the cheapest models fit
  for (;;) {
    const int m = policy.NextModel(state, budget);
    if (m < 0) break;
    EXPECT_LE(oracle_->ExecutionTime(1, m), budget);
    state.Apply(m, {});
  }
}

TEST_F(PoliciesTest, RandomPolicyOrderVariesAcrossItems) {
  RandomPolicy policy(7);
  core::LabelingState state(1104, 30);
  const double inf = std::numeric_limits<double>::infinity();
  policy.BeginItem(Context(0));
  const int first_a = policy.NextModel(state, inf);
  std::vector<int> firsts;
  for (int item = 1; item < 12; ++item) {
    policy.BeginItem(Context(item));
    firsts.push_back(policy.NextModel(state, inf));
  }
  EXPECT_TRUE(std::any_of(firsts.begin(), firsts.end(),
                          [&](int m) { return m != first_a; }));
}

TEST_F(PoliciesTest, OptimalPolicyOrdersByTrueSoloValueDescending) {
  OptimalPolicy policy;
  const int item = 2;
  policy.BeginItem(Context(item));
  core::LabelingState state(1104, 30);
  const double inf = std::numeric_limits<double>::infinity();
  double prev = std::numeric_limits<double>::infinity();
  for (;;) {
    const int m = policy.NextModel(state, inf);
    if (m < 0) break;
    const double solo = oracle_->ModelSoloValue(item, m);
    EXPECT_GT(solo, 0.0) << "optimal never runs worthless models";
    EXPECT_LE(solo, prev + 1e-12);
    prev = solo;
    state.Apply(m, {});
  }
}

TEST_F(PoliciesTest, QGreedyPicksArgmaxAmongUnexecuted) {
  std::vector<double> q(31, 0.0);
  q[7] = 5.0;
  q[3] = 4.0;
  q[20] = 3.0;
  FakePredictor predictor(q);
  QGreedyPolicy policy(&predictor);
  policy.BeginItem(Context(0));
  core::LabelingState state(1104, 30);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(policy.NextModel(state, inf), 7);
  state.Apply(7, {});
  EXPECT_EQ(policy.NextModel(state, inf), 3);
  state.Apply(3, {});
  EXPECT_EQ(policy.NextModel(state, inf), 20);
}

TEST_F(PoliciesTest, CostQGreedyDividesByModelTime) {
  // Give two models equal Q; the cheaper one must win. Then give the
  // expensive one enough Q to flip the ratio.
  const int cheap = 18;   // gender_cls_s, 60 ms
  const int costly = 23;  // action_cls_l, 400 ms
  ASSERT_LT(zoo_->model(cheap).time_s, zoo_->model(costly).time_s);
  {
    std::vector<double> q(31, -10.0);
    q[static_cast<size_t>(cheap)] = 1.0;
    q[static_cast<size_t>(costly)] = 1.0;
    FakePredictor predictor(q);
    CostQGreedyPolicy policy(&predictor);
    policy.BeginItem(Context(0));
    core::LabelingState state(1104, 30);
    EXPECT_EQ(policy.NextModel(state, 10.0), cheap);
  }
  {
    std::vector<double> q(31, -10.0);
    q[static_cast<size_t>(cheap)] = 0.2;
    q[static_cast<size_t>(costly)] = 3.5;  // decompressed ratio flips
    FakePredictor predictor(q);
    CostQGreedyPolicy policy(&predictor);
    policy.BeginItem(Context(0));
    core::LabelingState state(1104, 30);
    EXPECT_EQ(policy.NextModel(state, 10.0), costly);
  }
}

TEST_F(PoliciesTest, CostQGreedyRespectsDeadlineFilter) {
  std::vector<double> q(31, 1.0);
  FakePredictor predictor(q);
  CostQGreedyPolicy policy(&predictor);
  const int item = 3;
  policy.BeginItem(Context(item));
  core::LabelingState state(1104, 30);
  const double budget = 0.12;
  const int m = policy.NextModel(state, budget);
  ASSERT_GE(m, 0);
  EXPECT_LE(oracle_->ExecutionTime(item, m), budget);
}

TEST_F(PoliciesTest, RuleEngineScalesTaskWeightsOncePerItem) {
  RuleBasedPolicy policy(DefaultRules(), 11);
  policy.BeginItem(Context(0));
  const int person_label =
      zoo_->labels().LabelId(zoo::TaskKind::kObjectDetection,
                             zoo::LabelSpace::kObjectPerson);
  // Fire the person rules twice; counts must only increase once per item.
  policy.OnExecuted(0, {{person_label, 0.9}});
  policy.OnExecuted(1, {{person_label, 0.95}});
  int person_rule_fires = 0;
  for (size_t r = 0; r < policy.rules().size(); ++r) {
    if (policy.rules()[r].trigger == ExecutionRule::Trigger::kObjectPerson) {
      person_rule_fires += policy.rule_fire_counts()[r];
    }
  }
  EXPECT_EQ(person_rule_fires, 3)  // three person rules, each fired once
      << "each rule fires at most once per item";
  // New item resets the per-item gate.
  policy.BeginItem(Context(1));
  policy.OnExecuted(0, {{person_label, 0.9}});
  person_rule_fires = 0;
  for (size_t r = 0; r < policy.rules().size(); ++r) {
    if (policy.rules()[r].trigger == ExecutionRule::Trigger::kObjectPerson) {
      person_rule_fires += policy.rule_fire_counts()[r];
    }
  }
  EXPECT_EQ(person_rule_fires, 6);
}

TEST_F(PoliciesTest, DefaultRulesMatchTableII) {
  const auto rules = DefaultRules();
  EXPECT_EQ(rules.size(), 10u);
  int boosts = 0, suppressions = 0;
  for (const auto& rule : rules) {
    if (rule.factor > 1.0) ++boosts;
    if (rule.factor < 1.0) ++suppressions;
  }
  EXPECT_EQ(boosts, 8);
  EXPECT_EQ(suppressions, 2);
}

}  // namespace
}  // namespace ams::sched
