// Tests of the evaluation harness: recall curves, deadline sweeps, the agent
// cache and the world fixture.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/agent_cache.h"
#include "eval/deadline_sweep.h"
#include "eval/memory_sweep.h"
#include "eval/recall_curve.h"
#include "eval/world.h"
#include "sched/basic_policies.h"

namespace ams::eval {
namespace {

class EvalHarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), 100, 51));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static std::vector<int> Items() {
    return std::vector<int>(dataset_->test_indices().begin(),
                            dataset_->test_indices().begin() + 50);
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* EvalHarnessTest::zoo_ = nullptr;
data::Dataset* EvalHarnessTest::dataset_ = nullptr;
data::Oracle* EvalHarnessTest::oracle_ = nullptr;

TEST_F(EvalHarnessTest, RecallCurveIsMonotoneInThreshold) {
  const RecallCurve curve = ComputeRecallCurve(
      [] { return std::make_unique<sched::RandomPolicy>(1); }, *oracle_,
      Items(), DefaultThresholds());
  EXPECT_EQ(curve.policy_name, "random");
  ASSERT_EQ(curve.avg_models.size(), 10u);
  for (size_t k = 1; k < curve.thresholds.size(); ++k) {
    EXPECT_GE(curve.avg_models[k], curve.avg_models[k - 1] - 1e-9);
    EXPECT_GE(curve.avg_time_s[k], curve.avg_time_s[k - 1] - 1e-9);
  }
  EXPECT_LE(curve.avg_models.back(), 30.0);
}

TEST_F(EvalHarnessTest, OptimalCurveDominatesRandom) {
  const auto items = Items();
  const RecallCurve random = ComputeRecallCurve(
      [] { return std::make_unique<sched::RandomPolicy>(1); }, *oracle_, items,
      DefaultThresholds());
  const RecallCurve optimal = ComputeRecallCurve(
      [] { return std::make_unique<sched::OptimalPolicy>(); }, *oracle_, items,
      DefaultThresholds());
  for (size_t k = 0; k < random.thresholds.size(); ++k) {
    EXPECT_LE(optimal.avg_models[k], random.avg_models[k] + 1e-9);
    EXPECT_LE(optimal.avg_time_s[k], random.avg_time_s[k] + 1e-9);
  }
}

TEST_F(EvalHarnessTest, FullRecallCostsMatchSingleThreadedRuns) {
  // The multi-threaded harness must agree with a direct single-threaded
  // computation (deterministic policies).
  const auto items = Items();
  const FullRecallCosts costs = ComputeFullRecallCosts(
      [] { return std::make_unique<sched::OptimalPolicy>(); }, *oracle_, items,
      1.0, /*num_threads=*/4);
  const FullRecallCosts costs_single = ComputeFullRecallCosts(
      [] { return std::make_unique<sched::OptimalPolicy>(); }, *oracle_, items,
      1.0, /*num_threads=*/1);
  ASSERT_EQ(costs.time_s.size(), costs_single.time_s.size());
  for (size_t i = 0; i < costs.time_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(costs.time_s[i], costs_single.time_s[i]);
    EXPECT_DOUBLE_EQ(costs.models[i], costs_single.models[i]);
  }
}

TEST_F(EvalHarnessTest, DeadlineSweepRecallIsMonotoneInDeadline) {
  // Deterministic policy: recall must be (near-)monotone in the budget. The
  // random policy reshuffles per run, so it only gets a loose noise bound.
  const DeadlineSweep optimal = ComputeDeadlineSweep(
      [] { return std::make_unique<sched::OptimalPolicy>(); }, *oracle_,
      Items(), DefaultDeadlines());
  const DeadlineSweep random = ComputeDeadlineSweep(
      [] { return std::make_unique<sched::RandomPolicy>(2); }, *oracle_,
      Items(), DefaultDeadlines());
  for (size_t k = 1; k < optimal.deadlines_s.size(); ++k) {
    EXPECT_GE(optimal.avg_recall[k], optimal.avg_recall[k - 1] - 1e-9);
    EXPECT_GE(random.avg_recall[k], random.avg_recall[k - 1] - 0.1);
  }
  EXPECT_GE(random.avg_recall.front(), 0.0);
  EXPECT_LE(random.avg_recall.back(), 1.0 + 1e-9);
}

TEST_F(EvalHarnessTest, OptimalStarSweepDominatesPolicies) {
  const auto items = Items();
  const auto deadlines = DefaultDeadlines();
  const DeadlineSweep star = ComputeOptimalStarSweep(*oracle_, items, deadlines);
  const DeadlineSweep random = ComputeDeadlineSweep(
      [] { return std::make_unique<sched::RandomPolicy>(2); }, *oracle_, items,
      deadlines);
  for (size_t k = 0; k < deadlines.size(); ++k) {
    EXPECT_GE(star.avg_recall[k] + 1e-9, random.avg_recall[k]);
  }
}

TEST_F(EvalHarnessTest, MemorySweepBasicContract) {
  const MemorySweep sweep = ComputeMemorySweep(
      nullptr, *oracle_, Items(), 8192.0, DefaultMemoryDeadlines(), 5);
  EXPECT_EQ(sweep.policy_name, "random");
  for (double r : sweep.avg_recall) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST_F(EvalHarnessTest, WorldConfigReadsEnvironment) {
  ::setenv("AMS_ITEMS", "222", 1);
  ::setenv("AMS_EPISODES", "33", 1);
  ::setenv("AMS_HIDDEN", "44", 1);
  ::setenv("AMS_EVAL_ITEMS", "55", 1);
  const WorldConfig config = WorldConfig::FromEnv();
  EXPECT_EQ(config.items_per_dataset, 222);
  EXPECT_EQ(config.train_episodes, 33);
  EXPECT_EQ(config.hidden_dim, 44);
  EXPECT_EQ(config.eval_items, 55);
  ::unsetenv("AMS_ITEMS");
  ::unsetenv("AMS_EPISODES");
  ::unsetenv("AMS_HIDDEN");
  ::unsetenv("AMS_EVAL_ITEMS");
}

TEST_F(EvalHarnessTest, AgentCacheTrainsOnceThenLoadsIdentically) {
  AgentCache cache(::testing::TempDir() + "/ams_agent_cache");
  AgentRequest request;
  request.key = "test_agent";
  request.oracle = oracle_;
  request.config.episodes = 30;
  request.config.hidden_dim = 16;
  request.config.min_replay = 50;
  std::unique_ptr<rl::Agent> first = cache.GetOrTrain(request);
  ASSERT_NE(first, nullptr);
  std::unique_ptr<rl::Agent> second = cache.GetOrTrain(request);
  ASSERT_NE(second, nullptr);
  std::vector<float> state(1104, 0.0f);
  state[10] = 1.0f;
  const auto q1 = first->PredictValues(state);
  const auto q2 = second->PredictValues(state);
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_FLOAT_EQ(q1[i], q2[i]) << "cache must reload the same weights";
  }
}

TEST_F(EvalHarnessTest, AgentCacheBatchTrainsAllMisses) {
  AgentCache cache(::testing::TempDir() + "/ams_agent_cache_batch");
  std::vector<AgentRequest> requests(2);
  for (int i = 0; i < 2; ++i) {
    requests[static_cast<size_t>(i)].key = "batch_" + std::to_string(i);
    requests[static_cast<size_t>(i)].oracle = oracle_;
    requests[static_cast<size_t>(i)].config.episodes = 20;
    requests[static_cast<size_t>(i)].config.hidden_dim = 16;
    requests[static_cast<size_t>(i)].config.min_replay = 50;
    requests[static_cast<size_t>(i)].config.seed = 100 + i;
  }
  const auto agents = cache.GetOrTrainAll(requests);
  ASSERT_EQ(agents.size(), 2u);
  EXPECT_NE(agents[0], nullptr);
  EXPECT_NE(agents[1], nullptr);
}

}  // namespace
}  // namespace ams::eval
