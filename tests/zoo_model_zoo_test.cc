// Unit tests of the synthetic model zoo: Table-I / Table-III cost contracts,
// deterministic inference, tier semantics and content sensitivity.

#include <gtest/gtest.h>

#include <set>

#include "zoo/model_zoo.h"

namespace ams::zoo {
namespace {

class ModelZooTest : public ::testing::Test {
 protected:
  const ModelZoo zoo_ = ModelZoo::CreateDefault();

  static LatentScene PersonScene() {
    LatentScene scene;
    scene.item_seed = 1234;
    scene.scene_id = 0;
    scene.indoor = true;
    scene.scene_clarity = 0.9;
    PersonInstance person;
    person.face_visible = true;
    person.face_quality = 0.95;
    person.emotion = 3;
    person.gender = 1;
    person.hands_visible = true;
    person.pose_visibility = 0.95;
    scene.persons.push_back(person);
    scene.action_id = 1;
    scene.action_clarity = 0.9;
    scene.objects = {0, 19};
    scene.object_visibility = {0.9, 0.8};
    return scene;
  }

  static LatentScene EmptyScene() {
    LatentScene scene;
    scene.item_seed = 4321;
    scene.scene_id = 12;  // mountain
    scene.scene_clarity = 0.8;
    return scene;
  }
};

TEST_F(ModelZooTest, Has30ModelsThreePerTask) {
  EXPECT_EQ(zoo_.num_models(), 30);
  for (int t = 0; t < kNumTasks; ++t) {
    const auto models = zoo_.ModelsForTask(static_cast<TaskKind>(t));
    ASSERT_EQ(models.size(), 3u);
    // Tiers ordered small -> large with monotone cost and accuracy.
    for (size_t i = 1; i < models.size(); ++i) {
      EXPECT_GT(zoo_.model(models[i]).time_s, zoo_.model(models[i - 1]).time_s);
      EXPECT_GT(zoo_.model(models[i]).mem_mb, zoo_.model(models[i - 1]).mem_mb);
      EXPECT_GT(zoo_.model(models[i]).accuracy,
                zoo_.model(models[i - 1]).accuracy);
    }
  }
}

TEST_F(ModelZooTest, CostsWithinTableIIIBands) {
  for (const ModelSpec& spec : zoo_.models()) {
    EXPECT_GE(spec.time_s, 0.05) << spec.name;
    EXPECT_LE(spec.time_s, 0.40) << spec.name;
    EXPECT_GE(spec.mem_mb, 500.0) << spec.name;
    EXPECT_LE(spec.mem_mb, 8000.0) << spec.name;
  }
  // "No policy" total matches the paper's 5.16 s within a small tolerance.
  EXPECT_NEAR(zoo_.TotalTimeSeconds(), 5.16, 0.1);
}

TEST_F(ModelZooTest, ExecuteIsDeterministic) {
  const LatentScene scene = PersonScene();
  for (int m = 0; m < zoo_.num_models(); ++m) {
    const auto out1 = zoo_.Execute(m, scene);
    const auto out2 = zoo_.Execute(m, scene);
    ASSERT_EQ(out1.size(), out2.size());
    for (size_t i = 0; i < out1.size(); ++i) {
      EXPECT_EQ(out1[i].label_id, out2[i].label_id);
      EXPECT_DOUBLE_EQ(out1[i].confidence, out2[i].confidence);
    }
  }
}

TEST_F(ModelZooTest, DifferentSeedsGiveDifferentConfidences) {
  LatentScene a = PersonScene();
  LatentScene b = PersonScene();
  b.item_seed = 9999;
  const int place_model = zoo_.ModelsForTask(TaskKind::kPlaceClassification)[2];
  const auto out_a = zoo_.Execute(place_model, a);
  const auto out_b = zoo_.Execute(place_model, b);
  ASSERT_FALSE(out_a.empty());
  ASSERT_FALSE(out_b.empty());
  EXPECT_NE(out_a[0].confidence, out_b[0].confidence);
}

TEST_F(ModelZooTest, OutputsStayWithinTheModelsTaskRange) {
  const LatentScene scene = PersonScene();
  const LabelSpace& labels = zoo_.labels();
  for (int m = 0; m < zoo_.num_models(); ++m) {
    for (const LabelOutput& out : zoo_.Execute(m, scene)) {
      EXPECT_EQ(labels.TaskOfLabel(out.label_id), zoo_.model(m).task)
          << zoo_.model(m).name;
      EXPECT_GT(out.confidence, 0.0);
      EXPECT_LT(out.confidence, 1.0);
    }
  }
}

TEST_F(ModelZooTest, PersonTasksSilentOnEmptyScenes) {
  const LatentScene scene = EmptyScene();
  for (const TaskKind task :
       {TaskKind::kFaceLandmark, TaskKind::kPoseEstimation,
        TaskKind::kEmotionClassification, TaskKind::kGenderClassification,
        TaskKind::kHandLandmark, TaskKind::kDogClassification}) {
    for (int m : zoo_.ModelsForTask(task)) {
      EXPECT_TRUE(zoo_.Execute(m, scene).empty())
          << zoo_.model(m).name << " hallucinated on an empty scene";
    }
  }
}

TEST_F(ModelZooTest, FalsePositivesNeverValuable) {
  // Action classifiers on person-free scenes occasionally emit spurious
  // labels; these must stay below the valuable threshold.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    LatentScene scene = EmptyScene();
    scene.item_seed = seed;
    for (int m : zoo_.ModelsForTask(TaskKind::kActionClassification)) {
      for (const LabelOutput& out : zoo_.Execute(m, scene)) {
        EXPECT_LT(out.confidence, kValuableConfidence);
      }
    }
  }
}

TEST_F(ModelZooTest, HigherTierIsValuableMoreOften) {
  int valuable[3] = {0, 0, 0};
  const auto place_models = zoo_.ModelsForTask(TaskKind::kPlaceClassification);
  for (uint64_t seed = 0; seed < 400; ++seed) {
    LatentScene scene = EmptyScene();
    scene.item_seed = seed * 31 + 7;
    scene.scene_clarity = 0.6;
    for (int tier = 0; tier < 3; ++tier) {
      for (const LabelOutput& out : zoo_.Execute(place_models[tier], scene)) {
        if (out.confidence >= kValuableConfidence &&
            zoo_.labels().OffsetInTask(out.label_id) == scene.scene_id) {
          ++valuable[tier];
        }
      }
    }
  }
  EXPECT_LT(valuable[0], valuable[1]);
  EXPECT_LT(valuable[1], valuable[2]);
}

TEST_F(ModelZooTest, SetThetaChangesSpec) {
  ModelZoo zoo = ModelZoo::CreateDefault();
  EXPECT_DOUBLE_EQ(zoo.model(5).theta, 1.0);
  zoo.SetTheta(5, 10.0);
  EXPECT_DOUBLE_EQ(zoo.model(5).theta, 10.0);
}

TEST_F(ModelZooTest, ExecutionTimeJittersAroundSpecMean) {
  const LatentScene scene = PersonScene();
  for (int m = 0; m < zoo_.num_models(); ++m) {
    const double t = zoo_.SampleExecutionTime(m, scene);
    EXPECT_GT(t, zoo_.model(m).time_s * 0.6) << zoo_.model(m).name;
    EXPECT_LT(t, zoo_.model(m).time_s * 1.6) << zoo_.model(m).name;
    EXPECT_DOUBLE_EQ(t, zoo_.SampleExecutionTime(m, scene)) << "deterministic";
  }
}

TEST_F(ModelZooTest, ModelNamesUnique) {
  std::set<std::string> names;
  for (const ModelSpec& spec : zoo_.models()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
  }
}

}  // namespace
}  // namespace ams::zoo
