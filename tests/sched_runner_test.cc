// Tests of the serial and parallel run drivers: budget enforcement,
// trajectory invariants and memory accounting.

#include <gtest/gtest.h>

#include <limits>

#include "core/predictor.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "sched/basic_policies.h"
#include "sched/parallel_runner.h"
#include "sched/serial_runner.h"

namespace ams::sched {
namespace {

// Oracle-informed predictor: returns each model's remaining true marginal
// value. Gives the parallel runner a strong signal without training.
class OraclePredictor : public core::ModelValuePredictor {
 public:
  OraclePredictor(const data::Oracle* oracle, int item)
      : oracle_(oracle), item_(item) {}
  std::vector<double> PredictValues(const std::vector<float>& state) override {
    std::vector<double> q(31, 0.0);
    for (int m = 0; m < 30; ++m) {
      double value = 0.0;
      for (const auto& out : oracle_->ValuableOutput(item_, m)) {
        if (state[static_cast<size_t>(out.label_id)] == 0.0f) {
          value += out.confidence;
        }
      }
      // Report on the same log scale as trained agents (Eq. 3).
      q[static_cast<size_t>(m)] = value > 0.0 ? std::log(value + 1.0) : -1.0;
    }
    return q;
  }
  int num_actions() const override { return 31; }

 private:
  const data::Oracle* oracle_;
  int item_;
};

class RunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 80, 17));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* RunnerTest::zoo_ = nullptr;
data::Dataset* RunnerTest::dataset_ = nullptr;
data::Oracle* RunnerTest::oracle_ = nullptr;

class SerialDeadlineTest : public RunnerTest,
                           public ::testing::WithParamInterface<double> {};

TEST_P(SerialDeadlineTest, NeverExceedsBudgetAndTrajectoryIsConsistent) {
  RandomPolicy policy(1);
  SerialRunConfig config;
  config.time_budget = GetParam();
  for (int item = 0; item < 30; ++item) {
    const SerialRunResult run = RunSerial(&policy, *oracle_, item, config);
    EXPECT_LE(run.time_used, config.time_budget + 1e-9);
    double prev_time = 0.0, prev_recall = 0.0;
    for (const auto& step : run.steps) {
      EXPECT_GT(step.time_after, prev_time);
      EXPECT_GE(step.recall_after, prev_recall - 1e-12);
      prev_time = step.time_after;
      prev_recall = step.recall_after;
    }
    EXPECT_EQ(run.models_executed, static_cast<int>(run.steps.size()));
    if (!run.steps.empty()) {
      EXPECT_NEAR(run.steps.back().time_after, run.time_used, 1e-9);
      EXPECT_NEAR(run.steps.back().recall_after, run.recall, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SerialDeadlineTest,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0));

TEST_F(RunnerTest, RecallTargetStopsEarly) {
  OptimalPolicy policy;
  SerialRunConfig config;
  config.recall_target = 0.5;
  for (int item = 0; item < 30; ++item) {
    const SerialRunResult run = RunSerial(&policy, *oracle_, item, config);
    EXPECT_GE(run.recall, 0.5 - 1e-9);
    // Stopping was tight: before the last model the target was not reached.
    if (run.steps.size() >= 2) {
      EXPECT_LT(run.steps[run.steps.size() - 2].recall_after, 0.5);
    }
  }
}

TEST_F(RunnerTest, FullRecallRunRecallsEverything) {
  NoPolicy policy;
  SerialRunConfig config;
  config.recall_target = 1.0;
  const SerialRunResult run = RunSerial(&policy, *oracle_, 0, config);
  EXPECT_NEAR(run.recall, 1.0, 1e-9);
  EXPECT_NEAR(run.value, oracle_->TrueTotalValue(0), 1e-9);
}

class ParallelMemoryTest
    : public RunnerTest,
      public ::testing::WithParamInterface<std::pair<double, double>> {};

TEST_P(ParallelMemoryTest, RespectsMemoryAndDeadline) {
  const auto [mem_gb, deadline] = GetParam();
  ParallelRunConfig config;
  config.mem_budget_mb = mem_gb * 1024.0;
  config.time_budget = deadline;
  for (int item = 0; item < 20; ++item) {
    OraclePredictor predictor(oracle_, item);
    for (const auto kind :
         {ParallelPolicyKind::kAlgorithm2, ParallelPolicyKind::kRandom}) {
      const ParallelRunResult run = RunParallel(
          kind, kind == ParallelPolicyKind::kAlgorithm2 ? &predictor : nullptr,
          *oracle_, item, config);
      EXPECT_LE(run.peak_mem_mb, config.mem_budget_mb + 1e-6);
      EXPECT_LE(run.makespan, config.time_budget + 1e-9);
      // Independently re-check memory from the recorded intervals.
      for (const auto& a : run.steps) {
        double concurrent = 0.0;
        for (const auto& b : run.steps) {
          if (b.start <= a.start && a.start < b.finish) {
            concurrent += oracle_->zoo().model(b.model).mem_mb;
          }
        }
        EXPECT_LE(concurrent, config.mem_budget_mb + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ParallelMemoryTest,
                         ::testing::Values(std::make_pair(8.0, 0.5),
                                           std::make_pair(8.0, 1.5),
                                           std::make_pair(12.0, 1.0),
                                           std::make_pair(16.0, 2.0)));

TEST_F(RunnerTest, Algorithm2WithOracleSignalBeatsRandomOnAverage) {
  ParallelRunConfig config;
  config.mem_budget_mb = 8192.0;
  config.time_budget = 0.8;
  double alg2 = 0.0, random = 0.0;
  for (int item = 0; item < oracle_->num_items(); ++item) {
    OraclePredictor predictor(oracle_, item);
    alg2 += RunParallel(ParallelPolicyKind::kAlgorithm2, &predictor, *oracle_,
                        item, config)
                .recall;
    random += RunParallel(ParallelPolicyKind::kRandom, nullptr, *oracle_, item,
                          config)
                  .recall;
  }
  EXPECT_GT(alg2, random * 1.15)
      << "alg2=" << alg2 / oracle_->num_items()
      << " random=" << random / oracle_->num_items();
}

TEST_F(RunnerTest, ParallelStepsHaveConsistentIntervals) {
  ParallelRunConfig config;
  config.mem_budget_mb = 16384.0;
  config.time_budget = 1.0;
  OraclePredictor predictor(oracle_, 5);
  const ParallelRunResult run = RunParallel(ParallelPolicyKind::kAlgorithm2,
                                            &predictor, *oracle_, 5, config);
  for (const auto& step : run.steps) {
    EXPECT_GE(step.start, 0.0);
    EXPECT_GT(step.finish, step.start);
    EXPECT_NEAR(step.finish - step.start,
                oracle_->ExecutionTime(5, step.model), 1e-9);
  }
  EXPECT_EQ(run.models_executed, static_cast<int>(run.steps.size()));
}

}  // namespace
}  // namespace ams::sched
