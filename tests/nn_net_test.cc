// Unit tests of the dense networks: numerically checked gradients for both
// architectures, serialization round trips, and clone independence.

#include <gtest/gtest.h>

#include <sstream>

#include "nn/grad_check.h"
#include "nn/net.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ams::nn {
namespace {

Matrix RandomBatch(int rows, int cols, uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  return m;
}

struct NetCase {
  bool dueling;
  MlpConfig config;
};

class NetGradTest : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetGradTest, AnalyticGradientsMatchNumeric) {
  const NetCase& c = GetParam();
  std::unique_ptr<QValueNet> net;
  if (c.dueling) {
    net = std::make_unique<DuelingMlp>(c.config, 33);
  } else {
    net = std::make_unique<Mlp>(c.config, 33);
  }
  const Matrix x = RandomBatch(3, c.config.input_dim, 1);
  const Matrix target = RandomBatch(3, c.config.output_dim, 2);
  const GradCheckResult result = CheckGradients(net.get(), x, target);
  EXPECT_GT(result.params_checked, 0u);
  EXPECT_LT(result.max_rel_diff, 2e-2)
      << "abs diff " << result.max_abs_diff;
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, NetGradTest,
    ::testing::Values(NetCase{false, {5, {8}, 4}},
                      NetCase{false, {7, {6, 5}, 3}},
                      NetCase{false, {4, {}, 2}},  // linear model
                      NetCase{true, {5, {8}, 4}},
                      NetCase{true, {6, {7, 5}, 3}}));

TEST(MlpTest, ForwardShapesAndDeterminism) {
  MlpConfig config{10, {16}, 4};
  Mlp net(config, 7);
  const Matrix x = RandomBatch(5, 10, 3);
  Matrix q1, q2;
  net.Forward(x, &q1);
  net.Forward(x, &q2);
  ASSERT_EQ(q1.rows(), 5);
  ASSERT_EQ(q1.cols(), 4);
  for (int i = 0; i < q1.size(); ++i) {
    EXPECT_FLOAT_EQ(q1.data()[i], q2.data()[i]);
  }
}

TEST(MlpTest, Predict1MatchesBatchForward) {
  MlpConfig config{6, {8}, 3};
  Mlp net(config, 9);
  const Matrix x = RandomBatch(1, 6, 4);
  std::vector<float> row(x.Row(0), x.Row(0) + 6);
  const std::vector<float> single = net.Predict1(row);
  Matrix q;
  net.Forward(x, &q);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(single[static_cast<size_t>(j)], q.At(0, j));
}

TEST(PredictBatchTest, SetIndexListsAreBitwiseIdenticalToDenseScan) {
  // Sparse binary rows like the scheduling states: the index-list fast path
  // must be bit-for-bit the dense zero-skipping scan, per architecture.
  const MlpConfig config{24, {16}, 5};
  std::vector<std::vector<float>> rows;
  std::vector<std::vector<int>> index_lists;
  util::Rng rng(21);
  for (int r = 0; r < 6; ++r) {
    std::vector<float> row(24, 0.0f);
    std::vector<int> indices;
    for (int k = 0; k < 24; ++k) {
      if (rng.Uniform(0.0, 1.0) < 0.2) {
        row[static_cast<size_t>(k)] = 1.0f;
        indices.push_back(k);  // ascending by construction
      }
    }
    rows.push_back(std::move(row));
    index_lists.push_back(std::move(indices));  // row 0 may be all-zero
  }
  std::vector<const std::vector<float>*> row_ptrs;
  std::vector<const std::vector<int>*> index_ptrs;
  for (size_t r = 0; r < rows.size(); ++r) {
    row_ptrs.push_back(&rows[r]);
    index_ptrs.push_back(&index_lists[r]);
  }
  for (const bool dueling : {false, true}) {
    std::unique_ptr<QValueNet> net;
    if (dueling) {
      net = std::make_unique<DuelingMlp>(config, 13);
    } else {
      net = std::make_unique<Mlp>(config, 13);
    }
    Matrix dense_q, sparse_q;
    net->PredictBatch(row_ptrs, &dense_q);
    net->PredictBatch(row_ptrs, index_ptrs, &sparse_q);
    ASSERT_EQ(sparse_q.rows(), dense_q.rows());
    ASSERT_EQ(sparse_q.cols(), dense_q.cols());
    for (int i = 0; i < dense_q.size(); ++i) {
      EXPECT_EQ(sparse_q.data()[i], dense_q.data()[i])
          << "dueling=" << dueling << " flat index " << i;
    }
  }
}

TEST(DuelingTest, QDecomposesIntoValuePlusCenteredAdvantage) {
  // Property of the dueling head: mean_a Q(s, a) equals the value head
  // output, because the advantage is mean-centered.
  MlpConfig config{6, {8}, 5};
  DuelingMlp net(config, 11);
  const Matrix x = RandomBatch(4, 6, 5);
  Matrix q;
  net.Forward(x, &q);
  // Compare against an independent forward with a different batch ordering:
  // mean-centering means row means must be identical for identical inputs
  // regardless of batching.
  Matrix single_q;
  for (int b = 0; b < 4; ++b) {
    Matrix row(1, 6);
    row.CopyRowFrom(x, b, 0);
    net.Forward(row, &single_q);
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(single_q.At(0, j), q.At(b, j), 1e-5);
    }
  }
}

TEST(NetSerializationTest, SaveLoadRoundTripBothKinds) {
  for (const bool dueling : {false, true}) {
    MlpConfig config{9, {12}, 5};
    std::unique_ptr<QValueNet> original;
    if (dueling) {
      original = std::make_unique<DuelingMlp>(config, 21);
    } else {
      original = std::make_unique<Mlp>(config, 21);
    }
    std::stringstream buffer;
    util::BinaryWriter writer(&buffer);
    SaveNet(*original, dueling ? NetKind::kDueling : NetKind::kMlp, &writer);
    util::BinaryReader reader(&buffer);
    NetKind kind;
    std::unique_ptr<QValueNet> loaded = LoadNet(&reader, &kind);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(kind, dueling ? NetKind::kDueling : NetKind::kMlp);
    const Matrix x = RandomBatch(2, 9, 6);
    Matrix q1, q2;
    original->Forward(x, &q1);
    loaded->Forward(x, &q2);
    for (int i = 0; i < q1.size(); ++i) {
      EXPECT_FLOAT_EQ(q1.data()[i], q2.data()[i]);
    }
  }
}

TEST(NetSerializationTest, LoadRejectsGarbage) {
  std::stringstream buffer;
  util::BinaryWriter writer(&buffer);
  writer.WriteI32(999);  // unknown kind tag
  util::BinaryReader reader(&buffer);
  EXPECT_EQ(LoadNet(&reader, nullptr), nullptr);
}

TEST(NetTest, CloneIsDeepCopy) {
  MlpConfig config{5, {6}, 3};
  Mlp net(config, 13);
  std::unique_ptr<QValueNet> clone = net.Clone();
  const Matrix x = RandomBatch(1, 5, 7);
  Matrix q_before;
  clone->Forward(x, &q_before);
  // Mutate the original's weights; the clone must be unaffected.
  std::vector<ParamGrad> params;
  net.CollectParams(&params);
  for (auto& p : params) {
    for (size_t i = 0; i < p.size; ++i) p.param[i] += 1.0f;
  }
  Matrix q_after;
  clone->Forward(x, &q_after);
  for (int i = 0; i < q_before.size(); ++i) {
    EXPECT_FLOAT_EQ(q_before.data()[i], q_after.data()[i]);
  }
}

TEST(NetTest, CopyWeightsFromSynchronizesTargets) {
  MlpConfig config{5, {6}, 3};
  Mlp online(config, 1);
  Mlp target(config, 2);
  const Matrix x = RandomBatch(2, 5, 8);
  Matrix q_online, q_target;
  online.Forward(x, &q_online);
  target.Forward(x, &q_target);
  bool differ = false;
  for (int i = 0; i < q_online.size(); ++i) {
    if (q_online.data()[i] != q_target.data()[i]) differ = true;
  }
  EXPECT_TRUE(differ) << "differently seeded nets should differ";
  target.CopyWeightsFrom(&online);
  online.Forward(x, &q_online);
  target.Forward(x, &q_target);
  for (int i = 0; i < q_online.size(); ++i) {
    EXPECT_FLOAT_EQ(q_online.data()[i], q_target.data()[i]);
  }
}

TEST(NetTest, NumParamsMatchesArchitecture) {
  MlpConfig config{10, {16}, 4};
  Mlp net(config, 3);
  EXPECT_EQ(net.NumParams(), 10u * 16u + 16u + 16u * 4u + 4u);
  DuelingMlp dueling(config, 3);
  EXPECT_EQ(dueling.NumParams(),
            10u * 16u + 16u + (16u * 1u + 1u) + (16u * 4u + 4u));
}

}  // namespace
}  // namespace ams::nn
