// Regression lock for the cross-shard metrics merge policy: counters SUM,
// high-water gauges take the MAX. An aggregation bug here is invisible in
// single-shard runs and quietly poisons capacity planning in sharded ones —
// a 4-shard cluster reporting arena_high_water_bytes as the SUM of four
// identical high-water marks would claim 4x the scratch footprint any
// worker ever had. The audit behind this PR found Metrics::MergeFrom
// already max-merges every high-water gauge (arena_high_water_bytes,
// forward_rows_max, coalesced_rows_max, histogram max); these tests pin
// that policy down so it cannot regress silently.
//
// Gauge taxonomy, as documented in serve/metrics.h:
//   - high-water marks (arena_high_water_bytes, forward_rows_max,
//     coalesced_rows_max, LatencyHistogram::max): max-merged — "the largest
//     any shard ever saw" is the only cluster reading that means anything;
//   - instantaneous occupancy (queue_depth, in_flight): summed — cluster
//     occupancy really is the sum of per-shard occupancies.

#include <gtest/gtest.h>

#include <vector>

#include "route/aggregated_metrics.h"
#include "serve/metrics.h"

namespace ams::route {
namespace {

using serve::Metrics;

/// Four shard registries with identical phase activity — the worst case
/// for a sum-vs-max confusion, because the wrong merge is exactly 4x the
/// right one (never accidentally equal).
void FillIdentically(Metrics* metrics) {
  metrics->enqueued.store(100);
  metrics->completed.store(90);
  metrics->rejected.store(10);
  metrics->queue_depth.store(5);
  metrics->in_flight.store(3);
  // Real recording paths, not raw stores: RecordTick/RecordForward own the
  // CAS-max updates under audit here.
  metrics->RecordTick(/*tick_s=*/1e-4, /*arena_used_bytes=*/4096);
  metrics->RecordTick(/*tick_s=*/2e-4, /*arena_used_bytes=*/8192);
  metrics->RecordForward(/*forward_s=*/5e-5, /*rows=*/6);
  metrics->RecordForward(/*forward_s=*/8e-5, /*rows=*/12);
  metrics->RecordCoalescedRound(/*gathered_rows=*/16, /*unique_rows=*/9);
  metrics->queue_delay.Record(0.002);
  metrics->queue_delay.Record(0.004);
}

TEST(MetricsMergeTest, HighWaterGaugesMergeAsMaxNotSum) {
  constexpr int kShards = 4;
  std::vector<Metrics> shards(kShards);
  for (Metrics& shard : shards) FillIdentically(&shard);

  Metrics merged;
  for (const Metrics& shard : shards) merged.MergeFrom(shard);

  // Counters: per-shard activity sums across the cluster.
  EXPECT_EQ(merged.enqueued.load(), 400);
  EXPECT_EQ(merged.completed.load(), 360);
  EXPECT_EQ(merged.rejected.load(), 40);
  EXPECT_EQ(merged.forward_batches.load(), 8);
  EXPECT_EQ(merged.forward_rows.load(), 72);
  EXPECT_EQ(merged.coalesced_rounds.load(), 4);
  EXPECT_EQ(merged.coalesced_gathered_rows.load(), 64);
  EXPECT_EQ(merged.coalesced_rows.load(), 36);

  // Occupancy gauges: summed by design (cluster occupancy is additive).
  EXPECT_EQ(merged.queue_depth.load(), 20);
  EXPECT_EQ(merged.in_flight.load(), 12);

  // High-water gauges: the aggregate of four identical shards must read
  // exactly one shard's high water, not four times it.
  EXPECT_EQ(merged.arena_high_water_bytes.load(), 8192);
  EXPECT_EQ(merged.forward_rows_max.load(), 12);
  EXPECT_EQ(merged.coalesced_rows_max.load(), 9);
  EXPECT_EQ(merged.queue_delay.max(), 0.004);
  EXPECT_EQ(merged.tick_duration.max(), 2e-4);
  EXPECT_EQ(merged.forward_duration.max(), 8e-5);
}

TEST(MetricsMergeTest, MaxMergeKeepsTheLargestShardNotTheLast) {
  // Unequal shards: the max must win regardless of merge order.
  Metrics low;
  Metrics high;
  low.RecordTick(1e-4, 1000);
  low.RecordForward(1e-5, 3);
  low.RecordCoalescedRound(4, 2);
  high.RecordTick(1e-4, 9000);
  high.RecordForward(1e-5, 40);
  high.RecordCoalescedRound(50, 31);

  Metrics high_then_low;
  high_then_low.MergeFrom(high);
  high_then_low.MergeFrom(low);
  Metrics low_then_high;
  low_then_high.MergeFrom(low);
  low_then_high.MergeFrom(high);

  for (const Metrics* merged : {&high_then_low, &low_then_high}) {
    EXPECT_EQ(merged->arena_high_water_bytes.load(), 9000);
    EXPECT_EQ(merged->forward_rows_max.load(), 40);
    EXPECT_EQ(merged->coalesced_rows_max.load(), 31);
  }
}

TEST(MetricsMergeTest, AggregatedMetricsViewAppliesTheSamePolicy) {
  // The router's actual aggregation path (AggregatedMetrics::MergeInto)
  // must inherit the policy — it delegates to MergeFrom, and this pins
  // that it keeps doing so.
  constexpr int kShards = 4;
  std::vector<Metrics> shards(kShards);
  for (Metrics& shard : shards) FillIdentically(&shard);
  std::vector<const Metrics*> pointers;
  for (const Metrics& shard : shards) pointers.push_back(&shard);

  Metrics merged;
  AggregatedMetrics(pointers).MergeInto(&merged);
  EXPECT_EQ(merged.enqueued.load(), 400);
  EXPECT_EQ(merged.arena_high_water_bytes.load(), 8192);
  EXPECT_EQ(merged.forward_rows_max.load(), 12);
  EXPECT_EQ(merged.coalesced_rows_max.load(), 9);
}

}  // namespace
}  // namespace ams::route
