// Unit tests of the stream iterator over i.i.d. and chunked datasets.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/stream.h"
#include "zoo/label_space.h"

namespace ams::data {
namespace {

class DataStreamTest : public ::testing::Test {
 protected:
  const zoo::LabelSpace labels_ = zoo::LabelSpace::CreateDefault();
};

TEST_F(DataStreamTest, VisitsEachIndexExactlyOnce) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::MsCoco(), labels_, 100, 61);
  DataStream stream(&ds, ds.test_indices(), /*shuffle=*/true, /*seed=*/4);
  std::set<int> seen;
  while (!stream.Done()) {
    EXPECT_TRUE(seen.insert(stream.Next()).second);
  }
  EXPECT_EQ(seen.size(), ds.test_indices().size());
  EXPECT_TRUE(std::includes(seen.begin(), seen.end(),
                            ds.test_indices().begin(),
                            ds.test_indices().end()));
}

TEST_F(DataStreamTest, ShuffleChangesOrderButNotContent) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::MsCoco(), labels_, 80, 62);
  DataStream ordered(&ds, ds.test_indices(), false, 1);
  DataStream shuffled(&ds, ds.test_indices(), true, 1);
  std::vector<int> a, b;
  while (!ordered.Done()) a.push_back(ordered.Next());
  while (!shuffled.Done()) b.push_back(shuffled.Next());
  EXPECT_NE(a, b);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // ordered indices are sorted by construction
}

TEST_F(DataStreamTest, ChunkTrackingOnChunkedData) {
  const Dataset ds = Dataset::GenerateChunked(DatasetProfile::MirFlickr25(),
                                              labels_, 5, 10, 63);
  std::vector<int> all(static_cast<size_t>(ds.size()));
  for (int i = 0; i < ds.size(); ++i) all[static_cast<size_t>(i)] = i;
  DataStream stream(&ds, all, /*shuffle=*/false, 0);
  int last_chunk = -1;
  int transitions = 0;
  while (!stream.Done()) {
    stream.Next();
    if (stream.current_chunk() != last_chunk) {
      ++transitions;
      last_chunk = stream.current_chunk();
    }
  }
  EXPECT_EQ(transitions, 5) << "in-order streaming preserves chunk locality";
}

TEST_F(DataStreamTest, ResetRestarts) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::Voc2012(), labels_, 30, 64);
  DataStream stream(&ds, ds.train_indices(), true, 9);
  const int first = stream.Next();
  while (!stream.Done()) stream.Next();
  stream.Reset();
  EXPECT_FALSE(stream.Done());
  EXPECT_EQ(stream.Next(), first) << "same order after reset";
}

TEST_F(DataStreamTest, ExhaustionDies) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::Voc2012(), labels_, 20, 65);
  DataStream stream(&ds, {0, 1}, false, 0);
  stream.Next();
  stream.Next();
  ASSERT_TRUE(stream.Done());
  EXPECT_DEATH(stream.Next(), "exhausted");
}

}  // namespace
}  // namespace ams::data
