// Tests of the int8 quantized inference path (nn/quantized.h): layer- and
// net-level closeness to fp32, the inference-only contract, the frozen-clone
// semantics through rl::Agent, and the end-to-end A/B recall tolerance
// through LabelingService and ServerRuntime. Quantized results are held to
// tolerance, never bitwise parity — that lock belongs to the fp32 SIMD path.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/layer.h"
#include "nn/net.h"
#include "nn/quantized.h"
#include "rl/agent.h"
#include "serve/server_runtime.h"
#include "util/rng.h"

namespace ams {
namespace {

std::vector<std::vector<float>> BinaryRows(int count, int dim, int set_bits,
                                           util::Rng* rng) {
  std::vector<std::vector<float>> rows(
      static_cast<size_t>(count), std::vector<float>(static_cast<size_t>(dim), 0.0f));
  for (auto& row : rows) {
    for (const int i : rng->SampleWithoutReplacement(dim, set_bits)) {
      row[static_cast<size_t>(i)] = 1.0f;
    }
  }
  return rows;
}

TEST(QuantizedDenseLayerTest, ApproximatesFp32LayerOnBinaryInputs) {
  util::Rng rng(5);
  nn::DenseLayer layer(32, 9, &rng);
  // Binary inputs: max |x| = 1, so the input quantization is exact and the
  // only error left is the per-column int8 weight rounding (<= scale/2 per
  // weight, i.e. <= max|W[:,j]| / 254 per product).
  nn::QuantizedDenseLayer qlayer(layer.weights(), layer.bias(),
                                 /*input_maxabs=*/1.0f);
  EXPECT_EQ(qlayer.in_dim(), 32);
  EXPECT_EQ(qlayer.out_dim(), 9);

  const std::vector<std::vector<float>> rows = BinaryRows(8, 32, 5, &rng);
  std::vector<const std::vector<float>*> row_ptrs;
  for (const auto& row : rows) row_ptrs.push_back(&row);
  nn::Matrix y_fp32;
  layer.ForwardSparseRows(row_ptrs, &y_fp32);

  float max_w = 0.0f;
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 9; ++c) {
      max_w = std::max(max_w, std::fabs(layer.weights().At(r, c)));
    }
  }
  // 5 active inputs, each product off by at most scale/2 = max_w / 254.
  const float tol = 5.0f * max_w / 254.0f + 1e-6f;
  std::vector<float> y_q(9);
  for (size_t r = 0; r < rows.size(); ++r) {
    qlayer.ForwardRow(rows[r].data(), nullptr, y_q.data());
    for (int j = 0; j < 9; ++j) {
      EXPECT_NEAR(y_q[static_cast<size_t>(j)], y_fp32.At(static_cast<int>(r), j),
                  tol)
          << "row " << r << " out " << j;
    }
  }
}

TEST(QuantizedDenseLayerTest, SparseIndexHintMatchesDenseScan) {
  util::Rng rng(6);
  nn::DenseLayer layer(24, 7, &rng);
  nn::QuantizedDenseLayer qlayer(layer.weights(), layer.bias(), 1.0f);
  std::vector<float> row(24, 0.0f);
  std::vector<int> idx;
  for (const int i : rng.SampleWithoutReplacement(24, 4)) {
    row[static_cast<size_t>(i)] = 1.0f;
  }
  for (int i = 0; i < 24; ++i) {
    if (row[static_cast<size_t>(i)] != 0.0f) idx.push_back(i);
  }
  std::vector<float> dense(7), sparse(7);
  qlayer.ForwardRow(row.data(), nullptr, dense.data());
  qlayer.ForwardRow(row.data(), &idx, sparse.data());
  // Same int32 accumulation both ways: exactly equal.
  EXPECT_EQ(dense, sparse);
}

class QuantizedNetTest : public ::testing::TestWithParam<bool> {};

TEST_P(QuantizedNetTest, QuantizeTracksFp32Predictions) {
  const bool dueling = GetParam();
  nn::MlpConfig config;
  config.input_dim = 80;
  config.hidden_dims = {32};
  config.output_dim = 13;
  std::unique_ptr<nn::QValueNet> net;
  if (dueling) {
    net = std::make_unique<nn::DuelingMlp>(config, 9);
  } else {
    net = std::make_unique<nn::Mlp>(config, 9);
  }

  util::Rng rng(7);
  std::vector<std::vector<float>> calibration = BinaryRows(16, 80, 8, &rng);
  // Quantize on a clone: calibration forwards clobber cached activations.
  std::unique_ptr<nn::QValueNet> quantized =
      net->Clone()->Quantize(calibration);
  ASSERT_NE(quantized, nullptr);
  EXPECT_TRUE(quantized->IsQuantized());
  EXPECT_FALSE(net->IsQuantized());
  EXPECT_EQ(quantized->input_dim(), 80);
  EXPECT_EQ(quantized->output_dim(), 13);

  const std::vector<std::vector<float>> rows = BinaryRows(6, 80, 8, &rng);
  std::vector<const std::vector<float>*> row_ptrs;
  for (const auto& row : rows) row_ptrs.push_back(&row);
  nn::Matrix q_fp32, q_int8;
  net->PredictBatch(row_ptrs, &q_fp32);
  quantized->PredictBatch(row_ptrs, &q_int8);
  // He-init activations here are O(1); two quantized layers compound to
  // well under 0.05 absolute on every Q value.
  for (int r = 0; r < q_fp32.rows(); ++r) {
    for (int c = 0; c < q_fp32.cols(); ++c) {
      EXPECT_NEAR(q_int8.At(r, c), q_fp32.At(r, c), 0.05)
          << (dueling ? "dueling" : "mlp") << " row " << r << " col " << c;
    }
  }

  // A quantized clone of a quantized net still predicts identically.
  std::unique_ptr<nn::QValueNet> clone = quantized->Clone();
  nn::Matrix q_clone;
  clone->PredictBatch(row_ptrs, &q_clone);
  for (int r = 0; r < q_int8.rows(); ++r) {
    for (int c = 0; c < q_int8.cols(); ++c) {
      EXPECT_EQ(q_clone.At(r, c), q_int8.At(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MlpAndDueling, QuantizedNetTest, ::testing::Bool());

TEST(QuantizedAgentTest, CloneQuantizedIsFrozenAndRefusesWeightSync) {
  nn::MlpConfig config;
  config.input_dim = 40;
  config.hidden_dims = {16};
  config.output_dim = 7;
  rl::Agent agent(std::make_unique<nn::Mlp>(config, 3), nn::NetKind::kMlp);

  util::Rng rng(8);
  const std::vector<std::vector<float>> calibration = BinaryRows(8, 40, 5, &rng);
  std::unique_ptr<core::ModelValuePredictor> quantized =
      agent.CloneQuantized(calibration);
  ASSERT_NE(quantized, nullptr);
  EXPECT_EQ(quantized->num_actions(), 7);

  // Predictions exist and are finite.
  std::vector<float> state(40, 0.0f);
  state[3] = 1.0f;
  const std::vector<double> q = quantized->PredictValues(state);
  ASSERT_EQ(q.size(), 7u);
  for (const double v : q) EXPECT_TRUE(std::isfinite(v));

  // Frozen: the quantized clone refuses to sync from its source (and the
  // source refuses to sync from it), so clone pools must rebuild instead
  // of silently replacing the snapshot.
  EXPECT_FALSE(quantized->SyncWeightsFrom(&agent));
  EXPECT_FALSE(agent.SyncWeightsFrom(quantized.get()));
}

TEST(QuantizedAgentTest, DefaultPredictorHasNoQuantizedForm) {
  class FixedPredictor : public core::ModelValuePredictor {
   public:
    std::vector<double> PredictValues(const std::vector<float>&) override {
      return std::vector<double>(3, 0.0);
    }
    int num_actions() const override { return 3; }
  };
  FixedPredictor fixed;
  EXPECT_EQ(fixed.CloneQuantized({}), nullptr);
}

// --- end-to-end A/B: quantized serving stays within recall tolerance -------

class QuantizedServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static std::unique_ptr<rl::Agent> MakeAgent(uint64_t seed) {
    nn::MlpConfig config;
    config.input_dim = zoo_->labels().total_labels();
    config.hidden_dims = {64};
    config.output_dim = zoo_->num_models() + 1;
    return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                       nn::NetKind::kMlp);
  }

  static core::LabelingService BuildSession(rl::Agent* agent, int workers,
                                            bool quantized) {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(constraints)
        .WithWorkers(workers)
        .WithQuantizedInference(quantized)
        .Build();
  }

  static double MeanRecall(const std::vector<core::LabelOutcome>& outcomes) {
    double sum = 0.0;
    int counted = 0;
    for (const core::LabelOutcome& outcome : outcomes) {
      if (outcome.recall < 0.0) continue;
      sum += outcome.recall;
      ++counted;
    }
    return counted > 0 ? sum / counted : 0.0;
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* QuantizedServingTest::zoo_ = nullptr;
data::Dataset* QuantizedServingTest::dataset_ = nullptr;
data::Oracle* QuantizedServingTest::oracle_ = nullptr;

TEST_F(QuantizedServingTest, LabelingServiceRecallWithinToleranceOfFp32) {
  const int num_items = 48;
  std::unique_ptr<rl::Agent> agent = MakeAgent(7);
  std::vector<core::WorkItem> items;
  for (int i = 0; i < num_items; ++i) {
    items.push_back(core::WorkItem::Stored(i));
  }

  core::LabelingService fp32 = BuildSession(agent.get(), 1, false);
  const std::vector<core::LabelOutcome> base = fp32.SubmitBatch(items);

  core::LabelingService quantized = BuildSession(agent.get(), 1, true);
  EXPECT_TRUE(quantized.quantized_inference());
  const std::vector<core::LabelOutcome> quant = quantized.SubmitBatch(items);

  const double base_recall = MeanRecall(base);
  const double quant_recall = MeanRecall(quant);
  // Both schedules are real (non-degenerate) and the int8 path ranks
  // actions closely enough that aggregate recall stays within tolerance.
  EXPECT_GT(base_recall, 0.0);
  EXPECT_GT(quant_recall, 0.0);
  EXPECT_NEAR(quant_recall, base_recall, 0.05);
}

TEST_F(QuantizedServingTest, ServerRuntimeServesQuantizedWithinTolerance) {
  const int num_items = 48;
  std::unique_ptr<rl::Agent> agent = MakeAgent(7);
  std::vector<core::WorkItem> items;
  for (int i = 0; i < num_items; ++i) {
    items.push_back(core::WorkItem::Stored(i));
  }

  core::LabelingService fp32 = BuildSession(agent.get(), 1, false);
  const std::vector<core::LabelOutcome> base = fp32.SubmitBatch(items);

  core::LabelingService session = BuildSession(agent.get(), 2, true);
  serve::ServeOptions options;
  options.workers = 2;
  options.max_resident_per_worker = 4;
  serve::ServerRuntime runtime(&session, options);
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < num_items; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
  }
  std::vector<core::LabelOutcome> served;
  for (auto& future : futures) {
    serve::ServeResult result = future.get();
    ASSERT_EQ(result.status, serve::ServeStatus::kOk);
    served.push_back(std::move(result.outcome));
  }

  const double base_recall = MeanRecall(base);
  const double served_recall = MeanRecall(served);
  EXPECT_GT(served_recall, 0.0);
  EXPECT_NEAR(served_recall, base_recall, 0.05);
}

}  // namespace
}  // namespace ams
