// Unit and property tests of the labeling state and the submodular value
// function f (Eq. 1, Lemma 1).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/labeling_state.h"
#include "core/value.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "util/rng.h"
#include "zoo/model_zoo.h"

namespace ams::core {
namespace {

TEST(LabelingStateTest, ApplyTracksFreshValuableLabelsOnly) {
  LabelingState state(10, 3);
  const std::vector<zoo::LabelOutput> outputs = {
      {1, 0.9}, {2, 0.3} /*low conf*/, {3, 0.6}};
  const auto fresh = state.Apply(0, outputs);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].label_id, 1);
  EXPECT_EQ(fresh[1].label_id, 3);
  EXPECT_TRUE(state.label_set(1));
  EXPECT_FALSE(state.label_set(2)) << "low confidence must not set the bit";
  EXPECT_TRUE(state.label_set(3));
  EXPECT_EQ(state.num_labels_set(), 2);
  EXPECT_TRUE(state.model_executed(0));
  EXPECT_EQ(state.num_executed(), 1);

  // A second model re-emitting label 1 contributes nothing fresh.
  const auto fresh2 = state.Apply(1, {{1, 0.95}, {4, 0.7}});
  ASSERT_EQ(fresh2.size(), 1u);
  EXPECT_EQ(fresh2[0].label_id, 4);
  EXPECT_EQ(state.execution_order(), (std::vector<int>{0, 1}));
}

TEST(LabelingStateTest, FeaturesAreBinaryAndSized) {
  LabelingState state(5, 2);
  state.Apply(1, {{0, 0.8}, {4, 0.9}});
  const std::vector<float>& f = state.Features();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_FLOAT_EQ(f[0], 1.0f);
  EXPECT_FLOAT_EQ(f[1], 0.0f);
  EXPECT_FLOAT_EQ(f[4], 1.0f);
}

TEST(LabelingStateTest, SetIndicesMirrorFeaturesInAscendingOrder) {
  LabelingState state(10, 3);
  EXPECT_TRUE(state.SetIndices().empty());
  // Outputs arrive out of label order; the sparse view must stay sorted
  // (ForwardSparseRows relies on ascending accumulation for bitwise parity
  // with the dense scan).
  state.Apply(0, {{7, 0.9}, {2, 0.8}});
  EXPECT_EQ(state.SetIndices(), (std::vector<int>{2, 7}));
  state.Apply(1, {{4, 0.95}, {7, 0.99} /*dup*/, {1, 0.2} /*low conf*/});
  EXPECT_EQ(state.SetIndices(), (std::vector<int>{2, 4, 7}));
  ASSERT_EQ(state.num_labels_set(),
            static_cast<int>(state.SetIndices().size()));
  for (int label = 0; label < state.num_labels(); ++label) {
    const bool in_sparse =
        std::find(state.SetIndices().begin(), state.SetIndices().end(),
                  label) != state.SetIndices().end();
    EXPECT_EQ(in_sparse, state.label_set(label)) << "label " << label;
  }
  state.Reset();
  EXPECT_TRUE(state.SetIndices().empty());
}

TEST(LabelingStateTest, ResetClearsEverything) {
  LabelingState state(5, 2);
  state.Apply(0, {{2, 0.9}});
  state.Reset();
  EXPECT_EQ(state.num_executed(), 0);
  EXPECT_EQ(state.num_labels_set(), 0);
  EXPECT_FALSE(state.model_executed(0));
  EXPECT_FALSE(state.label_set(2));
  // After reset the same model may run again (fresh item).
  state.Apply(0, {{2, 0.9}});
  EXPECT_TRUE(state.label_set(2));
}

TEST(LabelingStateTest, DoubleExecutionDies) {
  LabelingState state(5, 2);
  state.Apply(0, {});
  EXPECT_DEATH(state.Apply(0, {}), "executed twice");
}

class ValueAccumulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 60, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* ValueAccumulatorTest::zoo_ = nullptr;
data::Dataset* ValueAccumulatorTest::dataset_ = nullptr;
data::Oracle* ValueAccumulatorTest::oracle_ = nullptr;

TEST_F(ValueAccumulatorTest, MarginalGainEqualsRealizedGain) {
  util::Rng rng(4);
  for (int item = 0; item < 30; ++item) {
    ValueAccumulator acc(oracle_, item);
    std::vector<int> order(30);
    for (int m = 0; m < 30; ++m) order[static_cast<size_t>(m)] = m;
    rng.Shuffle(&order);
    double running = 0.0;
    for (int m : order) {
      const double predicted = acc.MarginalGain(m);
      const double realized = acc.AddModel(m);
      EXPECT_NEAR(predicted, realized, 1e-12);
      running += realized;
      EXPECT_NEAR(acc.Value(), running, 1e-9);
      EXPECT_GE(realized, 0.0) << "f is monotone";
    }
    // Executing everything recalls everything.
    EXPECT_NEAR(acc.Value(), oracle_->TrueTotalValue(item), 1e-9);
    EXPECT_NEAR(acc.Recall(), 1.0, 1e-12);
  }
}

class SubmodularityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubmodularityTest, DiminishingReturnsHold) {
  // Lemma 1: for S subset of T and m not in T,
  //   f(S + m) - f(S) >= f(T + m) - f(T).
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::MsCoco(), zoo.labels(), 20, GetParam());
  const data::Oracle oracle(&zoo, &dataset);
  util::Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    const int item = rng.UniformInt(0, oracle.num_items() - 1);
    // Random S subset T subset M \ {m}.
    const int m = rng.UniformInt(0, 29);
    std::vector<int> others;
    for (int i = 0; i < 30; ++i) {
      if (i != m) others.push_back(i);
    }
    rng.Shuffle(&others);
    const int t_size = rng.UniformInt(0, 29);
    const int s_size = rng.UniformInt(0, t_size);
    ValueAccumulator acc_s(&oracle, item);
    ValueAccumulator acc_t(&oracle, item);
    for (int i = 0; i < t_size; ++i) {
      acc_t.AddModel(others[static_cast<size_t>(i)]);
      if (i < s_size) acc_s.AddModel(others[static_cast<size_t>(i)]);
    }
    EXPECT_GE(acc_s.MarginalGain(m), acc_t.MarginalGain(m) - 1e-12)
        << "item " << item << " model " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubmodularityTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST_F(ValueAccumulatorTest, RecallBoundsAndEmptyItems) {
  for (int item = 0; item < oracle_->num_items(); ++item) {
    ValueAccumulator acc(oracle_, item);
    EXPECT_GE(acc.Recall(), 0.0);
    if (oracle_->TrueTotalValue(item) == 0.0) {
      EXPECT_DOUBLE_EQ(acc.Recall(), 1.0) << "vacuous recall for empty items";
    } else {
      EXPECT_DOUBLE_EQ(acc.Recall(), 0.0);
    }
  }
}

}  // namespace
}  // namespace ams::core
