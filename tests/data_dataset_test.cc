// Unit tests of the dataset generator: determinism, split contract, profile
// differentiation and the semantic correlations the DRL agent learns from.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/scene_sampler.h"
#include "zoo/label_space.h"

namespace ams::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  const zoo::LabelSpace labels_ = zoo::LabelSpace::CreateDefault();
};

TEST_F(DatasetTest, GenerationIsDeterministic) {
  const Dataset a = Dataset::Generate(DatasetProfile::MsCoco(), labels_, 50, 9);
  const Dataset b = Dataset::Generate(DatasetProfile::MsCoco(), labels_, 50, 9);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.item(i).scene.scene_id, b.item(i).scene.scene_id);
    EXPECT_EQ(a.item(i).scene.persons.size(), b.item(i).scene.persons.size());
    EXPECT_EQ(a.item(i).scene.objects, b.item(i).scene.objects);
    EXPECT_EQ(a.item(i).scene.item_seed, b.item(i).scene.item_seed);
  }
}

TEST_F(DatasetTest, DifferentSeedsProduceDifferentContent) {
  const Dataset a = Dataset::Generate(DatasetProfile::MsCoco(), labels_, 50, 1);
  const Dataset b = Dataset::Generate(DatasetProfile::MsCoco(), labels_, 50, 2);
  int same_scene = 0;
  for (int i = 0; i < a.size(); ++i) {
    if (a.item(i).scene.scene_id == b.item(i).scene.scene_id) ++same_scene;
  }
  EXPECT_LT(same_scene, 25);
}

TEST_F(DatasetTest, SplitIsOneToFourDisjointAndComplete) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::Places365(), labels_, 500, 3);
  const auto& train = ds.train_indices();
  const auto& test = ds.test_indices();
  EXPECT_EQ(train.size(), 100u);  // 20% = 1:4 train:test (SVI-A)
  EXPECT_EQ(test.size(), 400u);
  std::set<int> all(train.begin(), train.end());
  for (int t : test) EXPECT_TRUE(all.insert(t).second) << "overlap at " << t;
  EXPECT_EQ(all.size(), 500u);
}

TEST_F(DatasetTest, ProfilesShapeContentDistributions) {
  const int n = 800;
  auto person_rate = [&](const DatasetProfile& profile) {
    const Dataset ds = Dataset::Generate(profile, labels_, n, 5);
    int persons = 0;
    for (int i = 0; i < ds.size(); ++i) {
      if (ds.item(i).scene.has_person()) ++persons;
    }
    return static_cast<double>(persons) / n;
  };
  const double stanford = person_rate(DatasetProfile::Stanford40());
  const double places = person_rate(DatasetProfile::Places365());
  const double flickr = person_rate(DatasetProfile::MirFlickr25());
  EXPECT_GT(stanford, 0.9);  // action corpus: people everywhere
  EXPECT_LT(places, 0.45);   // scene corpus: people sparse
  EXPECT_GT(flickr, places);
}

TEST_F(DatasetTest, DogsOnlyProfileIsDegenerate) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::DogsOnly(), labels_, 300, 5);
  int dogs = 0, persons = 0;
  for (int i = 0; i < ds.size(); ++i) {
    if (ds.item(i).scene.has_dog) ++dogs;
    if (ds.item(i).scene.has_person()) ++persons;
  }
  // p_dog = 1 is damped to 0.6 for indoor scenes by the sampler, so the
  // realized rate is ~0.9 with the profile's 25% indoor bias.
  EXPECT_GT(dogs, 255);
  EXPECT_LT(persons, 30);
}

TEST_F(DatasetTest, PersonImpliesPersonObjectCategory) {
  const Dataset ds =
      Dataset::Generate(DatasetProfile::Stanford40(), labels_, 300, 5);
  for (int i = 0; i < ds.size(); ++i) {
    const auto& scene = ds.item(i).scene;
    if (!scene.has_person()) continue;
    EXPECT_NE(std::find(scene.objects.begin(), scene.objects.end(),
                        zoo::LabelSpace::kObjectPerson),
              scene.objects.end())
        << "item " << i;
    ASSERT_EQ(scene.objects.size(), scene.object_visibility.size());
  }
}

TEST_F(DatasetTest, SceneObjectCorrelationExists) {
  // Items should mostly carry their scene's preferred objects — this is the
  // correlation the DRL agent mines (place label -> object expectations).
  const DatasetProfile profile = DatasetProfile::MsCoco();
  SceneSampler sampler(profile, &labels_);
  const Dataset ds = Dataset::Generate(profile, labels_, 600, 5);
  int preferred_hits = 0, non_person_objects = 0;
  for (int i = 0; i < ds.size(); ++i) {
    const auto& scene = ds.item(i).scene;
    const auto& preferred = sampler.PreferredObjects(scene.scene_id);
    for (int obj : scene.objects) {
      if (obj == zoo::LabelSpace::kObjectPerson ||
          obj == zoo::LabelSpace::kObjectDog) {
        continue;
      }
      ++non_person_objects;
      if (std::find(preferred.begin(), preferred.end(), obj) !=
          preferred.end()) {
        ++preferred_hits;
      }
    }
  }
  ASSERT_GT(non_person_objects, 100);
  EXPECT_GT(static_cast<double>(preferred_hits) / non_person_objects, 0.5);
}

TEST_F(DatasetTest, ChunkedDatasetHasCorrelatedChunks) {
  const Dataset ds = Dataset::GenerateChunked(DatasetProfile::MirFlickr25(),
                                              labels_, 10, 20, 5);
  EXPECT_TRUE(ds.chunked());
  EXPECT_EQ(ds.num_chunks(), 10);
  EXPECT_EQ(ds.size(), 200);
  for (int i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.item(i).chunk_id, i / 20);
  }
  // Frames of one chunk share the base scene category; item seeds differ.
  for (int c = 0; c < 10; ++c) {
    const auto& first = ds.item(c * 20).scene;
    std::set<uint64_t> seeds;
    for (int f = 0; f < 20; ++f) {
      const auto& frame = ds.item(c * 20 + f).scene;
      EXPECT_EQ(frame.scene_id, first.scene_id);
      EXPECT_EQ(frame.has_dog, first.has_dog);
      seeds.insert(frame.item_seed);
    }
    EXPECT_EQ(seeds.size(), 20u) << "frames must have distinct noise seeds";
  }
}

TEST_F(DatasetTest, SamplerVisibilitiesWithinConfiguredRange) {
  DatasetProfile profile = DatasetProfile::MsCoco();
  profile.vis_lo = 0.4;
  profile.vis_hi = 0.9;
  const Dataset ds = Dataset::Generate(profile, labels_, 200, 6);
  for (int i = 0; i < ds.size(); ++i) {
    for (const auto& person : ds.item(i).scene.persons) {
      EXPECT_GE(person.pose_visibility, 0.4);
      EXPECT_LE(person.pose_visibility, 0.9);
    }
  }
}

}  // namespace
}  // namespace ams::data
