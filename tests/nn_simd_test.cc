// Bitwise-parity locks for the dispatched SIMD kernels (nn/simd.h): every
// vectorized fp32 kernel and every op built on one must produce bit-for-bit
// the same results as the always-compiled scalar tier, across even, odd and
// sub-vector-width shapes. On machines with no vector tier the parity tests
// skip (there is nothing to compare) but the dispatch/alignment tests run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/matrix.h"
#include "nn/net.h"
#include "nn/simd.h"
#include "util/rng.h"

namespace ams::nn {
namespace {

// Restores auto dispatch after every test, whatever it forced.
class SimdParityTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ResetForcedTier(); }

  /// The vector tier to pit against scalar, or nullopt to skip.
  static bool VectorTier(simd::Tier* tier) {
    const simd::Tier best = simd::BestSupportedTier();
    if (best == simd::Tier::kScalar) return false;
    *tier = best;
    return true;
  }
};

const std::vector<int>& KernelSizes() {
  // Below, at, and straddling the 4- and 8-lane widths, plus large-ish.
  static const std::vector<int> kSizes = {1,  2,  3,  4,  5,  7,  8,  9,
                                          15, 16, 17, 31, 33, 64, 100};
  return kSizes;
}

void FillRandom(float* p, int n, util::Rng* rng) {
  for (int i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Uniform(-2.0, 2.0));
  }
}

void ExpectBitEqual(const float* a, const float* b, size_t n,
                    const std::string& what) {
  ASSERT_EQ(std::memcmp(a, b, n * sizeof(float)), 0) << what;
}

TEST_F(SimdParityTest, AxpyBitwiseMatchesScalar) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(11);
  for (const int n : KernelSizes()) {
    std::vector<float> b(n), out_s(n), out_v(n);
    FillRandom(b.data(), n, &rng);
    FillRandom(out_s.data(), n, &rng);
    out_v = out_s;
    const float v = static_cast<float>(rng.Uniform(-3.0, 3.0));
    sca.axpy(v, b.data(), out_s.data(), n);
    vec.axpy(v, b.data(), out_v.data(), n);
    ExpectBitEqual(out_s.data(), out_v.data(), out_s.size(),
                   "axpy n=" + std::to_string(n));
  }
}

TEST_F(SimdParityTest, Axpy4BitwiseMatchesScalar) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(12);
  for (const int n : KernelSizes()) {
    std::vector<float> b(n);
    FillRandom(b.data(), n, &rng);
    float v[4];
    FillRandom(v, 4, &rng);
    std::vector<std::vector<float>> s(4, std::vector<float>(n));
    for (auto& row : s) FillRandom(row.data(), n, &rng);
    std::vector<std::vector<float>> q = s;
    sca.axpy4(v[0], v[1], v[2], v[3], b.data(), s[0].data(), s[1].data(),
              s[2].data(), s[3].data(), n);
    vec.axpy4(v[0], v[1], v[2], v[3], b.data(), q[0].data(), q[1].data(),
              q[2].data(), q[3].data(), n);
    for (int r = 0; r < 4; ++r) {
      ExpectBitEqual(s[r].data(), q[r].data(), s[r].size(),
                     "axpy4 row " + std::to_string(r) +
                         " n=" + std::to_string(n));
    }
  }
}

TEST_F(SimdParityTest, AddInplaceBitwiseMatchesScalar) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(13);
  for (const int n : KernelSizes()) {
    std::vector<float> b(n), out_s(n), out_v(n);
    FillRandom(b.data(), n, &rng);
    FillRandom(out_s.data(), n, &rng);
    out_v = out_s;
    sca.add_inplace(b.data(), out_s.data(), n);
    vec.add_inplace(b.data(), out_v.data(), n);
    ExpectBitEqual(out_s.data(), out_v.data(), out_s.size(),
                   "add_inplace n=" + std::to_string(n));
  }
}

TEST_F(SimdParityTest, ReluBitwiseMatchesScalarIncludingEdgeValues) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(14);
  for (const int n : KernelSizes()) {
    std::vector<float> in(n), out_s(n), out_v(n);
    FillRandom(in.data(), n, &rng);
    // Seed the edge cases the scalar x > 0 ? x : 0 form pins down.
    if (n > 0) in[0] = -0.0f;
    if (n > 2) in[2] = 0.0f;
    if (n > 4) in[4] = std::numeric_limits<float>::quiet_NaN();
    sca.relu(in.data(), out_s.data(), n);
    vec.relu(in.data(), out_v.data(), n);
    ExpectBitEqual(out_s.data(), out_v.data(), out_s.size(),
                   "relu n=" + std::to_string(n));
    // In-place form.
    std::vector<float> inplace = in;
    vec.relu(inplace.data(), inplace.data(), n);
    ExpectBitEqual(out_s.data(), inplace.data(), out_s.size(),
                   "relu in-place n=" + std::to_string(n));
  }
}

TEST_F(SimdParityTest, Dot8BitwiseMatchesScalar) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(15);
  for (const int n : KernelSizes()) {
    std::vector<float> a(n), panel(static_cast<size_t>(n) * 8);
    FillRandom(a.data(), n, &rng);
    FillRandom(panel.data(), static_cast<int>(panel.size()), &rng);
    float acc_s[8], acc_v[8];
    FillRandom(acc_s, 8, &rng);
    std::memcpy(acc_v, acc_s, sizeof(acc_s));
    sca.dot8(a.data(), panel.data(), n, acc_s);
    vec.dot8(a.data(), panel.data(), n, acc_v);
    ExpectBitEqual(acc_s, acc_v, 8, "dot8 n=" + std::to_string(n));
  }
}

TEST_F(SimdParityTest, QaxpyAndDequantMatchScalar) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  const simd::Kernels& vec = simd::KernelsFor(tier);
  const simd::Kernels& sca = simd::KernelsFor(simd::Tier::kScalar);
  util::Rng rng(16);
  for (const int n : KernelSizes()) {
    std::vector<int8_t> w(n);
    std::vector<int32_t> acc_s(n), acc_v(n);
    for (int i = 0; i < n; ++i) {
      w[static_cast<size_t>(i)] = static_cast<int8_t>(rng.UniformInt(-127, 127));
      acc_s[static_cast<size_t>(i)] = rng.UniformInt(-100000, 100000);
    }
    acc_v = acc_s;
    const int32_t v = rng.UniformInt(-127, 127);
    sca.qaxpy(v, w.data(), acc_s.data(), n);
    vec.qaxpy(v, w.data(), acc_v.data(), n);
    ASSERT_EQ(acc_s, acc_v) << "qaxpy n=" << n;  // int math: exact

    std::vector<float> scale(n), bias(n), out_s(n), out_v(n);
    FillRandom(scale.data(), n, &rng);
    FillRandom(bias.data(), n, &rng);
    sca.dequant(acc_s.data(), scale.data(), bias.data(), out_s.data(), n);
    vec.dequant(acc_v.data(), scale.data(), bias.data(), out_v.data(), n);
    ExpectBitEqual(out_s.data(), out_v.data(), out_s.size(),
                   "dequant n=" + std::to_string(n));
  }
}

// --- op-level parity: the matrix/layer entry points under forced tiers -----

Matrix RandomMatrix(int rows, int cols, util::Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<float>(rng->Uniform(-2.0, 2.0));
    }
  }
  return m;
}

void ExpectMatrixBitEqual(const Matrix& a, const Matrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int r = 0; r < a.rows(); ++r) {
    ExpectBitEqual(a.Row(r), b.Row(r), static_cast<size_t>(a.cols()),
                   what + " row " + std::to_string(r));
  }
}

struct GemmShape {
  int m, k, n;
};

const std::vector<GemmShape>& GemmShapes() {
  // Odd/even/remainder widths around the 4-row block and 8-column panel.
  static const std::vector<GemmShape> kShapes = {
      {1, 1, 1},  {2, 3, 4},   {3, 7, 9},    {4, 8, 8},
      {5, 16, 7}, {7, 31, 33}, {16, 64, 31}, {9, 100, 24}};
  return kShapes;
}

TEST_F(SimdParityTest, GemmOpsBitwiseMatchScalarTier) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  for (const GemmShape& shape : GemmShapes()) {
    util::Rng rng(static_cast<uint64_t>(shape.m * 977 + shape.k * 31 +
                                        shape.n));
    const Matrix a = RandomMatrix(shape.m, shape.k, &rng);
    const Matrix b = RandomMatrix(shape.k, shape.n, &rng);
    // Sparse variant of a: zeros interleaved, exercising the zero-skip.
    Matrix a_sparse = a;
    for (int r = 0; r < a_sparse.rows(); ++r) {
      for (int c = 0; c < a_sparse.cols(); ++c) {
        if ((r + c) % 3 != 0) a_sparse.At(r, c) = 0.0f;
      }
    }
    const Matrix ta = RandomMatrix(shape.k, shape.m, &rng);  // for TransA
    const Matrix tb = RandomMatrix(shape.n, shape.k, &rng);  // for TransB

    Matrix out_s, out_sparse_s, out_ta_s, out_tb_s;
    simd::ForceTier(simd::Tier::kScalar);
    Gemm(a, b, &out_s);
    Gemm(a_sparse, b, &out_sparse_s);
    GemmTransA(ta, b, &out_ta_s);
    GemmTransB(a, tb, &out_tb_s);

    Matrix out_v, out_sparse_v, out_ta_v, out_tb_v;
    simd::ForceTier(tier);
    Gemm(a, b, &out_v);
    Gemm(a_sparse, b, &out_sparse_v);
    GemmTransA(ta, b, &out_ta_v);
    GemmTransB(a, tb, &out_tb_v);

    const std::string shape_str = std::to_string(shape.m) + "x" +
                                  std::to_string(shape.k) + "x" +
                                  std::to_string(shape.n);
    ExpectMatrixBitEqual(out_s, out_v, "Gemm " + shape_str);
    ExpectMatrixBitEqual(out_sparse_s, out_sparse_v,
                         "Gemm sparse " + shape_str);
    ExpectMatrixBitEqual(out_ta_s, out_ta_v, "GemmTransA " + shape_str);
    ExpectMatrixBitEqual(out_tb_s, out_tb_v, "GemmTransB " + shape_str);
  }
}

TEST_F(SimdParityTest, AddRowVectorAndReluBitwiseMatchScalarTier) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  util::Rng rng(21);
  for (const int cols : {1, 3, 8, 13, 31, 64}) {
    const Matrix base = RandomMatrix(5, cols, &rng);
    std::vector<float> bias(static_cast<size_t>(cols));
    FillRandom(bias.data(), cols, &rng);

    simd::ForceTier(simd::Tier::kScalar);
    Matrix add_s = base;
    AddRowVector(&add_s, bias);
    Matrix relu_s;
    ReluForward(base, &relu_s);

    simd::ForceTier(tier);
    Matrix add_v = base;
    AddRowVector(&add_v, bias);
    Matrix relu_v;
    ReluForward(base, &relu_v);

    ExpectMatrixBitEqual(add_s, add_v,
                         "AddRowVector cols=" + std::to_string(cols));
    ExpectMatrixBitEqual(relu_s, relu_v,
                         "ReluForward cols=" + std::to_string(cols));
  }
}

TEST_F(SimdParityTest, ForwardSparseRowsBitwiseMatchesScalarTier) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  util::Rng rng(31);
  DenseLayer layer(40, 23, &rng);
  // Sparse binary rows (the scheduling states) and one dense row.
  std::vector<std::vector<float>> rows(4, std::vector<float>(40, 0.0f));
  std::vector<std::vector<int>> idx(4);
  for (int r = 0; r < 3; ++r) {
    for (const int i : rng.SampleWithoutReplacement(40, 2 + 3 * r)) {
      rows[static_cast<size_t>(r)][static_cast<size_t>(i)] = 1.0f;
    }
    for (int i = 0; i < 40; ++i) {
      if (rows[static_cast<size_t>(r)][static_cast<size_t>(i)] != 0.0f) {
        idx[static_cast<size_t>(r)].push_back(i);
      }
    }
  }
  FillRandom(rows[3].data(), 40, &rng);
  for (int i = 0; i < 40; ++i) idx[3].push_back(i);

  std::vector<const std::vector<float>*> row_ptrs;
  std::vector<const std::vector<int>*> idx_ptrs;
  for (int r = 0; r < 4; ++r) {
    row_ptrs.push_back(&rows[static_cast<size_t>(r)]);
    idx_ptrs.push_back(&idx[static_cast<size_t>(r)]);
  }

  Matrix dense_s, sparse_s;
  simd::ForceTier(simd::Tier::kScalar);
  layer.ForwardSparseRows(row_ptrs, &dense_s);
  layer.ForwardSparseRows(row_ptrs, idx_ptrs, &sparse_s);

  Matrix dense_v, sparse_v;
  simd::ForceTier(tier);
  layer.ForwardSparseRows(row_ptrs, &dense_v);
  layer.ForwardSparseRows(row_ptrs, idx_ptrs, &sparse_v);

  ExpectMatrixBitEqual(dense_s, dense_v, "ForwardSparseRows dense-scan");
  ExpectMatrixBitEqual(sparse_s, sparse_v, "ForwardSparseRows indexed");
  // The index hint itself must be transparent, whatever the tier.
  ExpectMatrixBitEqual(dense_v, sparse_v, "indexed vs dense on vector tier");
}

TEST_F(SimdParityTest, PredictBatchBitwiseMatchesScalarTierEndToEnd) {
  simd::Tier tier;
  if (!VectorTier(&tier)) GTEST_SKIP() << "no vector tier on this machine";
  MlpConfig config;
  config.input_dim = 60;
  config.hidden_dims = {24};
  config.output_dim = 11;
  Mlp mlp(config, /*seed=*/7);
  DuelingMlp dueling(config, /*seed=*/8);

  util::Rng rng(41);
  std::vector<std::vector<float>> rows(5, std::vector<float>(60, 0.0f));
  for (auto& row : rows) {
    for (const int i : rng.SampleWithoutReplacement(60, 6)) {
      row[static_cast<size_t>(i)] = 1.0f;
    }
  }
  std::vector<const std::vector<float>*> row_ptrs;
  for (const auto& row : rows) row_ptrs.push_back(&row);

  Matrix mlp_s, duel_s;
  simd::ForceTier(simd::Tier::kScalar);
  mlp.PredictBatch(row_ptrs, &mlp_s);
  dueling.PredictBatch(row_ptrs, &duel_s);

  Matrix mlp_v, duel_v;
  simd::ForceTier(tier);
  mlp.PredictBatch(row_ptrs, &mlp_v);
  dueling.PredictBatch(row_ptrs, &duel_v);

  ExpectMatrixBitEqual(mlp_s, mlp_v, "Mlp::PredictBatch");
  ExpectMatrixBitEqual(duel_s, duel_v, "DuelingMlp::PredictBatch");
}

// --- dispatch plumbing ------------------------------------------------------

TEST(SimdDispatchTest, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(simd::TierSupported(simd::Tier::kScalar));
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  // The active tier must be one this machine supports.
  EXPECT_TRUE(simd::TierSupported(simd::ActiveTier()));
  // Exactly one architecture-specific tier can be compiled in.
  EXPECT_FALSE(simd::internal::Avx2KernelsOrNull() != nullptr &&
               simd::internal::NeonKernelsOrNull() != nullptr);
}

TEST(SimdDispatchTest, ForceTierSwitchesActiveKernels) {
  simd::ForceTier(simd::Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  EXPECT_EQ(&simd::Active(), &simd::KernelsFor(simd::Tier::kScalar));
  simd::ResetForcedTier();
  EXPECT_TRUE(simd::TierSupported(simd::ActiveTier()));
}

TEST(SimdDispatchTest, MatrixStorageIs64ByteAligned) {
  for (const int cols : {1, 7, 16, 33}) {
    Matrix m(3, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(0)) % 64, 0u)
        << "cols=" << cols;
  }
}

}  // namespace
}  // namespace ams::nn
