// End-to-end integration tests of the DRL pipeline: a trained agent must
// schedule models markedly better than the random baseline on held-out
// items — the paper's central claim (§VI-B).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/recall_curve.h"
#include "rl/trainer.h"
#include "sched/basic_policies.h"
#include "util/stats.h"
#include "zoo/model_zoo.h"

namespace ams {
namespace {

// Small but non-trivial world shared by the tests in this file.
class RlIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), /*num_items=*/500,
        /*seed=*/11));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
    oracle_ = nullptr;
    dataset_ = nullptr;
    zoo_ = nullptr;
  }

  static rl::TrainConfig SmallConfig(rl::DrlScheme scheme) {
    rl::TrainConfig config;
    config.scheme = scheme;
    config.hidden_dim = 64;
    config.episodes = 700;
    config.eps_decay_steps = 3000;
    config.min_replay = 200;
    config.seed = 5;
    return config;
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* RlIntegrationTest::zoo_ = nullptr;
data::Dataset* RlIntegrationTest::dataset_ = nullptr;
data::Oracle* RlIntegrationTest::oracle_ = nullptr;

TEST_F(RlIntegrationTest, DuelingAgentBeatsRandomOnHeldOutItems) {
  rl::AgentTrainer trainer(oracle_, SmallConfig(rl::DrlScheme::kDuelingDqn));
  rl::TrainStats stats;
  std::unique_ptr<rl::Agent> agent = trainer.Train({}, &stats);
  ASSERT_NE(agent, nullptr);
  EXPECT_GT(stats.final_avg_reward, 0.0)
      << "agent should average positive episode reward after training";

  // Evaluate on the first 150 held-out items.
  std::vector<int> items(dataset_->test_indices().begin(),
                         dataset_->test_indices().begin() + 150);
  const eval::FullRecallCosts agent_costs = eval::ComputeFullRecallCosts(
      [&] {
        // Q-greedy over a per-thread clone (nets are not thread-safe).
        struct Holder : sched::QGreedyPolicy {
          explicit Holder(std::unique_ptr<rl::Agent> a)
              : sched::QGreedyPolicy(a.get()), owned(std::move(a)) {}
          std::unique_ptr<rl::Agent> owned;
        };
        return std::make_unique<Holder>(agent->Clone());
      },
      *oracle_, items);
  const eval::FullRecallCosts random_costs = eval::ComputeFullRecallCosts(
      [] { return std::make_unique<sched::RandomPolicy>(99); }, *oracle_,
      items);

  const double agent_time = util::Mean(agent_costs.time_s);
  const double random_time = util::Mean(random_costs.time_s);
  // The paper reports ~50% savings at full scale; require a robust 15% at
  // this deliberately tiny training scale.
  EXPECT_LT(agent_time, random_time * 0.85)
      << "agent=" << agent_time << "s random=" << random_time << "s";
}

TEST_F(RlIntegrationTest, AllFourSchemesTrainToPositiveReward) {
  for (const rl::DrlScheme scheme :
       {rl::DrlScheme::kDqn, rl::DrlScheme::kDoubleDqn,
        rl::DrlScheme::kDuelingDqn, rl::DrlScheme::kDeepSarsa}) {
    rl::TrainConfig config = SmallConfig(scheme);
    config.episodes = 400;
    rl::AgentTrainer trainer(oracle_, config);
    rl::TrainStats stats;
    std::unique_ptr<rl::Agent> agent = trainer.Train({}, &stats);
    ASSERT_NE(agent, nullptr) << SchemeName(scheme);
    // At 400 episodes the policy is not converged yet; only require that
    // learning moved rewards well above the all-punishment regime.
    EXPECT_GT(stats.final_avg_reward, -3.0) << SchemeName(scheme);
    // Q values must be finite.
    std::vector<float> zero_state(
        static_cast<size_t>(agent->feature_dim()), 0.0f);
    for (double q : agent->PredictValues(zero_state)) {
      EXPECT_TRUE(std::isfinite(q)) << SchemeName(scheme);
    }
  }
}

TEST_F(RlIntegrationTest, AgentCheckpointRoundTripPreservesPredictions) {
  rl::TrainConfig config = SmallConfig(rl::DrlScheme::kDqn);
  config.episodes = 60;
  rl::AgentTrainer trainer(oracle_, config);
  std::unique_ptr<rl::Agent> agent = trainer.Train();
  const std::string path = ::testing::TempDir() + "/agent_roundtrip.agent";
  agent->Save(path);
  std::unique_ptr<rl::Agent> loaded = rl::Agent::Load(path);
  ASSERT_NE(loaded, nullptr);
  std::vector<float> state(static_cast<size_t>(agent->feature_dim()), 0.0f);
  state[3] = 1.0f;
  state[100] = 1.0f;
  const auto q1 = agent->PredictValues(state);
  const auto q2 = loaded->PredictValues(state);
  ASSERT_EQ(q1.size(), q2.size());
  for (size_t i = 0; i < q1.size(); ++i) EXPECT_FLOAT_EQ(q1[i], q2[i]);
}

}  // namespace
}  // namespace ams
