// Unit tests of the Table-I label space: sizes, id mapping and naming.

#include <gtest/gtest.h>

#include <set>

#include "zoo/label_space.h"

namespace ams::zoo {
namespace {

class LabelSpaceTest : public ::testing::Test {
 protected:
  const LabelSpace space_ = LabelSpace::CreateDefault();
};

TEST_F(LabelSpaceTest, TotalIs1104) {
  EXPECT_EQ(space_.total_labels(), kTotalLabels);
  EXPECT_EQ(space_.total_labels(), 1104);
}

TEST_F(LabelSpaceTest, TaskLabelCountsMatchTableI) {
  EXPECT_EQ(space_.task(TaskKind::kObjectDetection).num_labels, 80);
  EXPECT_EQ(space_.task(TaskKind::kPlaceClassification).num_labels, 365);
  EXPECT_EQ(space_.task(TaskKind::kFaceDetection).num_labels, 1);
  EXPECT_EQ(space_.task(TaskKind::kFaceLandmark).num_labels, 70);
  EXPECT_EQ(space_.task(TaskKind::kPoseEstimation).num_labels, 17);
  EXPECT_EQ(space_.task(TaskKind::kEmotionClassification).num_labels, 7);
  EXPECT_EQ(space_.task(TaskKind::kGenderClassification).num_labels, 2);
  EXPECT_EQ(space_.task(TaskKind::kActionClassification).num_labels, 400);
  EXPECT_EQ(space_.task(TaskKind::kHandLandmark).num_labels, 42);
  EXPECT_EQ(space_.task(TaskKind::kDogClassification).num_labels, 120);
}

TEST_F(LabelSpaceTest, RangesAreContiguousAndDisjoint) {
  int next = 0;
  for (const TaskInfo& info : space_.tasks()) {
    EXPECT_EQ(info.first_label, next);
    next += info.num_labels;
  }
  EXPECT_EQ(next, space_.total_labels());
}

class LabelMappingTest : public ::testing::TestWithParam<int> {};

TEST_P(LabelMappingTest, IdMappingRoundTrips) {
  const LabelSpace space = LabelSpace::CreateDefault();
  const TaskKind task = static_cast<TaskKind>(GetParam());
  const TaskInfo& info = space.task(task);
  for (int offset : {0, info.num_labels / 2, info.num_labels - 1}) {
    const int id = space.LabelId(task, offset);
    EXPECT_EQ(space.TaskOfLabel(id), task);
    EXPECT_EQ(space.OffsetInTask(id), offset);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, LabelMappingTest,
                         ::testing::Range(0, kNumTasks));

TEST_F(LabelSpaceTest, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (int id = 0; id < space_.total_labels(); ++id) {
    const std::string& name = space_.LabelName(id);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_EQ(space_.FindLabel("object:person"),
            space_.LabelId(TaskKind::kObjectDetection,
                           LabelSpace::kObjectPerson));
  EXPECT_EQ(space_.FindLabel("object:dog"),
            space_.LabelId(TaskKind::kObjectDetection, LabelSpace::kObjectDog));
  EXPECT_EQ(space_.FindLabel("no:such_label"), -1);
}

TEST_F(LabelSpaceTest, WellKnownOffsets) {
  EXPECT_EQ(space_.LabelName(
                space_.LabelId(TaskKind::kPoseEstimation,
                               LabelSpace::kPoseLeftWrist)),
            "pose:left_wrist");
  EXPECT_EQ(space_.LabelName(
                space_.LabelId(TaskKind::kPoseEstimation,
                               LabelSpace::kPoseRightWrist)),
            "pose:right_wrist");
  EXPECT_EQ(space_.LabelName(space_.LabelId(TaskKind::kFaceDetection, 0)),
            "face:face");
}

TEST_F(LabelSpaceTest, IndoorSceneFlagsConsistent) {
  EXPECT_TRUE(space_.IsIndoorScene(0));    // pub
  EXPECT_TRUE(space_.IsIndoorScene(3));    // bathroom
  EXPECT_FALSE(space_.IsIndoorScene(12));  // mountain
  EXPECT_FALSE(space_.IsIndoorScene(19));  // undersea
  int indoor = 0;
  const int scenes = space_.task(TaskKind::kPlaceClassification).num_labels;
  for (int s = 0; s < scenes; ++s) {
    if (space_.IsIndoorScene(s)) ++indoor;
  }
  EXPECT_GT(indoor, scenes / 3);
  EXPECT_LT(indoor, 2 * scenes / 3);
}

}  // namespace
}  // namespace ams::zoo
