// Unit tests of the bump-allocator scratch arena (util/arena.h): alignment,
// overflow chaining, and the steady-state guarantee that Reset() coalesces
// capacity so later identical cycles never allocate new blocks.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/arena.h"

namespace ams::util {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  char* a = arena.AllocArray<char>(3);
  double* d = arena.AllocArray<double>(5);
  float* f = static_cast<float*>(arena.Alloc(4 * sizeof(float), 64));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(f) % 64, 0u);
  // Writes to one span must not clobber another.
  for (int i = 0; i < 3; ++i) a[i] = 'x';
  for (int i = 0; i < 5; ++i) d[i] = 1.5;
  for (int i = 0; i < 4; ++i) f[i] = 2.5f;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a[i], 'x');
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[i], 1.5);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f[i], 2.5f);
}

TEST(ArenaTest, OverflowChainsNewBlocksAndResetCoalesces) {
  Arena arena(64);
  // Far beyond the primary block: must chain overflow blocks, not crash.
  for (int i = 0; i < 16; ++i) {
    int* span = arena.AllocArray<int>(100);
    span[0] = i;
    span[99] = -i;
  }
  EXPECT_GT(arena.block_allocs(), 1u);
  const size_t used_per_cycle = arena.used();

  // After one Reset the primary block covers the whole cycle: later
  // identical cycles reuse it with zero new blocks.
  arena.Reset();
  const size_t blocks_after_coalesce = arena.block_allocs();
  EXPECT_GE(arena.capacity(), used_per_cycle);
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 16; ++i) {
      int* span = arena.AllocArray<int>(100);
      span[0] = cycle;
    }
    arena.Reset();
  }
  EXPECT_EQ(arena.block_allocs(), blocks_after_coalesce);
}

TEST(ArenaTest, ResetRewindsUsage) {
  Arena arena(1 << 12);
  arena.AllocArray<double>(64);
  EXPECT_GE(arena.used(), 64 * sizeof(double));
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  // Storage is reusable after Reset.
  double* p = arena.AllocArray<double>(64);
  p[63] = 7.0;
  EXPECT_EQ(p[63], 7.0);
}

}  // namespace
}  // namespace ams::util
