// Tests of the execution-plane seams: batched vs scalar Q-prediction
// (bitwise parity on rl::Agent and identical service outcomes), lean vs
// full kernel mode (identical value/makespan/recall), the memoized replay
// context (determinism under parallel workers), and the builder validation
// of the new knobs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/decision_plane.h"
#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/deadline_sweep.h"
#include "eval/memory_sweep.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "sched/basic_policies.h"

namespace ams::core {
namespace {

std::unique_ptr<rl::Agent> MakeAgent(const zoo::ModelZoo& zoo,
                                     nn::NetKind kind, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = zoo.labels().total_labels();
  config.hidden_dims = {64};
  config.output_dim = zoo.num_models() + 1;
  std::unique_ptr<nn::QValueNet> net;
  if (kind == nn::NetKind::kDueling) {
    net = std::make_unique<nn::DuelingMlp>(config, seed);
  } else {
    net = std::make_unique<nn::Mlp>(config, seed);
  }
  return std::make_unique<rl::Agent>(std::move(net), kind);
}

// Thread-safe predictor that counts how its predictions are served; clones
// share the counters, so per-worker clones still report into one place.
class CountingPredictor : public ModelValuePredictor {
 public:
  CountingPredictor(int num_actions, std::atomic<long>* scalar_calls,
                    std::atomic<long>* batch_calls)
      : q_(static_cast<size_t>(num_actions), 1.0),
        scalar_calls_(scalar_calls),
        batch_calls_(batch_calls) {
    q_.back() = -1.0;  // END never outranks a model
  }
  std::vector<double> PredictValues(const std::vector<float>&) override {
    ++*scalar_calls_;
    return q_;
  }
  void PredictValuesBatchInto(
      const std::vector<const std::vector<float>*>& states,
      const std::vector<const std::vector<int>*>&,
      std::vector<double>* out) override {
    ++*batch_calls_;
    out->clear();
    for (size_t i = 0; i < states.size(); ++i) {
      out->insert(out->end(), q_.begin(), q_.end());
    }
  }
  int num_actions() const override { return static_cast<int>(q_.size()); }
  std::unique_ptr<ModelValuePredictor> ClonePredictor() const override {
    return std::make_unique<CountingPredictor>(*this);
  }

 private:
  std::vector<double> q_;
  std::atomic<long>* scalar_calls_;
  std::atomic<long>* batch_calls_;
};

class ExecutionPlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static std::vector<WorkItem> StoredItems(int count) {
    std::vector<WorkItem> items;
    for (int i = 0; i < count; ++i) items.push_back(WorkItem::Stored(i));
    return items;
  }

  static ScheduleConstraints ParallelConstraints() {
    ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return constraints;
  }

  // The outcome fields every kernel mode must agree on.
  static void ExpectSameOutcome(const LabelOutcome& a, const LabelOutcome& b) {
    EXPECT_EQ(a.recall, b.recall);
    EXPECT_EQ(a.schedule.value, b.schedule.value);
    EXPECT_EQ(a.schedule.makespan_s, b.schedule.makespan_s);
    EXPECT_EQ(a.schedule.peak_mem_mb, b.schedule.peak_mem_mb);
    EXPECT_EQ(a.schedule.num_executions, b.schedule.num_executions);
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* ExecutionPlaneTest::zoo_ = nullptr;
data::Dataset* ExecutionPlaneTest::dataset_ = nullptr;
data::Oracle* ExecutionPlaneTest::oracle_ = nullptr;

// --- batched prediction ----------------------------------------------------

TEST_F(ExecutionPlaneTest, AgentBatchedPredictionIsBitwiseIdentical) {
  for (nn::NetKind kind : {nn::NetKind::kMlp, nn::NetKind::kDueling}) {
    std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, kind, 7);
    // Real mid-schedule states of varying density, plus the all-zero state.
    std::vector<std::vector<float>> states;
    for (int item = 0; item < 8; ++item) {
      LabelingState state(zoo_->labels().total_labels(), zoo_->num_models());
      for (int m = 0; m < 4 * item; ++m) {
        state.Apply(m % zoo_->num_models(), oracle_->Output(item, m % 30));
      }
      states.push_back(state.Features());
    }
    std::vector<const std::vector<float>*> ptrs;
    for (const auto& s : states) ptrs.push_back(&s);

    const std::vector<std::vector<double>> batched =
        agent->PredictValuesBatch(ptrs);
    ASSERT_EQ(batched.size(), states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      const std::vector<double> scalar = agent->PredictValues(states[i]);
      ASSERT_EQ(batched[i].size(), scalar.size());
      for (size_t j = 0; j < scalar.size(); ++j) {
        // Exact equality: the batched forward must be bit-for-bit the
        // scalar forward, or batched scheduling could diverge.
        EXPECT_EQ(batched[i][j], scalar[j])
            << "kind=" << static_cast<int>(kind) << " state " << i
            << " action " << j;
      }
    }
  }
}

TEST_F(ExecutionPlaneTest, BatchedServiceMatchesScalarServiceExactly) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 11);
  const std::vector<WorkItem> items = StoredItems(40);
  std::vector<LabelOutcome> scalar, batched;
  for (bool batch : {false, true}) {
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(oracle_)
                                  .WithPredictor(agent.get())
                                  .WithMode(ExecutionMode::kParallel)
                                  .WithConstraints(ParallelConstraints())
                                  .WithBatchedPrediction(batch)
                                  .WithWorkers(2)
                                  .Build();
    (batch ? batched : scalar) = service.SubmitBatch(items);
  }
  ASSERT_EQ(scalar.size(), batched.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    ExpectSameOutcome(scalar[i], batched[i]);
    // Full mode: the exact execution sequences must match too.
    ASSERT_EQ(scalar[i].schedule.executions.size(),
              batched[i].schedule.executions.size());
    for (size_t k = 0; k < scalar[i].schedule.executions.size(); ++k) {
      EXPECT_EQ(scalar[i].schedule.executions[k].model_id,
                batched[i].schedule.executions[k].model_id);
      EXPECT_EQ(scalar[i].schedule.executions[k].finish_s,
                batched[i].schedule.executions[k].finish_s);
    }
  }
}

TEST_F(ExecutionPlaneTest, BatchedSessionsCoalesceAllPredictions) {
  std::atomic<long> scalar_calls{0}, batch_calls{0};
  CountingPredictor predictor(zoo_->num_models() + 1, &scalar_calls,
                              &batch_calls);
  LabelingService service = LabelingServiceBuilder(zoo_)
                                .WithOracle(oracle_)
                                .WithPredictor(&predictor)
                                .WithMode(ExecutionMode::kParallel)
                                .WithConstraints(ParallelConstraints())
                                .WithBatchedPrediction(true)
                                .WithWorkers(1)
                                .Build();
  service.SubmitBatch(StoredItems(24));
  EXPECT_EQ(scalar_calls.load(), 0)
      << "batched sessions must never fall back to scalar prediction";
  EXPECT_GT(batch_calls.load(), 0);
}

// --- lean kernel mode ------------------------------------------------------

TEST_F(ExecutionPlaneTest, LeanKernelMatchesFullForPredictorSessions) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 13);
  const std::vector<WorkItem> items = StoredItems(32);
  std::vector<LabelOutcome> full, lean;
  for (KernelMode mode : {KernelMode::kFull, KernelMode::kLean}) {
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(oracle_)
                                  .WithPredictor(agent.get())
                                  .WithMode(ExecutionMode::kParallel)
                                  .WithConstraints(ParallelConstraints())
                                  .WithKernelMode(mode)
                                  .WithWorkers(2)
                                  .Build();
    (mode == KernelMode::kLean ? lean : full) = service.SubmitBatch(items);
  }
  ASSERT_EQ(full.size(), lean.size());
  for (size_t i = 0; i < full.size(); ++i) {
    ExpectSameOutcome(full[i], lean[i]);
    // Lean skips materialization only.
    EXPECT_TRUE(lean[i].schedule.executions.empty());
    EXPECT_TRUE(lean[i].schedule.recalled_labels.empty());
    EXPECT_EQ(static_cast<int>(full[i].schedule.executions.size()),
              full[i].schedule.num_executions);
  }
}

TEST_F(ExecutionPlaneTest, LeanKernelMatchesFullForPolicySessions) {
  const std::vector<WorkItem> items = StoredItems(32);
  ScheduleConstraints constraints;
  constraints.time_budget_s = 0.8;
  std::vector<LabelOutcome> full, lean;
  for (KernelMode mode : {KernelMode::kFull, KernelMode::kLean}) {
    // The oracle-ordered policy exercises the lean-mode hook path: the
    // policies still receive every execution's fresh labels via OnExecuted.
    LabelingService service =
        LabelingServiceBuilder(zoo_)
            .WithOracle(oracle_)
            .WithMode(ExecutionMode::kSerial)
            .WithPolicyFactory(
                [] { return std::make_unique<sched::OptimalPolicy>(); })
            .WithConstraints(constraints)
            .WithKernelMode(mode)
            .WithWorkers(2)
            .Build();
    (mode == KernelMode::kLean ? lean : full) = service.SubmitBatch(items);
  }
  for (size_t i = 0; i < full.size(); ++i) ExpectSameOutcome(full[i], lean[i]);
}

TEST_F(ExecutionPlaneTest, DeadlineSweepLeanPathMatchesFullRecall) {
  std::vector<int> items;
  for (int i = 0; i < 24; ++i) items.push_back(i);
  const std::vector<double> deadlines = {0.25, 0.5, 1.0, 2.0};
  const auto factory = [] {
    return std::make_unique<sched::RandomPolicy>(19);
  };
  // The sweep runs on the lean kernel path internally.
  const eval::DeadlineSweep sweep = eval::ComputeDeadlineSweep(
      factory, *oracle_, items, deadlines, /*num_threads=*/2);
  // Full-path replica of the sweep's sessions.
  for (size_t d = 0; d < deadlines.size(); ++d) {
    ScheduleConstraints constraints;
    constraints.time_budget_s = deadlines[d];
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(oracle_)
                                  .WithMode(ExecutionMode::kSerial)
                                  .WithPolicyFactory(factory)
                                  .WithConstraints(constraints)
                                  .WithKernelMode(KernelMode::kFull)
                                  .WithWorkers(2)
                                  .Build();
    const std::vector<LabelOutcome> outcomes =
        service.SubmitBatch(StoredItems(static_cast<int>(items.size())));
    double sum = 0.0;
    for (const LabelOutcome& outcome : outcomes) sum += outcome.recall;
    EXPECT_EQ(sweep.avg_recall[d], sum / static_cast<double>(items.size()))
        << "deadline " << deadlines[d];
  }
}

TEST_F(ExecutionPlaneTest, MemorySweepLeanPathMatchesFullRecall) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 17);
  std::vector<int> items;
  for (int i = 0; i < 24; ++i) items.push_back(i);
  const std::vector<double> deadlines = {0.5, 1.0};
  const double mem_budget = 8000.0;
  // The sweep runs lean + batched internally.
  const eval::MemorySweep sweep =
      eval::ComputeMemorySweep(agent.get(), *oracle_, items, mem_budget,
                               deadlines, /*seed=*/3, /*num_threads=*/2);
  for (size_t d = 0; d < deadlines.size(); ++d) {
    ScheduleConstraints constraints;
    constraints.time_budget_s = deadlines[d];
    constraints.memory_budget_mb = mem_budget;
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(oracle_)
                                  .WithPredictor(agent.get())
                                  .WithMode(ExecutionMode::kParallel)
                                  .WithConstraints(constraints)
                                  .WithKernelMode(KernelMode::kFull)
                                  .WithWorkers(2)
                                  .Build();
    const std::vector<LabelOutcome> outcomes =
        service.SubmitBatch(StoredItems(static_cast<int>(items.size())));
    double sum = 0.0;
    for (const LabelOutcome& outcome : outcomes) sum += outcome.recall;
    EXPECT_EQ(sweep.avg_recall[d], sum / static_cast<double>(items.size()))
        << "deadline " << deadlines[d];
  }
}

// --- replay cache ----------------------------------------------------------

TEST_F(ExecutionPlaneTest, CachedReplayServesOracleDataByReference) {
  CachedReplayExecutionContext cached(oracle_, /*item=*/3);
  ReplayExecutionContext plain(oracle_, /*item=*/3);
  for (int m = 0; m < zoo_->num_models(); ++m) {
    EXPECT_EQ(cached.RealizedTime(m), plain.RealizedTime(m));
    EXPECT_EQ(cached.PlannedTime(m), plain.PlannedTime(m));
    // Same address as the oracle's storage: no intermediate copy.
    EXPECT_EQ(&cached.Execute(m), &oracle_->Output(3, m));
  }
}

TEST_F(ExecutionPlaneTest, CachedReplayIsDeterministicUnderConcurrentUse) {
  CachedReplayExecutionContext cached(oracle_, /*item=*/5);
  const int num_models = zoo_->num_models();
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        for (int m = 0; m < num_models; ++m) {
          const int model = (m + t) % num_models;
          if (cached.RealizedTime(model) !=
                  oracle_->ExecutionTime(5, model) ||
              &cached.Execute(model) != &oracle_->Output(5, model)) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ExecutionPlaneTest, ReplayCacheKeepsParallelBatchesDeterministic) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 23);
  const std::vector<WorkItem> items = StoredItems(40);
  auto build = [&](bool cache) {
    return LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent.get())
        .WithMode(ExecutionMode::kParallel)
        .WithConstraints(ParallelConstraints())
        .WithBatchedPrediction(true)
        .WithKernelMode(KernelMode::kLean)
        .WithReplayCache(cache)
        .WithWorkers(4)
        .Build();
  };
  LabelingService uncached = build(false);
  LabelingService cached = build(true);
  const std::vector<LabelOutcome> baseline = uncached.SubmitBatch(items);
  // Two rounds through the cached session: the second is served entirely
  // from memoized contexts and must not drift.
  for (int round = 0; round < 2; ++round) {
    const std::vector<LabelOutcome> outcomes = cached.SubmitBatch(items);
    ASSERT_EQ(outcomes.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      ExpectSameOutcome(baseline[i], outcomes[i]);
    }
  }
}

TEST_F(ExecutionPlaneTest, PooledWorkerClonesTrackLiveWeights) {
  // The session pools per-worker clones across batches; mutating the source
  // predictor between batches (training step, checkpoint reload) must still
  // be picked up, as if the clones were rebuilt per batch.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 41);
  std::unique_ptr<rl::Agent> other = MakeAgent(*zoo_, nn::NetKind::kMlp, 43);
  const std::vector<WorkItem> items = StoredItems(16);
  auto build = [&](rl::Agent* predictor) {
    return LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(predictor)
        .WithMode(ExecutionMode::kParallel)
        .WithConstraints(ParallelConstraints())
        .WithWorkers(2)
        .Build();
  };
  LabelingService service = build(agent.get());
  service.SubmitBatch(items);  // clones created with agent's initial weights
  agent->net()->CopyWeightsFrom(other->net());
  const std::vector<LabelOutcome> after = service.SubmitBatch(items);
  LabelingService fresh = build(other.get());
  const std::vector<LabelOutcome> expected = fresh.SubmitBatch(items);
  for (size_t i = 0; i < items.size(); ++i) {
    ExpectSameOutcome(expected[i], after[i]);
  }
}

// --- builder validation ----------------------------------------------------

TEST_F(ExecutionPlaneTest, BuilderRejectsBatchedPredictionWithoutPredictor) {
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithOracle(oracle_)
                   .WithMode(ExecutionMode::kSerial)
                   .WithPolicy("random")
                   .WithConstraints({/*time*/ 1.0})
                   .WithBatchedPrediction(true)
                   .Build(),
               "batched prediction");
}

TEST_F(ExecutionPlaneTest, BuilderRejectsReplayCacheWithoutOracle) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, nn::NetKind::kMlp, 29);
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithPredictor(agent.get())
                   .WithMode(ExecutionMode::kGreedy)
                   .WithReplayCache(true)
                   .Build(),
               "replay caching");
}

}  // namespace
}  // namespace ams::core
