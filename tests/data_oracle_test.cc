// Unit tests of the Oracle: stored outputs must exactly mirror live
// execution, and the derived value quantities must satisfy their defining
// identities.

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "zoo/model_zoo.h"

namespace ams::data {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new Dataset(Dataset::Generate(DatasetProfile::MsCoco(),
                                             zoo_->labels(), 120, 21));
    oracle_ = new Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static zoo::ModelZoo* zoo_;
  static Dataset* dataset_;
  static Oracle* oracle_;
};

zoo::ModelZoo* OracleTest::zoo_ = nullptr;
Dataset* OracleTest::dataset_ = nullptr;
Oracle* OracleTest::oracle_ = nullptr;

TEST_F(OracleTest, StoredOutputsMatchLiveExecution) {
  for (int item = 0; item < 20; ++item) {
    for (int m = 0; m < oracle_->num_models(); ++m) {
      const auto live = zoo_->Execute(m, dataset_->item(item).scene);
      const auto& stored = oracle_->Output(item, m);
      ASSERT_EQ(live.size(), stored.size());
      for (size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(live[i].label_id, stored[i].label_id);
        EXPECT_DOUBLE_EQ(live[i].confidence, stored[i].confidence);
      }
    }
  }
}

TEST_F(OracleTest, ValuableOutputsAreTheHighConfidenceSubset) {
  for (int item = 0; item < oracle_->num_items(); ++item) {
    for (int m = 0; m < oracle_->num_models(); ++m) {
      size_t expected = 0;
      for (const auto& out : oracle_->Output(item, m)) {
        if (out.confidence >= zoo::kValuableConfidence) ++expected;
      }
      EXPECT_EQ(oracle_->ValuableOutput(item, m).size(), expected);
      for (const auto& out : oracle_->ValuableOutput(item, m)) {
        EXPECT_GE(out.confidence, zoo::kValuableConfidence);
      }
      EXPECT_EQ(oracle_->ModelValuable(item, m), expected > 0);
    }
  }
}

TEST_F(OracleTest, SoloValueIsSumOfValuableConfidences) {
  for (int item = 0; item < 40; ++item) {
    for (int m = 0; m < oracle_->num_models(); ++m) {
      double sum = 0.0;
      for (const auto& out : oracle_->ValuableOutput(item, m)) {
        sum += out.confidence;
      }
      EXPECT_NEAR(oracle_->ModelSoloValue(item, m), sum, 1e-9);
    }
  }
}

TEST_F(OracleTest, LabelProfitIsMaxConfidenceAcrossModels) {
  for (int item = 0; item < 40; ++item) {
    // Recompute profits independently.
    std::map<int, double> best;
    for (int m = 0; m < oracle_->num_models(); ++m) {
      for (const auto& out : oracle_->ValuableOutput(item, m)) {
        best[out.label_id] = std::max(best[out.label_id], out.confidence);
      }
    }
    double total = 0.0;
    for (const auto& [label, conf] : best) {
      EXPECT_NEAR(oracle_->LabelProfit(item, label), conf, 1e-9);
      total += conf;
    }
    EXPECT_NEAR(oracle_->TrueTotalValue(item), total, 1e-9);
    EXPECT_DOUBLE_EQ(oracle_->LabelProfit(item, 1103), best.count(1103)
                                                           ? best[1103]
                                                           : 0.0);
  }
}

TEST_F(OracleTest, TimeAccountingIdentities) {
  for (int item = 0; item < oracle_->num_items(); ++item) {
    double total = 0.0, valuable = 0.0;
    for (int m = 0; m < oracle_->num_models(); ++m) {
      const double t = oracle_->ExecutionTime(item, m);
      EXPECT_GT(t, 0.0);
      total += t;
      if (oracle_->ModelValuable(item, m)) valuable += t;
    }
    EXPECT_NEAR(oracle_->TotalTime(item), total, 1e-9);
    EXPECT_NEAR(oracle_->ValuableTime(item), valuable, 1e-9);
    EXPECT_LE(oracle_->ValuableTime(item), oracle_->TotalTime(item));
  }
}

TEST_F(OracleTest, NumValuableModelsConsistent) {
  for (int item = 0; item < oracle_->num_items(); ++item) {
    int count = 0;
    for (int m = 0; m < oracle_->num_models(); ++m) {
      if (oracle_->ModelValuable(item, m)) ++count;
    }
    EXPECT_EQ(oracle_->NumValuableModels(item), count);
  }
}

TEST_F(OracleTest, TrueTotalValueBoundsSoloValues) {
  for (int item = 0; item < oracle_->num_items(); ++item) {
    double max_solo = 0.0;
    for (int m = 0; m < oracle_->num_models(); ++m) {
      max_solo = std::max(max_solo, oracle_->ModelSoloValue(item, m));
    }
    EXPECT_GE(oracle_->TrueTotalValue(item), max_solo - 1e-9);
  }
}

}  // namespace
}  // namespace ams::data
