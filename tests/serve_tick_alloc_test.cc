// Allocation-counting regression for the serving hot path: with the
// worker-affine scratch arena attached (the default for ItemStepper) and the
// kernel in lean mode, a steady-state Tick — batched Q refresh through the
// DecisionPlane, one kernel step per resident item, completion handling —
// must perform ZERO heap allocations once the first pass over the workload
// has sized every buffer. The raw-buffer Agent forward underneath carries
// the same contract and is checked on its own.
//
// The hook is a global operator new/delete replacement with a flag-gated
// counter. It is compiled out under sanitizers (they interpose allocation
// themselves); the tests skip there.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "obs/trace.h"
#include "rl/agent.h"
#include "serve/forward_coalescer.h"
#include "serve/metrics.h"
#include "util/clock.h"
#include "util/rng.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AMS_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define AMS_ALLOC_HOOKS 0
#else
#define AMS_ALLOC_HOOKS 1
#endif
#else
#define AMS_ALLOC_HOOKS 1
#endif

namespace ams::alloc_hooks {
std::atomic<bool> counting{false};
std::atomic<size_t> allocations{0};
}  // namespace ams::alloc_hooks

#if AMS_ALLOC_HOOKS

namespace {

void* CountedAlloc(std::size_t size, std::size_t align) {
  if (ams::alloc_hooks::counting.load(std::memory_order_relaxed)) {
    ams::alloc_hooks::allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  void* ptr = nullptr;
  if (align <= alignof(std::max_align_t)) {
    ptr = std::malloc(size);
  } else if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                            size) != 0) {
    ptr = nullptr;
  }
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

#endif  // AMS_ALLOC_HOOKS

namespace ams {
namespace {

/// Runs `fn` with the allocation counter armed and returns how many heap
/// allocations it performed.
template <typename Fn>
size_t CountAllocations(Fn&& fn) {
  alloc_hooks::allocations.store(0, std::memory_order_relaxed);
  alloc_hooks::counting.store(true, std::memory_order_relaxed);
  fn();
  alloc_hooks::counting.store(false, std::memory_order_relaxed);
  return alloc_hooks::allocations.load(std::memory_order_relaxed);
}

#if !AMS_ALLOC_HOOKS
#define AMS_SKIP_WITHOUT_ALLOC_HOOKS() \
  GTEST_SKIP() << "allocation hooks are disabled under sanitizers"
#else
#define AMS_SKIP_WITHOUT_ALLOC_HOOKS() (void)0
#endif

std::unique_ptr<rl::Agent> MakeAgent(int input_dim, int output_dim,
                                     nn::NetKind kind, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = input_dim;
  config.hidden_dims = {24};
  config.output_dim = output_dim;
  std::unique_ptr<nn::QValueNet> net;
  if (kind == nn::NetKind::kDueling) {
    net = std::make_unique<nn::DuelingMlp>(config, seed);
  } else {
    net = std::make_unique<nn::Mlp>(config, seed);
  }
  return std::make_unique<rl::Agent>(std::move(net), kind);
}

TEST(AgentAllocTest, PredictValuesBatchToIsAllocationFreeAfterWarmup) {
  AMS_SKIP_WITHOUT_ALLOC_HOOKS();
  constexpr int kInput = 40;
  constexpr int kOutput = 9;
  constexpr size_t kRows = 6;
  for (const nn::NetKind kind : {nn::NetKind::kMlp, nn::NetKind::kDueling}) {
    std::unique_ptr<rl::Agent> agent = MakeAgent(kInput, kOutput, kind, 11);

    util::Rng rng(3);
    std::vector<std::vector<float>> rows(kRows,
                                         std::vector<float>(kInput, 0.0f));
    std::vector<std::vector<int>> indices(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      for (const int i : rng.SampleWithoutReplacement(kInput, 5)) {
        rows[r][static_cast<size_t>(i)] = 1.0f;
        indices[r].push_back(i);
      }
    }
    std::vector<const std::vector<float>*> row_ptrs;
    std::vector<const std::vector<int>*> index_ptrs;
    for (size_t r = 0; r < kRows; ++r) {
      row_ptrs.push_back(&rows[r]);
      index_ptrs.push_back(&indices[r]);
    }
    std::vector<double> out(kRows * kOutput, 0.0);

    // Two warm-up passes size the pointer scratch and the net's activation
    // matrices; every later same-shape call must stay off the heap.
    for (int warm = 0; warm < 2; ++warm) {
      agent->PredictValuesBatchTo(row_ptrs.data(), index_ptrs.data(), kRows,
                                  out.data());
    }
    const size_t allocs = CountAllocations([&] {
      agent->PredictValuesBatchTo(row_ptrs.data(), index_ptrs.data(), kRows,
                                  out.data());
    });
    EXPECT_EQ(allocs, 0u) << "net kind " << static_cast<int>(kind);
  }
}

class TickAllocTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* TickAllocTest::zoo_ = nullptr;
data::Dataset* TickAllocTest::dataset_ = nullptr;
data::Oracle* TickAllocTest::oracle_ = nullptr;

TEST_F(TickAllocTest, SteadyStateLeanStepperTicksAreAllocationFree) {
  AMS_SKIP_WITHOUT_ALLOC_HOOKS();
  // Lean kernels reuse one scratch record per step; kFull materializes an
  // ExecutionRecord (outputs copy + fresh-label list) per execution event by
  // design, so the zero-allocation steady-state contract is lean-mode only.
  std::unique_ptr<rl::Agent> agent = MakeAgent(
      zoo_->labels().total_labels(), zoo_->num_models() + 1, nn::NetKind::kMlp,
      7);
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = 1.0;
  constraints.memory_budget_mb = 8000.0;
  core::LabelingService session =
      core::LabelingServiceBuilder(zoo_)
          .WithOracle(oracle_)
          .WithPredictor(agent.get())
          .WithMode(core::ExecutionMode::kParallel)
          .WithConstraints(constraints)
          .WithKernelMode(core::KernelMode::kLean)
          .WithWorkers(1)
          .Build();
  std::unique_ptr<core::LabelingService::ItemStepper> stepper =
      session.NewItemStepper(0);

  constexpr int kItems = 8;
  constexpr int kTickBound = 10000;
  std::vector<core::LabelingService::ItemStepper::Completion> completed;
  completed.reserve(kItems * 2);

  // Warm-up pass: runs the full workload once, sizing the arena, the plane's
  // row memo + slot buffers, the agent's batch scratch, and every kernel
  // capacity the admission path reserves.
  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "warm-up did not converge";
    stepper->Tick(&completed);
  }
  ASSERT_EQ(completed.size(), static_cast<size_t>(kItems));
  completed.clear();

  // Measured pass: identical workload. Admission allocates (new kernels and
  // replay contexts per item — that is per-item setup, not tick work); every
  // Tick must not.
  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  int measured_ticks = 0;
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "measured pass did not converge";
    const size_t allocs = CountAllocations([&] { stepper->Tick(&completed); });
    EXPECT_EQ(allocs, 0u) << "tick " << t << " touched the heap";
    ++measured_ticks;
  }
  EXPECT_EQ(completed.size(), static_cast<size_t>(kItems));
  // The contract is about steady-state work, so the workload must actually
  // tick a few times (admission skips would trivially pass).
  EXPECT_GE(measured_ticks, 3);
}

TEST_F(TickAllocTest, TracedSteadyStateTicksAreStillAllocationFree) {
  AMS_SKIP_WITHOUT_ALLOC_HOOKS();
  // The obs:: contract: with a tracer attached and enabled, every tick
  // records kTick/kForward spans into the preallocated ring — and the
  // steady-state tick still never touches the heap. ScopedSpan lives on the
  // stack, Record() writes a claimed ring slot, and TickStats is plain
  // member assignment; nothing else is allowed in the instrumented path.
  std::unique_ptr<rl::Agent> agent = MakeAgent(
      zoo_->labels().total_labels(), zoo_->num_models() + 1, nn::NetKind::kMlp,
      7);
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = 1.0;
  constraints.memory_budget_mb = 8000.0;
  core::LabelingService session =
      core::LabelingServiceBuilder(zoo_)
          .WithOracle(oracle_)
          .WithPredictor(agent.get())
          .WithMode(core::ExecutionMode::kParallel)
          .WithConstraints(constraints)
          .WithKernelMode(core::KernelMode::kLean)
          .WithWorkers(1)
          .Build();
  std::unique_ptr<core::LabelingService::ItemStepper> stepper =
      session.NewItemStepper(0);

  obs::Tracer tracer;
  obs::TraceBuffer* lane = tracer.EnsureLane(0, 0);
  stepper->AttachTracer(&tracer, lane, &util::Clock::Monotonic());

  constexpr int kItems = 8;
  constexpr int kTickBound = 10000;
  std::vector<core::LabelingService::ItemStepper::Completion> completed;
  completed.reserve(kItems * 2);

  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "warm-up did not converge";
    stepper->Tick(&completed);
  }
  ASSERT_EQ(completed.size(), static_cast<size_t>(kItems));
  completed.clear();
  const uint64_t warmup_events = lane->recorded();
  EXPECT_GT(warmup_events, 0u) << "tracing was attached but recorded nothing";

  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  int measured_ticks = 0;
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "measured pass did not converge";
    const size_t allocs = CountAllocations([&] { stepper->Tick(&completed); });
    EXPECT_EQ(allocs, 0u) << "traced tick " << t << " touched the heap";
    ++measured_ticks;
  }
  EXPECT_EQ(completed.size(), static_cast<size_t>(kItems));
  EXPECT_GE(measured_ticks, 3);
  // The measured ticks were actually traced, not silently skipped.
  EXPECT_GT(lane->recorded(), warmup_events);
  EXPECT_TRUE(stepper->last_tick_stats().traced);
}

TEST_F(TickAllocTest, CoalescedTracedSteadyStateTicksAreAllocationFree) {
  AMS_SKIP_WITHOUT_ALLOC_HOOKS();
  // Forward coalescing reroutes the stepper's Q refresh through the
  // ForwardCoalescer rendezvous (gather -> dedup -> one batched forward ->
  // scatter), with the round traced as kCoalescedForward. The steady-state
  // contract must survive the detour: after the warm-up pass has sized the
  // coalescer's arena, member list, and pending buffers, a traced coalesced
  // tick performs zero heap allocations — including the empty-round
  // rendezvous ticks where every row is served from the plane's memo.
  std::unique_ptr<rl::Agent> agent = MakeAgent(
      zoo_->labels().total_labels(), zoo_->num_models() + 1, nn::NetKind::kMlp,
      7);
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = 1.0;
  constraints.memory_budget_mb = 8000.0;
  core::LabelingService session =
      core::LabelingServiceBuilder(zoo_)
          .WithOracle(oracle_)
          .WithPredictor(agent.get())
          .WithMode(core::ExecutionMode::kParallel)
          .WithConstraints(constraints)
          .WithKernelMode(core::KernelMode::kLean)
          .WithWorkers(1)
          .Build();
  std::unique_ptr<core::LabelingService::ItemStepper> stepper =
      session.NewItemStepper(0);

  obs::Tracer tracer;
  obs::TraceBuffer* lane = tracer.EnsureLane(0, 0);
  stepper->AttachTracer(&tracer, lane, &util::Clock::Monotonic());

  serve::ForwardCoalescer::Options coalesce_options;
  coalesce_options.tracer = &tracer;
  coalesce_options.clock = &util::Clock::Monotonic();
  serve::ForwardCoalescer coalescer(coalesce_options);
  serve::Metrics metrics;
  serve::ForwardCoalescer::Handle* handle =
      coalescer.NewHandle(&metrics, /*shard_id=*/0);
  stepper->AttachForwardExecutor(handle);
  handle->Activate();

  constexpr int kItems = 8;
  constexpr int kTickBound = 10000;
  std::vector<core::LabelingService::ItemStepper::Completion> completed;
  completed.reserve(kItems * 2);

  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "warm-up did not converge";
    stepper->Tick(&completed);
  }
  ASSERT_EQ(completed.size(), static_cast<size_t>(kItems));
  completed.clear();
  // Warm-up actually exercised the coalescer — the solo handle still runs
  // real rounds (gather, dedup, forward, scatter), it just never waits.
  ASSERT_GT(coalescer.rounds(), 0u);
  ASSERT_GT(coalescer.unique_rows(), 0u);
  EXPECT_GT(metrics.coalesced_rounds.load(), 0);

  for (int i = 0; i < kItems; ++i) {
    stepper->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  int measured_ticks = 0;
  for (int t = 0; !stepper->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "measured pass did not converge";
    const size_t allocs = CountAllocations([&] { stepper->Tick(&completed); });
    EXPECT_EQ(allocs, 0u) << "coalesced tick " << t << " touched the heap";
    ++measured_ticks;
  }
  handle->Deactivate();
  EXPECT_EQ(completed.size(), static_cast<size_t>(kItems));
  EXPECT_GE(measured_ticks, 3);
  EXPECT_GT(lane->recorded(), 0u);
  EXPECT_TRUE(stepper->last_tick_stats().traced);
}

}  // namespace
}  // namespace ams
