// Tests of the optimal* relaxed bounds (§V-C): they must upper-bound every
// feasible policy and behave monotonically in the budget.

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "sched/basic_policies.h"
#include "sched/optimal_star.h"
#include "sched/parallel_runner.h"
#include "sched/serial_runner.h"

namespace ams::sched {
namespace {

class OptimalStarTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::Voc2012(), zoo_->labels(), 60, 23));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* OptimalStarTest::zoo_ = nullptr;
data::Dataset* OptimalStarTest::dataset_ = nullptr;
data::Oracle* OptimalStarTest::oracle_ = nullptr;

TEST_F(OptimalStarTest, MonotoneInBudgetAndSaturates) {
  for (int item = 0; item < 20; ++item) {
    double prev = 0.0;
    for (double budget : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double value = OptimalStarValueDeadline(*oracle_, item, budget);
      EXPECT_GE(value, prev - 1e-9);
      prev = value;
    }
    // With the whole "no policy" budget the bound recalls everything.
    const double full =
        OptimalStarValueDeadline(*oracle_, item, oracle_->TotalTime(item));
    EXPECT_NEAR(full, oracle_->TrueTotalValue(item), 1e-6);
    EXPECT_DOUBLE_EQ(OptimalStarValueDeadline(*oracle_, item, 0.0), 0.0);
  }
}

TEST_F(OptimalStarTest, DominatesRandomAndTracksOptimalClosely) {
  // SV-C: optimal* is the paper's reference upper bound. For submodular f a
  // ratio greedy with a fractional tail is not a *certified* bound (the
  // paper itself hedges with "in most cases"), so the hard assertion is
  // dominance over random per item, plus closeness to the value-ordered
  // optimal policy (>= 85% per item, >= 100% on average).
  RandomPolicy random(3);
  OptimalPolicy optimal;
  double bound_sum = 0.0, optimal_sum = 0.0;
  for (int item = 0; item < oracle_->num_items(); ++item) {
    for (double deadline : {0.3, 0.8, 1.5, 3.0}) {
      const double bound = OptimalStarValueDeadline(*oracle_, item, deadline);
      SerialRunConfig config;
      config.time_budget = deadline;
      EXPECT_GE(bound + 1e-9,
                RunSerial(&random, *oracle_, item, config).value);
      const double exact = RunSerial(&optimal, *oracle_, item, config).value;
      EXPECT_GE(bound + 1e-9, exact * 0.85)
          << "item " << item << " deadline " << deadline;
      bound_sum += bound;
      optimal_sum += exact;
    }
  }
  EXPECT_GE(bound_sum + 1e-9, optimal_sum);
}

TEST_F(OptimalStarTest, MemoryBoundDominatesParallelRuns) {
  for (int item = 0; item < 20; ++item) {
    for (double mem_gb : {8.0, 16.0}) {
      for (double deadline : {0.5, 1.0, 2.0}) {
        const double bound = OptimalStarValueDeadlineMemory(
            *oracle_, item, deadline, mem_gb * 1024.0);
        ParallelRunConfig config;
        config.time_budget = deadline;
        config.mem_budget_mb = mem_gb * 1024.0;
        const auto run = RunParallel(ParallelPolicyKind::kRandom, nullptr,
                                     *oracle_, item, config);
        // Same caveat as above: a heuristic reference, so assert near-
        // dominance per item rather than a certified bound.
        EXPECT_GE(bound + 1e-9, run.value * 0.9)
            << "item " << item << " mem " << mem_gb << " dl " << deadline;
      }
    }
  }
}

TEST_F(OptimalStarTest, MemoryBoundLooserThanOrEqualToUnlimitedMemory) {
  // With memory >= the biggest model * 30, the area constraint reduces to
  // the deadline-only bound scaled by parallelism; at minimum it must be at
  // least the serial deadline bound.
  for (int item = 0; item < 20; ++item) {
    const double serial = OptimalStarValueDeadline(*oracle_, item, 1.0);
    const double parallel =
        OptimalStarValueDeadlineMemory(*oracle_, item, 1.0, 1e9);
    EXPECT_GE(parallel + 1e-9, serial);
  }
}

}  // namespace
}  // namespace ams::sched
