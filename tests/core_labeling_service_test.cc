// Tests of the session-based LabelingService facade and the PolicyRegistry:
// builder validation, batch determinism, registry lookup, and serial vs
// parallel parity on unconstrained items.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "data/stream.h"
#include "sched/policy_registry.h"

namespace ams::core {
namespace {

// Deterministic, stateless (hence thread-safe) stand-in predictor.
class StaticPredictor : public ModelValuePredictor {
 public:
  explicit StaticPredictor(std::vector<double> q) : q_(std::move(q)) {}
  std::vector<double> PredictValues(const std::vector<float>&) override {
    return q_;
  }
  int num_actions() const override { return static_cast<int>(q_.size()); }
  std::unique_ptr<ModelValuePredictor> ClonePredictor() const override {
    return std::make_unique<StaticPredictor>(q_);
  }

 private:
  std::vector<double> q_;
};

class LabelingServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), 60, 23));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }
  static std::vector<double> UniformQ(double model_q, double end_q) {
    std::vector<double> q(31, model_q);
    q[30] = end_q;
    return q;
  }
  static std::vector<WorkItem> StoredItems(int count) {
    std::vector<WorkItem> items;
    for (int i = 0; i < count; ++i) items.push_back(WorkItem::Stored(i));
    return items;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* LabelingServiceTest::zoo_ = nullptr;
data::Dataset* LabelingServiceTest::dataset_ = nullptr;
data::Oracle* LabelingServiceTest::oracle_ = nullptr;

// --- builder validation ----------------------------------------------------

TEST_F(LabelingServiceTest, BuilderRejectsNegativeTimeBudget) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  ScheduleConstraints constraints;
  constraints.time_budget_s = -1.0;
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithPredictor(&predictor)
                   .WithMode(ExecutionMode::kSerial)
                   .WithConstraints(constraints)
                   .Build(),
               "time budget");
}

TEST_F(LabelingServiceTest, BuilderRejectsNanMemoryBudget) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  ScheduleConstraints constraints;
  constraints.memory_budget_mb = std::nan("");
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithPredictor(&predictor)
                   .WithMode(ExecutionMode::kParallel)
                   .WithConstraints(constraints)
                   .Build(),
               "memory budget");
}

TEST_F(LabelingServiceTest, ConstraintsValidateDirectly) {
  ScheduleConstraints bad;
  bad.time_budget_s = std::nan("");
  EXPECT_DEATH(bad.Validate(), "time budget");
  ScheduleConstraints good;  // infinite budgets are fine
  good.Validate();
  good.time_budget_s = 0.0;  // zero budget is allowed: schedules nothing
  good.Validate();
}

TEST_F(LabelingServiceTest, BuilderRequiresADecisionSource) {
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithMode(ExecutionMode::kSerial)
                   .Build(),
               "predictor");
}

TEST_F(LabelingServiceTest, BuilderRejectsPolicyInParallelMode) {
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithOracle(oracle_)
                   .WithMode(ExecutionMode::kParallel)
                   .WithPolicy("random")
                   .Build(),
               "predictor-driven");
}

TEST_F(LabelingServiceTest, BuilderRejectsPredictorWithWrongActionSpace) {
  StaticPredictor bad(std::vector<double>(7, 0.0));
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithPredictor(&bad)
                   .WithMode(ExecutionMode::kGreedy)
                   .Build(),
               "action space");
}

TEST_F(LabelingServiceTest, BuilderRejectsBothPredictorAndPolicy) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithPredictor(&predictor)
                   .WithPolicy("random")
                   .WithMode(ExecutionMode::kSerial)
                   .Build(),
               "not both");
}

TEST_F(LabelingServiceTest, BuilderRejectsUnknownPolicyName) {
  EXPECT_DEATH(LabelingServiceBuilder(zoo_)
                   .WithMode(ExecutionMode::kSerial)
                   .WithPolicy("no_such_policy")
                   .Build(),
               "unknown policy");
}

// --- policy registry -------------------------------------------------------

TEST_F(LabelingServiceTest, RegistryListsAllBuiltInPolicies) {
  const std::vector<std::string> names =
      sched::PolicyRegistry::Global().Names();
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* expected :
       {"random", "no_policy", "optimal", "q_greedy", "cost_q_greedy",
        "rule_based", "explore_exploit"}) {
    EXPECT_TRUE(set.count(expected)) << "missing policy: " << expected;
  }
}

TEST_F(LabelingServiceTest, RegistryCreatesPoliciesByName) {
  sched::PolicyOptions options;
  options.seed = 11;
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  options.predictor = &predictor;
  for (const char* name :
       {"random", "no_policy", "optimal", "q_greedy", "cost_q_greedy",
        "rule_based", "explore_exploit"}) {
    const auto policy = sched::PolicyRegistry::Global().Create(name, options);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST_F(LabelingServiceTest, RegistryUnknownNameReturnsNullOrDies) {
  EXPECT_EQ(sched::PolicyRegistry::Global().TryCreate("bogus", {}), nullptr);
  EXPECT_FALSE(sched::PolicyRegistry::Global().Contains("bogus"));
  EXPECT_DEATH(sched::PolicyRegistry::Global().Create("bogus", {}),
               "unknown policy");
}

TEST_F(LabelingServiceTest, RegistryRequiresPredictorForQPolicies) {
  EXPECT_DEATH(sched::PolicyRegistry::Global().Create("cost_q_greedy", {}),
               "predictor");
}

// --- scheduling through sessions -------------------------------------------

TEST_F(LabelingServiceTest, BatchSubmissionIsDeterministicUnderAFixedSeed) {
  const auto run_batch = [&] {
    sched::PolicyOptions options;
    options.seed = 77;
    ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(oracle_)
                                  .WithMode(ExecutionMode::kSerial)
                                  .WithPolicy("random", options)
                                  .WithConstraints(constraints)
                                  .WithWorkers(4)
                                  .Build();
    return service.SubmitBatch(StoredItems(40));
  };
  const std::vector<LabelOutcome> a = run_batch();
  const std::vector<LabelOutcome> b = run_batch();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].recall, b[i].recall);
    ASSERT_EQ(a[i].schedule.executions.size(),
              b[i].schedule.executions.size());
    for (size_t k = 0; k < a[i].schedule.executions.size(); ++k) {
      EXPECT_EQ(a[i].schedule.executions[k].model_id,
                b[i].schedule.executions[k].model_id);
    }
    EXPECT_DOUBLE_EQ(a[i].schedule.makespan_s, b[i].schedule.makespan_s);
  }
}

TEST_F(LabelingServiceTest, SerialAndParallelAgreeOnUnconstrainedItems) {
  // With unlimited budgets both Algorithm 1 and Algorithm 2 run the whole
  // zoo, so the recalled value must coincide exactly.
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  LabelingService serial = LabelingServiceBuilder(zoo_)
                               .WithOracle(oracle_)
                               .WithPredictor(&predictor)
                               .WithMode(ExecutionMode::kSerial)
                               .Build();
  LabelingService parallel = LabelingServiceBuilder(zoo_)
                                 .WithOracle(oracle_)
                                 .WithPredictor(&predictor)
                                 .WithMode(ExecutionMode::kParallel)
                                 .Build();
  for (int item = 0; item < 10; ++item) {
    const LabelOutcome s = serial.Submit(WorkItem::Stored(item));
    const LabelOutcome p = parallel.Submit(WorkItem::Stored(item));
    EXPECT_EQ(s.schedule.executions.size(), 30u);
    EXPECT_EQ(p.schedule.executions.size(), 30u);
    EXPECT_NEAR(s.schedule.value, p.schedule.value, 1e-9);
    EXPECT_NEAR(s.recall, p.recall, 1e-12);
    EXPECT_NEAR(s.recall, 1.0, 1e-9) << "full execution recalls everything";
  }
}

TEST_F(LabelingServiceTest, LiveAndStoredSubmissionsAgree) {
  // The oracle replays exactly what live execution produces, so a live
  // submission of an item's scene must match the stored submission's
  // schedule value.
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  LabelingService service = LabelingServiceBuilder(zoo_)
                                .WithOracle(oracle_)
                                .WithPredictor(&predictor)
                                .WithMode(ExecutionMode::kGreedy)
                                .Build();
  for (int item = 0; item < 5; ++item) {
    const LabelOutcome stored = service.Submit(WorkItem::Stored(item));
    const LabelOutcome live = service.Submit(dataset_->item(item).scene);
    EXPECT_NEAR(stored.schedule.value, live.schedule.value, 1e-9);
    EXPECT_EQ(stored.schedule.executions.size(),
              live.schedule.executions.size());
    EXPECT_GE(stored.recall, 0.0) << "stored submissions report recall";
    EXPECT_EQ(live.recall, -1.0) << "live submissions have no ground truth";
  }
}

TEST_F(LabelingServiceTest, RecallTargetStopsEarly) {
  LabelingService service = LabelingServiceBuilder(zoo_)
                                .WithOracle(oracle_)
                                .WithMode(ExecutionMode::kSerial)
                                .WithPolicy("optimal")
                                .WithRecallTarget(0.5)
                                .Build();
  for (int item = 0; item < 20; ++item) {
    const LabelOutcome outcome = service.Submit(WorkItem::Stored(item));
    EXPECT_GE(outcome.recall, 0.5 - 1e-9);
    EXPECT_LT(outcome.schedule.executions.size(), 30u)
        << "the optimal policy reaches half recall well before 30 models";
  }
}

TEST_F(LabelingServiceTest, StreamingRunVisitsEveryItemInOrder) {
  LabelingService service = LabelingServiceBuilder(zoo_)
                                .WithOracle(oracle_)
                                .WithMode(ExecutionMode::kSerial)
                                .WithPolicy("no_policy")
                                .WithRecallTarget(1.0)
                                .WithWorkers(3)
                                .Build();
  std::vector<int> indices(20);
  std::iota(indices.begin(), indices.end(), 0);
  data::DataStream stream(dataset_, indices, /*shuffle=*/false, /*seed=*/1);
  std::vector<int> visited;
  const int count = service.Run(
      &stream, [&](const WorkItem& item, const LabelOutcome& outcome) {
        visited.push_back(item.item);
        EXPECT_NEAR(outcome.recall, 1.0, 1e-9);
      });
  EXPECT_EQ(count, 20);
  EXPECT_EQ(visited, indices) << "sink sees items in arrival order";
}

TEST_F(LabelingServiceTest, InterleavedChunksStayWithOneWorker) {
  // Chunk-adaptive policies must see each chunk's full history even when
  // chunks interleave in the batch and several workers run: results must
  // match a single-worker run of the same order exactly.
  const data::Dataset chunked = data::Dataset::GenerateChunked(
      data::DatasetProfile::MirFlickr25(), zoo_->labels(), /*num_chunks=*/6,
      /*chunk_len=*/5, /*seed=*/31);
  const data::Oracle oracle(zoo_, &chunked);
  std::vector<WorkItem> interleaved;
  for (int offset = 0; offset < 5; ++offset) {
    for (int chunk = 0; chunk < 6; ++chunk) {
      const int item = chunk * 5 + offset;
      interleaved.push_back(
          WorkItem::Stored(item, chunked.item(item).chunk_id));
    }
  }
  const auto run_with_workers = [&](int workers) {
    LabelingService service = LabelingServiceBuilder(zoo_)
                                  .WithOracle(&oracle)
                                  .WithMode(ExecutionMode::kSerial)
                                  .WithPolicy("explore_exploit")
                                  .WithRecallTarget(1.0)
                                  .WithWorkers(workers)
                                  .Build();
    return service.SubmitBatch(interleaved);
  };
  const std::vector<LabelOutcome> parallel = run_with_workers(4);
  const std::vector<LabelOutcome> sequential = run_with_workers(1);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].recall, sequential[i].recall);
    EXPECT_EQ(parallel[i].schedule.executions.size(),
              sequential[i].schedule.executions.size())
        << "chunk history must not depend on the worker count";
  }
}

TEST_F(LabelingServiceTest, ParallelModeHonoursMemoryBudget) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  ScheduleConstraints constraints;
  constraints.time_budget_s = 1.0;
  constraints.memory_budget_mb = 8192.0;
  LabelingService service = LabelingServiceBuilder(zoo_)
                                .WithOracle(oracle_)
                                .WithPredictor(&predictor)
                                .WithMode(ExecutionMode::kParallel)
                                .WithConstraints(constraints)
                                .Build();
  for (int item = 0; item < 10; ++item) {
    const LabelOutcome outcome = service.Submit(WorkItem::Stored(item));
    EXPECT_LE(outcome.schedule.peak_mem_mb, 8192.0 + 1e-6);
    EXPECT_LE(outcome.schedule.makespan_s, 1.0 + 1e-9)
        << "replayed execution times are known, so nothing overshoots";
  }
}

}  // namespace
}  // namespace ams::core
