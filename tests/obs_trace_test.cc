// Tests of the obs:: tracing layer: TraceBuffer ring semantics (capacity
// rounding, drop-oldest overwrite, oldest-first snapshots), the Tracer's
// runtime toggle / sampling / lane registry, ScopedSpan recording, the
// ChromeTraceSink JSON shape, and the deterministic end-to-end span-chain
// property — a request admitted on one shard and migrated to another under a
// ManualClock yields exactly one connected enqueue -> queue_wait -> exec
// chain per sampled request, with matched migrate_out/migrate_in hops and no
// lost or duplicated phase events.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "route/placement.h"
#include "route/shard_router.h"
#include "serve/clock.h"
#include "serve/server_runtime.h"
#include "util/clock.h"
#include "zoo/model_zoo.h"

namespace ams::obs {
namespace {

TraceEvent Event(Phase phase, double ts_s, double dur_s = 0.0,
                 std::uint64_t id = 0) {
  TraceEvent event;
  event.phase = static_cast<std::uint8_t>(phase);
  event.ts_s = ts_s;
  event.dur_s = dur_s;
  event.id = id;
  return event;
}

TEST(TraceBufferTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(10, 0, 0).capacity(), 16u);
  EXPECT_EQ(TraceBuffer(16, 0, 0).capacity(), 16u);
  EXPECT_EQ(TraceBuffer(0, 0, 0).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(1, 0, 0).capacity(), 8u);
}

TEST(TraceBufferTest, StampsShardAndLaneOnRecord) {
  TraceBuffer buffer(8, /*shard=*/3, /*lane=*/7);
  buffer.Record(Event(Phase::kTick, 1.0));
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].shard, 3);
  EXPECT_EQ(events[0].lane, 7);
  EXPECT_EQ(static_cast<Phase>(events[0].phase), Phase::kTick);
}

TEST(TraceBufferTest, DropsOldestOnWrapAndCountsDrops) {
  TraceBuffer buffer(8, 0, 0);
  for (int i = 0; i < 20; ++i) {
    buffer.Record(Event(Phase::kTick, static_cast<double>(i)));
  }
  EXPECT_EQ(buffer.recorded(), 20u);
  EXPECT_EQ(buffer.dropped(), 12u);
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is the newest 8 events, oldest first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<size_t>(i)].ts_s,
                     static_cast<double>(12 + i));
  }
}

TEST(TraceBufferTest, SnapshotBeforeWrapIsInRecordOrder) {
  TraceBuffer buffer(8, 0, 0);
  buffer.Record(Event(Phase::kEnqueue, 5.0));
  buffer.Record(Event(Phase::kQueueWait, 6.0));
  buffer.Record(Event(Phase::kExec, 7.0));
  EXPECT_EQ(buffer.dropped(), 0u);
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].ts_s, 5.0);
  EXPECT_DOUBLE_EQ(events[2].ts_s, 7.0);
}

TEST(TracerTest, LanesAreStableAndKeyedByShardAndLane) {
  Tracer tracer;
  TraceBuffer* first = tracer.EnsureLane(0, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(tracer.EnsureLane(0, 0), first);
  TraceBuffer* other_lane = tracer.EnsureLane(0, 1);
  TraceBuffer* other_shard = tracer.EnsureLane(1, 0);
  EXPECT_NE(other_lane, first);
  EXPECT_NE(other_shard, first);
  EXPECT_NE(other_shard, other_lane);
}

TEST(TracerTest, SamplingKeepsEveryNthSequence) {
  Tracer::Options options;
  options.sample_every = 4;
  Tracer tracer(options);
  EXPECT_TRUE(tracer.ShouldSample(0));
  EXPECT_FALSE(tracer.ShouldSample(1));
  EXPECT_FALSE(tracer.ShouldSample(3));
  EXPECT_TRUE(tracer.ShouldSample(4));
  EXPECT_TRUE(tracer.ShouldSample(8));
  // sample_every = 1 keeps everything.
  EXPECT_TRUE(Tracer().ShouldSample(17));
}

TEST(TracerTest, CollectMergesLanesSortedByTimestamp) {
  Tracer tracer;
  tracer.EnsureLane(0, 0)->Record(Event(Phase::kTick, 2.0));
  tracer.EnsureLane(0, 1)->Record(Event(Phase::kTick, 1.0));
  tracer.EnsureLane(1, 0)->Record(Event(Phase::kTick, 3.0));
  const std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].ts_s, 1.0);
  EXPECT_DOUBLE_EQ(events[1].ts_s, 2.0);
  EXPECT_DOUBLE_EQ(events[2].ts_s, 3.0);
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

TEST(ScopedSpanTest, RecordsOneEventWithDurationAndArgs) {
  Tracer tracer;
  TraceBuffer* lane = tracer.EnsureLane(0, 0);
  util::ManualClock clock(10.0);
  {
    ScopedSpan span(&tracer, lane, &clock, Phase::kExec, /*id=*/42);
    ASSERT_TRUE(span.active());
    clock.Advance(0.5);
    span.set_args(1, 2, 3, 4);
    EXPECT_DOUBLE_EQ(span.Close(), 0.5);
    // Close() is idempotent: a closed span is inactive, so a second Close
    // (and destruction) records nothing and reports zero duration.
    EXPECT_FALSE(span.active());
    EXPECT_DOUBLE_EQ(span.Close(), 0.0);
  }
  const std::vector<TraceEvent> events = lane->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 42u);
  EXPECT_DOUBLE_EQ(events[0].ts_s, 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur_s, 0.5);
  EXPECT_EQ(events[0].a0, 1);
  EXPECT_EQ(events[0].a3, 4);
}

TEST(ScopedSpanTest, DisabledTracerOrNullLaneRecordsNothing) {
  Tracer::Options options;
  options.enabled = false;
  Tracer off(options);
  TraceBuffer* lane = off.EnsureLane(0, 0);
  util::ManualClock clock(1.0);
  {
    ScopedSpan span(&off, lane, &clock, Phase::kTick);
    EXPECT_FALSE(span.active());
    EXPECT_DOUBLE_EQ(span.Close(), 0.0);
  }
  EXPECT_TRUE(lane->Snapshot().empty());

  Tracer on;
  {
    ScopedSpan span(&on, /*lane=*/nullptr, &clock, Phase::kTick);
    EXPECT_FALSE(span.active());
  }
  {
    ScopedSpan span(/*tracer=*/nullptr, lane, &clock, Phase::kTick);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(lane->Snapshot().empty());
}

TEST(TracerTest, RuntimeToggleFlipsRecordingBothWays) {
  Tracer tracer;
  TraceBuffer* lane = tracer.EnsureLane(0, 0);
  util::ManualClock clock(0.0);
  tracer.set_enabled(false);
  { ScopedSpan span(&tracer, lane, &clock, Phase::kTick); }
  EXPECT_TRUE(lane->Snapshot().empty());
  tracer.set_enabled(true);
  { ScopedSpan span(&tracer, lane, &clock, Phase::kTick); }
  EXPECT_EQ(lane->Snapshot().size(), 1u);
}

TEST(ChromeTraceSinkTest, WritesSpansInstantsAndLaneMetadata) {
  TraceEvent span = Event(Phase::kExec, 1.0, 0.25, /*id=*/7);
  span.shard = 2;
  span.lane = 1;
  span.a0 = 1;
  TraceEvent instant = Event(Phase::kEnqueue, 0.5, 0.0, /*id=*/7);
  instant.lane = kAdmissionLane;
  std::ostringstream out;
  ChromeTraceSink().Write({instant, span}, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The span is a complete event with microsecond timestamps.
  EXPECT_NE(json.find("\"name\": \"exec\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 250000"), std::string::npos);
  // The instant carries thread scope, and the admission lane is named.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("\"admission\""), std::string::npos);
  EXPECT_NE(json.find("\"shard 2\""), std::string::npos);
  // Request identity rides along for span chaining.
  EXPECT_NE(json.find("\"trace_id\": 7"), std::string::npos);
  // Phase args are exported under their documented names.
  EXPECT_NE(json.find("\"class\": 1"), std::string::npos);
}

TEST(ChromeTraceSinkTest, EmptyCollectionIsStillAValidDocument) {
  std::ostringstream out;
  ChromeTraceSink().Write({}, out);
  EXPECT_EQ(out.str().find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(out.str().find("]}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end span conservation through migration, deterministic under a
// ManualClock. Mirrors the router rebalance test: all placement pinned to
// shard 0, single starved workers, manual rebalance tick.
// ---------------------------------------------------------------------------

class TraceChainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static std::unique_ptr<rl::Agent> MakeAgent(uint64_t seed) {
    nn::MlpConfig config;
    config.input_dim = zoo_->labels().total_labels();
    config.hidden_dims = {64};
    config.output_dim = zoo_->num_models() + 1;
    return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                       nn::NetKind::kMlp);
  }

  static std::vector<core::LabelingService> BuildShardSessions(
      rl::Agent* agent, int shards) {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    std::vector<core::LabelingService> sessions;
    sessions.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      sessions.push_back(core::LabelingServiceBuilder(zoo_)
                             .WithOracle(oracle_)
                             .WithPredictor(agent)
                             .WithMode(core::ExecutionMode::kParallel)
                             .WithConstraints(constraints)
                             .WithWorkers(1)
                             .WithSeed(17 + static_cast<uint64_t>(i))
                             .Build());
    }
    return sessions;
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* TraceChainTest::zoo_ = nullptr;
data::Dataset* TraceChainTest::dataset_ = nullptr;
data::Oracle* TraceChainTest::oracle_ = nullptr;

TEST_F(TraceChainTest, MigratedRequestsKeepOneConnectedSpanChain) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(41);
  std::vector<core::LabelingService> sessions =
      BuildShardSessions(agent.get(), /*shards=*/2);

  serve::ManualClock clock(5.0);
  Tracer tracer;
  route::RouterOptions options;
  options.serve.workers = 1;
  options.serve.max_resident_per_worker = 1;
  options.serve.queue_capacity = 256;
  options.serve.clock = &clock;
  options.serve.tracer = &tracer;
  options.max_migrate_per_tick = 64;
  // Worst-case placement skew: everything lands on shard 0, so the
  // rebalance tick must migrate, and migrated requests complete on shard 1.
  class PinnedPlacement final : public route::Placement {
   public:
    int ShardFor(const route::RouteKey&,
                 const route::ShardLoadView&) override {
      return 0;
    }
    const char* name() const override { return "pinned"; }
  } pinned;
  options.placement = &pinned;
  std::vector<core::LabelingService*> shard_sessions;
  for (core::LabelingService& session : sessions) {
    shard_sessions.push_back(&session);
  }
  route::ShardRouter router(shard_sessions, options);

  const int kRequests = 64;
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(router.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  clock.Advance(1.0);
  const int moved = router.RebalanceOnce();
  EXPECT_GT(moved, 0);
  for (std::future<serve::ServeResult>& future : futures) {
    EXPECT_EQ(future.get().status, serve::ServeStatus::kOk);
  }
  router.Drain();
  router.Shutdown();

  const std::vector<TraceEvent> events = tracer.Collect();
  EXPECT_EQ(tracer.TotalDropped(), 0u);

  // Index lifecycle events by trace id; count migration hops.
  std::map<std::uint64_t, int> enqueues, waits, execs;
  std::set<std::uint64_t> migrated_out_ids, migrated_in_ids;
  int placements = 0, outs = 0, ins = 0;
  for (const TraceEvent& event : events) {
    switch (static_cast<Phase>(event.phase)) {
      case Phase::kEnqueue:
        ASSERT_NE(event.id, 0u);
        ++enqueues[event.id];
        break;
      case Phase::kQueueWait:
        ++waits[event.id];
        break;
      case Phase::kExec:
        ++execs[event.id];
        break;
      case Phase::kPlacement:
        ++placements;
        break;
      case Phase::kMigrateOut:
        ++outs;
        migrated_out_ids.insert(event.id);
        break;
      case Phase::kMigrateIn:
        ++ins;
        migrated_in_ids.insert(event.id);
        break;
      default:
        break;
    }
  }

  // Span conservation: every sampled admitted request has exactly one
  // enqueue, one queue_wait, and one exec — migration neither loses nor
  // duplicates a phase.
  EXPECT_EQ(enqueues.size(), static_cast<size_t>(kRequests));
  EXPECT_EQ(placements, kRequests);
  for (const auto& [id, count] : enqueues) {
    EXPECT_EQ(count, 1) << "trace id " << id;
    EXPECT_EQ(waits[id], 1) << "trace id " << id;
    EXPECT_EQ(execs[id], 1) << "trace id " << id;
  }
  EXPECT_EQ(waits.size(), enqueues.size());
  EXPECT_EQ(execs.size(), enqueues.size());

  // Every migration departure has a matching arrival, id for id.
  EXPECT_EQ(outs, moved);
  EXPECT_EQ(ins, outs);
  EXPECT_EQ(migrated_out_ids, migrated_in_ids);
  // Migrated requests still completed exactly once.
  for (std::uint64_t id : migrated_out_ids) {
    EXPECT_EQ(execs[id], 1) << "migrated trace id " << id;
  }

  // Chains are time-ordered: each request's queue wait starts at its
  // enqueue timestamp and its execution starts no earlier than the wait.
  std::map<std::uint64_t, const TraceEvent*> wait_of, exec_of, enqueue_of;
  for (const TraceEvent& event : events) {
    const Phase phase = static_cast<Phase>(event.phase);
    if (phase == Phase::kQueueWait) wait_of[event.id] = &event;
    if (phase == Phase::kExec) exec_of[event.id] = &event;
    if (phase == Phase::kEnqueue) enqueue_of[event.id] = &event;
  }
  constexpr double kEps = 1e-9;
  for (const auto& [id, wait] : wait_of) {
    const TraceEvent* enq = enqueue_of[id];
    const TraceEvent* exec = exec_of[id];
    ASSERT_NE(enq, nullptr);
    ASSERT_NE(exec, nullptr);
    EXPECT_LE(wait->ts_s, enq->ts_s + kEps) << "trace id " << id;
    EXPECT_LE(wait->ts_s + wait->dur_s, exec->ts_s + kEps)
        << "trace id " << id;
    EXPECT_GE(wait->dur_s, 0.0);
    EXPECT_GE(exec->dur_s, 0.0);
  }

  // Worker lanes produced tick spans; ticks with completions also produced
  // forward spans (lane-scoped, id 0).
  int ticks = 0, forwards = 0;
  for (const TraceEvent& event : events) {
    if (static_cast<Phase>(event.phase) == Phase::kTick) ++ticks;
    if (static_cast<Phase>(event.phase) == Phase::kForward) ++forwards;
  }
  EXPECT_GT(ticks, 0);
  EXPECT_GT(forwards, 0);
}

TEST_F(TraceChainTest, SamplingRecordsOnlyEveryNthLifecycle) {
  std::unique_ptr<rl::Agent> agent = MakeAgent(43);
  std::vector<core::LabelingService> sessions =
      BuildShardSessions(agent.get(), /*shards=*/1);

  Tracer::Options trace_options;
  trace_options.sample_every = 4;
  Tracer tracer(trace_options);
  serve::ServeOptions serve_options;
  serve_options.workers = 1;
  serve_options.queue_capacity = 256;
  serve_options.tracer = &tracer;
  serve::ServerRuntime runtime(&sessions[0], serve_options);

  const int kRequests = 32;
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  for (std::future<serve::ServeResult>& future : futures) {
    EXPECT_EQ(future.get().status, serve::ServeStatus::kOk);
  }
  runtime.Drain();
  runtime.Shutdown();

  std::set<std::uint64_t> exec_ids;
  for (const TraceEvent& event : tracer.Collect()) {
    if (static_cast<Phase>(event.phase) == Phase::kExec) {
      exec_ids.insert(event.id);
    }
  }
  // Admission sequences 0, 4, 8, ... are sampled: a quarter of the traffic.
  EXPECT_EQ(exec_ids.size(), static_cast<size_t>(kRequests) / 4);
}

}  // namespace
}  // namespace ams::obs
