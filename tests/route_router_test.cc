// Tests of the route:: subsystem: placement determinism (same key -> same
// shard across independently built placements and router restarts),
// consistent-hash stability when the shard count changes, the PlanRebalance
// decision rule, stamp preservation through the StealBatch/Requeue
// migration seam, the acceptance property that rebalancing strictly reduces
// the max/min shard queue-depth ratio under a ManualClock, live scenes
// served end to end through the router, and a concurrent conservation
// stress (M enqueuers x N shards, every future resolves, cluster-wide
// counter identity holds at quiescence).

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "route/aggregated_metrics.h"
#include "route/placement.h"
#include "route/shard_router.h"
#include "serve/admission_queue.h"
#include "serve/clock.h"
#include "serve/priority_class.h"
#include "serve/request.h"

namespace ams::route {
namespace {

using serve::AdmissionConfig;
using serve::AdmissionQueue;
using serve::AdmitOutcome;
using serve::ManualClock;
using serve::OverloadPolicy;
using serve::PriorityClass;
using serve::QueuedRequest;
using serve::ServeResult;
using serve::ServeStatus;
using serve::TenantQuota;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fixed-depth load view for exercising placements without runtimes.
class FakeLoadView final : public ShardLoadView {
 public:
  explicit FakeLoadView(std::vector<size_t> depths)
      : depths_(std::move(depths)) {}
  int num_shards() const override { return static_cast<int>(depths_.size()); }
  size_t QueueDepth(int shard) const override {
    return depths_[static_cast<size_t>(shard)];
  }

 private:
  std::vector<size_t> depths_;
};

// --- placement -------------------------------------------------------------

TEST(PlacementTest, ConsistentHashIsDeterministicAcrossInstances) {
  // Two independently constructed placements (a "restarted router") must
  // agree on every key, and the keys must actually spread over the shards.
  ConsistentHashPlacement first;
  ConsistentHashPlacement second;
  const FakeLoadView load({0, 0, 0, 0});
  std::set<int> shards_hit;
  for (uint64_t k = 0; k < 512; ++k) {
    RouteKey key;
    key.tenant_id = static_cast<int>(k % 3);
    key.key = k;
    const int shard = first.ShardFor(key, load);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, second.ShardFor(key, load)) << "key " << k;
    shards_hit.insert(shard);
  }
  EXPECT_EQ(shards_hit.size(), 4u);
  // The tenant is part of the identity: two tenants sending the same item
  // id must not all collapse onto identical shards.
  bool tenant_matters = false;
  for (uint64_t k = 0; k < 64 && !tenant_matters; ++k) {
    RouteKey a{/*tenant_id=*/1, k};
    RouteKey b{/*tenant_id=*/2, k};
    tenant_matters = first.ShardFor(a, load) != first.ShardFor(b, load);
  }
  EXPECT_TRUE(tenant_matters);
}

TEST(PlacementTest, ConsistentHashMovesFewKeysWhenAShardIsAdded) {
  ConsistentHashPlacement placement;
  const FakeLoadView four({0, 0, 0, 0});
  const FakeLoadView five({0, 0, 0, 0, 0});
  const int kKeys = 1024;
  int moved = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    RouteKey key{/*tenant_id=*/0, k};
    if (placement.ShardFor(key, four) != placement.ShardFor(key, five)) {
      ++moved;
    }
  }
  // Consistent hashing moves ~1/5 of keys on 4 -> 5; modulo hashing would
  // move ~4/5. Generous margin for ring imbalance.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys * 2 / 5);
}

TEST(PlacementTest, LeastQueuedPicksShallowestWithLowestIndexTie) {
  LeastQueuedPlacement placement;
  RouteKey key{0, 7};
  EXPECT_EQ(placement.ShardFor(key, FakeLoadView({5, 2, 9})), 1);
  EXPECT_EQ(placement.ShardFor(key, FakeLoadView({4, 3, 3, 8})), 1);
  EXPECT_EQ(placement.ShardFor(key, FakeLoadView({0, 0})), 0);
}

TEST(PlacementTest, PowerOfTwoChoicesPrefersLessLoadedAndIsSeedStable) {
  // With one overloaded shard, p2c lands there only when both draws hit it
  // (never, as the two draws are distinct) or it never appears among the
  // pair's alternatives -- so shard 0 receives nothing at all here.
  PowerOfTwoChoicesPlacement placement(/*seed=*/99);
  const FakeLoadView load({1000, 0, 0, 0});
  RouteKey key{0, 0};
  std::vector<int> picks;
  for (int i = 0; i < 200; ++i) {
    const int shard = placement.ShardFor(key, load);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_NE(shard, 0) << "p2c picked the overloaded shard";
    picks.push_back(shard);
  }
  // Same seed => the same pseudo-random pick sequence (determinism for
  // reproducible runs).
  PowerOfTwoChoicesPlacement replay(/*seed=*/99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(replay.ShardFor(key, load), picks[static_cast<size_t>(i)]);
  }
}

TEST(PlacementTest, FactoryParsesNames) {
  const FakeLoadView load({0, 0});
  for (const char* name : {"hash", "least", "p2c"}) {
    const std::unique_ptr<Placement> placement = PlacementFromName(name);
    ASSERT_NE(placement, nullptr) << name;
    EXPECT_STREQ(placement->name(), name);
    const int shard = placement->ShardFor(RouteKey{0, 3}, load);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 2);
  }
  EXPECT_EQ(PlacementFromName("round-robin"), nullptr);
  EXPECT_EQ(PlacementFromName(""), nullptr);
}

// --- rebalance plan --------------------------------------------------------

TEST(RebalancePlanTest, MovesHalfTheGapFromHottestToColdest) {
  const RebalancePlan plan = PlanRebalance({10, 2}, /*ratio=*/1.5,
                                           /*max_moves=*/32);
  EXPECT_EQ(plan.from, 0);
  EXPECT_EQ(plan.to, 1);
  EXPECT_EQ(plan.moves, 4);  // (10-2)/2: source stays >= destination
}

TEST(RebalancePlanTest, RespectsMaxMovesAndTieBreaksByIndex) {
  const RebalancePlan plan = PlanRebalance({9, 0, 9, 0}, /*ratio=*/1.5,
                                           /*max_moves=*/3);
  EXPECT_EQ(plan.from, 0);  // first of the tied hottest
  EXPECT_EQ(plan.to, 1);    // first of the tied coldest
  EXPECT_EQ(plan.moves, 3);
}

TEST(RebalancePlanTest, LeavesBalancedAndBelowRatioDepthsAlone) {
  EXPECT_EQ(PlanRebalance({5, 5, 5}, 1.5, 32).moves, 0);
  // Gap of 1 is not worth halving.
  EXPECT_EQ(PlanRebalance({3, 2}, 1.5, 32).moves, 0);
  // Gap of 2 but 6 <= 1.5 * 4: within the tolerated imbalance.
  EXPECT_EQ(PlanRebalance({6, 5, 4}, 1.5, 32).moves, 0);
  // An empty coldest shard counts as depth 1 for the ratio so the gate
  // stays finite: 2 > 1.5 * 1 migrates.
  EXPECT_EQ(PlanRebalance({2, 0}, 1.5, 32).moves, 1);
  EXPECT_EQ(PlanRebalance({}, 1.5, 32).moves, 0);
  EXPECT_EQ(PlanRebalance({4}, 1.5, 32).moves, 0);
}

// --- migration seam --------------------------------------------------------

QueuedRequest MakeRequest(uint64_t sequence, double slack_s,
                          PriorityClass cls = PriorityClass::kStandard,
                          int tenant = 0, double density = 0.0) {
  QueuedRequest request;
  request.item = core::WorkItem::Stored(static_cast<int>(sequence));
  request.sequence = sequence;
  request.slack_s = slack_s;
  request.priority_class = cls;
  request.tenant_id = tenant;
  request.value_density = density;
  return request;
}

AdmissionConfig TrackedConfig(int capacity, const serve::Clock* clock) {
  AdmissionConfig config;
  config.capacity = capacity;
  config.overload = OverloadPolicy::kReject;
  config.clock = clock;
  // A loose default quota turns tenant accounting on so the test can watch
  // queued counts move between the queues.
  TenantQuota loose;
  loose.max_queued = 1000;
  config.tenant_quotas.default_quota = loose;
  return config;
}

TEST(MigrationTest, StealTakesLastServedWorkAndRequeuePreservesStamps) {
  ManualClock clock(100.0);
  AdmissionQueue hot(TrackedConfig(16, &clock));
  AdmissionQueue cold(TrackedConfig(16, &clock));
  std::vector<QueuedRequest> bounced;
  // Two interactive requests (slack 5 and 9) and two batch (slack 2 and 7).
  ASSERT_EQ(hot.Enqueue(MakeRequest(0, 5.0, PriorityClass::kInteractive, 1),
                        &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(hot.Enqueue(MakeRequest(1, 9.0, PriorityClass::kInteractive, 2),
                        &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(
      hot.Enqueue(MakeRequest(2, 2.0, PriorityClass::kBatch, 1), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_EQ(
      hot.Enqueue(MakeRequest(3, 7.0, PriorityClass::kBatch, 2), &bounced),
      AdmitOutcome::kAccepted);
  ASSERT_TRUE(bounced.empty());

  // Steal 3: the batch band drains first (least important), latest deadline
  // first (seq 3 then 2), then the interactive request with the latest
  // deadline (seq 1). The EDF head of the interactive band (seq 0 --
  // what the local shard serves next) is taken last, so it stays.
  std::vector<QueuedRequest> stolen;
  ASSERT_EQ(hot.StealBatch(3, &stolen), 3);
  ASSERT_EQ(stolen.size(), 3u);
  EXPECT_EQ(stolen[0].sequence, 3u);
  EXPECT_EQ(stolen[1].sequence, 2u);
  EXPECT_EQ(stolen[2].sequence, 1u);
  EXPECT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot.tenant_queued(1), 1);  // seq 0 stays
  EXPECT_EQ(hot.tenant_queued(2), 0);  // both of tenant 2's left

  // Deadlines were stamped at t=100; requeue at t=150 must NOT re-stamp.
  clock.Advance(50.0);
  for (QueuedRequest& request : stolen) {
    ASSERT_TRUE(cold.Requeue(std::move(request)));
  }
  EXPECT_EQ(cold.size(), 3u);
  EXPECT_EQ(cold.tenant_queued(1), 1);
  EXPECT_EQ(cold.tenant_queued(2), 2);

  // Pop everything from the destination: stamps (class, tenant, absolute
  // deadline, arrival time) survived the migration bit-for-bit.
  std::map<uint64_t, QueuedRequest> by_sequence;
  QueuedRequest popped;
  while (cold.TryPop(&popped)) {
    by_sequence[popped.sequence] = std::move(popped);
  }
  ASSERT_EQ(by_sequence.size(), 3u);
  EXPECT_EQ(by_sequence[1].priority_class, PriorityClass::kInteractive);
  EXPECT_EQ(by_sequence[1].tenant_id, 2);
  EXPECT_DOUBLE_EQ(by_sequence[1].deadline_s, 109.0);
  EXPECT_DOUBLE_EQ(by_sequence[1].enqueue_time_s, 100.0);
  EXPECT_EQ(by_sequence[2].priority_class, PriorityClass::kBatch);
  EXPECT_EQ(by_sequence[2].tenant_id, 1);
  EXPECT_DOUBLE_EQ(by_sequence[2].deadline_s, 102.0);
  EXPECT_EQ(by_sequence[3].priority_class, PriorityClass::kBatch);
  EXPECT_EQ(by_sequence[3].tenant_id, 2);
  EXPECT_DOUBLE_EQ(by_sequence[3].deadline_s, 107.0);
}

TEST(MigrationTest, StealAndRequeueRefuseClosedQueues) {
  ManualClock clock;
  AdmissionQueue queue(TrackedConfig(8, &clock));
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf), &bounced),
            AdmitOutcome::kAccepted);
  queue.Close();
  // A closing shard drains in place: no stealing from it...
  std::vector<QueuedRequest> stolen;
  EXPECT_EQ(queue.StealBatch(4, &stolen), 0);
  EXPECT_TRUE(stolen.empty());
  // ...and no migrating into it; the refused request stays intact with the
  // caller (promise and stamps untouched).
  QueuedRequest migrant = MakeRequest(1, 5.0, PriorityClass::kBatch, 3);
  EXPECT_FALSE(queue.Requeue(std::move(migrant)));
  EXPECT_EQ(migrant.sequence, 1u);
  EXPECT_EQ(migrant.tenant_id, 3);
}

TEST(MigrationTest, RebalancingStrictlyReducesMaxMinDepthRatio) {
  // The acceptance property, deterministic under a ManualClock: a skewed
  // placement loaded one shard; repeated rebalance ticks (plan + steal +
  // requeue, exactly what ShardRouter::RebalanceOnce runs) must strictly
  // shrink the max/min queue-depth ratio until the gate holds.
  ManualClock clock(10.0);
  std::vector<std::unique_ptr<AdmissionQueue>> queues;
  for (int i = 0; i < 4; ++i) {
    queues.push_back(
        std::make_unique<AdmissionQueue>(TrackedConfig(64, &clock)));
  }
  std::vector<QueuedRequest> bounced;
  uint64_t sequence = 0;
  const auto enqueue_n = [&](int queue_index, int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t seq = sequence++;
      ASSERT_EQ(queues[static_cast<size_t>(queue_index)]->Enqueue(
                    MakeRequest(seq, 100.0 + static_cast<double>(i),
                                PriorityClass::kStandard,
                                static_cast<int>(seq % 3)),
                    &bounced),
                AdmitOutcome::kAccepted);
    }
  };
  enqueue_n(0, 24);  // the hot shard a skewed placement produced
  enqueue_n(1, 2);
  enqueue_n(2, 2);
  enqueue_n(3, 2);

  const auto depths = [&] {
    std::vector<size_t> out;
    for (const auto& queue : queues) out.push_back(queue->size());
    return out;
  };
  const auto ratio = [](const std::vector<size_t>& d) {
    const size_t hi = *std::max_element(d.begin(), d.end());
    const size_t lo = std::max<size_t>(*std::min_element(d.begin(), d.end()),
                                       1);
    return static_cast<double>(hi) / static_cast<double>(lo);
  };

  double previous_ratio = ratio(depths());
  ASSERT_DOUBLE_EQ(previous_ratio, 12.0);
  int ticks = 0;
  int total_moved = 0;
  while (ticks < 16) {
    clock.Advance(1.0);  // the rebalance cadence on the manual clock
    const RebalancePlan plan =
        PlanRebalance(depths(), /*ratio=*/1.5, /*max_moves=*/8);
    if (plan.moves == 0) break;
    std::vector<QueuedRequest> batch;
    ASSERT_EQ(queues[static_cast<size_t>(plan.from)]->StealBatch(plan.moves,
                                                                 &batch),
              plan.moves);
    for (QueuedRequest& request : batch) {
      ASSERT_TRUE(
          queues[static_cast<size_t>(plan.to)]->Requeue(std::move(request)));
    }
    total_moved += plan.moves;
    const double now = ratio(depths());
    EXPECT_LT(now, previous_ratio) << "tick " << ticks;
    previous_ratio = now;
    ++ticks;
  }
  EXPECT_GT(ticks, 0);
  EXPECT_GT(total_moved, 0);
  EXPECT_LE(previous_ratio, 1.5);  // converged under the gate
  // Conservation: every request is still queued somewhere, exactly once.
  std::set<uint64_t> seen;
  size_t total = 0;
  for (const auto& queue : queues) {
    QueuedRequest request;
    while (queue->TryPop(&request)) {
      EXPECT_TRUE(seen.insert(request.sequence).second)
          << "sequence " << request.sequence << " duplicated";
      ++total;
    }
  }
  EXPECT_EQ(total, 30u);
}

// --- router end to end -----------------------------------------------------

std::unique_ptr<rl::Agent> MakeAgent(const zoo::ModelZoo& zoo, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = zoo.labels().total_labels();
  config.hidden_dims = {64};
  config.output_dim = zoo.num_models() + 1;
  return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                     nn::NetKind::kMlp);
}

class ShardRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
  }

  static core::ScheduleConstraints ParallelConstraints() {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return constraints;
  }

  static core::LabelingService BuildPredictorSession(rl::Agent* agent,
                                                     int workers) {
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(ParallelConstraints())
        .WithWorkers(workers)
        .Build();
  }

  /// N independent sessions over the same corpus/agent (one per shard).
  static std::vector<core::LabelingService> BuildShardSessions(
      rl::Agent* agent, int shards, int workers_per_shard) {
    std::vector<core::LabelingService> sessions;
    sessions.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      sessions.push_back(BuildPredictorSession(agent, workers_per_shard));
    }
    return sessions;
  }

  static std::vector<core::LabelingService*> Pointers(
      std::vector<core::LabelingService>& sessions) {
    std::vector<core::LabelingService*> out;
    for (core::LabelingService& session : sessions) out.push_back(&session);
    return out;
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
};

zoo::ModelZoo* ShardRouterTest::zoo_ = nullptr;
data::Dataset* ShardRouterTest::dataset_ = nullptr;
data::Oracle* ShardRouterTest::oracle_ = nullptr;

TEST_F(ShardRouterTest, RoutesByPlacementDeterministicallyAcrossRestarts) {
  const int kShards = 3;
  const int kItems = 36;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 7);

  // Offline prediction of where each item must land: hash placement is a
  // pure function of (tenant, key, shard count).
  ConsistentHashPlacement reference;
  const FakeLoadView load(std::vector<size_t>(kShards, 0));
  std::vector<long> expected(kShards, 0);
  for (int i = 0; i < kItems; ++i) {
    ++expected[static_cast<size_t>(reference.ShardFor(
        RouteKey{0, static_cast<uint64_t>(i)}, load))];
  }

  const auto run_once = [&](std::vector<long>* routed) {
    std::vector<core::LabelingService> sessions =
        BuildShardSessions(agent.get(), kShards, /*workers_per_shard=*/1);
    ShardRouter router(Pointers(sessions));
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < kItems; ++i) {
      futures.push_back(router.Enqueue(core::WorkItem::Stored(i)));
    }
    for (std::future<ServeResult>& future : futures) {
      EXPECT_EQ(future.get().status, ServeStatus::kOk);
    }
    router.Drain();
    for (int s = 0; s < kShards; ++s) {
      routed->push_back(router.routed(s));
      // The shard's own metrics agree with the router's routing counter.
      EXPECT_EQ(router.shard(s).metrics().enqueued.load(), router.routed(s));
    }
    router.Shutdown();
  };

  std::vector<long> first_run;
  run_once(&first_run);
  EXPECT_EQ(first_run, expected);
  // A rebuilt router (fresh placement, fresh sessions — "a restart") sends
  // every key to the same shard.
  std::vector<long> second_run;
  run_once(&second_run);
  EXPECT_EQ(second_run, first_run);
}

TEST_F(ShardRouterTest, ServesLiveScenesThroughTheRouter) {
  // The PR-3 WorkItem::Live seam, exercised through the full async stack:
  // live scenes have no stored id (placement keys them by arrival), no
  // replay cache, and no recall accumulator — the outcome must still match
  // the same session's offline Submit of the same scene.
  const int kItems = 12;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 11);

  core::LabelingService offline = BuildPredictorSession(agent.get(), 1);
  std::vector<core::LabelOutcome> expected;
  for (int i = 0; i < kItems; ++i) {
    expected.push_back(
        offline.Submit(core::WorkItem::Live(&dataset_->item(i).scene)));
  }

  std::vector<core::LabelingService> sessions =
      BuildShardSessions(agent.get(), /*shards=*/2, /*workers_per_shard=*/2);
  ShardRouter router(Pointers(sessions));
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kItems; ++i) {
    // The dataset owns the scenes, so they outlive the labeling (the Live
    // contract). Tight-but-met deadline exercises the stamp path too.
    futures.push_back(
        router.Enqueue(core::WorkItem::Live(&dataset_->item(i).scene), 30.0,
                       PriorityClass::kInteractive));
  }
  for (int i = 0; i < kItems; ++i) {
    const ServeResult result = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << "item " << i;
    const core::LabelOutcome& offline_outcome =
        expected[static_cast<size_t>(i)];
    EXPECT_EQ(result.outcome.recall, offline_outcome.recall);
    EXPECT_EQ(result.outcome.schedule.num_executions,
              offline_outcome.schedule.num_executions);
    EXPECT_EQ(result.outcome.schedule.value, offline_outcome.schedule.value);
    EXPECT_EQ(result.outcome.schedule.makespan_s,
              offline_outcome.schedule.makespan_s);
  }
  router.Drain();
  router.Shutdown();
}

TEST_F(ShardRouterTest, ConcurrentEnqueuersEveryFutureResolvesAndCountersAdd) {
  // M enqueuers x N shards with small queues, load shedding, and the
  // background rebalancer on a fast real-time tick: conservation means
  // every future resolves with exactly one status, and at quiescence the
  // cluster-wide identity enqueued + migrated_in == completed + rejected +
  // shed + shutdown_refused + migrated_out holds with migration counters
  // cancelling in the aggregate.
  const int kShards = 3;
  const int kEnqueuers = 4;
  const int kPerEnqueuer = 120;
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 23);
  std::vector<core::LabelingService> sessions =
      BuildShardSessions(agent.get(), kShards, /*workers_per_shard=*/1);

  RouterOptions options;
  options.serve.workers = 1;
  options.serve.queue_capacity = 16;
  options.serve.overload = OverloadPolicy::kShedOldest;
  options.rebalance_interval_s = 1e-4;
  options.max_migrate_per_tick = 8;
  // least-queued placement concentrates nothing, but the shed policy plus
  // tiny queues still force constant churn.
  LeastQueuedPlacement placement;
  options.placement = &placement;
  ShardRouter router(Pointers(sessions), options);

  std::vector<std::vector<std::future<ServeResult>>> futures(
      static_cast<size_t>(kEnqueuers));
  std::vector<std::thread> enqueuers;
  for (int e = 0; e < kEnqueuers; ++e) {
    enqueuers.emplace_back([&, e] {
      for (int i = 0; i < kPerEnqueuer; ++i) {
        ShardRouter::RequestOptions request;
        request.priority_class =
            static_cast<PriorityClass>(i % serve::kNumPriorityClasses);
        request.tenant_id = e % 2;
        futures[static_cast<size_t>(e)].push_back(
            router.Enqueue(core::WorkItem::Stored(i % 48), request));
      }
    });
  }
  for (std::thread& enqueuer : enqueuers) enqueuer.join();

  long completed = 0;
  long not_served = 0;
  for (std::vector<std::future<ServeResult>>& per_thread : futures) {
    for (std::future<ServeResult>& future : per_thread) {
      const ServeResult result = future.get();  // must resolve
      if (result.status == ServeStatus::kOk) {
        ++completed;
      } else {
        ++not_served;
      }
    }
  }
  EXPECT_EQ(completed + not_served,
            static_cast<long>(kEnqueuers) * kPerEnqueuer);
  router.Drain();

  // Aggregate the shard registries and check the quiescent identity.
  std::vector<const serve::Metrics*> registries;
  for (int s = 0; s < kShards; ++s) {
    registries.push_back(&router.shard(s).metrics());
  }
  AggregatedMetrics aggregated(registries);
  serve::Metrics merged;
  aggregated.MergeInto(&merged);
  EXPECT_EQ(merged.enqueued.load(),
            static_cast<long>(kEnqueuers) * kPerEnqueuer);
  EXPECT_EQ(merged.completed.load(), completed);
  EXPECT_EQ(merged.enqueued.load() + merged.migrated_in.load(),
            merged.completed.load() + merged.rejected.load() +
                merged.shed.load() + merged.shutdown_refused.load() +
                merged.migrated_out.load());
  // Migration never loses or duplicates: ins and outs cancel cluster-wide.
  EXPECT_EQ(merged.migrated_in.load(), merged.migrated_out.load());
  EXPECT_EQ(merged.migrated_in.load(), router.migrated());

  // The JSON snapshot carries all three sections.
  const std::string json = router.MetricsJson();
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"placement\": \"least\""), std::string::npos);
  router.Shutdown();
}

TEST_F(ShardRouterTest, ManualClockRebalanceTickMovesHotToCold) {
  // Deterministic router-level migration: freeze the shard workers out of
  // the picture by loading far more work than single workers can start,
  // then drive RebalanceOnce by hand under a ManualClock and watch the
  // migration counters move hot -> cold.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 41);
  std::vector<core::LabelingService> sessions =
      BuildShardSessions(agent.get(), /*shards=*/2, /*workers_per_shard=*/1);

  ManualClock clock(5.0);
  RouterOptions options;
  options.serve.workers = 1;
  options.serve.max_resident_per_worker = 1;
  options.serve.queue_capacity = 256;
  options.serve.clock = &clock;
  options.max_migrate_per_tick = 64;
  // All keys collapse onto one shard: the worst-case placement skew.
  class PinnedPlacement final : public Placement {
   public:
    int ShardFor(const RouteKey&, const ShardLoadView&) override { return 0; }
    const char* name() const override { return "pinned"; }
  } pinned;
  options.placement = &pinned;
  ShardRouter router(Pointers(sessions), options);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(router.Enqueue(core::WorkItem::Stored(i % 48)));
  }
  // Everything routed to shard 0; its single worker holds one resident
  // item, so nearly all of it is still queued.
  EXPECT_EQ(router.routed(0), 64);
  EXPECT_EQ(router.routed(1), 0);
  const size_t hot_before = router.QueueDepth(0);
  const size_t cold_before = router.QueueDepth(1);
  EXPECT_GT(hot_before, cold_before);

  clock.Advance(1.0);
  const int moved = router.RebalanceOnce();
  EXPECT_GT(moved, 0);
  EXPECT_EQ(router.migrated(), moved);
  EXPECT_EQ(router.shard(0).metrics().migrated_out.load(), moved);
  EXPECT_EQ(router.shard(1).metrics().migrated_in.load(), moved);

  for (std::future<ServeResult>& future : futures) {
    EXPECT_EQ(future.get().status, ServeStatus::kOk);
  }
  router.Drain();
  router.Shutdown();
}

}  // namespace
}  // namespace ams::route
