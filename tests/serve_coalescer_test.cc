// Tests of serve::ForwardCoalescer — the cross-worker / cross-shard
// Q-forward rendezvous. The load-bearing property throughout is parity:
// coalescing only changes WHO issues the forward, never what lands in any
// DecisionPlane slot, so every outcome must match the per-stepper path
// exactly (Q rows are a pure function of the state and every participant
// serves a frozen clone of the same predictor). Covered here:
//   - a single-handle round is exactly DecisionPlane::Prefetch (lockstep
//     stepper pair, outcomes compared field-for-field),
//   - two steppers holding identical states dedup across the rendezvous
//     (gathered == 2 x unique, completions still exact),
//   - a coalescing ServerRuntime and a 4-shard coalescing ShardRouter serve
//     the same results as their non-coalescing twins under a ManualClock,
//     while the round accounting (metrics + router JSON) reports the
//     amortization,
//   - AMS_COALESCE environment parsing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "route/shard_router.h"
#include "serve/forward_coalescer.h"
#include "serve/metrics.h"
#include "serve/server_runtime.h"

namespace ams::serve {
namespace {

using Stepper = core::LabelingService::ItemStepper;

std::unique_ptr<rl::Agent> MakeAgent(const zoo::ModelZoo& zoo, uint64_t seed) {
  nn::MlpConfig config;
  config.input_dim = zoo.labels().total_labels();
  config.hidden_dims = {32};
  config.output_dim = zoo.num_models() + 1;
  return std::make_unique<rl::Agent>(std::make_unique<nn::Mlp>(config, seed),
                                     nn::NetKind::kMlp);
}

/// Field-for-field equality of two label outcomes. Exact double comparison
/// is the point: coalescing promises bitwise-identical Q rows, hence
/// identical action choices, hence identical schedules.
void ExpectSameOutcome(const core::LabelOutcome& a, const core::LabelOutcome& b,
                       int item) {
  EXPECT_EQ(a.recall, b.recall) << "item " << item;
  EXPECT_EQ(a.schedule.value, b.schedule.value) << "item " << item;
  EXPECT_EQ(a.schedule.num_executions, b.schedule.num_executions)
      << "item " << item;
  EXPECT_EQ(a.schedule.makespan_s, b.schedule.makespan_s) << "item " << item;
}

class ForwardCoalescerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // These tests compare coalescing ON against coalescing OFF explicitly;
    // an ambient AMS_COALESCE=1 (the CI two-pass run) would silently flip
    // the "off" twins on. Pin it off for the suite, restore after.
    const char* env = std::getenv("AMS_COALESCE");
    saved_env_ = env != nullptr ? new std::string(env) : nullptr;
    unsetenv("AMS_COALESCE");
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MirFlickr25(), zoo_->labels(), 48, 31));
    oracle_ = new data::Oracle(zoo_, dataset_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete dataset_;
    delete zoo_;
    if (saved_env_ != nullptr) {
      setenv("AMS_COALESCE", saved_env_->c_str(), 1);
      delete saved_env_;
      saved_env_ = nullptr;
    }
  }

  static core::LabelingService BuildSession(rl::Agent* agent, int workers) {
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8000.0;
    return core::LabelingServiceBuilder(zoo_)
        .WithOracle(oracle_)
        .WithPredictor(agent)
        .WithMode(core::ExecutionMode::kParallel)
        .WithConstraints(constraints)
        .WithWorkers(workers)
        .Build();
  }

  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
  static data::Oracle* oracle_;
  static std::string* saved_env_;
};

zoo::ModelZoo* ForwardCoalescerTest::zoo_ = nullptr;
data::Dataset* ForwardCoalescerTest::dataset_ = nullptr;
data::Oracle* ForwardCoalescerTest::oracle_ = nullptr;
std::string* ForwardCoalescerTest::saved_env_ = nullptr;

TEST_F(ForwardCoalescerTest, SingleHandleRoundMatchesPrefetchExactly) {
  // Two steppers over the same session, same items, ticked in lockstep on
  // one thread: one forwards through a solo coalescer round (active
  // membership of 1, so ExecuteRound never blocks), the other through the
  // plain Prefetch path. Every completion must be identical.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 7);
  core::LabelingService session = BuildSession(agent.get(), 2);
  std::unique_ptr<Stepper> coalesced = session.NewItemStepper(0);
  std::unique_ptr<Stepper> plain = session.NewItemStepper(1);

  ForwardCoalescer coalescer;
  Metrics metrics;
  ForwardCoalescer::Handle* handle = coalescer.NewHandle(&metrics, 0);
  coalesced->AttachForwardExecutor(handle);
  handle->Activate();

  constexpr int kItems = 10;
  std::vector<Stepper::Completion> done_coalesced;
  std::vector<Stepper::Completion> done_plain;
  for (int i = 0; i < kItems; ++i) {
    coalesced->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
    plain->Admit(core::WorkItem::Stored(i), static_cast<uint64_t>(i));
  }
  constexpr int kTickBound = 10000;
  for (int t = 0; !coalesced->idle() || !plain->idle(); ++t) {
    ASSERT_LT(t, kTickBound) << "steppers did not converge";
    if (!coalesced->idle()) coalesced->Tick(&done_coalesced);
    if (!plain->idle()) plain->Tick(&done_plain);
  }
  handle->Deactivate();

  ASSERT_EQ(done_coalesced.size(), static_cast<size_t>(kItems));
  ASSERT_EQ(done_plain.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    // Both steppers admit items in the same order, and completion order is
    // deterministic for identical Q rows.
    EXPECT_EQ(done_coalesced[static_cast<size_t>(i)].ticket,
              done_plain[static_cast<size_t>(i)].ticket);
    ExpectSameOutcome(done_coalesced[static_cast<size_t>(i)].outcome,
                      done_plain[static_cast<size_t>(i)].outcome, i);
  }
  // The solo membership still runs real rounds with real accounting. Even
  // one participant dedups: distinct resident items sharing a label state
  // (every item starts all-zero) collapse to one row, exactly as the plain
  // Prefetch path collapses them.
  EXPECT_GT(coalescer.rounds(), 0);
  EXPECT_GE(coalescer.gathered_rows(), coalescer.unique_rows());
  EXPECT_GT(coalescer.unique_rows(), 0);
  EXPECT_EQ(metrics.coalesced_rounds.load(), coalescer.rounds());
}

TEST_F(ForwardCoalescerTest, TwoSteppersDedupIdenticalStatesAcrossRendezvous) {
  // Two steppers on two threads, each holding the SAME stored item: their
  // label states advance in lockstep through identical Q rows, so every
  // non-empty round gathers two identical states and forwards ONE row —
  // the cross-participant dedup the coalescer exists for.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 11);
  core::LabelingService session = BuildSession(agent.get(), 2);
  std::unique_ptr<Stepper> first = session.NewItemStepper(0);
  std::unique_ptr<Stepper> second = session.NewItemStepper(1);

  ForwardCoalescer coalescer;
  ForwardCoalescer::Handle* handle_first = coalescer.NewHandle(nullptr, 0);
  ForwardCoalescer::Handle* handle_second = coalescer.NewHandle(nullptr, 0);
  first->AttachForwardExecutor(handle_first);
  second->AttachForwardExecutor(handle_second);

  // Reference outcome from an untouched third stepper.
  core::LabelingService reference_session = BuildSession(agent.get(), 1);
  std::unique_ptr<Stepper> reference = reference_session.NewItemStepper(0);
  std::vector<Stepper::Completion> reference_done;
  reference->Admit(core::WorkItem::Stored(3), 3);
  int reference_ticks = 0;
  while (!reference->idle()) {
    reference->Tick(&reference_done);
    ++reference_ticks;
  }
  ASSERT_EQ(reference_done.size(), 1u);
  ASSERT_GE(reference_ticks, 2) << "item too trivial to exercise rounds";

  // Both threads tick exactly the same number of times (the item completes
  // on the same tick index on both — identical state machines), so every
  // rendezvous pairs tick k of one with tick k of the other and neither
  // can strand the barrier.
  const int kTicks = reference_ticks + 2;  // a couple of idle (empty) rounds
  std::vector<Stepper::Completion> done_first;
  std::vector<Stepper::Completion> done_second;
  first->Admit(core::WorkItem::Stored(3), 3);
  second->Admit(core::WorkItem::Stored(3), 3);
  // Both handles join BEFORE either thread ticks: otherwise the first
  // thread could run solo rounds until the second activates, skewing which
  // tick pairs with which and breaking the exact-dedup arithmetic below.
  handle_first->Activate();
  handle_second->Activate();
  const auto drive = [kTicks](Stepper* stepper,
                              ForwardCoalescer::Handle* handle,
                              std::vector<Stepper::Completion>* done) {
    for (int t = 0; t < kTicks; ++t) stepper->Tick(done);
    handle->Deactivate();
  };
  std::thread other(drive, second.get(), handle_second, &done_second);
  drive(first.get(), handle_first, &done_first);
  other.join();

  ASSERT_EQ(done_first.size(), 1u);
  ASSERT_EQ(done_second.size(), 1u);
  ExpectSameOutcome(done_first[0].outcome, reference_done[0].outcome, 3);
  ExpectSameOutcome(done_second[0].outcome, reference_done[0].outcome, 3);

  EXPECT_GT(coalescer.rounds(), 0);
  EXPECT_GT(coalescer.unique_rows(), 0);
  // Every non-empty round pooled two copies of one state: the dedup must
  // have halved the forwarded rows exactly.
  EXPECT_EQ(coalescer.gathered_rows(), 2 * coalescer.unique_rows());
  EXPECT_GE(coalescer.max_batch_rows(), 1);
}

TEST_F(ForwardCoalescerTest, CoalescedRuntimeServesIdenticalResults) {
  // End to end through ServerRuntime: the coalesce_forwards=true twin must
  // produce exactly the results of the default runtime, while its metrics
  // registry picks up the round accounting.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 13);
  constexpr int kItems = 24;

  const auto serve_all = [&](bool coalesce, Metrics* metrics_out) {
    core::LabelingService session = BuildSession(agent.get(), 2);
    ServeOptions options;
    options.workers = 2;
    options.coalesce_forwards = coalesce;
    ServerRuntime runtime(&session, options);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < kItems; ++i) {
      futures.push_back(runtime.Enqueue(core::WorkItem::Stored(i)));
    }
    std::vector<core::LabelOutcome> outcomes;
    for (std::future<ServeResult>& future : futures) {
      ServeResult result = future.get();
      EXPECT_EQ(result.status, ServeStatus::kOk);
      outcomes.push_back(std::move(result.outcome));
    }
    runtime.Drain();
    if (metrics_out != nullptr) metrics_out->MergeFrom(runtime.metrics());
    runtime.Shutdown();
    return outcomes;
  };

  const std::vector<core::LabelOutcome> plain = serve_all(false, nullptr);
  Metrics coalesced_metrics;
  const std::vector<core::LabelOutcome> coalesced =
      serve_all(true, &coalesced_metrics);
  ASSERT_EQ(plain.size(), coalesced.size());
  for (int i = 0; i < kItems; ++i) {
    ExpectSameOutcome(coalesced[static_cast<size_t>(i)],
                      plain[static_cast<size_t>(i)], i);
  }
  EXPECT_GT(coalesced_metrics.coalesced_rounds.load(), 0);
  EXPECT_GE(coalesced_metrics.coalesced_gathered_rows.load(),
            coalesced_metrics.coalesced_rows.load());
  EXPECT_GT(coalesced_metrics.coalesced_rows.load(), 0);
  EXPECT_GE(coalesced_metrics.coalesced_rows_max.load(), 1);
}

TEST_F(ForwardCoalescerTest, FourShardRouterCoalescedParityAndAccounting) {
  // The cross-shard path: four shard runtimes joined to ONE router-owned
  // coalescer, under a ManualClock for deterministic stamps. Results must
  // match the non-coalescing router exactly; the aggregate metrics and the
  // router JSON must surface the cluster round accounting.
  std::unique_ptr<rl::Agent> agent = MakeAgent(*zoo_, 17);
  constexpr int kShards = 4;
  constexpr int kItems = 32;

  const auto route_all = [&](bool coalesce, std::string* json_out) {
    ManualClock clock(100.0);
    std::vector<core::LabelingService> sessions;
    sessions.reserve(kShards);
    for (int s = 0; s < kShards; ++s) {
      sessions.push_back(BuildSession(agent.get(), 1));
    }
    std::vector<core::LabelingService*> session_ptrs;
    for (core::LabelingService& session : sessions) {
      session_ptrs.push_back(&session);
    }
    route::RouterOptions options;
    options.serve.workers = 1;
    options.serve.clock = &clock;
    options.serve.coalesce_forwards = coalesce;
    route::ShardRouter router(session_ptrs, options);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < kItems; ++i) {
      futures.push_back(router.Enqueue(core::WorkItem::Stored(i)));
    }
    std::vector<core::LabelOutcome> outcomes;
    for (std::future<ServeResult>& future : futures) {
      ServeResult result = future.get();
      EXPECT_EQ(result.status, ServeStatus::kOk);
      outcomes.push_back(std::move(result.outcome));
    }
    router.Drain();
    Metrics merged;
    for (int s = 0; s < kShards; ++s) {
      merged.MergeFrom(router.shard(s).metrics());
    }
    if (coalesce) {
      // Each round is recorded once, by its leader shard: the cross-shard
      // sum is the cluster total, never a multiple of it.
      EXPECT_GT(merged.coalesced_rounds.load(), 0);
      EXPECT_GE(merged.coalesced_gathered_rows.load(),
                merged.coalesced_rows.load());
      EXPECT_GT(merged.coalesced_rows.load(), 0);
    } else {
      EXPECT_EQ(merged.coalesced_rounds.load(), 0);
    }
    if (json_out != nullptr) *json_out = router.MetricsJson();
    router.Shutdown();
    return outcomes;
  };

  const std::vector<core::LabelOutcome> plain = route_all(false, nullptr);
  std::string json;
  const std::vector<core::LabelOutcome> coalesced = route_all(true, &json);
  ASSERT_EQ(plain.size(), coalesced.size());
  for (int i = 0; i < kItems; ++i) {
    // Placement is deterministic (consistent hash over (tenant, item)), so
    // item i lands on the same shard in both runs and the outcomes must be
    // exactly equal — coalescing across shards changes nothing observable.
    ExpectSameOutcome(coalesced[static_cast<size_t>(i)],
                      plain[static_cast<size_t>(i)], i);
  }
  EXPECT_NE(json.find("\"coalescer\""), std::string::npos)
      << "router JSON must carry the cluster coalescer block";
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
}

TEST(CoalesceEnvTest, ParsesAmsCoalesceValues) {
  const char* saved = std::getenv("AMS_COALESCE");
  const std::string saved_value = saved != nullptr ? saved : "";
  unsetenv("AMS_COALESCE");
  EXPECT_FALSE(CoalesceForwardsFromEnv());
  setenv("AMS_COALESCE", "1", 1);
  EXPECT_TRUE(CoalesceForwardsFromEnv());
  setenv("AMS_COALESCE", "on", 1);
  EXPECT_TRUE(CoalesceForwardsFromEnv());
  setenv("AMS_COALESCE", "true", 1);
  EXPECT_TRUE(CoalesceForwardsFromEnv());
  setenv("AMS_COALESCE", "0", 1);
  EXPECT_FALSE(CoalesceForwardsFromEnv());
  setenv("AMS_COALESCE", "off", 1);
  EXPECT_FALSE(CoalesceForwardsFromEnv());
  if (saved != nullptr) {
    setenv("AMS_COALESCE", saved_value.c_str(), 1);
  } else {
    unsetenv("AMS_COALESCE");
  }
}

}  // namespace
}  // namespace ams::serve
