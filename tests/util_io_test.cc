// Unit tests of the ASCII table / CSV reporters and the binary serializer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/serialize.h"
#include "util/table.h"

namespace ams::util {
namespace {

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 3), "-1.500");
}

TEST(AsciiTableTest, AlignsColumnsAndCountsRows) {
  AsciiTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow("longer_label", {2.5}, 1);
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_label"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  // All lines after the separator have equal or shorter width than header
  // line extended by padding; basic sanity: at least 4 lines.
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // header, separator, two rows
}

TEST(AsciiTableTest, RowWidthMismatchDies) {
  AsciiTable table;
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only_one"}), "row width mismatch");
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ams_test.csv";
  WriteCsv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}

TEST(SerializeTest, RoundTripAllTypes) {
  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("hello world");
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f});
  writer.WriteDoubleVector({-1.0, 0.5});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(&buffer);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(reader.ReadU64(), 0x123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI32(), -42);
  EXPECT_FLOAT_EQ(reader.ReadF32(), 1.5f);
  EXPECT_DOUBLE_EQ(reader.ReadF64(), -2.25);
  EXPECT_EQ(reader.ReadString(), "hello world");
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(reader.ReadDoubleVector(), (std::vector<double>{-1.0, 0.5}));
  EXPECT_TRUE(reader.ok());
}

TEST(SerializeTest, TruncatedInputFailsGracefully) {
  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  writer.WriteU64(1000);  // claims a 1000-element vector follows
  BinaryReader reader(&buffer);
  const std::vector<float> v = reader.ReadFloatVector();
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(v.empty());
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(reader.ReadU32(), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, EmptyContainers) {
  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  writer.WriteString("");
  writer.WriteFloatVector({});
  BinaryReader reader(&buffer);
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadFloatVector().empty());
  EXPECT_TRUE(reader.ok());
}

}  // namespace
}  // namespace ams::util
