// Unit tests of the deterministic RNG substrate: reproducibility, range
// contracts and (coarse) distributional correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace ams::util {
namespace {

class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedTest, SameSeedSameStream) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST_P(RngSeedTest, DifferentSeedsDiverge) {
  Rng a(GetParam());
  Rng b(GetParam() + 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST_P(RngSeedTest, NextDoubleInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST_P(RngSeedTest, UniformIntInclusiveRangeAndCoverage) {
  Rng rng(GetParam());
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u) << "all 8 values should appear in 2000 draws";
}

TEST_P(RngSeedTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(GetParam());
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull, 123456789ull,
                                           0xFFFFFFFFFFFFFFFFull));

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(RngTest, LogNormalIsPositiveWithCorrectMedian) {
  Rng rng(12);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) {
    const double x = rng.LogNormal(std::log(0.2), 0.1);
    ASSERT_GT(x, 0.0);
    values.push_back(x);
  }
  std::nth_element(values.begin(), values.begin() + 10000, values.end());
  EXPECT_NEAR(values[10000], 0.2, 0.01);  // median = exp(mu)
}

TEST(RngTest, CategoricalFrequenciesMatchWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 2.0, 0.0, 5.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.Categorical(weights))];
  EXPECT_EQ(counts[2], 0) << "zero-weight category must never be drawn";
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 8.0, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 8.0, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 5.0 / 8.0, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original) << "50 elements should virtually never fix-point";
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (int s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 20);
    }
  }
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
}

TEST(DiscreteDistributionTest, SampleMatchesProbability) {
  const std::vector<double> weights = {3.0, 1.0, 6.0};
  DiscreteDistribution dist(weights);
  EXPECT_EQ(dist.size(), 3);
  EXPECT_NEAR(dist.Probability(0), 0.3, 1e-12);
  EXPECT_NEAR(dist.Probability(1), 0.1, 1e-12);
  EXPECT_NEAR(dist.Probability(2), 0.6, 1e-12);
  Rng rng(16);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(dist.Sample(&rng))];
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(counts[static_cast<size_t>(k)] / static_cast<double>(n),
                dist.Probability(k), 0.02);
  }
}

TEST(ZipfWeightsTest, DecreasingAndNormalizable) {
  const std::vector<double> w = ZipfWeights(100, 0.8);
  ASSERT_EQ(w.size(), 100u);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(HashCombineTest, OrderSensitiveAndStable) {
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 0), HashCombine(0, 1));
}

}  // namespace
}  // namespace ams::util
