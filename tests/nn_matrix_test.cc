// Unit tests of the matrix kernels against naive reference implementations.

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "nn/matrix.h"
#include "util/rng.h"

namespace ams::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, util::Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = static_cast<float>(rng->Uniform(-2.0, 2.0));
    }
  }
  return m;
}

// Naive O(n^3) reference multiply.
Matrix NaiveGemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (int k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      out.At(i, j) = acc;
    }
  }
  return out;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_NEAR(a.At(r, c), b.At(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  Matrix out;
  Gemm(a, b, &out);
  ExpectNear(out, NaiveGemm(a, b));
}

TEST_P(GemmShapeTest, TransAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 31 + k * 17 + n));
  const Matrix a = RandomMatrix(m, k, &rng);  // we compute a^T * b
  const Matrix b = RandomMatrix(m, n, &rng);
  Matrix out;
  GemmTransA(a, b, &out);
  // Reference: transpose a explicitly.
  Matrix at(k, m);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < k; ++c) at.At(c, r) = a.At(r, c);
  }
  ExpectNear(out, NaiveGemm(at, b));
}

TEST_P(GemmShapeTest, TransBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 13 + k * 7 + n * 3));
  const Matrix a = RandomMatrix(m, n, &rng);  // we compute a * b^T
  const Matrix b = RandomMatrix(k, n, &rng);
  Matrix out;
  GemmTransB(a, b, &out);
  Matrix bt(n, k);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < n; ++c) bt.At(c, r) = b.At(r, c);
  }
  ExpectNear(out, NaiveGemm(a, bt));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(8, 16, 8),
                      std::make_tuple(32, 64, 31), std::make_tuple(3, 100, 2)));

TEST(MatrixTest, GemmWithSparseZeroRowsSkipsCorrectly) {
  // The Gemm kernel has a fast path skipping zero entries (binary states);
  // verify it is semantically transparent.
  util::Rng rng(77);
  Matrix a(4, 50);
  a.Fill(0.0f);
  a.At(1, 3) = 1.0f;
  a.At(2, 49) = 1.0f;
  a.At(2, 0) = 1.0f;
  const Matrix b = RandomMatrix(50, 6, &rng);
  Matrix out;
  Gemm(a, b, &out);
  ExpectNear(out, NaiveGemm(a, b));
  for (int j = 0; j < 6; ++j) {
    EXPECT_FLOAT_EQ(out.At(0, j), 0.0f);
    EXPECT_FLOAT_EQ(out.At(3, j), 0.0f);
  }
}

TEST(MatrixTest, GemmVariantsOverwritePoisonedOutput) {
  // Regression for the zero-init contract (nn/matrix.h): Gemm and
  // GemmTransA zero-fill before accumulating; GemmTransB writes every
  // element exactly once. Either way, stale output contents — here NaN
  // poison in a correctly-sized buffer, the shape Resize() won't clear —
  // must never leak into results.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  util::Rng rng(123);

  const Matrix a = RandomMatrix(5, 9, &rng);
  const Matrix b = RandomMatrix(9, 7, &rng);
  Matrix out(5, 7);
  out.Fill(nan);
  Gemm(a, b, &out);
  ExpectNear(out, NaiveGemm(a, b));

  const Matrix a2 = RandomMatrix(9, 5, &rng);  // a2^T * b2
  const Matrix b2 = RandomMatrix(9, 7, &rng);
  Matrix at(5, 9);
  for (int r = 0; r < 9; ++r) {
    for (int c = 0; c < 5; ++c) at.At(c, r) = a2.At(r, c);
  }
  Matrix out2(5, 7);
  out2.Fill(nan);
  GemmTransA(a2, b2, &out2);
  ExpectNear(out2, NaiveGemm(at, b2));

  const Matrix a3 = RandomMatrix(5, 9, &rng);  // a3 * b3^T
  const Matrix b3 = RandomMatrix(7, 9, &rng);
  Matrix bt(9, 7);
  for (int r = 0; r < 7; ++r) {
    for (int c = 0; c < 9; ++c) bt.At(c, r) = b3.At(r, c);
  }
  Matrix out3(5, 7);
  out3.Fill(nan);
  GemmTransB(a3, b3, &out3);
  ExpectNear(out3, NaiveGemm(a3, bt));
}

TEST(MatrixTest, AddRowVectorBroadcasts) {
  Matrix m(2, 3);
  m.Fill(1.0f);
  AddRowVector(&m, {0.5f, -1.0f, 2.0f});
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.At(0, 2), 3.0f);
}

TEST(MatrixTest, ReluForwardAndBackward) {
  Matrix in(1, 4);
  in.At(0, 0) = -1.0f;
  in.At(0, 1) = 0.0f;
  in.At(0, 2) = 2.0f;
  in.At(0, 3) = -0.1f;
  Matrix out;
  ReluForward(in, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.At(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(out.At(0, 3), 0.0f);

  Matrix grad_out(1, 4);
  grad_out.Fill(1.0f);
  Matrix grad_in;
  ReluBackward(in, grad_out, &grad_in);
  EXPECT_FLOAT_EQ(grad_in.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in.At(0, 1), 0.0f);  // gradient at exactly 0 is 0
  EXPECT_FLOAT_EQ(grad_in.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(grad_in.At(0, 3), 0.0f);
}

TEST(MatrixTest, ColumnSums) {
  Matrix m(3, 2);
  m.At(0, 0) = 1.0f;
  m.At(1, 0) = 2.0f;
  m.At(2, 0) = 3.0f;
  m.At(0, 1) = -1.0f;
  m.At(1, 1) = 0.5f;
  m.At(2, 1) = 0.5f;
  std::vector<float> sums;
  ColumnSums(m, &sums);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_FLOAT_EQ(sums[0], 6.0f);
  EXPECT_FLOAT_EQ(sums[1], 0.0f);
}

TEST(MatrixTest, FromRowVectorAndCopyRow) {
  const Matrix row = Matrix::FromRowVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
  Matrix dst(2, 3);
  dst.CopyRowFrom(row, 0, 1);
  EXPECT_FLOAT_EQ(dst.At(1, 2), 3.0f);
  EXPECT_FLOAT_EQ(dst.At(0, 0), 0.0f);
}

TEST(MatrixTest, RandomNormalHasRoughlyCorrectSpread) {
  util::Rng rng(5);
  const Matrix m = Matrix::RandomNormal(100, 100, 0.5f, &rng);
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      sum += m.At(r, c);
      sum_sq += static_cast<double>(m.At(r, c)) * m.At(r, c);
    }
  }
  const double n = 10000.0;
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 0.25, 0.02);
}

}  // namespace
}  // namespace ams::nn
