// Model-checking harness for serve::AdmissionQueue: a single-threaded
// reference model reimplements the queue's documented pop-order and
// admission contract (within-class ordering — EDF, value density, or
// deadline-feasible hybrid — weighted round-robin with a starvation guard
// between classes, per-class caps and overload policies, and per-tenant
// quotas: queued caps, in-flight caps, rate token buckets) in the simplest
// possible form, and randomized seeded op sequences — enqueue / pop /
// batch-pop / tenant-finish / clock-advance / close across every overload
// policy, priority class, ordering mode and tenant — are replayed against
// both implementations, asserting exactly equal pop order and exactly
// equal shed/reject/quota decisions at every step. The harness also checks
// the starvation bound (a non-empty class is served at least once within
// every K consecutive pops) on every trace, and locks two regressions:
// a uniform-class kEdf workload must pop in exactly the legacy single-band
// EDF order, and kEdf mode must ignore stamped value densities bit-exactly
// (the PR-4 behavior). A final multi-threaded stress run checks
// conservation (every request resolves exactly once) under real
// concurrency — the ordering claims stay single-threaded where they are
// well-defined.
//
// The RouterModel section extends the harness to a multi-shard setup: N
// (real AdmissionQueue, ReferenceQueue) pairs behind a real
// route::ConsistentHashPlacement, with a migrate op that replays
// route::PlanRebalance + StealBatch/Requeue against the model's
// Steal/Requeue mirrors — covering placement determinism, migration
// conservation (no request lost or duplicated across shards), and
// per-tenant quota integrity across shards.
//
// The per-config seed count is 25 by default and env-overridable via
// AMS_MODEL_SEEDS (the nightly CI soak runs 500).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "route/placement.h"
#include "route/shard_router.h"
#include "serve/admission_queue.h"
#include "serve/clock.h"
#include "serve/priority_class.h"

namespace ams::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int SeedsPerConfig() {
  const char* env = std::getenv("AMS_MODEL_SEEDS");
  if (env == nullptr) return 25;
  const int value = std::atoi(env);
  return value > 0 ? value : 25;
}

// --- the reference model ---------------------------------------------------

/// What the model predicts for one Enqueue.
struct ModelAdmit {
  AdmitOutcome outcome = AdmitOutcome::kAccepted;
  /// Sequences of shed victims, in eviction order (a quota shed may be
  /// followed by a capacity shed on the same enqueue).
  std::vector<uint64_t> victims;
};

/// Single-threaded executable spec of AdmissionQueue. Deliberately naive:
/// plain sorted scans instead of heaps, one explicit branch per contract
/// clause, no locks — an independent implementation to diff the real queue
/// against, not a copy of it.
class ReferenceQueue {
 public:
  struct Request {
    uint64_t sequence = 0;
    int cls = 0;
    int tenant = 0;
    double deadline_s = kInf;
    double value_density = 0.0;
  };

  ReferenceQueue(const AdmissionConfig& config, const Clock* clock)
      : config_(config),
        clock_(clock),
        forced_after_(config.starvation_bound - (kNumPriorityClasses - 1)),
        track_tenants_(!config.tenant_quotas.empty()) {}

  ModelAdmit Enqueue(uint64_t sequence, int cls, double slack_s, int tenant,
                     double density) {
    ModelAdmit result;
    const double now = clock_->NowSeconds();
    const double deadline = now + slack_s;
    if (closed_) {
      result.outcome = AdmitOutcome::kClosed;
      return result;
    }
    const TenantQuota* quota =
        track_tenants_ ? config_.tenant_quotas.QuotaFor(tenant) : nullptr;
    TenantState* state = track_tenants_ ? &tenants_[tenant] : nullptr;
    if (quota != nullptr && quota->rate_per_s > 0.0) {
      const double burst = quota->burst > 0.0 ? quota->burst : 1.0;
      // Mirrors the real queue's non-negative refill clamp (a no-op here:
      // the single-threaded harness's stamps are monotone).
      const double refill_s = std::max(now, state->last_refill_s);
      if (!state->bucket_started) {
        state->tokens = burst;
        state->bucket_started = true;
      } else {
        state->tokens = std::min(
            burst, state->tokens +
                       (refill_s - state->last_refill_s) * quota->rate_per_s);
      }
      state->last_refill_s = refill_s;
      if (state->tokens < 1.0) {
        result.outcome = AdmitOutcome::kRejectedQuota;
        return result;
      }
      // Spent by passing the gate (not by admission), like the real queue.
      state->tokens -= 1.0;
    }
    const OverloadPolicy policy = PolicyFor(cls);
    if (!TenantHasRoom(quota, state)) {
      // The single-threaded harness never enqueues when kBlock would park.
      EXPECT_NE(policy, OverloadPolicy::kBlock);
      const bool queued_breach =
          quota->max_queued > 0 && state->queued >= quota->max_queued;
      if (policy == OverloadPolicy::kReject || !queued_breach) {
        result.outcome = AdmitOutcome::kRejectedQuota;
        return result;
      }
      // Shed the tenant's own queued work: least important class first,
      // never a class more important than the arrival.
      int victim_class = -1;
      for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
        if (BandHasTenant(c, tenant)) {
          victim_class = c;
          break;
        }
      }
      if (victim_class < 0) {
        result.outcome = AdmitOutcome::kRejectedQuota;
        return result;
      }
      const Request victim = EvictVictim(victim_class, tenant);
      --state->queued;
      result.victims.push_back(victim.sequence);
    }
    if (!HasSpace(cls)) {
      EXPECT_NE(policy, OverloadPolicy::kBlock);
      if (policy == OverloadPolicy::kReject) {
        result.outcome = AdmitOutcome::kRejected;
        return result;
      }
      const int class_cap =
          config_.classes[static_cast<size_t>(cls)].queue_capacity;
      int victim_class = -1;
      if (class_cap > 0 &&
          bands_[static_cast<size_t>(cls)].size() >=
              static_cast<size_t>(class_cap)) {
        victim_class = cls;
      } else {
        for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
          if (!bands_[static_cast<size_t>(c)].empty()) {
            victim_class = c;
            break;
          }
        }
      }
      if (victim_class < 0) {
        result.outcome = AdmitOutcome::kRejected;
        return result;
      }
      const Request victim = EvictVictim(victim_class, /*tenant_filter=*/-1);
      if (track_tenants_) --tenants_[victim.tenant].queued;
      result.victims.push_back(victim.sequence);
    }
    if (state != nullptr) ++state->queued;
    bands_[static_cast<size_t>(cls)].push_back(
        {sequence, cls, tenant, deadline, density});
    return result;
  }

  /// Predicts the next pop: which request comes out, updating the
  /// round-robin / starvation / tenant accounting exactly per the contract.
  std::optional<Request> Pop() {
    if (TotalSize() == 0) return std::nullopt;
    // 1. Starvation guard.
    int chosen = -1;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (bands_[static_cast<size_t>(c)].empty() ||
          passed_over_[static_cast<size_t>(c)] < forced_after_) {
        continue;
      }
      if (chosen < 0 || passed_over_[static_cast<size_t>(c)] >
                            passed_over_[static_cast<size_t>(chosen)]) {
        chosen = c;
      }
    }
    // 2. Weighted round-robin.
    if (chosen < 0) {
      if (rr_credit_ > 0 && Weight(rr_class_) > 0 &&
          !bands_[static_cast<size_t>(rr_class_)].empty()) {
        chosen = rr_class_;
        --rr_credit_;
      } else {
        for (int step = 1; step <= kNumPriorityClasses; ++step) {
          const int c = (rr_class_ + step) % kNumPriorityClasses;
          if (Weight(c) > 0 && !bands_[static_cast<size_t>(c)].empty()) {
            rr_class_ = c;
            rr_credit_ = Weight(c) - 1;
            chosen = c;
            break;
          }
        }
      }
    }
    // 3. Strict fallback.
    if (chosen < 0) {
      for (int c = 0; c < kNumPriorityClasses; ++c) {
        if (!bands_[static_cast<size_t>(c)].empty()) {
          chosen = c;
          break;
        }
      }
    }
    // Starvation accounting on the pre-pop band contents.
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (c == chosen || bands_[static_cast<size_t>(c)].empty()) {
        passed_over_[static_cast<size_t>(c)] = 0;
      } else {
        ++passed_over_[static_cast<size_t>(c)];
      }
    }
    // Within the chosen class: the band's effective order.
    std::vector<Request>& band = bands_[static_cast<size_t>(chosen)];
    const size_t best = SelectWithin(chosen, clock_->NowSeconds());
    const Request popped = band[best];
    band.erase(band.begin() + static_cast<long>(best));
    if (track_tenants_) {
      TenantState& state = tenants_[popped.tenant];
      --state.queued;
      ++state.in_flight;
    }
    return popped;
  }

  /// Mirrors AdmissionQueue::TenantFinished.
  void Finish(int tenant) {
    if (!track_tenants_) return;
    --tenants_[tenant].in_flight;
  }

  void Close() { closed_ = true; }

  /// Mirrors AdmissionQueue::StealBatch: the last-served requests leave
  /// first — least important non-empty class, latest (deadline, sequence)
  /// under kEdf, lowest density (ties: newest) under value ordering — with
  /// tenant queued counts released and round-robin/starvation state
  /// untouched. Empty on a closed queue.
  std::vector<Request> Steal(int max_requests) {
    std::vector<Request> stolen;
    if (closed_) return stolen;
    while (static_cast<int>(stolen.size()) < max_requests &&
           TotalSize() > 0) {
      int cls = -1;
      for (int c = kNumPriorityClasses - 1; c >= 0; --c) {
        if (!bands_[static_cast<size_t>(c)].empty()) {
          cls = c;
          break;
        }
      }
      std::vector<Request>& band = bands_[static_cast<size_t>(cls)];
      const WithinClassOrder order = OrderFor(cls);
      size_t chosen = 0;
      for (size_t i = 1; i < band.size(); ++i) {
        if (order == WithinClassOrder::kEdf) {
          if (band[i].deadline_s > band[chosen].deadline_s ||
              (band[i].deadline_s == band[chosen].deadline_s &&
               band[i].sequence > band[chosen].sequence)) {
            chosen = i;
          }
        } else if (band[i].value_density < band[chosen].value_density ||
                   (band[i].value_density == band[chosen].value_density &&
                    band[i].sequence > band[chosen].sequence)) {
          chosen = i;
        }
      }
      const Request victim = band[chosen];
      band.erase(band.begin() + static_cast<long>(chosen));
      if (track_tenants_) --tenants_[victim.tenant].queued;
      stolen.push_back(victim);
    }
    return stolen;
  }

  /// Mirrors AdmissionQueue::Requeue: gate-free re-admission of a migrated
  /// request with all stamps preserved; false iff closed.
  bool Requeue(const Request& request) {
    if (closed_) return false;
    if (track_tenants_) ++tenants_[request.tenant].queued;
    bands_[static_cast<size_t>(request.cls)].push_back(request);
    return true;
  }

  OverloadPolicy PolicyFor(int cls) const {
    const std::optional<OverloadPolicy>& per_class =
        config_.classes[static_cast<size_t>(cls)].overload;
    return per_class.has_value() ? *per_class : config_.overload;
  }

  WithinClassOrder OrderFor(int cls) const {
    const std::optional<WithinClassOrder>& per_class =
        config_.classes[static_cast<size_t>(cls)].order;
    return per_class.has_value() ? *per_class : config_.within_class_order;
  }

  bool HasSpace(int cls) const {
    if (TotalSize() >= static_cast<size_t>(config_.capacity)) return false;
    const int class_cap =
        config_.classes[static_cast<size_t>(cls)].queue_capacity;
    return class_cap == 0 ||
           bands_[static_cast<size_t>(cls)].size() <
               static_cast<size_t>(class_cap);
  }

  /// Whether an enqueue for `tenant` would be admitted without parking
  /// (kBlock) — the harness's "skip this op" guard.
  bool TenantHasRoomNow(int tenant) const {
    if (!track_tenants_) return true;
    const TenantQuota* quota = config_.tenant_quotas.QuotaFor(tenant);
    const auto it = tenants_.find(tenant);
    return TenantHasRoom(quota,
                         it == tenants_.end() ? nullptr : &it->second);
  }

  size_t TotalSize() const {
    size_t total = 0;
    for (const std::vector<Request>& band : bands_) total += band.size();
    return total;
  }

  size_t BandSize(int cls) const {
    return bands_[static_cast<size_t>(cls)].size();
  }

  int TenantQueued(int tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.queued;
  }

  int TenantInFlight(int tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.in_flight;
  }

  bool closed() const { return closed_; }
  bool tracks_tenants() const { return track_tenants_; }

 private:
  struct TenantState {
    int queued = 0;
    int in_flight = 0;
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool bucket_started = false;
  };

  int Weight(int cls) const {
    return config_.classes[static_cast<size_t>(cls)].weight;
  }

  bool TenantHasRoom(const TenantQuota* quota,
                     const TenantState* state) const {
    if (quota == nullptr || state == nullptr) return true;
    if (quota->max_queued > 0 && state->queued >= quota->max_queued) {
      return false;
    }
    return quota->max_in_flight == 0 ||
           state->in_flight < quota->max_in_flight;
  }

  bool BandHasTenant(int cls, int tenant) const {
    for (const Request& request : bands_[static_cast<size_t>(cls)]) {
      if (request.tenant == tenant) return true;
    }
    return false;
  }

  /// The request the band's order serves next.
  size_t SelectWithin(int cls, double now_s) const {
    const std::vector<Request>& band = bands_[static_cast<size_t>(cls)];
    const WithinClassOrder order = OrderFor(cls);
    if (order == WithinClassOrder::kEdf) {
      size_t best = 0;
      for (size_t i = 1; i < band.size(); ++i) {
        if (band[i].deadline_s < band[best].deadline_s ||
            (band[i].deadline_s == band[best].deadline_s &&
             band[i].sequence < band[best].sequence)) {
          best = i;
        }
      }
      return best;
    }
    if (order == WithinClassOrder::kValueDensity) {
      size_t best = 0;
      for (size_t i = 1; i < band.size(); ++i) {
        if (band[i].value_density > band[best].value_density ||
            (band[i].value_density == band[best].value_density &&
             band[i].sequence < band[best].sequence)) {
          best = i;
        }
      }
      return best;
    }
    // kHybrid: densest still-feasible request; EDF when everything is late.
    size_t best = band.size();
    for (size_t i = 0; i < band.size(); ++i) {
      if (band[i].deadline_s < now_s) continue;
      if (best == band.size() ||
          band[i].value_density > band[best].value_density ||
          (band[i].value_density == band[best].value_density &&
           (band[i].deadline_s < band[best].deadline_s ||
            (band[i].deadline_s == band[best].deadline_s &&
             band[i].sequence < band[best].sequence)))) {
        best = i;
      }
    }
    if (best < band.size()) return best;
    best = 0;
    for (size_t i = 1; i < band.size(); ++i) {
      if (band[i].deadline_s < band[best].deadline_s ||
          (band[i].deadline_s == band[best].deadline_s &&
           band[i].sequence < band[best].sequence)) {
        best = i;
      }
    }
    return best;
  }

  /// Removes and returns the shed victim of class `cls` (optionally
  /// restricted to one tenant): oldest under kEdf, lowest density (ties:
  /// oldest) under value ordering.
  Request EvictVictim(int cls, int tenant_filter) {
    std::vector<Request>& band = bands_[static_cast<size_t>(cls)];
    const WithinClassOrder order = OrderFor(cls);
    size_t chosen = band.size();
    for (size_t i = 0; i < band.size(); ++i) {
      if (tenant_filter >= 0 && band[i].tenant != tenant_filter) continue;
      if (chosen == band.size()) {
        chosen = i;
        continue;
      }
      if (order == WithinClassOrder::kEdf) {
        if (band[i].sequence < band[chosen].sequence) chosen = i;
      } else if (band[i].value_density < band[chosen].value_density ||
                 (band[i].value_density == band[chosen].value_density &&
                  band[i].sequence < band[chosen].sequence)) {
        chosen = i;
      }
    }
    const Request victim = band[chosen];
    band.erase(band.begin() + static_cast<long>(chosen));
    return victim;
  }

  const AdmissionConfig config_;
  const Clock* clock_;
  const int forced_after_;
  const bool track_tenants_;
  std::array<std::vector<Request>, kNumPriorityClasses> bands_;
  std::array<int, kNumPriorityClasses> passed_over_{};
  std::map<int, TenantState> tenants_;
  int rr_class_ = kNumPriorityClasses - 1;
  int rr_credit_ = 0;
  bool closed_ = false;
};

// --- the harness -----------------------------------------------------------

QueuedRequest MakeRequest(uint64_t sequence, double slack_s, int cls,
                          int tenant = 0, double density = 0.0) {
  QueuedRequest request;
  request.sequence = sequence;
  request.slack_s = slack_s;
  request.priority_class = static_cast<PriorityClass>(cls);
  request.tenant_id = tenant;
  request.value_density = density;
  return request;
}

/// Tracks the starvation bound along a pop trace: a class with queued work
/// may be passed over at most K-1 consecutive pops.
class StarvationChecker {
 public:
  explicit StarvationChecker(int bound_k) : bound_k_(bound_k) {}

  /// `queued_before` = per-class band sizes before the pop; `served` = the
  /// popped class.
  void OnPop(const std::array<size_t, kNumPriorityClasses>& queued_before,
             int served) {
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (c == served || queued_before[static_cast<size_t>(c)] == 0) {
        passed_[static_cast<size_t>(c)] = 0;
      } else {
        ++passed_[static_cast<size_t>(c)];
        ASSERT_LE(passed_[static_cast<size_t>(c)], bound_k_ - 1)
            << "class " << c << " starved past the K = " << bound_k_
            << " bound";
      }
    }
  }

 private:
  const int bound_k_;
  std::array<int, kNumPriorityClasses> passed_{};
};

struct NamedConfig {
  std::string name;
  AdmissionConfig config;
};

std::vector<NamedConfig> PropertyConfigs() {
  std::vector<NamedConfig> configs;
  {
    AdmissionConfig c;  // default weights 8:4:1
    c.capacity = 8;
    c.overload = OverloadPolicy::kReject;
    configs.push_back({"default_reject", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 6;
    c.overload = OverloadPolicy::kShedOldest;
    c.starvation_bound = 3;  // tightest feasible bound
    c.classes[0].weight = 1;
    c.classes[1].weight = 1;
    c.classes[2].weight = 1;
    configs.push_back({"equal_weights_shed_k3", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 7;
    c.overload = OverloadPolicy::kShedOldest;
    c.starvation_bound = 4;
    c.classes[0].weight = 1;  // strict priority: background classes drain
    c.classes[1].weight = 0;  // via the starvation guard only
    c.classes[2].weight = 0;
    c.classes[2].queue_capacity = 3;
    configs.push_back({"strict_priority_capped_batch", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 8;
    c.overload = OverloadPolicy::kBlock;
    c.starvation_bound = 5;
    c.classes[0].weight = 4;
    c.classes[1].weight = 2;
    c.classes[2].weight = 1;
    configs.push_back({"block_weighted_k5", c});
  }
  {
    AdmissionConfig c;  // mixed per-class policies
    c.capacity = 8;
    c.overload = OverloadPolicy::kBlock;
    c.starvation_bound = 6;
    c.classes[2].queue_capacity = 2;
    c.classes[2].overload = OverloadPolicy::kReject;
    c.classes[0].overload = OverloadPolicy::kShedOldest;
    configs.push_back({"mixed_class_policies", c});
  }
  {
    AdmissionConfig c;  // value-density ordering everywhere
    c.capacity = 8;
    c.overload = OverloadPolicy::kReject;
    c.within_class_order = WithinClassOrder::kValueDensity;
    configs.push_back({"value_density_reject", c});
  }
  {
    AdmissionConfig c;  // hybrid ordering + shedding (lowest-density victims)
    c.capacity = 6;
    c.overload = OverloadPolicy::kShedOldest;
    c.within_class_order = WithinClassOrder::kHybrid;
    c.starvation_bound = 4;
    configs.push_back({"hybrid_shed_k4", c});
  }
  {
    AdmissionConfig c;  // per-class order overrides over a hybrid default
    c.capacity = 8;
    c.overload = OverloadPolicy::kReject;
    c.within_class_order = WithinClassOrder::kHybrid;
    c.classes[0].order = WithinClassOrder::kEdf;
    c.classes[2].order = WithinClassOrder::kValueDensity;
    configs.push_back({"mixed_order_overrides", c});
  }
  {
    AdmissionConfig c;  // every tenant capped at 2 queued, shed policy
    c.capacity = 8;
    c.overload = OverloadPolicy::kShedOldest;
    c.tenant_quotas.default_quota = TenantQuota{2, 0, 0.0, 0.0};
    configs.push_back({"tenant_queued_caps_shed", c});
  }
  {
    AdmissionConfig c;  // in-flight caps: admission depends on TenantFinished
    c.capacity = 8;
    c.overload = OverloadPolicy::kReject;
    c.tenant_quotas.default_quota = TenantQuota{0, 2, 0.0, 0.0};
    configs.push_back({"tenant_inflight_caps_reject", c});
  }
  {
    AdmissionConfig c;  // tenant 0 rate-limited, value ordering on top
    c.capacity = 8;
    c.overload = OverloadPolicy::kShedOldest;
    c.within_class_order = WithinClassOrder::kValueDensity;
    c.tenant_quotas.per_tenant[0] = TenantQuota{0, 0, 1.0, 3.0};
    c.tenant_quotas.per_tenant[1] = TenantQuota{2, 2, 0.0, 0.0};
    configs.push_back({"rate_limited_tenant_value_order", c});
  }
  return configs;
}

/// One randomized episode: drive the real queue and the model through the
/// same seeded op sequence and require identical observable behavior at
/// every step.
void RunEpisode(const NamedConfig& named, uint64_t seed, int num_ops) {
  ManualClock clock;
  AdmissionConfig config = named.config;
  config.clock = &clock;
  AdmissionQueue real(config);
  ReferenceQueue model(config, &clock);
  StarvationChecker starvation(config.starvation_bound);

  std::mt19937_64 rng(seed);
  const double slacks[] = {0.5, 1.0, 1.0, 2.0, 4.0, kInf};  // ties included
  const double densities[] = {0.25, 0.5, 1.0, 1.0, 2.0, 8.0};  // ties included
  constexpr int kTenants = 3;
  uint64_t next_sequence = 0;
  /// Popped-but-unfinished requests, FIFO: (sequence, tenant).
  std::deque<std::pair<uint64_t, int>> outstanding;
  const std::string context = named.name + " seed " + std::to_string(seed);

  const auto pop_once = [&]() {
    std::array<size_t, kNumPriorityClasses> queued_before{};
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      queued_before[static_cast<size_t>(c)] = model.BandSize(c);
    }
    const std::optional<ReferenceQueue::Request> expected = model.Pop();
    QueuedRequest popped;
    const bool got = real.TryPop(&popped);
    ASSERT_EQ(got, expected.has_value()) << context;
    if (!got) return;
    ASSERT_EQ(popped.sequence, expected->sequence) << context;
    ASSERT_EQ(static_cast<int>(popped.priority_class), expected->cls)
        << context;
    ASSERT_EQ(popped.tenant_id, expected->tenant) << context;
    outstanding.emplace_back(expected->sequence, expected->tenant);
    starvation.OnPop(queued_before, expected->cls);
  };
  const auto finish_once = [&]() {
    if (outstanding.empty()) return;
    const int tenant = outstanding.front().second;
    outstanding.pop_front();
    real.TenantFinished(tenant);
    model.Finish(tenant);
  };

  for (int op = 0; op < num_ops; ++op) {
    const uint64_t roll = rng() % 100;
    if (roll < 10) clock.Advance(static_cast<double>(rng() % 3));
    if (roll < 55) {
      const int cls = static_cast<int>(rng() % kNumPriorityClasses);
      const int tenant = static_cast<int>(rng() % kTenants);
      const double slack = slacks[rng() % std::size(slacks)];
      const double density = densities[rng() % std::size(densities)];
      if (!model.closed() &&
          (!model.HasSpace(cls) || !model.TenantHasRoomNow(tenant)) &&
          model.PolicyFor(cls) == OverloadPolicy::kBlock) {
        // A kBlock enqueue would park forever without a concurrent worker;
        // free a slot (a finish unblocks in-flight caps, a pop unblocks
        // queue space) and skip the enqueue.
        if (!outstanding.empty()) {
          finish_once();
        } else {
          pop_once();
          if (::testing::Test::HasFatalFailure()) return;
        }
        continue;
      }
      const uint64_t sequence = next_sequence++;
      const ModelAdmit expected =
          model.Enqueue(sequence, cls, slack, tenant, density);
      std::vector<QueuedRequest> bounced;
      const AdmitOutcome outcome = real.Enqueue(
          MakeRequest(sequence, slack, cls, tenant, density), &bounced);
      ASSERT_EQ(outcome, expected.outcome) << context;
      if (outcome == AdmitOutcome::kAccepted) {
        ASSERT_EQ(bounced.size(), expected.victims.size()) << context;
        for (size_t v = 0; v < bounced.size(); ++v) {
          ASSERT_EQ(bounced[v].sequence, expected.victims[v]) << context;
        }
      } else {
        ASSERT_EQ(bounced.size(), 1u) << context;
        ASSERT_EQ(bounced[0].sequence, sequence) << context;
        ASSERT_TRUE(expected.victims.empty()) << context;
      }
    } else if (roll < 75) {
      pop_once();
      if (::testing::Test::HasFatalFailure()) return;
    } else if (roll < 87) {
      const int batch = static_cast<int>(rng() % 4) + 1;
      for (int i = 0; i < batch; ++i) {
        // Batch pops must span classes exactly like successive TryPops; the
        // real queue's TryPopBatch is compared one element at a time.
        pop_once();
        if (::testing::Test::HasFatalFailure()) return;
      }
    } else if (roll < 95) {
      finish_once();
    } else if (roll >= 97 && !model.closed()) {
      real.Close();
      model.Close();
    }
    ASSERT_EQ(real.size(), model.TotalSize()) << context;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      ASSERT_EQ(real.class_size(static_cast<PriorityClass>(c)),
                model.BandSize(c))
          << context << " class " << c;
    }
    if (model.tracks_tenants()) {
      for (int t = 0; t < kTenants; ++t) {
        ASSERT_EQ(real.tenant_queued(t), model.TenantQueued(t))
            << context << " tenant " << t;
        ASSERT_EQ(real.tenant_in_flight(t), model.TenantInFlight(t))
            << context << " tenant " << t;
      }
    }
  }
  // Drain both completely and compare the tail order.
  while (model.TotalSize() > 0) {
    pop_once();
    if (::testing::Test::HasFatalFailure()) return;
  }
  QueuedRequest leftover;
  ASSERT_FALSE(real.TryPop(&leftover)) << context;
}

TEST(AdmissionModelTest, RandomizedOpSequencesMatchTheReferenceModel) {
  const int seeds_per_config = SeedsPerConfig();
  constexpr int kOpsPerEpisode = 400;
  for (const NamedConfig& named : PropertyConfigs()) {
    for (uint64_t seed = 1;
         seed <= static_cast<uint64_t>(seeds_per_config); ++seed) {
      RunEpisode(named, seed, kOpsPerEpisode);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(AdmissionModelTest, BatchPopsMatchTheModelAcrossClasses) {
  // Dedicated TryPopBatch-vs-model pass: fill with a class/deadline mix,
  // then drain through one big batch pop and compare against successive
  // model pops.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ManualClock clock;
    AdmissionConfig config;
    config.capacity = 32;
    config.overload = OverloadPolicy::kReject;
    config.clock = &clock;
    AdmissionQueue real(config);
    ReferenceQueue model(config, &clock);
    std::mt19937_64 rng(seed);
    const double slacks[] = {0.5, 1.0, 1.0, 3.0, kInf};
    for (uint64_t sequence = 0; sequence < 24; ++sequence) {
      const int cls = static_cast<int>(rng() % kNumPriorityClasses);
      const double slack = slacks[rng() % std::size(slacks)];
      model.Enqueue(sequence, cls, slack, /*tenant=*/0, /*density=*/0.0);
      std::vector<QueuedRequest> bounced;
      ASSERT_EQ(real.Enqueue(MakeRequest(sequence, slack, cls), &bounced),
                AdmitOutcome::kAccepted);
    }
    std::vector<QueuedRequest> drained;
    ASSERT_EQ(real.TryPopBatch(24, &drained), 24);
    for (const QueuedRequest& popped : drained) {
      const std::optional<ReferenceQueue::Request> expected = model.Pop();
      ASSERT_TRUE(expected.has_value());
      ASSERT_EQ(popped.sequence, expected->sequence) << "seed " << seed;
    }
  }
}

TEST(AdmissionModelTest, SingleClassWorkloadsReproduceLegacyEdfOrderExactly) {
  // The regression lock for the pre-priority-class queue: with every
  // request in one class, the pop order must be exactly the single-band
  // EDF order — sort by (deadline, admission sequence).
  for (const PriorityClass only_class :
       {PriorityClass::kInteractive, PriorityClass::kStandard,
        PriorityClass::kBatch}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      ManualClock clock;
      AdmissionConfig config;  // default weights — irrelevant with one class
      config.capacity = 64;
      config.overload = OverloadPolicy::kReject;
      config.clock = &clock;
      AdmissionQueue queue(config);
      std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(only_class) << 32));
      const double slacks[] = {0.25, 1.0, 1.0, 1.0, 2.0, 7.5, kInf, kInf};
      std::vector<std::pair<double, uint64_t>> expected;  // (deadline, seq)
      for (uint64_t sequence = 0; sequence < 48; ++sequence) {
        const double slack = slacks[rng() % std::size(slacks)];
        std::vector<QueuedRequest> bounced;
        ASSERT_EQ(
            queue.Enqueue(
                MakeRequest(sequence, slack, static_cast<int>(only_class)),
                &bounced),
            AdmitOutcome::kAccepted);
        expected.emplace_back(clock.NowSeconds() + slack, sequence);
        if (rng() % 4 == 0) clock.Advance(1.0);
      }
      std::stable_sort(expected.begin(), expected.end());
      QueuedRequest popped;
      for (const auto& [deadline, sequence] : expected) {
        ASSERT_TRUE(queue.TryPop(&popped));
        ASSERT_EQ(popped.sequence, sequence) << "seed " << seed;
        ASSERT_EQ(popped.deadline_s, deadline) << "seed " << seed;
      }
      ASSERT_FALSE(queue.TryPop(&popped));
    }
  }
}

TEST(AdmissionModelTest, KEdfModeIgnoresStampedDensitiesBitExactly) {
  // The PR-4 parity lock for the ordering seam: under kEdf (the default)
  // the queue must behave bit-identically whether or not requests carry
  // value densities and tenant ids — densities are inert payload until a
  // band opts into value ordering, and tenants are inert without quotas.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ManualClock clock_a, clock_b;
    AdmissionConfig config;
    config.capacity = 16;
    config.overload = OverloadPolicy::kShedOldest;
    AdmissionConfig config_a = config;
    config_a.clock = &clock_a;
    AdmissionConfig config_b = config;
    config_b.clock = &clock_b;
    AdmissionQueue plain(config_a);    // PR-4 style: no densities, tenant 0
    AdmissionQueue stamped(config_b);  // same stream with random stamps
    std::mt19937_64 rng(seed);
    const double slacks[] = {0.5, 1.0, 1.0, 2.0, kInf};
    uint64_t sequence = 0;
    for (int op = 0; op < 200; ++op) {
      const uint64_t roll = rng() % 100;
      if (roll < 10) {
        const double advance = static_cast<double>(rng() % 3);
        clock_a.Advance(advance);
        clock_b.Advance(advance);
      }
      if (roll < 60) {
        const int cls = static_cast<int>(rng() % kNumPriorityClasses);
        const double slack = slacks[rng() % std::size(slacks)];
        const int tenant = static_cast<int>(rng() % 4);
        const double density = static_cast<double>(rng() % 8);
        std::vector<QueuedRequest> bounced_plain, bounced_stamped;
        const AdmitOutcome a = plain.Enqueue(
            MakeRequest(sequence, slack, cls), &bounced_plain);
        const AdmitOutcome b = stamped.Enqueue(
            MakeRequest(sequence, slack, cls, tenant, density),
            &bounced_stamped);
        ASSERT_EQ(a, b) << "seed " << seed;
        ASSERT_EQ(bounced_plain.size(), bounced_stamped.size());
        for (size_t v = 0; v < bounced_plain.size(); ++v) {
          ASSERT_EQ(bounced_plain[v].sequence, bounced_stamped[v].sequence)
              << "seed " << seed;
        }
        ++sequence;
      } else {
        QueuedRequest popped_plain, popped_stamped;
        const bool got_plain = plain.TryPop(&popped_plain);
        ASSERT_EQ(got_plain, stamped.TryPop(&popped_stamped));
        if (got_plain) {
          ASSERT_EQ(popped_plain.sequence, popped_stamped.sequence)
              << "seed " << seed;
        }
      }
    }
  }
}

TEST(AdmissionModelTest, SaturatedHighPriorityStillDrainsBatchWithinKBound) {
  // The acceptance scenario, deterministically: strict interactive-over-
  // batch with a saturating interactive stream; queued batch work must
  // drain within |batch| * K pops, and batch is never passed over K times.
  constexpr int kBound = 5;
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 64;
  config.overload = OverloadPolicy::kReject;
  config.starvation_bound = kBound;
  config.classes[0].weight = 1;
  config.classes[1].weight = 0;
  config.classes[2].weight = 0;
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  uint64_t sequence = 0;
  constexpr int kBatchRequests = 6;
  for (int i = 0; i < kBatchRequests; ++i) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 2), &bounced),
              AdmitOutcome::kAccepted);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 0), &bounced),
              AdmitOutcome::kAccepted);
  }
  int pops = 0;
  int drained = 0;
  int since_batch = 0;
  QueuedRequest popped;
  while (drained < kBatchRequests) {
    ASSERT_TRUE(queue.TryPop(&popped));
    ++pops;
    if (popped.priority_class == PriorityClass::kBatch) {
      ++drained;
      since_batch = 0;
    } else {
      ASSERT_LT(++since_batch, kBound) << "batch starved past K";
      // Keep the interactive band saturated.
      ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 0), &bounced),
                AdmitOutcome::kAccepted);
    }
  }
  EXPECT_LE(pops, kBatchRequests * kBound);
}

// --- the router model: multi-shard traces with migration -------------------

/// Read-only depth view over the real shard queues, as the router exposes
/// to its Placement.
class RealQueueLoadView final : public route::ShardLoadView {
 public:
  explicit RealQueueLoadView(
      const std::vector<std::unique_ptr<AdmissionQueue>>* shards)
      : shards_(shards) {}
  int num_shards() const override {
    return static_cast<int>(shards_->size());
  }
  size_t QueueDepth(int shard) const override {
    return (*shards_)[static_cast<size_t>(shard)]->size();
  }

 private:
  const std::vector<std::unique_ptr<AdmissionQueue>>* shards_;
};

/// One randomized multi-shard episode: kShards (real, model) queue pairs
/// behind a real consistent-hash placement, driven through the same seeded
/// enqueue / pop / migrate / finish / advance / close trace, asserting per
/// step that every shard's observable state matches its model — and at the
/// end that every admitted request left the cluster exactly once (popped or
/// shed, never lost, never duplicated by migration).
void RunRouterEpisode(const NamedConfig& named, uint64_t seed, int num_ops) {
  constexpr int kShards = 3;
  constexpr int kTenants = 3;
  ManualClock clock;
  AdmissionConfig config = named.config;
  config.clock = &clock;
  std::vector<std::unique_ptr<AdmissionQueue>> real;
  std::vector<std::unique_ptr<ReferenceQueue>> model;
  for (int s = 0; s < kShards; ++s) {
    real.push_back(std::make_unique<AdmissionQueue>(config));
    model.push_back(std::make_unique<ReferenceQueue>(config, &clock));
  }
  const RealQueueLoadView load(&real);
  route::ConsistentHashPlacement placement;
  route::ConsistentHashPlacement replacement;  // a "restarted" placement
  std::array<StarvationChecker, kShards> starvation = {
      StarvationChecker(config.starvation_bound),
      StarvationChecker(config.starvation_bound),
      StarvationChecker(config.starvation_bound)};

  std::mt19937_64 rng(seed);
  const double slacks[] = {0.5, 1.0, 1.0, 2.0, 4.0, kInf};
  const double densities[] = {0.25, 0.5, 1.0, 1.0, 2.0, 8.0};
  uint64_t next_sequence = 0;
  /// Sequences admitted somewhere and not yet popped or shed. Migration
  /// must move entries between shards without touching this set.
  std::set<uint64_t> in_cluster;
  std::array<std::deque<std::pair<uint64_t, int>>, kShards> outstanding;
  const std::string context =
      named.name + " router seed " + std::to_string(seed);

  const auto pop_once = [&](int shard) {
    std::array<size_t, kNumPriorityClasses> queued_before{};
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      queued_before[static_cast<size_t>(c)] =
          model[static_cast<size_t>(shard)]->BandSize(c);
    }
    const std::optional<ReferenceQueue::Request> expected =
        model[static_cast<size_t>(shard)]->Pop();
    QueuedRequest popped;
    const bool got = real[static_cast<size_t>(shard)]->TryPop(&popped);
    ASSERT_EQ(got, expected.has_value()) << context << " shard " << shard;
    if (!got) return;
    ASSERT_EQ(popped.sequence, expected->sequence)
        << context << " shard " << shard;
    ASSERT_EQ(static_cast<int>(popped.priority_class), expected->cls)
        << context;
    ASSERT_EQ(popped.tenant_id, expected->tenant) << context;
    ASSERT_EQ(in_cluster.erase(expected->sequence), 1u)
        << context << ": popped a request not in the cluster (lost or "
        << "duplicated by migration)";
    outstanding[static_cast<size_t>(shard)].emplace_back(expected->sequence,
                                                         expected->tenant);
    starvation[static_cast<size_t>(shard)].OnPop(queued_before,
                                                 expected->cls);
  };
  const auto finish_once = [&](int shard) {
    if (outstanding[static_cast<size_t>(shard)].empty()) return;
    const int tenant = outstanding[static_cast<size_t>(shard)].front().second;
    outstanding[static_cast<size_t>(shard)].pop_front();
    real[static_cast<size_t>(shard)]->TenantFinished(tenant);
    model[static_cast<size_t>(shard)]->Finish(tenant);
  };
  const auto migrate_once = [&]() {
    std::vector<size_t> depths;
    for (const auto& shard : real) depths.push_back(shard->size());
    const route::RebalancePlan plan =
        route::PlanRebalance(depths, /*ratio=*/1.5, /*max_moves=*/4);
    if (plan.moves == 0) return;
    std::vector<QueuedRequest> stolen;
    const int got = real[static_cast<size_t>(plan.from)]->StealBatch(
        plan.moves, &stolen);
    const std::vector<ReferenceQueue::Request> expected =
        model[static_cast<size_t>(plan.from)]->Steal(plan.moves);
    ASSERT_EQ(static_cast<size_t>(got), expected.size()) << context;
    for (size_t i = 0; i < stolen.size(); ++i) {
      // Identical victim choice, stamps riding along.
      ASSERT_EQ(stolen[i].sequence, expected[i].sequence) << context;
      ASSERT_EQ(static_cast<int>(stolen[i].priority_class), expected[i].cls)
          << context;
      ASSERT_EQ(stolen[i].tenant_id, expected[i].tenant) << context;
      ASSERT_EQ(stolen[i].deadline_s, expected[i].deadline_s) << context;
      ASSERT_TRUE(model[static_cast<size_t>(plan.to)]->Requeue(expected[i]))
          << context;
      ASSERT_TRUE(
          real[static_cast<size_t>(plan.to)]->Requeue(std::move(stolen[i])))
          << context;
    }
  };

  for (int op = 0; op < num_ops; ++op) {
    const uint64_t roll = rng() % 100;
    if (roll < 10) clock.Advance(static_cast<double>(rng() % 3));
    if (roll < 50) {
      const int cls = static_cast<int>(rng() % kNumPriorityClasses);
      const int tenant = static_cast<int>(rng() % kTenants);
      const uint64_t key = rng() % 64;
      const double slack = slacks[rng() % std::size(slacks)];
      const double density = densities[rng() % std::size(densities)];
      const route::RouteKey route_key{tenant, key};
      const int shard = placement.ShardFor(route_key, load);
      // Placement determinism: an independently constructed placement (a
      // restarted router) must pick the same shard for the same key.
      ASSERT_EQ(shard, replacement.ShardFor(route_key, load)) << context;
      ReferenceQueue& shard_model = *model[static_cast<size_t>(shard)];
      if (!shard_model.closed() &&
          (!shard_model.HasSpace(cls) ||
           !shard_model.TenantHasRoomNow(tenant)) &&
          shard_model.PolicyFor(cls) == OverloadPolicy::kBlock) {
        // A kBlock enqueue would park; free a slot on that shard instead.
        if (!outstanding[static_cast<size_t>(shard)].empty()) {
          finish_once(shard);
        } else {
          pop_once(shard);
          if (::testing::Test::HasFatalFailure()) return;
        }
        continue;
      }
      const uint64_t sequence = next_sequence++;
      const ModelAdmit expected =
          shard_model.Enqueue(sequence, cls, slack, tenant, density);
      std::vector<QueuedRequest> bounced;
      const AdmitOutcome outcome = real[static_cast<size_t>(shard)]->Enqueue(
          MakeRequest(sequence, slack, cls, tenant, density), &bounced);
      ASSERT_EQ(outcome, expected.outcome) << context;
      if (outcome == AdmitOutcome::kAccepted) {
        in_cluster.insert(sequence);
        ASSERT_EQ(bounced.size(), expected.victims.size()) << context;
        for (size_t v = 0; v < bounced.size(); ++v) {
          ASSERT_EQ(bounced[v].sequence, expected.victims[v]) << context;
          ASSERT_EQ(in_cluster.erase(expected.victims[v]), 1u) << context;
        }
      } else {
        ASSERT_EQ(bounced.size(), 1u) << context;
        ASSERT_EQ(bounced[0].sequence, sequence) << context;
      }
    } else if (roll < 70) {
      pop_once(static_cast<int>(rng() % kShards));
      if (::testing::Test::HasFatalFailure()) return;
    } else if (roll < 85) {
      migrate_once();
      if (::testing::Test::HasFatalFailure()) return;
    } else if (roll < 95) {
      finish_once(static_cast<int>(rng() % kShards));
    } else if (roll >= 97 && !model[0]->closed()) {
      // The router's shutdown ordering closes every shard together.
      for (int s = 0; s < kShards; ++s) {
        real[static_cast<size_t>(s)]->Close();
        model[static_cast<size_t>(s)]->Close();
      }
    }
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(real[static_cast<size_t>(s)]->size(),
                model[static_cast<size_t>(s)]->TotalSize())
          << context << " shard " << s;
      for (int c = 0; c < kNumPriorityClasses; ++c) {
        ASSERT_EQ(
            real[static_cast<size_t>(s)]->class_size(
                static_cast<PriorityClass>(c)),
            model[static_cast<size_t>(s)]->BandSize(c))
            << context << " shard " << s << " class " << c;
      }
      if (model[0]->tracks_tenants()) {
        // Quota integrity across shards: migration moved each tenant's
        // queued counts with the requests.
        for (int t = 0; t < kTenants; ++t) {
          ASSERT_EQ(real[static_cast<size_t>(s)]->tenant_queued(t),
                    model[static_cast<size_t>(s)]->TenantQueued(t))
              << context << " shard " << s << " tenant " << t;
          ASSERT_EQ(real[static_cast<size_t>(s)]->tenant_in_flight(t),
                    model[static_cast<size_t>(s)]->TenantInFlight(t))
              << context << " shard " << s << " tenant " << t;
        }
      }
    }
  }
  // Drain every shard and account for every surviving request.
  for (int s = 0; s < kShards; ++s) {
    while (model[static_cast<size_t>(s)]->TotalSize() > 0) {
      pop_once(s);
      if (::testing::Test::HasFatalFailure()) return;
    }
    QueuedRequest leftover;
    ASSERT_FALSE(real[static_cast<size_t>(s)]->TryPop(&leftover)) << context;
  }
  // Migration conservation: nothing admitted is left unaccounted.
  ASSERT_TRUE(in_cluster.empty())
      << context << ": " << in_cluster.size()
      << " requests lost across migrations";
}

TEST(RouterModelTest, RandomizedMultiShardTracesMatchPerShardModels) {
  const int seeds_per_config = SeedsPerConfig();
  for (const NamedConfig& named : PropertyConfigs()) {
    for (int seed = 0; seed < seeds_per_config; ++seed) {
      RunRouterEpisode(named, static_cast<uint64_t>(seed) * 131 + 29, 400);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(RouterModelTest, MigrationPreservesWithinClassServiceOrder) {
  // Deterministic micro-trace: load one shard, migrate, and check the
  // destination serves the migrated requests in exactly the order the
  // source would have (EDF on preserved absolute deadlines).
  ManualClock clock(50.0);
  AdmissionConfig config;
  config.capacity = 16;
  config.overload = OverloadPolicy::kReject;
  config.clock = &clock;
  AdmissionQueue hot(config);
  AdmissionQueue cold(config);
  std::vector<QueuedRequest> bounced;
  for (const auto& [seq, slack] : std::vector<std::pair<uint64_t, double>>{
           {0, 9.0}, {1, 3.0}, {2, 7.0}, {3, 5.0}}) {
    ASSERT_EQ(hot.Enqueue(MakeRequest(seq, slack, /*cls=*/1), &bounced),
              AdmitOutcome::kAccepted);
  }
  clock.Advance(100.0);  // every deadline is now past; stamps must survive
  std::vector<QueuedRequest> stolen;
  ASSERT_EQ(hot.StealBatch(4, &stolen), 4);
  for (QueuedRequest& request : stolen) {
    ASSERT_TRUE(cold.Requeue(std::move(request)));
  }
  // EDF on the original deadlines: slack 3, 5, 7, 9 -> seq 1, 3, 2, 0.
  QueuedRequest popped;
  for (const uint64_t expected : {1u, 3u, 2u, 0u}) {
    ASSERT_TRUE(cold.TryPop(&popped));
    EXPECT_EQ(popped.sequence, expected);
  }
}

// --- deterministic ordering / quota contract tests -------------------------

TEST(AdmissionModelTest, DefaultConfigIsEdfWithNoQuotas) {
  // The configuration-default lock behind the PR-4 parity guarantee.
  const AdmissionConfig config;
  EXPECT_EQ(config.within_class_order, WithinClassOrder::kEdf);
  EXPECT_TRUE(config.tenant_quotas.empty());
  for (const ClassConfig& cls : config.classes) {
    EXPECT_FALSE(cls.order.has_value());
  }
}

TEST(AdmissionModelTest, ValueDensityOrderPopsDensestFirstWithFifoTies) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 8;
  config.overload = OverloadPolicy::kReject;
  config.within_class_order = WithinClassOrder::kValueDensity;
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  // Deadlines deliberately anti-correlated with density: seq 2 is the most
  // urgent but least dense, so EDF would pop it first and value order must
  // not.
  const struct {
    uint64_t seq;
    double slack;
    double density;
  } arrivals[] = {{0, 5.0, 1.0}, {1, 9.0, 4.0}, {2, 0.5, 0.5},
                  {3, 7.0, 4.0}, {4, 3.0, 2.0}};
  for (const auto& a : arrivals) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(a.seq, a.slack, /*cls=*/1,
                                        /*tenant=*/0, a.density),
                            &bounced),
              AdmitOutcome::kAccepted);
  }
  // Density order 4,4,2,1,0.5 with the FIFO tie between seq 1 and seq 3.
  for (const uint64_t want : {1u, 3u, 4u, 0u, 2u}) {
    QueuedRequest popped;
    ASSERT_TRUE(queue.TryPop(&popped));
    EXPECT_EQ(popped.sequence, want);
  }
}

TEST(AdmissionModelTest, HybridServesFeasibleDensityAndFallsBackToEdf) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 8;
  config.overload = OverloadPolicy::kReject;
  config.within_class_order = WithinClassOrder::kHybrid;
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  // All enqueued at t = 0: A expires at 1s, B at 100s, C at 100s.
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, 1.0, 1, 0, /*density=*/9.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, 100.0, 1, 0, /*density=*/1.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(2, 100.0, 1, 0, /*density=*/3.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  // t = 2: A is late. The densest FEASIBLE request (C) pops first — A's
  // higher density no longer counts, its slack no longer admits it.
  clock.Advance(2.0);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 2u);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 1u);
  // Only the late request remains: the EDF fallback drains it.
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 0u);
  // And when EVERYTHING is late, the band is pure EDF: earliest deadline
  // first regardless of density.
  ASSERT_EQ(queue.Enqueue(MakeRequest(3, 1.0, 1, 0, /*density=*/1.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(4, 2.0, 1, 0, /*density=*/9.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  clock.Advance(50.0);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 3u);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 4u);
}

TEST(AdmissionModelTest, ShedVictimIsLowestDensityUnderValueOrdering) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 2;
  config.overload = OverloadPolicy::kShedOldest;
  config.within_class_order = WithinClassOrder::kValueDensity;
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  // The OLDEST resident (seq 0) is also the densest; under value ordering
  // the shed victim is the lowest-density resident (seq 1) instead.
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, 1, 0, /*density=*/5.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, kInf, 1, 0, /*density=*/1.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(2, kInf, 1, 0, /*density=*/3.0),
                          &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 1u);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 0u);
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.sequence, 2u);
}

TEST(AdmissionModelTest, TenantQueuedCapShedsTheTenantsOwnOldestWork) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 16;
  config.overload = OverloadPolicy::kShedOldest;
  config.tenant_quotas.default_quota = TenantQuota{/*max_queued=*/2, 0, 0, 0};
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  // Tenant 3's work is untouchable by tenant 7's quota pressure.
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, 1, /*tenant=*/3), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, kInf, 1, /*tenant=*/7), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(2, kInf, 1, /*tenant=*/7), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.tenant_queued(7), 2);
  // Tenant 7 over its queued cap: the arrival displaces tenant 7's own
  // oldest request — the queue has plenty of global space.
  ASSERT_EQ(queue.Enqueue(MakeRequest(3, kInf, 1, /*tenant=*/7), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 1u);
  EXPECT_EQ(bounced[0].tenant_id, 7);
  EXPECT_EQ(queue.tenant_queued(7), 2);
  EXPECT_EQ(queue.tenant_queued(3), 1);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(AdmissionModelTest, TenantQueuedCapRejectsUnderRejectPolicy) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 16;
  config.overload = OverloadPolicy::kReject;
  config.tenant_quotas.per_tenant[5] = TenantQuota{/*max_queued=*/1, 0, 0, 0};
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, 1, /*tenant=*/5), &bounced),
            AdmitOutcome::kAccepted);
  // Over quota with an almost-empty queue: kRejectedQuota, not kRejected.
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, kInf, 1, /*tenant=*/5), &bounced),
            AdmitOutcome::kRejectedQuota);
  ASSERT_EQ(bounced.size(), 1u);
  EXPECT_EQ(bounced[0].sequence, 1u);
  // Unlisted tenants are unconstrained (no default quota configured).
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, kInf, 1, /*tenant=*/6), &bounced),
            AdmitOutcome::kAccepted);
}

TEST(AdmissionModelTest, TenantInFlightCapFreesOnTenantFinished) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 16;
  config.overload = OverloadPolicy::kReject;
  config.tenant_quotas.default_quota =
      TenantQuota{0, /*max_in_flight=*/1, 0, 0};
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, 1, /*tenant=*/4), &bounced),
            AdmitOutcome::kAccepted);
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(queue.tenant_in_flight(4), 1);
  // The tenant's single in-flight slot is taken; an in-flight breach is
  // never sheddable, so the arrival bounces kRejectedQuota.
  EXPECT_EQ(queue.Enqueue(MakeRequest(1, kInf, 1, /*tenant=*/4), &bounced),
            AdmitOutcome::kRejectedQuota);
  // Completion frees the slot and admission recovers.
  queue.TenantFinished(4);
  EXPECT_EQ(queue.tenant_in_flight(4), 0);
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, kInf, 1, /*tenant=*/4), &bounced),
            AdmitOutcome::kAccepted);
}

TEST(AdmissionModelTest, TokenBucketRefillsOnTheManualClock) {
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 16;
  config.overload = OverloadPolicy::kBlock;  // bucket rejects regardless
  config.tenant_quotas.per_tenant[9] =
      TenantQuota{0, 0, /*rate_per_s=*/2.0, /*burst=*/2.0};
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  // Burst of 2 admits, then the bucket is dry — even under kBlock the
  // arrival bounces kRejectedQuota (fail-fast rate control).
  ASSERT_EQ(queue.Enqueue(MakeRequest(0, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(1, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(2, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kRejectedQuota);
  // 0.5 s at 2/s refills one token.
  clock.Advance(0.5);
  EXPECT_EQ(queue.Enqueue(MakeRequest(3, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(4, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kRejectedQuota);
  // A long idle period clamps at the burst size, not the elapsed time.
  clock.Advance(100.0);
  ASSERT_EQ(queue.Enqueue(MakeRequest(5, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kAccepted);
  ASSERT_EQ(queue.Enqueue(MakeRequest(6, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kAccepted);
  EXPECT_EQ(queue.Enqueue(MakeRequest(7, kInf, 1, /*tenant=*/9), &bounced),
            AdmitOutcome::kRejectedQuota);
  // Other tenants never touch tenant 9's bucket.
  EXPECT_EQ(queue.Enqueue(MakeRequest(8, kInf, 1, /*tenant=*/2), &bounced),
            AdmitOutcome::kAccepted);
}

// --- concurrent conservation -----------------------------------------------

/// Multi-threaded interleavings: ordering is timing-dependent, but request
/// conservation is not — every enqueued sequence must surface exactly once
/// as a pop, a shed victim, a rejection, or a post-close refusal.
void RunConcurrentConservation(OverloadPolicy policy,
                               WithinClassOrder order,
                               bool with_quotas) {
  AdmissionConfig config;
  config.capacity = 8;
  config.overload = policy;
  config.within_class_order = order;
  config.starvation_bound = 4;
  if (with_quotas) {
    // Loose caps so kBlock enqueues always have a worker-side unblocker
    // (poppers call TenantFinished immediately: in-flight never saturates).
    config.tenant_quotas.default_quota = TenantQuota{6, 0, 0.0, 0.0};
  }
  AdmissionQueue queue(config);

  constexpr int kEnqueuers = 3;
  constexpr int kPoppers = 2;
  constexpr int kPerThread = 300;
  std::mutex mu;
  std::vector<uint64_t> popped, bounced_sequences;
  std::atomic<long> accepted{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kEnqueuers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      std::vector<uint64_t> local_bounced;
      long local_accepted = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t sequence =
            static_cast<uint64_t>(t) * kPerThread + static_cast<uint64_t>(i);
        const int cls = static_cast<int>(rng() % kNumPriorityClasses);
        const double slack = (rng() % 2 == 0) ? 1.0 : kInf;
        const int tenant = static_cast<int>(rng() % 2);
        const double density = static_cast<double>(rng() % 4);
        std::vector<QueuedRequest> bounced;
        const AdmitOutcome outcome = queue.Enqueue(
            MakeRequest(sequence, slack, cls, tenant, density), &bounced);
        if (outcome == AdmitOutcome::kAccepted) ++local_accepted;
        for (QueuedRequest& request : bounced) {
          local_bounced.push_back(request.sequence);
        }
      }
      accepted.fetch_add(local_accepted);
      std::lock_guard<std::mutex> lock(mu);
      bounced_sequences.insert(bounced_sequences.end(), local_bounced.begin(),
                               local_bounced.end());
    });
  }
  for (int t = 0; t < kPoppers; ++t) {
    threads.emplace_back([&] {
      std::vector<uint64_t> local_popped;
      QueuedRequest request;
      while (queue.WaitPop(&request)) {
        local_popped.push_back(request.sequence);
        queue.TenantFinished(request.tenant_id);
      }
      std::lock_guard<std::mutex> lock(mu);
      popped.insert(popped.end(), local_popped.begin(), local_popped.end());
    });
  }
  for (int t = 0; t < kEnqueuers; ++t) threads[static_cast<size_t>(t)].join();
  queue.Close();
  for (size_t t = kEnqueuers; t < threads.size(); ++t) threads[t].join();

  // Conservation: accepted requests either popped or were shed (bounced as
  // a victim of a later arrival); nothing is both, nothing vanishes.
  std::vector<uint64_t> resolved = popped;
  resolved.insert(resolved.end(), bounced_sequences.begin(),
                  bounced_sequences.end());
  std::sort(resolved.begin(), resolved.end());
  ASSERT_EQ(std::adjacent_find(resolved.begin(), resolved.end()),
            resolved.end())
      << "a request resolved twice";
  ASSERT_EQ(resolved.size(), static_cast<size_t>(kEnqueuers * kPerThread));
  // Every accepted request was eventually popped or shed; bounced covers
  // the rest (rejections and shed victims are disjoint sequence sets).
  ASSERT_EQ(popped.size() +
                (bounced_sequences.size() -
                 (static_cast<size_t>(kEnqueuers * kPerThread) -
                  static_cast<size_t>(accepted.load()))),
            static_cast<size_t>(accepted.load()));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderBlock) {
  RunConcurrentConservation(OverloadPolicy::kBlock, WithinClassOrder::kEdf,
                            /*with_quotas=*/false);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderReject) {
  RunConcurrentConservation(OverloadPolicy::kReject, WithinClassOrder::kEdf,
                            /*with_quotas=*/false);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderShedOldest) {
  RunConcurrentConservation(OverloadPolicy::kShedOldest,
                            WithinClassOrder::kEdf, /*with_quotas=*/false);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderValueOrderAndQuotas) {
  RunConcurrentConservation(OverloadPolicy::kShedOldest,
                            WithinClassOrder::kValueDensity,
                            /*with_quotas=*/true);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderHybridBlockAndQuotas) {
  RunConcurrentConservation(OverloadPolicy::kBlock, WithinClassOrder::kHybrid,
                            /*with_quotas=*/true);
}

}  // namespace
}  // namespace ams::serve
