// Model-checking harness for serve::AdmissionQueue: a single-threaded
// reference model reimplements the queue's documented pop-order and
// admission contract (EDF within a class, weighted round-robin with a
// starvation guard between classes, per-class caps and overload policies)
// in the simplest possible form, and randomized seeded op sequences —
// enqueue/pop/batch-pop/clock-advance/close/drain across every overload
// policy and priority class — are replayed against both implementations,
// asserting exactly equal pop order and exactly equal shed/reject
// decisions at every step. The harness also checks the starvation bound
// (a non-empty class is served at least once within every K consecutive
// pops) on every trace, and locks the single-class regression: a
// uniform-class workload must pop in exactly the legacy single-band EDF
// order. A final multi-threaded stress run checks conservation (every
// request resolves exactly once) under real concurrency — the ordering
// claims stay single-threaded where they are well-defined.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/admission_queue.h"
#include "serve/clock.h"
#include "serve/priority_class.h"

namespace ams::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- the reference model ---------------------------------------------------

/// What the model predicts for one Enqueue.
struct ModelAdmit {
  AdmitOutcome outcome = AdmitOutcome::kAccepted;
  /// Sequence of the shed victim, when the enqueue displaced one.
  std::optional<uint64_t> victim;
};

/// Single-threaded executable spec of AdmissionQueue. Deliberately naive:
/// plain sorted scans instead of heaps, one explicit branch per contract
/// clause, no locks — an independent implementation to diff the real queue
/// against, not a copy of it.
class ReferenceQueue {
 public:
  struct Request {
    uint64_t sequence = 0;
    int cls = 0;
    double deadline_s = kInf;
  };

  ReferenceQueue(const AdmissionConfig& config, const Clock* clock)
      : config_(config),
        clock_(clock),
        forced_after_(config.starvation_bound - (kNumPriorityClasses - 1)) {}

  ModelAdmit Enqueue(uint64_t sequence, int cls, double slack_s) {
    ModelAdmit result;
    const double deadline = clock_->NowSeconds() + slack_s;
    if (closed_) {
      result.outcome = AdmitOutcome::kClosed;
      return result;
    }
    if (!HasSpace(cls)) {
      const OverloadPolicy policy = PolicyFor(cls);
      // The single-threaded harness never enqueues into a full queue under
      // kBlock (that would park forever with no concurrent popper), so a
      // full queue here is kReject or kShedOldest.
      EXPECT_NE(policy, OverloadPolicy::kBlock);
      if (policy == OverloadPolicy::kReject) {
        result.outcome = AdmitOutcome::kRejected;
        return result;
      }
      const int class_cap = config_.classes[static_cast<size_t>(cls)].queue_capacity;
      int victim_class = -1;
      if (class_cap > 0 &&
          bands_[static_cast<size_t>(cls)].size() >=
              static_cast<size_t>(class_cap)) {
        victim_class = cls;
      } else {
        for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
          if (!bands_[static_cast<size_t>(c)].empty()) {
            victim_class = c;
            break;
          }
        }
      }
      if (victim_class < 0) {
        result.outcome = AdmitOutcome::kRejected;
        return result;
      }
      // Shed the oldest (smallest sequence) request of the victim class.
      std::vector<Request>& band = bands_[static_cast<size_t>(victim_class)];
      size_t oldest = 0;
      for (size_t i = 1; i < band.size(); ++i) {
        if (band[i].sequence < band[oldest].sequence) oldest = i;
      }
      result.victim = band[oldest].sequence;
      band.erase(band.begin() + static_cast<long>(oldest));
    }
    bands_[static_cast<size_t>(cls)].push_back({sequence, cls, deadline});
    return result;
  }

  /// Predicts the next pop: which request comes out, updating the
  /// round-robin / starvation accounting exactly per the contract.
  std::optional<Request> Pop() {
    if (TotalSize() == 0) return std::nullopt;
    // 1. Starvation guard.
    int chosen = -1;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (bands_[static_cast<size_t>(c)].empty() ||
          passed_over_[static_cast<size_t>(c)] < forced_after_) {
        continue;
      }
      if (chosen < 0 || passed_over_[static_cast<size_t>(c)] >
                            passed_over_[static_cast<size_t>(chosen)]) {
        chosen = c;
      }
    }
    // 2. Weighted round-robin.
    if (chosen < 0) {
      if (rr_credit_ > 0 && Weight(rr_class_) > 0 &&
          !bands_[static_cast<size_t>(rr_class_)].empty()) {
        chosen = rr_class_;
        --rr_credit_;
      } else {
        for (int step = 1; step <= kNumPriorityClasses; ++step) {
          const int c = (rr_class_ + step) % kNumPriorityClasses;
          if (Weight(c) > 0 && !bands_[static_cast<size_t>(c)].empty()) {
            rr_class_ = c;
            rr_credit_ = Weight(c) - 1;
            chosen = c;
            break;
          }
        }
      }
    }
    // 3. Strict fallback.
    if (chosen < 0) {
      for (int c = 0; c < kNumPriorityClasses; ++c) {
        if (!bands_[static_cast<size_t>(c)].empty()) {
          chosen = c;
          break;
        }
      }
    }
    // Starvation accounting on the pre-pop band contents.
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (c == chosen || bands_[static_cast<size_t>(c)].empty()) {
        passed_over_[static_cast<size_t>(c)] = 0;
      } else {
        ++passed_over_[static_cast<size_t>(c)];
      }
    }
    // EDF within the chosen class: earliest deadline, then sequence.
    std::vector<Request>& band = bands_[static_cast<size_t>(chosen)];
    size_t best = 0;
    for (size_t i = 1; i < band.size(); ++i) {
      if (band[i].deadline_s < band[best].deadline_s ||
          (band[i].deadline_s == band[best].deadline_s &&
           band[i].sequence < band[best].sequence)) {
        best = i;
      }
    }
    const Request popped = band[best];
    band.erase(band.begin() + static_cast<long>(best));
    return popped;
  }

  void Close() { closed_ = true; }

  OverloadPolicy PolicyFor(int cls) const {
    const std::optional<OverloadPolicy>& per_class =
        config_.classes[static_cast<size_t>(cls)].overload;
    return per_class.has_value() ? *per_class : config_.overload;
  }

  bool HasSpace(int cls) const {
    if (TotalSize() >= static_cast<size_t>(config_.capacity)) return false;
    const int class_cap =
        config_.classes[static_cast<size_t>(cls)].queue_capacity;
    return class_cap == 0 ||
           bands_[static_cast<size_t>(cls)].size() <
               static_cast<size_t>(class_cap);
  }

  size_t TotalSize() const {
    size_t total = 0;
    for (const std::vector<Request>& band : bands_) total += band.size();
    return total;
  }

  size_t BandSize(int cls) const {
    return bands_[static_cast<size_t>(cls)].size();
  }

  bool closed() const { return closed_; }

 private:
  int Weight(int cls) const {
    return config_.classes[static_cast<size_t>(cls)].weight;
  }

  const AdmissionConfig config_;
  const Clock* clock_;
  const int forced_after_;
  std::array<std::vector<Request>, kNumPriorityClasses> bands_;
  std::array<int, kNumPriorityClasses> passed_over_{};
  int rr_class_ = kNumPriorityClasses - 1;
  int rr_credit_ = 0;
  bool closed_ = false;
};

// --- the harness -----------------------------------------------------------

QueuedRequest MakeRequest(uint64_t sequence, double slack_s, int cls) {
  QueuedRequest request;
  request.sequence = sequence;
  request.slack_s = slack_s;
  request.priority_class = static_cast<PriorityClass>(cls);
  return request;
}

/// Tracks the starvation bound along a pop trace: a class with queued work
/// may be passed over at most K-1 consecutive pops.
class StarvationChecker {
 public:
  explicit StarvationChecker(int bound_k) : bound_k_(bound_k) {}

  /// `queued_before` = per-class band sizes before the pop; `served` = the
  /// popped class.
  void OnPop(const std::array<size_t, kNumPriorityClasses>& queued_before,
             int served) {
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (c == served || queued_before[static_cast<size_t>(c)] == 0) {
        passed_[static_cast<size_t>(c)] = 0;
      } else {
        ++passed_[static_cast<size_t>(c)];
        ASSERT_LE(passed_[static_cast<size_t>(c)], bound_k_ - 1)
            << "class " << c << " starved past the K = " << bound_k_
            << " bound";
      }
    }
  }

 private:
  const int bound_k_;
  std::array<int, kNumPriorityClasses> passed_{};
};

struct NamedConfig {
  std::string name;
  AdmissionConfig config;
};

std::vector<NamedConfig> PropertyConfigs() {
  std::vector<NamedConfig> configs;
  {
    AdmissionConfig c;  // default weights 8:4:1
    c.capacity = 8;
    c.overload = OverloadPolicy::kReject;
    configs.push_back({"default_reject", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 6;
    c.overload = OverloadPolicy::kShedOldest;
    c.starvation_bound = 3;  // tightest feasible bound
    c.classes[0].weight = 1;
    c.classes[1].weight = 1;
    c.classes[2].weight = 1;
    configs.push_back({"equal_weights_shed_k3", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 7;
    c.overload = OverloadPolicy::kShedOldest;
    c.starvation_bound = 4;
    c.classes[0].weight = 1;  // strict priority: background classes drain
    c.classes[1].weight = 0;  // via the starvation guard only
    c.classes[2].weight = 0;
    c.classes[2].queue_capacity = 3;
    configs.push_back({"strict_priority_capped_batch", c});
  }
  {
    AdmissionConfig c;
    c.capacity = 8;
    c.overload = OverloadPolicy::kBlock;
    c.starvation_bound = 5;
    c.classes[0].weight = 4;
    c.classes[1].weight = 2;
    c.classes[2].weight = 1;
    configs.push_back({"block_weighted_k5", c});
  }
  {
    AdmissionConfig c;  // mixed per-class policies
    c.capacity = 8;
    c.overload = OverloadPolicy::kBlock;
    c.starvation_bound = 6;
    c.classes[2].queue_capacity = 2;
    c.classes[2].overload = OverloadPolicy::kReject;
    c.classes[0].overload = OverloadPolicy::kShedOldest;
    configs.push_back({"mixed_class_policies", c});
  }
  return configs;
}

/// One randomized episode: drive the real queue and the model through the
/// same seeded op sequence and require identical observable behavior at
/// every step.
void RunEpisode(const NamedConfig& named, uint64_t seed, int num_ops) {
  ManualClock clock;
  AdmissionConfig config = named.config;
  config.clock = &clock;
  AdmissionQueue real(config);
  ReferenceQueue model(config, &clock);
  StarvationChecker starvation(config.starvation_bound);

  std::mt19937_64 rng(seed);
  const double slacks[] = {0.5, 1.0, 1.0, 2.0, 4.0, kInf};  // ties included
  uint64_t next_sequence = 0;
  const std::string context = named.name + " seed " + std::to_string(seed);

  const auto pop_once = [&]() {
    std::array<size_t, kNumPriorityClasses> queued_before{};
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      queued_before[static_cast<size_t>(c)] = model.BandSize(c);
    }
    const std::optional<ReferenceQueue::Request> expected = model.Pop();
    QueuedRequest popped;
    const bool got = real.TryPop(&popped);
    ASSERT_EQ(got, expected.has_value()) << context;
    if (!got) return;
    ASSERT_EQ(popped.sequence, expected->sequence) << context;
    ASSERT_EQ(static_cast<int>(popped.priority_class), expected->cls)
        << context;
    starvation.OnPop(queued_before, expected->cls);
  };

  for (int op = 0; op < num_ops; ++op) {
    const uint64_t roll = rng() % 100;
    if (roll < 10) clock.Advance(static_cast<double>(rng() % 3));
    if (roll < 55) {
      const int cls = static_cast<int>(rng() % kNumPriorityClasses);
      const double slack = slacks[rng() % std::size(slacks)];
      if (!model.closed() && !model.HasSpace(cls) &&
          model.PolicyFor(cls) == OverloadPolicy::kBlock) {
        // A kBlock enqueue into a full queue would park forever without a
        // concurrent popper; drain one slot instead.
        pop_once();
        if (::testing::Test::HasFatalFailure()) return;
        continue;
      }
      const uint64_t sequence = next_sequence++;
      const ModelAdmit expected = model.Enqueue(
          sequence, cls, slack);
      std::vector<QueuedRequest> bounced;
      const AdmitOutcome outcome =
          real.Enqueue(MakeRequest(sequence, slack, cls), &bounced);
      ASSERT_EQ(outcome, expected.outcome) << context;
      if (expected.victim.has_value()) {
        ASSERT_EQ(bounced.size(), 1u) << context;
        ASSERT_EQ(bounced[0].sequence, *expected.victim) << context;
      } else if (outcome != AdmitOutcome::kAccepted) {
        ASSERT_EQ(bounced.size(), 1u) << context;
        ASSERT_EQ(bounced[0].sequence, sequence) << context;
      } else {
        ASSERT_TRUE(bounced.empty()) << context;
      }
    } else if (roll < 80) {
      pop_once();
      if (::testing::Test::HasFatalFailure()) return;
    } else if (roll < 92) {
      const int batch = static_cast<int>(rng() % 4) + 1;
      for (int i = 0; i < batch; ++i) {
        // Batch pops must span classes exactly like successive TryPops; the
        // real queue's TryPopBatch is compared one element at a time.
        pop_once();
        if (::testing::Test::HasFatalFailure()) return;
      }
    } else if (roll >= 97 && !model.closed()) {
      real.Close();
      model.Close();
    }
    ASSERT_EQ(real.size(), model.TotalSize()) << context;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      ASSERT_EQ(real.class_size(static_cast<PriorityClass>(c)),
                model.BandSize(c))
          << context << " class " << c;
    }
  }
  // Drain both completely and compare the tail order.
  while (model.TotalSize() > 0) {
    pop_once();
    if (::testing::Test::HasFatalFailure()) return;
  }
  QueuedRequest leftover;
  ASSERT_FALSE(real.TryPop(&leftover)) << context;
}

TEST(AdmissionModelTest, RandomizedOpSequencesMatchTheReferenceModel) {
  constexpr int kSeedsPerConfig = 25;
  constexpr int kOpsPerEpisode = 400;
  for (const NamedConfig& named : PropertyConfigs()) {
    for (uint64_t seed = 1; seed <= kSeedsPerConfig; ++seed) {
      RunEpisode(named, seed, kOpsPerEpisode);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(AdmissionModelTest, BatchPopsMatchTheModelAcrossClasses) {
  // Dedicated TryPopBatch-vs-model pass: fill with a class/deadline mix,
  // then drain through one big batch pop and compare against successive
  // model pops.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ManualClock clock;
    AdmissionConfig config;
    config.capacity = 32;
    config.overload = OverloadPolicy::kReject;
    config.clock = &clock;
    AdmissionQueue real(config);
    ReferenceQueue model(config, &clock);
    std::mt19937_64 rng(seed);
    const double slacks[] = {0.5, 1.0, 1.0, 3.0, kInf};
    for (uint64_t sequence = 0; sequence < 24; ++sequence) {
      const int cls = static_cast<int>(rng() % kNumPriorityClasses);
      const double slack = slacks[rng() % std::size(slacks)];
      model.Enqueue(sequence, cls, slack);
      std::vector<QueuedRequest> bounced;
      ASSERT_EQ(real.Enqueue(MakeRequest(sequence, slack, cls), &bounced),
                AdmitOutcome::kAccepted);
    }
    std::vector<QueuedRequest> drained;
    ASSERT_EQ(real.TryPopBatch(24, &drained), 24);
    for (const QueuedRequest& popped : drained) {
      const std::optional<ReferenceQueue::Request> expected = model.Pop();
      ASSERT_TRUE(expected.has_value());
      ASSERT_EQ(popped.sequence, expected->sequence) << "seed " << seed;
    }
  }
}

TEST(AdmissionModelTest, SingleClassWorkloadsReproduceLegacyEdfOrderExactly) {
  // The regression lock for the pre-priority-class queue: with every
  // request in one class, the pop order must be exactly the single-band
  // EDF order — sort by (deadline, admission sequence).
  for (const PriorityClass only_class :
       {PriorityClass::kInteractive, PriorityClass::kStandard,
        PriorityClass::kBatch}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      ManualClock clock;
      AdmissionConfig config;  // default weights — irrelevant with one class
      config.capacity = 64;
      config.overload = OverloadPolicy::kReject;
      config.clock = &clock;
      AdmissionQueue queue(config);
      std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(only_class) << 32));
      const double slacks[] = {0.25, 1.0, 1.0, 1.0, 2.0, 7.5, kInf, kInf};
      std::vector<std::pair<double, uint64_t>> expected;  // (deadline, seq)
      for (uint64_t sequence = 0; sequence < 48; ++sequence) {
        const double slack = slacks[rng() % std::size(slacks)];
        std::vector<QueuedRequest> bounced;
        ASSERT_EQ(
            queue.Enqueue(
                MakeRequest(sequence, slack, static_cast<int>(only_class)),
                &bounced),
            AdmitOutcome::kAccepted);
        expected.emplace_back(clock.NowSeconds() + slack, sequence);
        if (rng() % 4 == 0) clock.Advance(1.0);
      }
      std::stable_sort(expected.begin(), expected.end());
      QueuedRequest popped;
      for (const auto& [deadline, sequence] : expected) {
        ASSERT_TRUE(queue.TryPop(&popped));
        ASSERT_EQ(popped.sequence, sequence) << "seed " << seed;
        ASSERT_EQ(popped.deadline_s, deadline) << "seed " << seed;
      }
      ASSERT_FALSE(queue.TryPop(&popped));
    }
  }
}

TEST(AdmissionModelTest, SaturatedHighPriorityStillDrainsBatchWithinKBound) {
  // The acceptance scenario, deterministically: strict interactive-over-
  // batch with a saturating interactive stream; queued batch work must
  // drain within |batch| * K pops, and batch is never passed over K times.
  constexpr int kBound = 5;
  ManualClock clock;
  AdmissionConfig config;
  config.capacity = 64;
  config.overload = OverloadPolicy::kReject;
  config.starvation_bound = kBound;
  config.classes[0].weight = 1;
  config.classes[1].weight = 0;
  config.classes[2].weight = 0;
  config.clock = &clock;
  AdmissionQueue queue(config);
  std::vector<QueuedRequest> bounced;
  uint64_t sequence = 0;
  constexpr int kBatchRequests = 6;
  for (int i = 0; i < kBatchRequests; ++i) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 2), &bounced),
              AdmitOutcome::kAccepted);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 0), &bounced),
              AdmitOutcome::kAccepted);
  }
  int pops = 0;
  int drained = 0;
  int since_batch = 0;
  QueuedRequest popped;
  while (drained < kBatchRequests) {
    ASSERT_TRUE(queue.TryPop(&popped));
    ++pops;
    if (popped.priority_class == PriorityClass::kBatch) {
      ++drained;
      since_batch = 0;
    } else {
      ASSERT_LT(++since_batch, kBound) << "batch starved past K";
      // Keep the interactive band saturated.
      ASSERT_EQ(queue.Enqueue(MakeRequest(sequence++, kInf, 0), &bounced),
                AdmitOutcome::kAccepted);
    }
  }
  EXPECT_LE(pops, kBatchRequests * kBound);
}

// --- concurrent conservation -----------------------------------------------

/// Multi-threaded interleavings: ordering is timing-dependent, but request
/// conservation is not — every enqueued sequence must surface exactly once
/// as a pop, a shed victim, a rejection, or a post-close refusal.
void RunConcurrentConservation(OverloadPolicy policy) {
  AdmissionConfig config;
  config.capacity = 8;
  config.overload = policy;
  config.starvation_bound = 4;
  AdmissionQueue queue(config);

  constexpr int kEnqueuers = 3;
  constexpr int kPoppers = 2;
  constexpr int kPerThread = 300;
  std::mutex mu;
  std::vector<uint64_t> popped, bounced_sequences;
  std::atomic<long> accepted{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kEnqueuers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      std::vector<uint64_t> local_bounced;
      long local_accepted = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t sequence =
            static_cast<uint64_t>(t) * kPerThread + static_cast<uint64_t>(i);
        const int cls = static_cast<int>(rng() % kNumPriorityClasses);
        const double slack = (rng() % 2 == 0) ? 1.0 : kInf;
        std::vector<QueuedRequest> bounced;
        const AdmitOutcome outcome =
            queue.Enqueue(MakeRequest(sequence, slack, cls), &bounced);
        if (outcome == AdmitOutcome::kAccepted) ++local_accepted;
        for (QueuedRequest& request : bounced) {
          local_bounced.push_back(request.sequence);
        }
      }
      accepted.fetch_add(local_accepted);
      std::lock_guard<std::mutex> lock(mu);
      bounced_sequences.insert(bounced_sequences.end(), local_bounced.begin(),
                               local_bounced.end());
    });
  }
  for (int t = 0; t < kPoppers; ++t) {
    threads.emplace_back([&] {
      std::vector<uint64_t> local_popped;
      QueuedRequest request;
      while (queue.WaitPop(&request)) {
        local_popped.push_back(request.sequence);
      }
      std::lock_guard<std::mutex> lock(mu);
      popped.insert(popped.end(), local_popped.begin(), local_popped.end());
    });
  }
  for (int t = 0; t < kEnqueuers; ++t) threads[static_cast<size_t>(t)].join();
  queue.Close();
  for (size_t t = kEnqueuers; t < threads.size(); ++t) threads[t].join();

  // Conservation: accepted requests either popped or were shed (bounced as
  // a victim of a later arrival); nothing is both, nothing vanishes.
  std::vector<uint64_t> resolved = popped;
  resolved.insert(resolved.end(), bounced_sequences.begin(),
                  bounced_sequences.end());
  std::sort(resolved.begin(), resolved.end());
  ASSERT_EQ(std::adjacent_find(resolved.begin(), resolved.end()),
            resolved.end())
      << "a request resolved twice";
  ASSERT_EQ(resolved.size(), static_cast<size_t>(kEnqueuers * kPerThread));
  // Every accepted request was eventually popped or shed; bounced covers
  // the rest (rejections and shed victims are disjoint sequence sets).
  ASSERT_EQ(popped.size() +
                (bounced_sequences.size() -
                 (static_cast<size_t>(kEnqueuers * kPerThread) -
                  static_cast<size_t>(accepted.load()))),
            static_cast<size_t>(accepted.load()));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderBlock) {
  RunConcurrentConservation(OverloadPolicy::kBlock);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderReject) {
  RunConcurrentConservation(OverloadPolicy::kReject);
}

TEST(AdmissionModelTest, ConcurrentConservationUnderShedOldest) {
  RunConcurrentConservation(OverloadPolicy::kShedOldest);
}

}  // namespace
}  // namespace ams::serve
