// TraceBuffer seqlock regression: Snapshot() concurrent with producers that
// wrap the ring repeatedly must never emit a torn event — one whose words
// mix two different Record() calls. The old implementation copied raw
// TraceEvent slots with no publish protocol, so a reader could interleave
// with a lapping writer and stitch half of event A onto half of event B;
// the per-slot sequence now makes every such slot detectably in-flight and
// the snapshot drops it instead.
//
// Torn events are made self-evident: every producer writes events whose
// args are pure functions of the id (a0 = id low bits, a1 = ~a0, a2 = a0 ^
// kTag), so ANY cross-event mixture breaks the invariant and the assertion
// catches it. Run under TSan (CI wires this test into the tsan job) the
// seqlock is also proven data-race-free, not just torn-read-free: every
// payload access is a relaxed atomic word, so TSan sees no racing plain
// accesses at all.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace ams::obs {
namespace {

constexpr std::int32_t kTag = 0x5A5A5A5A;

/// Event whose payload is a pure function of `id` — any torn mixture of
/// two distinct ids violates at least one of the relations checked below.
TraceEvent SelfConsistentEvent(std::uint64_t id) {
  TraceEvent event;
  event.id = id;
  event.ts_s = static_cast<double>(id);
  event.dur_s = static_cast<double>(id) * 0.5;
  event.phase = static_cast<std::uint8_t>(Phase::kTick);
  event.a0 = static_cast<std::int32_t>(id & 0x7FFFFFFF);
  event.a1 = ~event.a0;
  event.a2 = event.a0 ^ kTag;
  event.a3 = event.a0 + 7;
  return event;
}

void ExpectSelfConsistent(const TraceEvent& event) {
  const std::int32_t a0 = static_cast<std::int32_t>(event.id & 0x7FFFFFFF);
  ASSERT_EQ(event.a0, a0) << "id/a0 mix — torn event escaped the snapshot";
  ASSERT_EQ(event.a1, ~a0) << "a0/a1 mix — torn event escaped the snapshot";
  ASSERT_EQ(event.a2, a0 ^ kTag) << "a0/a2 mix — torn event";
  ASSERT_EQ(event.a3, a0 + 7) << "a0/a3 mix — torn event";
  ASSERT_EQ(event.ts_s, static_cast<double>(event.id)) << "id/ts mix";
  ASSERT_EQ(event.dur_s, static_cast<double>(event.id) * 0.5) << "id/dur mix";
}

TEST(TraceBufferSeqlockTest, SingleThreadSnapshotIsExact) {
  // The deterministic contract is unchanged: one thread, no concurrency —
  // Snapshot returns exactly the retained suffix, oldest first.
  TraceBuffer buffer(/*capacity=*/16, /*shard=*/2, /*lane=*/3);
  for (std::uint64_t i = 0; i < 40; ++i) {
    buffer.Record(SelfConsistentEvent(i));
  }
  EXPECT_EQ(buffer.recorded(), 40u);
  EXPECT_EQ(buffer.dropped(), 40u - buffer.capacity());
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), buffer.capacity());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 40u - buffer.capacity() + i);
    EXPECT_EQ(events[i].shard, 2u);
    EXPECT_EQ(events[i].lane, 3u);
    ExpectSelfConsistent(events[i]);
  }
}

TEST(TraceBufferSeqlockTest, SnapshotUnderWrappingProducersNeverTears) {
  // Producers that wrap the ring dozens of times while the main thread
  // snapshots in a loop — the regime where the unprotected copy used to
  // tear. The ring is big enough that a snapshot pass overlaps live
  // writers without being fully lapped (a fully lapped slot is dropped,
  // which is correct but would make the test vacuous); every event that
  // makes it out must be internally consistent.
  constexpr std::size_t kCapacity = 1024;
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  TraceBuffer buffer(kCapacity, /*shard=*/0, /*lane=*/1);

  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&buffer, &start, p] {
      while (!start.load(std::memory_order_acquire)) {
      }
      // Disjoint id ranges per producer: any cross-producer mixture is
      // also a cross-id mixture, so the self-consistency check covers it.
      const std::uint64_t base =
          static_cast<std::uint64_t>(p + 1) * 10'000'000ULL;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        buffer.Record(SelfConsistentEvent(base + i));
        // On a single-core machine an unthrottled producer burns its whole
        // timeslice before the snapshotting thread ever runs — the burst
        // would complete inside one scheduler gap and every snapshot would
        // be vacuously empty. Yielding now and then interleaves the reader
        // on any core count; on multicore it is a near-noop and the
        // producers still hammer concurrently.
        if ((i & 0xFF) == 0xFF) std::this_thread::yield();
      }
    });
  }

  start.store(true, std::memory_order_release);
  std::uint64_t snapshots = 0;
  std::uint64_t events_seen = 0;
  while (buffer.recorded() <
         static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    const std::vector<TraceEvent> events = buffer.Snapshot();
    ASSERT_LE(events.size(), kCapacity);
    for (const TraceEvent& event : events) {
      ExpectSelfConsistent(event);
    }
    events_seen += events.size();
    ++snapshots;
  }
  for (std::thread& producer : producers) producer.join();

  // Quiescent snapshot: full and exact again.
  const std::vector<TraceEvent> final_events = buffer.Snapshot();
  ASSERT_EQ(final_events.size(), kCapacity);
  for (const TraceEvent& event : final_events) {
    ExpectSelfConsistent(event);
  }
  EXPECT_EQ(buffer.recorded(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // The race was actually exercised: the reader overlapped live writers
  // many times (trivially true given the workload sizes — this guards
  // against the loop degenerating if constants change).
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(events_seen, 0u);
}

TEST(TraceBufferSeqlockTest, InFlightSlotsAreDroppedNotEmittedStale) {
  // After heavy wrapping, a fresh snapshot at quiescence contains only the
  // newest `capacity` events — drop-oldest still holds with the seqlock in
  // place (the sequence doubles as the lap detector).
  constexpr std::size_t kCapacity = 32;
  TraceBuffer buffer(kCapacity, 0, 0);
  constexpr std::uint64_t kTotal = 10 * kCapacity;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    buffer.Record(SelfConsistentEvent(i));
  }
  const std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, kTotal - kCapacity + i);
  }
  EXPECT_EQ(buffer.dropped(), kTotal - kCapacity);
}

}  // namespace
}  // namespace ams::obs
