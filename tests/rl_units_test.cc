// Unit tests of the RL building blocks: replay buffer, epsilon schedule,
// loss/optimizer learning sanity.

#include <gtest/gtest.h>

#include <set>

#include "nn/loss.h"
#include "nn/net.h"
#include "nn/optimizer.h"
#include "rl/epsilon.h"
#include "rl/replay_buffer.h"
#include "util/rng.h"

namespace ams::rl {
namespace {

Transition MakeTransition(int id) {
  Transition t;
  t.state_labels = {id % 7};
  t.next_state_labels = {id % 7, (id + 1) % 7};
  t.action = id % 31;
  t.reward = static_cast<float>(id);
  t.done = (id % 5 == 0);
  t.next_executed_mask = static_cast<uint32_t>(id);
  t.next_action = (id + 1) % 31;
  return t;
}

TEST(ReplayBufferTest, GrowsThenWrapsAsARing) {
  ReplayBuffer buffer(4);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeTransition(i));
  EXPECT_EQ(buffer.size(), 3u);
  for (int i = 3; i < 10; ++i) buffer.Add(MakeTransition(i));
  EXPECT_EQ(buffer.size(), 4u);
  // The buffer must contain exactly the last 4 rewards {6,7,8,9}.
  std::multiset<float> rewards;
  for (size_t i = 0; i < buffer.size(); ++i) rewards.insert(buffer.at(i).reward);
  EXPECT_EQ(rewards, (std::multiset<float>{6.0f, 7.0f, 8.0f, 9.0f}));
}

TEST(ReplayBufferTest, SampleBatchReturnsValidPointers) {
  ReplayBuffer buffer(16);
  for (int i = 0; i < 10; ++i) buffer.Add(MakeTransition(i));
  util::Rng rng(3);
  const auto batch = buffer.SampleBatch(32, &rng);  // with replacement
  ASSERT_EQ(batch.size(), 32u);
  for (const Transition* t : batch) {
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->reward, 0.0f);
    EXPECT_LT(t->reward, 10.0f);
  }
}

TEST(ReplayBufferTest, ScatterLabelsDensifies) {
  std::vector<float> row(8, 0.0f);
  ScatterLabels({1, 4, 7}, row.data());
  EXPECT_FLOAT_EQ(row[0], 0.0f);
  EXPECT_FLOAT_EQ(row[1], 1.0f);
  EXPECT_FLOAT_EQ(row[4], 1.0f);
  EXPECT_FLOAT_EQ(row[7], 1.0f);
}

TEST(EpsilonScheduleTest, LinearDecayContract) {
  EpsilonSchedule schedule(1.0, 0.05, 1000);
  EXPECT_DOUBLE_EQ(schedule.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.Value(-5), 1.0);
  EXPECT_DOUBLE_EQ(schedule.Value(1000), 0.05);
  EXPECT_DOUBLE_EQ(schedule.Value(999999), 0.05);
  EXPECT_NEAR(schedule.Value(500), 0.525, 1e-12);
  // Monotone non-increasing.
  for (int s = 1; s <= 1000; s += 37) {
    EXPECT_LE(schedule.Value(s), schedule.Value(s - 1));
  }
}

TEST(QLossTest, GradientOnlyAtSelectedActions) {
  nn::Matrix q(2, 4);
  q.At(0, 1) = 2.0f;
  q.At(1, 3) = -1.0f;
  nn::Matrix grad;
  const double loss = nn::QLoss(q, {1, 3}, {1.0f, -1.0f}, nn::LossKind::kMse,
                                &grad);
  // errors: (2-1)=1 and (-1 - -1)=0 -> loss = (0.5*1 + 0)/2
  EXPECT_NEAR(loss, 0.25, 1e-6);
  EXPECT_FLOAT_EQ(grad.At(0, 1), 0.5f);  // err / batch
  EXPECT_FLOAT_EQ(grad.At(1, 3), 0.0f);
  EXPECT_FLOAT_EQ(grad.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.At(1, 0), 0.0f);
}

TEST(QLossTest, HuberSaturatesLargeErrors) {
  nn::Matrix q(1, 2);
  q.At(0, 0) = 10.0f;  // error 10 vs target 0
  nn::Matrix grad;
  const double loss = nn::QLoss(q, {0}, {0.0f}, nn::LossKind::kHuber, &grad);
  EXPECT_NEAR(loss, 9.5, 1e-6);          // |e| - 0.5
  EXPECT_FLOAT_EQ(grad.At(0, 0), 1.0f);  // clipped gradient
}

// Learning sanity: each optimizer must fit a tiny regression task with a
// two-layer net, i.e. drive the MSE down by >10x.
class OptimizerLearningTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerLearningTest, FitsTinyRegression) {
  nn::MlpConfig config{3, {16}, 2};
  nn::Mlp net(config, 5);
  std::vector<nn::ParamGrad> params;
  net.CollectParams(&params);
  auto optimizer = nn::MakeOptimizer(GetParam(), 0.01f);

  util::Rng rng(8);
  nn::Matrix x(16, 3);
  nn::Matrix target(16, 2);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 3; ++c) {
      x.At(r, c) = static_cast<float>(rng.Uniform(-1, 1));
    }
    target.At(r, 0) = x.At(r, 0) + 0.5f * x.At(r, 1);
    target.At(r, 1) = x.At(r, 2) - x.At(r, 0);
  }
  nn::Matrix q, grad;
  net.Forward(x, &q);
  const double initial = nn::MseLoss(q, target, &grad);
  double final_loss = initial;
  for (int step = 0; step < 500; ++step) {
    net.Forward(x, &q);
    final_loss = nn::MseLoss(q, target, &grad);
    net.Backward(grad);
    optimizer->Step(params);
  }
  EXPECT_LT(final_loss, initial / 10.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Optimizers, OptimizerLearningTest,
                         ::testing::Values("sgd", "rmsprop", "adam"));

TEST(OptimizerTest, SgdMomentumStepMath) {
  float param = 1.0f;
  float grad = 0.5f;
  nn::Sgd sgd(0.1f, 0.9f);
  std::vector<nn::ParamGrad> params = {{&param, &grad, 1}};
  sgd.Step(params);
  // v = -lr*g = -0.05; p = 0.95
  EXPECT_NEAR(param, 0.95f, 1e-6);
  sgd.Step(params);
  // v = 0.9*(-0.05) - 0.05 = -0.095; p = 0.855
  EXPECT_NEAR(param, 0.855f, 1e-6);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  float param = 0.0f;
  float grad = 0.123f;
  nn::Adam adam(0.01f);
  std::vector<nn::ParamGrad> params = {{&param, &grad, 1}};
  adam.Step(params);
  // With bias correction the first Adam step is ~lr * sign(grad).
  EXPECT_NEAR(param, -0.01f, 1e-4);
}

}  // namespace
}  // namespace ams::rl
