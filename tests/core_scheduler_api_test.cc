// Tests of the public facade (AdaptiveModelScheduler): it must honour
// resource constraints on live data and never inspect unexecuted models.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/scheduler_api.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "util/rng.h"

namespace ams::core {
namespace {

// Deterministic stand-in predictor: rewards any model whose task is "not yet
// represented" in the state, approximated by constant preferences; END low.
class StaticPredictor : public ModelValuePredictor {
 public:
  explicit StaticPredictor(std::vector<double> q) : q_(std::move(q)) {}
  std::vector<double> PredictValues(const std::vector<float>&) override {
    return q_;
  }
  int num_actions() const override { return static_cast<int>(q_.size()); }

 private:
  std::vector<double> q_;
};

class SchedulerApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new zoo::ModelZoo(zoo::ModelZoo::CreateDefault());
    dataset_ = new data::Dataset(data::Dataset::Generate(
        data::DatasetProfile::MsCoco(), zoo_->labels(), 30, 91));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete zoo_;
  }
  static std::vector<double> UniformQ(double model_q, double end_q) {
    std::vector<double> q(31, model_q);
    q[30] = end_q;
    return q;
  }
  static zoo::ModelZoo* zoo_;
  static data::Dataset* dataset_;
};

zoo::ModelZoo* SchedulerApiTest::zoo_ = nullptr;
data::Dataset* SchedulerApiTest::dataset_ = nullptr;

TEST_F(SchedulerApiTest, GreedyStopsWhenEndDominates) {
  StaticPredictor predictor(UniformQ(/*model_q=*/-0.5, /*end_q=*/0.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  const ScheduleResult result =
      scheduler.LabelItemGreedy(dataset_->item(0).scene);
  EXPECT_TRUE(result.executions.empty()) << "END outranks every model";
  EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
}

TEST_F(SchedulerApiTest, GreedyRunsEverythingWhenModelsDominate) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  const ScheduleResult result =
      scheduler.LabelItemGreedy(dataset_->item(1).scene);
  EXPECT_EQ(result.executions.size(), 30u);
  std::set<int> models;
  for (const auto& record : result.executions) models.insert(record.model_id);
  EXPECT_EQ(models.size(), 30u) << "each model exactly once";
  // Value equals the full-execution union value.
  double expected = 0.0;
  std::map<int, double> best;
  for (int m = 0; m < 30; ++m) {
    for (const auto& out : zoo_->Execute(m, dataset_->item(1).scene)) {
      if (out.confidence >= zoo::kValuableConfidence) {
        best[out.label_id] = std::max(best[out.label_id], out.confidence);
      }
    }
  }
  for (const auto& [label, conf] : best) expected += conf;
  EXPECT_NEAR(result.value, expected, 1e-9);
}

TEST_F(SchedulerApiTest, DeadlineIsRespectedOnLiveItems) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  for (int i = 0; i < 10; ++i) {
    ScheduleConstraints constraints;
    constraints.time_budget_s = 0.8;
    const ScheduleResult result =
        scheduler.LabelItem(dataset_->item(i).scene, constraints);
    // Planned with mean times; realized jitter is within ~1.6x of the mean,
    // so a generous slack covers the last model's overshoot.
    EXPECT_LE(result.makespan_s, 0.8 + 0.4);
    EXPECT_FALSE(result.executions.empty());
    // Serial: records are contiguous in time.
    double now = 0.0;
    for (const auto& record : result.executions) {
      EXPECT_NEAR(record.start_s, now, 1e-9);
      now = record.finish_s;
    }
  }
}

TEST_F(SchedulerApiTest, RewardsFollowEquationThree) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  const ScheduleResult result =
      scheduler.LabelItemGreedy(dataset_->item(2).scene);
  for (const auto& record : result.executions) {
    EXPECT_NEAR(record.reward,
                ModelReward(record.fresh, zoo_->model(record.model_id).theta),
                1e-12);
    for (const auto& fresh : record.fresh) {
      EXPECT_GE(fresh.confidence, zoo::kValuableConfidence);
    }
  }
}

TEST_F(SchedulerApiTest, ParallelSchedulingHonoursMemoryBudget) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  for (int i = 0; i < 10; ++i) {
    ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = 8192.0;
    const ScheduleResult result =
        scheduler.LabelItemParallel(dataset_->item(i).scene, constraints);
    // Reconstruct concurrent memory from the intervals.
    for (const auto& a : result.executions) {
      double concurrent = 0.0;
      for (const auto& b : result.executions) {
        if (b.start_s <= a.start_s && a.start_s < b.finish_s) {
          concurrent += zoo_->model(b.model_id).mem_mb;
        }
      }
      EXPECT_LE(concurrent, constraints.memory_budget_mb + 1e-6);
    }
    EXPECT_LE(result.makespan_s, constraints.time_budget_s + 0.4);
  }
}

TEST_F(SchedulerApiTest, ParallelBeatsSerialUnderTightDeadline) {
  StaticPredictor predictor(UniformQ(1.0, -5.0));
  AdaptiveModelScheduler scheduler(zoo_, &predictor);
  ScheduleConstraints constraints;
  constraints.time_budget_s = 0.5;
  constraints.memory_budget_mb = 16384.0;
  double serial_models = 0.0, parallel_models = 0.0;
  for (int i = 0; i < 15; ++i) {
    serial_models += static_cast<double>(
        scheduler.LabelItem(dataset_->item(i).scene, constraints)
            .executions.size());
    parallel_models += static_cast<double>(
        scheduler.LabelItemParallel(dataset_->item(i).scene, constraints)
            .executions.size());
  }
  EXPECT_GT(parallel_models, serial_models * 1.5)
      << "parallel packing should execute far more models per deadline";
}

TEST_F(SchedulerApiTest, PredictorActionSpaceIsValidated) {
  StaticPredictor bad(std::vector<double>(7, 0.0));
  EXPECT_DEATH(AdaptiveModelScheduler(zoo_, &bad), "action space");
}

}  // namespace
}  // namespace ams::core
