// Unit tests of the thread pool and ParallelFor used by trainers/evaluators.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace ams::util {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

class ParallelForTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForTest, EveryIndexExactlyOnce) {
  const int n = 237;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(0, n, GetParam(), [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, NonZeroBase) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, GetParam(), [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForTest,
                         ::testing::Values(1, 2, 7, 24, 64));

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(5, 5, 4, [](int) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace ams::util
