// Data-market scenario (§I: "the richer the label of a data set, the higher
// the price"): batch-enrich a corpus on a shared GPU box using Algorithm 2
// (parallel scheduling under deadline + memory) through a LabelingService
// session per memory budget, and report the label value harvested per
// GPU-second.
//
//   ./build/examples/data_market

#include <cstdio>
#include <memory>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "rl/trainer.h"
#include "util/stats.h"
#include "zoo/model_zoo.h"

using namespace ams;

int main() {
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::Voc2012(), zoo.labels(), 800, /*seed=*/29);
  const data::Oracle oracle(&zoo, &dataset);

  rl::TrainConfig config;
  config.scheme = rl::DrlScheme::kDuelingDqn;
  config.hidden_dim = 64;
  config.episodes = 600;
  config.eps_decay_steps = 3000;
  std::printf("training the enrichment agent...\n");
  std::unique_ptr<rl::Agent> agent = rl::AgentTrainer(&oracle, config).Train();

  std::printf(
      "\nenriching 150 items, 1.0 s wall budget per item (Algorithm 2):\n");
  std::printf("%8s  %14s  %12s  %14s\n", "GPU mem", "labels/item",
              "value/item", "value/GPU-sec");
  std::vector<core::WorkItem> batch;
  for (int i = 0; i < 150; ++i) {
    batch.push_back(core::WorkItem::Live(
        &dataset.item(dataset.test_indices()[i]).scene));
  }
  for (const double mem_gb : {8.0, 12.0, 16.0}) {
    // One session per memory budget; the builder captures the constraint
    // set once and every submission inherits it.
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 1.0;
    constraints.memory_budget_mb = mem_gb * 1024.0;
    core::LabelingService service =
        core::LabelingServiceBuilder(&zoo)
            .WithPredictor(agent.get())
            .WithMode(core::ExecutionMode::kParallel)
            .WithConstraints(constraints)
            .Build();
    const std::vector<core::LabelOutcome> outcomes =
        service.SubmitBatch(batch);

    util::RunningStat labels, value, gpu_seconds;
    for (const core::LabelOutcome& outcome : outcomes) {
      const core::ScheduleResult& result = outcome.schedule;
      labels.Add(static_cast<double>(result.recalled_labels.size()));
      value.Add(result.value);
      double busy = 0.0;  // GPU-seconds actually consumed
      for (const auto& record : result.executions) {
        busy += record.finish_s - record.start_s;
      }
      gpu_seconds.Add(busy);
    }
    std::printf("%6.0fGB  %14.1f  %12.2f  %14.2f\n", mem_gb, labels.mean(),
                value.mean(),
                gpu_seconds.mean() > 0 ? value.mean() / gpu_seconds.mean()
                                       : 0.0);
  }
  std::printf(
      "\nLarger memory packs more models into the same wall-clock budget, so\n"
      "each item ships with richer labels; value per GPU-second stays flat\n"
      "because the agent only schedules models it expects to pay off.\n");
  return 0;
}
