// Photo-album manager scenario (§I): label a stream of social photos with as
// many searchable keywords as possible under a per-photo deadline, using
// Algorithm 1 through a LabelingService session. Reports keywords per photo
// and the compute saved against running the whole zoo.
//
//   ./build/examples/photo_album [deadline_seconds=1.0]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "rl/trainer.h"
#include "util/stats.h"
#include "zoo/model_zoo.h"

using namespace ams;

int main(int argc, char** argv) {
  const double deadline = argc > 1 ? std::atof(argv[1]) : 1.0;
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::MirFlickr25(), zoo.labels(), 1000, /*seed=*/17);
  const data::Oracle oracle(&zoo, &dataset);

  rl::TrainConfig config;
  config.scheme = rl::DrlScheme::kDuelingDqn;
  config.hidden_dim = 64;
  config.episodes = 600;
  config.eps_decay_steps = 3000;
  std::printf("training the album agent...\n");
  std::unique_ptr<rl::Agent> agent = rl::AgentTrainer(&oracle, config).Train();

  // An Algorithm-1 session: serial scheduling on live photos under the
  // per-photo deadline, fanned out over all cores by SubmitBatch.
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = deadline;
  core::LabelingService service = core::LabelingServiceBuilder(&zoo)
                                      .WithPredictor(agent.get())
                                      .WithMode(core::ExecutionMode::kSerial)
                                      .WithConstraints(constraints)
                                      .Build();

  const int album_size = 200;
  std::printf("labeling %d photos with a %.2f s budget each (%d workers)...\n\n",
              album_size, deadline, service.worker_count());
  std::vector<core::WorkItem> album;
  album.reserve(album_size);
  for (int i = 0; i < album_size; ++i) {
    album.push_back(core::WorkItem::Live(
        &dataset.item(dataset.test_indices()[i]).scene));
  }
  const std::vector<core::LabelOutcome> outcomes = service.SubmitBatch(album);

  util::RunningStat keywords, time_spent, models_run;
  for (int i = 0; i < album_size; ++i) {
    const core::ScheduleResult& result =
        outcomes[static_cast<size_t>(i)].schedule;
    keywords.Add(static_cast<double>(result.recalled_labels.size()));
    time_spent.Add(result.makespan_s);
    models_run.Add(static_cast<double>(result.executions.size()));
    if (i < 3) {
      const auto& item = dataset.item(dataset.test_indices()[i]);
      std::printf("photo #%d keywords:", item.id);
      int shown = 0;
      for (const auto& label : result.recalled_labels) {
        if (shown++ == 6) {
          std::printf(" ... (+%zu)", result.recalled_labels.size() - 6);
          break;
        }
        std::printf(" %s", zoo.labels().LabelName(label.label_id).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nalbum summary: %.1f keywords/photo, %.1f models and %.2f s/photo "
      "(no-policy: 30 models, %.2f s) — %.1f%% compute saved\n",
      keywords.mean(), models_run.mean(), time_spent.mean(),
      zoo.TotalTimeSeconds(),
      100.0 * (1.0 - time_spent.mean() / zoo.TotalTimeSeconds()));
  return 0;
}
