// Video-surveillance scenario (§I, §VI-E): a chunked, content-correlated
// stream (camera segments) processed two ways —
//   1. the explore–exploit policy of §I, which fully labels the first frames
//      of each segment and then runs only the models that paid off;
//   2. a DRL agent whose face-detector priority θ is boosted (Eq. 3), so the
//      security-critical "face" label arrives within a tight deadline.
//
//   ./build/examples/video_surveillance

#include <cstdio>
#include <memory>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "rl/trainer.h"
#include "sched/basic_policies.h"
#include "sched/cost_q_greedy.h"
#include "sched/explore_exploit.h"
#include "sched/serial_runner.h"
#include "util/stats.h"
#include "zoo/model_zoo.h"

using namespace ams;

int main() {
  // Part 1 — correlated segments: explore-exploit needs no learning at all.
  {
    const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
    const data::Dataset stream = data::Dataset::GenerateChunked(
        data::DatasetProfile::MirFlickr25(), zoo.labels(), /*num_chunks=*/12,
        /*chunk_len=*/25, /*seed=*/21);
    const data::Oracle oracle(&zoo, &stream);
    sched::ExploreExploitPolicy explore(/*explore_items=*/2);
    sched::RandomPolicy random(5);
    util::RunningStat explore_time, random_time, explore_recall;
    sched::SerialRunConfig config;
    config.recall_target = 1.0;
    for (int item = 0; item < stream.size(); ++item) {
      const int chunk = stream.item(item).chunk_id;
      const auto run_e =
          sched::RunSerial(&explore, oracle, item, config, chunk);
      explore_time.Add(run_e.time_used);
      explore_recall.Add(run_e.recall);
      random_time.Add(
          sched::RunSerial(&random, oracle, item, config, chunk).time_used);
    }
    std::printf(
        "segmented stream (%d segments x 25 frames):\n"
        "  explore-exploit: %.2f s/frame at %.1f%% recall\n"
        "  random:          %.2f s/frame\n"
        "  -> correlated content needs no DRL: explore the segment head, "
        "exploit the rest (SI)\n\n",
        stream.num_chunks(), explore_time.mean(),
        100.0 * explore_recall.mean(), random_time.mean());
  }

  // Part 2 — priority scheduling: boost the face detector's theta so faces
  // are labeled first under a tight deadline (SVI-E's practical utility).
  {
    zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
    const int face_model = zoo.ModelsForTask(zoo::TaskKind::kFaceDetection)[1];
    zoo.SetTheta(face_model, 10.0);
    const data::Dataset dataset = data::Dataset::Generate(
        data::DatasetProfile::Stanford40(), zoo.labels(), 800, /*seed=*/8);
    const data::Oracle oracle(&zoo, &dataset);

    rl::TrainConfig config;
    config.scheme = rl::DrlScheme::kDuelingDqn;
    config.hidden_dim = 64;
    config.episodes = 600;
    config.eps_decay_steps = 3000;
    std::printf("training the theta-boosted surveillance agent...\n");
    std::unique_ptr<rl::Agent> agent =
        rl::AgentTrainer(&oracle, config).Train();

    sched::CostQGreedyPolicy policy(agent.get());  // Algorithm 1
    sched::SerialRunConfig run_config;
    run_config.time_budget = 0.5;  // respond within half a second
    const int face_label = zoo.labels().LabelId(zoo::TaskKind::kFaceDetection, 0);
    int frames = 0, face_frames = 0, face_found = 0;
    util::RunningStat face_position;
    for (int i = 0; i < 200; ++i) {
      const int item = dataset.test_indices()[static_cast<size_t>(i)];
      ++frames;
      // Ground truth: does any model emit the face label valuably?
      if (oracle.LabelProfit(item, face_label) <= 0.0) continue;
      ++face_frames;
      const auto run = sched::RunSerial(&policy, oracle, item, run_config);
      for (size_t k = 0; k < run.steps.size(); ++k) {
        if (run.steps[k].model == face_model) {
          face_position.Add(static_cast<double>(k + 1));
        }
      }
      core::ValueAccumulator probe(&oracle, item);
      for (const auto& step : run.steps) probe.AddModel(step.model);
      // Face recalled within the 0.5 s budget?
      bool recalled = false;
      for (const auto& step : run.steps) {
        for (const auto& out : oracle.ValuableOutput(item, step.model)) {
          if (out.label_id == face_label) recalled = true;
        }
      }
      if (recalled) ++face_found;
    }
    std::printf(
        "theta=10 face priority, 0.5 s deadline over %d frames:\n"
        "  frames with a detectable face: %d; face recalled in-budget: %d "
        "(%.1f%%)\n"
        "  boosted face detector runs at avg position %.1f of the schedule\n",
        frames, face_frames, face_found,
        face_frames > 0 ? 100.0 * face_found / face_frames : 0.0,
        face_position.count() > 0 ? face_position.mean() : -1.0);
  }
  return 0;
}
