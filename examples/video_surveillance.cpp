// Video-surveillance scenario (§I, §VI-E): a chunked, content-correlated
// stream (camera segments) processed two ways —
//   1. the explore–exploit policy of §I, which fully labels the first frames
//      of each segment and then runs only the models that paid off;
//   2. a DRL agent whose face-detector priority θ is boosted (Eq. 3), so the
//      security-critical "face" label arrives within a tight deadline.
// Both run through LabelingService sessions; part 1 uses the streaming
// entry point (Run) over a DataStream.
//
//   ./build/examples/video_surveillance

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "data/stream.h"
#include "rl/trainer.h"
#include "util/stats.h"
#include "zoo/model_zoo.h"

using namespace ams;

int main() {
  // Part 1 — correlated segments: explore-exploit needs no learning at all.
  {
    const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
    const data::Dataset stream_data = data::Dataset::GenerateChunked(
        data::DatasetProfile::MirFlickr25(), zoo.labels(), /*num_chunks=*/12,
        /*chunk_len=*/25, /*seed=*/21);
    const data::Oracle oracle(&zoo, &stream_data);

    // Streaming sessions: items arrive chunk by chunk; the service keeps a
    // chunk's frames on one worker so the policy's segment knowledge builds
    // up exactly as it would online.
    const auto run_stream = [&](const std::string& policy,
                                util::RunningStat* time_stat,
                                util::RunningStat* recall_stat) {
      sched::PolicyOptions options;
      options.seed = 5;
      options.explore_items = 2;
      core::LabelingService service =
          core::LabelingServiceBuilder(&zoo)
              .WithOracle(&oracle)
              .WithMode(core::ExecutionMode::kSerial)
              .WithPolicy(policy, options)
              .WithRecallTarget(1.0)
              .WithWorkers(1)  // numbers must not vary with the core count
              .Build();
      std::vector<int> indices(static_cast<size_t>(stream_data.size()));
      std::iota(indices.begin(), indices.end(), 0);
      data::DataStream stream(&stream_data, indices, /*shuffle=*/false,
                              /*seed=*/1);
      service.Run(&stream, [&](const core::WorkItem&,
                               const core::LabelOutcome& outcome) {
        time_stat->Add(outcome.schedule.makespan_s);
        if (recall_stat != nullptr) recall_stat->Add(outcome.recall);
      });
    };

    util::RunningStat explore_time, random_time, explore_recall;
    run_stream("explore_exploit", &explore_time, &explore_recall);
    run_stream("random", &random_time, nullptr);
    std::printf(
        "segmented stream (%d segments x 25 frames):\n"
        "  explore-exploit: %.2f s/frame at %.1f%% recall\n"
        "  random:          %.2f s/frame\n"
        "  -> correlated content needs no DRL: explore the segment head, "
        "exploit the rest (SI)\n\n",
        stream_data.num_chunks(), explore_time.mean(),
        100.0 * explore_recall.mean(), random_time.mean());
  }

  // Part 2 — priority scheduling: boost the face detector's theta so faces
  // are labeled first under a tight deadline (SVI-E's practical utility).
  {
    zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
    const int face_model = zoo.ModelsForTask(zoo::TaskKind::kFaceDetection)[1];
    zoo.SetTheta(face_model, 10.0);
    const data::Dataset dataset = data::Dataset::Generate(
        data::DatasetProfile::Stanford40(), zoo.labels(), 800, /*seed=*/8);
    const data::Oracle oracle(&zoo, &dataset);

    rl::TrainConfig config;
    config.scheme = rl::DrlScheme::kDuelingDqn;
    config.hidden_dim = 64;
    config.episodes = 600;
    config.eps_decay_steps = 3000;
    std::printf("training the theta-boosted surveillance agent...\n");
    std::unique_ptr<rl::Agent> agent =
        rl::AgentTrainer(&oracle, config).Train();

    // Algorithm-1 session: respond within half a second.
    sched::PolicyOptions options;
    options.predictor = agent.get();
    core::ScheduleConstraints constraints;
    constraints.time_budget_s = 0.5;
    core::LabelingService service =
        core::LabelingServiceBuilder(&zoo)
            .WithOracle(&oracle)
            .WithMode(core::ExecutionMode::kSerial)
            .WithPolicy("cost_q_greedy", options)
            .WithConstraints(constraints)
            .Build();

    const int face_label = zoo.labels().LabelId(zoo::TaskKind::kFaceDetection, 0);
    int frames = 0, face_frames = 0, face_found = 0;
    util::RunningStat face_position;
    for (int i = 0; i < 200; ++i) {
      const int item = dataset.test_indices()[static_cast<size_t>(i)];
      ++frames;
      // Ground truth: does any model emit the face label valuably?
      if (oracle.LabelProfit(item, face_label) <= 0.0) continue;
      ++face_frames;
      const core::LabelOutcome outcome =
          service.Submit(core::WorkItem::Stored(item));
      const auto& executions = outcome.schedule.executions;
      for (size_t k = 0; k < executions.size(); ++k) {
        if (executions[k].model_id == face_model) {
          face_position.Add(static_cast<double>(k + 1));
        }
      }
      // Face recalled within the 0.5 s budget?
      bool recalled = false;
      for (const auto& record : executions) {
        for (const auto& out : oracle.ValuableOutput(item, record.model_id)) {
          if (out.label_id == face_label) recalled = true;
        }
      }
      if (recalled) ++face_found;
    }
    std::printf(
        "theta=10 face priority, 0.5 s deadline over %d frames:\n"
        "  frames with a detectable face: %d; face recalled in-budget: %d "
        "(%.1f%%)\n"
        "  boosted face detector runs at avg position %.1f of the schedule\n",
        frames, face_frames, face_found,
        face_frames > 0 ? 100.0 * face_found / face_frames : 0.0,
        face_position.count() > 0 ? face_position.mean() : -1.0);
  }
  return 0;
}
