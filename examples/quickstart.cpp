// Quickstart: build the model zoo, train a small DRL agent on stored
// execution results, and let a LabelingService session label fresh images
// greedily — printing Fig.-7-style execution sequences ("pub" -> cups/tv ->
// drinking beer) that show the learned semantic chain in action.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "rl/trainer.h"
#include "zoo/model_zoo.h"

using namespace ams;

int main() {
  // 1. The substrate: 30 models x 10 tasks x 1104 labels (Table I).
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  std::printf("zoo: %d models, %d labels, full execution costs %.2f s/item\n",
              zoo.num_models(), zoo.labels().total_labels(),
              zoo.TotalTimeSeconds());

  // 2. Ground truth: generate a corpus and store all model outputs (§VI-A).
  const data::Dataset dataset = data::Dataset::Generate(
      data::DatasetProfile::MirFlickr25(), zoo.labels(), 800, /*seed=*/3);
  const data::Oracle oracle(&zoo, &dataset);

  // 3. Train a DuelingDQN agent (small config so this runs in seconds; see
  //    bench/ for paper-scale settings).
  rl::TrainConfig config;
  config.scheme = rl::DrlScheme::kDuelingDqn;
  config.hidden_dim = 64;
  config.episodes = 500;
  config.eps_decay_steps = 2500;
  std::printf("training DuelingDQN agent (%d episodes)...\n", config.episodes);
  rl::AgentTrainer trainer(&oracle, config);
  rl::TrainStats stats;
  std::unique_ptr<rl::Agent> agent = trainer.Train({}, &stats);
  std::printf("trained: %.1f s, final avg episode reward %.2f\n",
              stats.wall_seconds, stats.final_avg_reward);

  // 4. Open a greedy labeling session with the public facade: the agent
  //    picks models until END outranks everything (no resource constraint).
  core::LabelingService service = core::LabelingServiceBuilder(&zoo)
                                      .WithPredictor(agent.get())
                                      .WithMode(core::ExecutionMode::kGreedy)
                                      .Build();
  for (int i = 0; i < 3; ++i) {
    const auto& item = dataset.item(dataset.test_indices()[i]);
    const core::ScheduleResult result = service.Submit(item.scene).schedule;
    std::printf(
        "\nimage #%d — %zu models executed, %.2f s simulated (vs %.2f s for "
        "all 30), value %.2f\n",
        item.id, result.executions.size(), result.makespan_s,
        zoo.TotalTimeSeconds(), result.value);
    for (const auto& record : result.executions) {
      std::printf("  %-14s ->", zoo.model(record.model_id).name.c_str());
      if (record.fresh.empty()) {
        std::printf(" (nothing new, reward %.2f)", record.reward);
      } else {
        int shown = 0;
        for (const auto& out : record.fresh) {
          if (shown++ == 4) {
            std::printf(" +%zu more", record.fresh.size() - 4);
            break;
          }
          std::printf(" %s(%.2f)",
                      zoo.labels().LabelName(out.label_id).c_str(),
                      out.confidence);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
