#!/usr/bin/env python3
"""Validate and summarize an ams_serve Chrome-trace export.

Usage:
    trace_summary.py TRACE.json [--metrics METRICS.json] [--tolerance R]

Reads the Chrome trace-event JSON written by `ams_serve --trace` (or
`route::ShardRouter::DumpTrace` / `obs::ChromeTraceSink`), checks that it is
structurally well-formed, and prints a per-phase latency table: count and
p50/p95/p99/mean/max over the span durations of each duration phase
(queue_wait, exec, tick, forward, coalesced_forward), plus counts for the
instant phases (enqueue, quota_reject, placement, migrate_out, migrate_in).
Span phases nothing recorded land in the table as an explicit "no samples"
row — a run with coalescing off (or no forwards at all) summarizes cleanly
rather than hiding the phase.

Validation failures (missing keys, unknown `ph` types, negative durations,
unbalanced migrate_out/migrate_in) exit non-zero, so CI can gate on the
exporter staying Perfetto-loadable.

With `--metrics`, cross-checks the trace against the MetricsJson snapshot of
the same run: queue_wait percentiles recomputed exactly from the trace must
agree with the `latency.queue_delay` histogram percentiles within one
histogram bucket (sqrt(2)-spaced buckets with in-bucket interpolation →
default tolerance ratio 1.5, plus a small absolute floor for
microsecond-scale values). Only meaningful when the trace was recorded with
`--trace-sample 1` — a sampled trace holds a subset of the requests the
histogram saw.
"""

import argparse
import json
import math
import sys

# Phases emitted with a duration ("ph": "X") vs. as instants ("ph": "i").
SPAN_PHASES = ("queue_wait", "exec", "tick", "forward", "coalesced_forward")
INSTANT_PHASES = ("enqueue", "quota_reject", "placement", "migrate_out",
                  "migrate_in")
KNOWN_PHASES = set(SPAN_PHASES) | set(INSTANT_PHASES)


class TraceError(Exception):
    """A structural problem that makes the trace untrustworthy."""


def load_events(path):
    """Returns the event list from a Chrome trace file (object or array form)."""
    with open(path) as handle:
        doc = json.load(handle)
    if isinstance(doc, dict):
        if "traceEvents" not in doc:
            raise TraceError("top-level object has no 'traceEvents' key")
        events = doc["traceEvents"]
    elif isinstance(doc, list):
        events = doc
    else:
        raise TraceError("trace is neither an object nor an array")
    if not isinstance(events, list):
        raise TraceError("'traceEvents' is not a list")
    return events


def validate(events):
    """Checks structural well-formedness; raises TraceError on violations."""
    counts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceError(f"event {i} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in ev:
                raise TraceError(f"event {i} missing '{key}'")
        ph = ev["ph"]
        if ph == "M":
            continue  # process_name / thread_name metadata
        if ph not in ("X", "i"):
            raise TraceError(f"event {i} has unknown ph {ph!r}")
        name = ev["name"]
        if name not in KNOWN_PHASES:
            raise TraceError(f"event {i} has unknown phase {name!r}")
        for key in ("ts", "tid"):
            if key not in ev:
                raise TraceError(f"event {i} ({name}) missing '{key}'")
        if ph == "X":
            if name not in SPAN_PHASES:
                raise TraceError(f"event {i}: instant phase {name!r} has ph X")
            if ev.get("dur", -1.0) < 0.0:
                raise TraceError(f"event {i} ({name}) has negative/missing dur")
        else:
            if name not in INSTANT_PHASES:
                raise TraceError(f"event {i}: span phase {name!r} has ph i")
            if ev.get("s") != "t":
                raise TraceError(f"event {i} ({name}) instant missing s=t scope")
        counts[name] = counts.get(name, 0) + 1
    # Span conservation at the trace level: every migration departure must
    # land somewhere (the router records the bounce-back as a migrate_in on
    # the source shard, so equality holds even when requeue fails).
    if counts.get("migrate_out", 0) != counts.get("migrate_in", 0):
        raise TraceError(
            "unbalanced migration: {} migrate_out vs {} migrate_in".format(
                counts.get("migrate_out", 0), counts.get("migrate_in", 0)))
    return counts


def percentile(sorted_values, p):
    """Nearest-rank percentile over an ascending list; 0.0 when empty."""
    if not sorted_values:
        return 0.0
    rank = max(1, min(len(sorted_values),
                      math.ceil(p / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def durations_by_phase(events):
    """Maps span-phase name -> sorted list of durations in seconds."""
    durs = {name: [] for name in SPAN_PHASES}
    for ev in events:
        if ev.get("ph") == "X" and ev["name"] in durs:
            durs[ev["name"]].append(ev["dur"] * 1e-6)  # trace dur is in us
    for values in durs.values():
        values.sort()
    return durs


def summarize(events, out=sys.stdout):
    """Prints the per-phase latency table; returns the duration map."""
    durs = durations_by_phase(events)
    counts = {}
    for ev in events:
        if ev.get("ph") in ("X", "i"):
            counts[ev["name"]] = counts.get(ev["name"], 0) + 1

    header = f"{'phase':<18}{'count':>8}{'p50 ms':>12}{'p95 ms':>12}" \
             f"{'p99 ms':>12}{'mean ms':>12}{'max ms':>12}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for name in SPAN_PHASES:
        values = durs[name]
        if not values:
            # An empty phase is normal (coalescing off, no forwards, no
            # sampled requests): say so explicitly instead of dividing by a
            # zero count or silently dropping the row.
            print(f"{name:<18}{0:>8}{'(no samples)':>12}", file=out)
            continue
        mean = sum(values) / len(values)
        print(f"{name:<18}{len(values):>8}"
              f"{percentile(values, 50) * 1e3:>12.3f}"
              f"{percentile(values, 95) * 1e3:>12.3f}"
              f"{percentile(values, 99) * 1e3:>12.3f}"
              f"{mean * 1e3:>12.3f}"
              f"{values[-1] * 1e3:>12.3f}", file=out)
    for name in INSTANT_PHASES:
        if counts.get(name):
            print(f"{name:<18}{counts[name]:>8}{'(instant)':>12}", file=out)
    return durs


def check_metrics(durs, metrics_path, tolerance, out=sys.stdout):
    """Cross-checks trace queue_wait percentiles against MetricsJson.

    Returns a list of mismatch strings (empty = pass). `tolerance` is the
    allowed ratio between the exact trace percentile and the bucketed
    histogram percentile; values under 50 us on both sides always pass (one
    bucket down there is wider than anything we care to gate on).
    """
    with open(metrics_path) as handle:
        doc = json.load(handle)
    # Router snapshots nest the cluster view under "aggregate".
    agg = doc.get("aggregate", doc)
    hist = agg.get("latency", {}).get("queue_delay")
    if hist is None:
        return ["metrics JSON has no latency.queue_delay histogram"]
    waits = durs["queue_wait"]
    mismatches = []
    if hist.get("count") != len(waits):
        mismatches.append(
            "queue_wait count mismatch: trace has {} spans, histogram "
            "recorded {}".format(len(waits), hist.get("count")))
    for p, key in ((50, "p50_s"), (95, "p95_s"), (99, "p99_s")):
        trace_p = percentile(waits, p)
        hist_p = hist.get(key, 0.0)
        if trace_p < 50e-6 and hist_p < 50e-6:
            continue
        lo, hi = sorted((trace_p, hist_p))
        if lo <= 0.0 or hi / lo > tolerance:
            mismatches.append(
                f"queue delay p{p}: trace {trace_p * 1e3:.3f} ms vs "
                f"histogram {hist_p * 1e3:.3f} ms (tolerance x{tolerance})")
        else:
            print(f"queue delay p{p}: trace {trace_p * 1e3:.3f} ms ~ "
                  f"histogram {hist_p * 1e3:.3f} ms  ok", file=out)
    return mismatches


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate and summarize an ams_serve Chrome trace.")
    parser.add_argument("trace", help="Chrome trace JSON from ams_serve --trace")
    parser.add_argument("--metrics", default=None,
                        help="MetricsJson snapshot from the same run "
                             "(cross-checks queue-delay percentiles)")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed trace/histogram percentile ratio "
                             "(default 1.5 = one sqrt(2) bucket plus slack)")
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
        counts = validate(events)
    except (TraceError, json.JSONDecodeError, OSError) as err:
        print(f"trace invalid: {err}", file=sys.stderr)
        return 1
    print(f"{args.trace}: {sum(counts.values())} events, "
          f"{len(counts)} phases — structurally valid")
    durs = summarize(events)

    if args.metrics:
        try:
            mismatches = check_metrics(durs, args.metrics, args.tolerance)
        except (json.JSONDecodeError, OSError) as err:
            print(f"metrics cross-check failed: {err}", file=sys.stderr)
            return 1
        if mismatches:
            for line in mismatches:
                print(f"metrics cross-check FAILED: {line}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
