#!/usr/bin/env python3
"""Unit tests for trace_summary.py against the committed fixture.

Run from anywhere: the fixture paths resolve relative to this file. Wired
into CTest as `trace_summary_py` (skipped when python3 is unavailable).
"""

import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_summary  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE = os.path.join(REPO, "tests", "fixtures", "trace_small.json")
METRICS = os.path.join(REPO, "tests", "fixtures", "metrics_small.json")
COALESCED_TRACE = os.path.join(
    REPO, "tests", "fixtures", "trace_coalesced_small.json")
COALESCED_METRICS = os.path.join(
    REPO, "tests", "fixtures", "metrics_coalesced_small.json")


def write_temp(doc):
    handle = tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False)
    json.dump(doc, handle)
    handle.close()
    return handle.name


class FixtureTest(unittest.TestCase):
    """The committed ams_serve --trace fixture is valid and self-consistent."""

    def test_fixture_validates(self):
        events = trace_summary.load_events(TRACE)
        counts = trace_summary.validate(events)
        # One lifecycle per request: every sampled admission produced exactly
        # one queue_wait and one exec span.
        self.assertEqual(counts["enqueue"], counts["queue_wait"])
        self.assertEqual(counts["enqueue"], counts["exec"])
        self.assertGreater(counts.get("tick", 0), 0)
        self.assertGreater(counts.get("forward", 0), 0)

    def test_main_with_metrics_cross_check(self):
        self.assertEqual(
            trace_summary.main([TRACE, "--metrics", METRICS]), 0)

    def test_summarize_reports_every_recorded_phase(self):
        events = trace_summary.load_events(TRACE)
        out = io.StringIO()
        trace_summary.summarize(events, out=out)
        text = out.getvalue()
        for name in ("queue_wait", "exec", "tick", "forward", "enqueue",
                     "placement"):
            self.assertIn(name, text)

    def test_queue_wait_matches_histogram_percentiles(self):
        events = trace_summary.load_events(TRACE)
        durs = trace_summary.durations_by_phase(events)
        mismatches = trace_summary.check_metrics(
            durs, METRICS, tolerance=1.5, out=io.StringIO())
        self.assertEqual(mismatches, [])

    def test_empty_phase_gets_no_samples_row(self):
        # The non-coalesced fixture recorded no coalesced_forward spans:
        # the phase must still appear, flagged, instead of a divide-by-zero
        # or a silently missing row.
        events = trace_summary.load_events(TRACE)
        out = io.StringIO()
        trace_summary.summarize(events, out=out)
        rows = [line for line in out.getvalue().splitlines()
                if line.startswith("coalesced_forward")]
        self.assertEqual(len(rows), 1)
        self.assertIn("no samples", rows[0])


class CoalescedFixtureTest(unittest.TestCase):
    """The ams_serve --coalesce --trace fixture is valid and carries the
    coalesced_forward span phase."""

    def test_fixture_validates_with_coalesced_spans(self):
        events = trace_summary.load_events(COALESCED_TRACE)
        counts = trace_summary.validate(events)
        self.assertGreater(counts.get("coalesced_forward", 0), 0)
        # Coalescing never drops per-stepper attribution: every tick still
        # has its forward span (the rendezvous wait is the stepper's forward
        # phase under coalescing).
        self.assertEqual(counts.get("tick", 0), counts.get("forward", 0))

    def test_main_with_metrics_cross_check(self):
        self.assertEqual(
            trace_summary.main(
                [COALESCED_TRACE, "--metrics", COALESCED_METRICS]), 0)

    def test_summarize_reports_coalesced_phase_with_samples(self):
        events = trace_summary.load_events(COALESCED_TRACE)
        out = io.StringIO()
        trace_summary.summarize(events, out=out)
        rows = [line for line in out.getvalue().splitlines()
                if line.startswith("coalesced_forward")]
        self.assertEqual(len(rows), 1)
        self.assertNotIn("no samples", rows[0])


class ValidationTest(unittest.TestCase):
    """Malformed traces are rejected, not summarized."""

    def run_main(self, doc):
        path = write_temp(doc)
        try:
            return trace_summary.main([path])
        finally:
            os.unlink(path)

    def test_missing_trace_events_key(self):
        self.assertEqual(self.run_main({"events": []}), 1)

    def test_unknown_ph(self):
        self.assertEqual(self.run_main({"traceEvents": [
            {"name": "tick", "ph": "B", "ts": 0, "pid": 0, "tid": 0}]}), 1)

    def test_unknown_phase_name(self):
        self.assertEqual(self.run_main({"traceEvents": [
            {"name": "mystery", "ph": "i", "s": "t", "ts": 0, "pid": 0,
             "tid": 0}]}), 1)

    def test_negative_duration(self):
        self.assertEqual(self.run_main({"traceEvents": [
            {"name": "tick", "ph": "X", "ts": 0, "dur": -1, "pid": 0,
             "tid": 0}]}), 1)

    def test_unbalanced_migration(self):
        self.assertEqual(self.run_main({"traceEvents": [
            {"name": "migrate_out", "ph": "i", "s": "t", "ts": 0, "pid": 0,
             "tid": 65535, "args": {}}]}), 1)

    def test_empty_trace_is_valid(self):
        self.assertEqual(self.run_main({"traceEvents": []}), 0)

    def test_metadata_events_are_ignored(self):
        self.assertEqual(self.run_main({"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "shard 0"}}]}), 0)


class PercentileTest(unittest.TestCase):
    def test_empty_is_zero(self):
        self.assertEqual(trace_summary.percentile([], 50), 0.0)

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        self.assertEqual(trace_summary.percentile(values, 50), 5.0)
        self.assertEqual(trace_summary.percentile(values, 99), 10.0)
        self.assertEqual(trace_summary.percentile(values, 0), 1.0)


if __name__ == "__main__":
    unittest.main()
