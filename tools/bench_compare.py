#!/usr/bin/env python3
"""CI bench gate: diff freshly produced BENCH_*.json files against the
committed baselines and fail on per-scenario throughput regressions.

Usage:
    bench_compare.py BASELINE CANDIDATE [BASELINE CANDIDATE ...]

Each file is a bench JSON with a "configs" array of
{"name": ..., "items_per_s": ...} entries (bench_service_throughput and
bench_serve_runtime both emit this shape).

What is compared
----------------
CI runners and developer machines differ wildly in absolute speed (and CI
runs the benches on a reduced workload), so raw items/s across files is not
comparable. The gate therefore compares each scenario's NORMALIZED
throughput: its items_per_s divided by the items_per_s of the file's first
config (the reference scenario — full_scalar / submit_batch). That ratio is
machine- and workload-size-portable: it measures what the repo's own knobs
buy, which is exactly what a code change can regress. A scenario whose
normalized throughput drops by more than the threshold (default 25%,
AMS_BENCH_GATE_PCT env) fails the gate.

Setting AMS_BENCH_GATE_ABSOLUTE=1 additionally gates raw items_per_s with
the same threshold — only meaningful on a stable dedicated runner producing
both files under identical settings.

Scenarios present in the candidate but not the baseline (new benches) pass,
flagged "new" in the table and listed in an informational note — they are
gated starting from the first baseline regeneration that includes them.
Scenarios present in the baseline but missing from the candidate fail with
a message naming the scenario and both files (a silently dropped bench must
not pass the gate); deliberately removing a scenario requires regenerating
the committed baseline in the same change. The reference scenario itself is
gated only in absolute mode (its normalized value is 1 by construction).

The per-scenario delta table is printed to stdout and appended to
$GITHUB_STEP_SUMMARY when set.
"""

import json
import os
import sys


def load_configs(path):
    with open(path) as f:
        data = json.load(f)
    configs = data.get("configs", [])
    if not configs:
        raise SystemExit(f"{path}: no 'configs' array")
    ordered = []
    for config in configs:
        name = config.get("name")
        items_per_s = config.get("items_per_s")
        if name is None or not isinstance(items_per_s, (int, float)):
            raise SystemExit(f"{path}: config missing name/items_per_s: {config}")
        if items_per_s <= 0:
            raise SystemExit(f"{path}: non-positive items_per_s for {name}")
        ordered.append((name, float(items_per_s)))
    return ordered


def compare_pair(baseline_path, candidate_path, threshold_pct, absolute):
    """Returns (rows, failures, notes): one table row per scenario."""
    baseline = load_configs(baseline_path)
    candidate = load_configs(candidate_path)
    if baseline[0][0] != candidate[0][0]:
        # Normalization divides by each file's first config; comparing
        # against different references would skew every row silently.
        raise SystemExit(
            f"reference scenario mismatch: {baseline_path} normalizes by "
            f"'{baseline[0][0]}' but {candidate_path} by '{candidate[0][0]}' "
            f"— regenerate the baselines together")
    base_by_name = dict(baseline)
    cand_by_name = dict(candidate)
    base_ref = baseline[0][1]
    cand_ref = candidate[0][1]

    rows = []
    failures = []
    notes = []
    for name, base_raw in baseline:
        if name not in cand_by_name:
            failures.append(
                f"scenario '{name}' is in the baseline {baseline_path} but "
                f"the fresh run {candidate_path} did not produce it — the "
                f"bench no longer emits this scenario; if that is "
                f"intentional, regenerate the committed baseline in the "
                f"same change")
            rows.append((name, "missing", "", "", "FAIL"))
            continue
        cand_raw = cand_by_name[name]
        base_norm = base_raw / base_ref
        cand_norm = cand_raw / cand_ref
        delta_pct = (cand_norm / base_norm - 1.0) * 100.0
        verdicts = []
        is_reference = name == baseline[0][0]
        if not is_reference and delta_pct < -threshold_pct:
            verdicts.append(f"normalized throughput regressed "
                            f"{-delta_pct:.1f}% (> {threshold_pct:.0f}%)")
        abs_delta_pct = (cand_raw / base_raw - 1.0) * 100.0
        if absolute and abs_delta_pct < -threshold_pct:
            verdicts.append(f"absolute throughput regressed "
                            f"{-abs_delta_pct:.1f}% (> {threshold_pct:.0f}%)")
        status = "FAIL" if verdicts else "ok"
        for verdict in verdicts:
            failures.append(f"{name}: {verdict}")
        rows.append((name, f"{base_norm:.3f}", f"{cand_norm:.3f}",
                     f"{delta_pct:+.1f}%", status))
    for name, _ in candidate:
        if name not in base_by_name:
            rows.append((name, "(new)", f"{cand_by_name[name] / cand_ref:.3f}",
                         "", "new"))
            notes.append(
                f"scenario '{name}' is new (not in the baseline "
                f"{baseline_path}); informational only until the committed "
                f"baseline is regenerated to include it")
    return rows, failures, notes


def format_table(title, rows):
    lines = [f"### Bench gate: {title}", "",
             "| scenario | baseline (norm) | candidate (norm) | delta | status |",
             "|---|---|---|---|---|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    lines.append("")
    return "\n".join(lines)


def main(argv):
    if len(argv) < 3 or len(argv) % 2 == 0:
        print(__doc__)
        raise SystemExit(2)
    threshold_pct = float(os.environ.get("AMS_BENCH_GATE_PCT", "25"))
    absolute = os.environ.get("AMS_BENCH_GATE_ABSOLUTE", "") not in ("", "0")

    output = []
    all_failures = []
    all_notes = []
    for i in range(1, len(argv), 2):
        baseline_path, candidate_path = argv[i], argv[i + 1]
        rows, failures, notes = compare_pair(baseline_path, candidate_path,
                                             threshold_pct, absolute)
        output.append(format_table(os.path.basename(baseline_path), rows))
        all_failures.extend(f"{os.path.basename(baseline_path)}: {f}"
                            for f in failures)
        all_notes.extend(notes)

    report = "\n".join(output)
    mode = "normalized+absolute" if absolute else "normalized"
    report += (f"\nthreshold: {threshold_pct:.0f}% ({mode}; "
               f"AMS_BENCH_GATE_PCT / AMS_BENCH_GATE_ABSOLUTE)\n")
    for note in all_notes:
        report += f"NOTE: {note}\n"
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(report + "\n")

    if all_failures:
        for failure in all_failures:
            print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print("bench gate passed")


if __name__ == "__main__":
    main(sys.argv)
