// ams_serve — open-loop serving driver for the serve::ServerRuntime: builds
// a corpus and an agent, stands up the asynchronous runtime over a labeling
// session, replays seeded Poisson arrivals against it, and reports
// admission/latency/throughput metrics.
//
// Usage:
//   ams_serve [--dataset NAME] [--items N] [--requests N] [--rate R]
//             [--workers N] [--queue-cap N] [--resident N]
//             [--overload block|reject|shed] [--order edf|value|hybrid]
//             [--slack S] [--class-mix I:S:B] [--starvation-bound K]
//             [--tenants N] [--quota SPEC]
//             [--shards N] [--placement hash|least|p2c] [--rebalance S]
//             [--live] [--quantized] [--coalesce]
//             [--deadline S] [--memory GB] [--hidden N] [--seed N]
//             [--json PATH] [--trace PATH] [--trace-sample N]
//
// `--rate` is the open-loop arrival rate in requests/second (Poisson, seeded
// by --seed); 0 enqueues everything at once (closed burst). `--slack` grants
// each request a latency deadline of arrival + S seconds (EDF admission
// order, misses counted); 0 means no deadlines. `--class-mix` assigns each
// request a priority class (interactive:standard:batch) with the given
// relative shares, seeded — thinning the single Poisson arrival process
// into independent per-class Poisson streams of rate * share each; the
// report then breaks admission and latency out per class. `--order` picks
// the within-class admission order: "edf" (deadline only, the default),
// "value" (highest estimated marginal recall per unit cost first, scored by
// the runtime's ProfileValueEstimator), or "hybrid" (densest request whose
// slack still admits it). `--tenants N` spreads requests over N tenants
// with a seeded harmonic skew (tenant 0 heaviest — share of tenant t is
// proportional to 1/(t+1)), and `--quota` applies one quota to every tenant
// as comma-separated key=value pairs from {queued=N, inflight=N, rate=R,
// burst=B}; the report then breaks admission out per tenant. The scheduling
// agent is an untrained net with the paper's architecture — per-decision
// cost matches a trained agent while setup stays in milliseconds (train and
// serve real checkpoints through ams_label's cache if needed).
//
// `--shards N` (N > 1) serves through a route::ShardRouter instead of a
// single runtime: N independent shard runtimes (the --workers budget split
// evenly across them), a `--placement` policy picking the shard per request
// (consistent hash on (tenant, item), least-queued, or power-of-two-choices
// over the queue-depth gauges), and, with `--rebalance S`, a background tick
// every S seconds migrating queued work from the hottest shard to the
// coldest. The report and JSON snapshot then carry the aggregated cluster
// view plus the per-shard breakdown. `--live` submits each request as a
// WorkItem::Live over the corpus scene instead of a stored item id —
// exercising the no-replay-cache live path (live requests have no stable
// identity, so hash placement keys them by arrival order). `--quantized`
// serves every worker's pooled predictor clone as a frozen int8 snapshot
// (LabelingServiceBuilder::WithQuantizedInference): Q values move within
// quantization tolerance, so served outcomes are no longer bit-identical to
// the fp32 run, but action ranking — hence recall — holds. `--coalesce`
// turns on cross-worker forward coalescing (serve::ForwardCoalescer; with
// --shards it spans the whole cluster): workers rendezvous each tick and
// run ONE deduplicated Q-forward for all of them — served results stay
// bitwise identical, and the metrics snapshot grows coalesced-round
// counters. AMS_COALESCE=1 in the environment does the same without the
// flag.
//
// Examples:
//   ams_serve --rate 2000 --workers 4 --slack 0.05
//   ams_serve --rate 8000 --queue-cap 64 --overload shed --requests 20000
//   ams_serve --rate 4000 --class-mix 70:25:5 --overload shed --slack 0.1
//   ams_serve --order value --overload shed --queue-cap 64 --rate 8000
//   ams_serve --tenants 4 --quota queued=32,rate=500,burst=50 --rate 4000
//   ams_serve --shards 4 --placement p2c --rebalance 0.05 --rate 8000
//   ams_serve --live --rate 2000 --slack 0.1
//   ams_serve --shards 4 --rebalance 0.02 --trace trace.json --trace-sample 4
//
// `--trace PATH` turns on the obs:: tracing layer and, after the run
// drains, writes every retained span (admission, queue wait, stepper ticks,
// batched Q-forwards, execution, migration hops) as Chrome trace-event JSON
// to PATH — load it in Perfetto or chrome://tracing, or summarize it with
// tools/trace_summary.py. `--trace-sample N` records the per-request
// lifecycle spans of every Nth request only (default 1 = all); tick and
// forward spans are always per-tick. Tracing off (no --trace) leaves the
// serving hot path exactly as fast as before — every instrumentation site
// reduces to one branch.

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/labeling_service.h"
#include "obs/trace.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "nn/net.h"
#include "rl/agent.h"
#include "route/aggregated_metrics.h"
#include "route/placement.h"
#include "route/shard_router.h"
#include "serve/server_runtime.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace ams;

struct Options {
  std::string dataset = "mscoco";
  int items = 400;        // corpus size; requests cycle through it
  int requests = 2000;    // total requests to replay
  double rate = 0.0;      // arrivals/s; 0 = closed burst
  int workers = 0;        // <= 0: hardware concurrency
  int queue_cap = 1024;
  int resident = 16;
  std::string overload = "block";
  std::string order = "edf";  // raw spelling for the banner
  serve::WithinClassOrder order_enum = serve::WithinClassOrder::kEdf;
  double slack_s = 0.0;   // 0 = no deadlines
  std::string class_mix;  // "I:S:B" shares; empty = all standard
  int starvation_bound = 16;
  int tenants = 1;        // request spread; > 1 enables the per-tenant report
  std::string quota;      // "queued=N,inflight=N,rate=R,burst=B"; empty = none
  int shards = 1;         // > 1 serves through a route::ShardRouter
  std::string placement = "hash";  // hash | least | p2c
  double rebalance_s = 0.0;  // > 0 starts the router's rebalance tick
  bool live = false;      // submit WorkItem::Live scenes, not stored ids
  bool quantized = false; // serve frozen int8 predictor snapshots
  bool coalesce = false;  // coalesce Q-forwards across workers (and shards)
  double deadline = 1.0;  // per-item scheduling time budget (simulated)
  double memory_gb = 8.0; // per-item memory budget (Algorithm 2)
  int hidden = 256;
  uint64_t seed = 7;
  std::string json_path;
  std::string trace_path;   // empty = tracing off
  int trace_sample = 1;     // record every Nth request's lifecycle spans
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dataset mscoco|places365|mirflickr25|stanford40|voc2012]\n"
      "          [--items N] [--requests N] [--rate R] [--workers N]\n"
      "          [--queue-cap N] [--resident N] [--overload block|reject|shed]\n"
      "          [--order edf|value|hybrid] [--slack S] [--class-mix I:S:B]\n"
      "          [--starvation-bound K] [--tenants N]\n"
      "          [--quota queued=N,inflight=N,rate=R,burst=B]\n"
      "          [--shards N] [--placement hash|least|p2c] [--rebalance S]\n"
      "          [--live] [--quantized] [--coalesce] [--deadline S]\n"
      "          [--memory GB]\n"
      "          [--hidden N] [--seed N] [--json PATH]\n"
      "          [--trace PATH] [--trace-sample N]\n",
      argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opts.dataset = next();
    } else if (!std::strcmp(argv[i], "--items")) {
      opts.items = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--requests")) {
      opts.requests = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--rate")) {
      opts.rate = std::atof(next());
    } else if (!std::strcmp(argv[i], "--workers")) {
      opts.workers = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--queue-cap")) {
      opts.queue_cap = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--resident")) {
      opts.resident = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--overload")) {
      opts.overload = next();
    } else if (!std::strcmp(argv[i], "--order")) {
      opts.order = next();
    } else if (!std::strcmp(argv[i], "--slack")) {
      opts.slack_s = std::atof(next());
    } else if (!std::strcmp(argv[i], "--class-mix")) {
      opts.class_mix = next();
    } else if (!std::strcmp(argv[i], "--starvation-bound")) {
      opts.starvation_bound = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--tenants")) {
      opts.tenants = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--quota")) {
      opts.quota = next();
    } else if (!std::strcmp(argv[i], "--shards")) {
      opts.shards = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--placement")) {
      opts.placement = next();
    } else if (!std::strcmp(argv[i], "--rebalance")) {
      opts.rebalance_s = std::atof(next());
    } else if (!std::strcmp(argv[i], "--live")) {
      opts.live = true;
    } else if (!std::strcmp(argv[i], "--quantized")) {
      opts.quantized = true;
    } else if (!std::strcmp(argv[i], "--coalesce")) {
      opts.coalesce = true;
    } else if (!std::strcmp(argv[i], "--deadline")) {
      opts.deadline = std::atof(next());
    } else if (!std::strcmp(argv[i], "--memory")) {
      opts.memory_gb = std::atof(next());
    } else if (!std::strcmp(argv[i], "--hidden")) {
      opts.hidden = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      opts.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--json")) {
      opts.json_path = next();
    } else if (!std::strcmp(argv[i], "--trace")) {
      opts.trace_path = next();
    } else if (!std::strcmp(argv[i], "--trace-sample")) {
      opts.trace_sample = std::atoi(next());
    } else {
      Usage(argv[0]);
    }
  }
  if (opts.trace_sample < 1) {
    std::fprintf(stderr, "--trace-sample must be >= 1\n");
    Usage(argv[0]);
  }
  if (opts.overload != "block" && opts.overload != "reject" &&
      opts.overload != "shed") {
    std::fprintf(stderr, "unknown overload policy: %s\n",
                 opts.overload.c_str());
    Usage(argv[0]);
  }
  if (opts.starvation_bound < serve::kNumPriorityClasses) {
    std::fprintf(stderr,
                 "--starvation-bound must be >= %d (one pop per class)\n",
                 serve::kNumPriorityClasses);
    Usage(argv[0]);
  }
  if (!serve::WithinClassOrderFromName(opts.order.c_str(),
                                       &opts.order_enum)) {
    std::fprintf(stderr, "unknown --order (want edf|value|hybrid): %s\n",
                 opts.order.c_str());
    Usage(argv[0]);
  }
  if (opts.tenants < 1) {
    std::fprintf(stderr, "--tenants must be >= 1\n");
    Usage(argv[0]);
  }
  if (opts.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    Usage(argv[0]);
  }
  if (opts.placement != "hash" && opts.placement != "least" &&
      opts.placement != "p2c") {
    std::fprintf(stderr, "unknown --placement (want hash|least|p2c): %s\n",
                 opts.placement.c_str());
    Usage(argv[0]);
  }
  if (opts.rebalance_s < 0.0) {
    std::fprintf(stderr, "--rebalance must be >= 0\n");
    Usage(argv[0]);
  }
  return opts;
}

/// Parses "--quota queued=N,inflight=N,rate=R,burst=B" (any subset) into a
/// TenantQuota; exits on malformed specs.
serve::TenantQuota QuotaFromSpec(const std::string& spec) {
  serve::TenantQuota quota;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string pair = spec.substr(start, end - start);
    const size_t eq = pair.find('=');
    bool ok = eq != std::string::npos && eq + 1 < pair.size();
    if (ok) {
      const std::string key = pair.substr(0, eq);
      const double value = std::atof(pair.c_str() + eq + 1);
      if (key == "queued") {
        quota.max_queued = static_cast<int>(value);
      } else if (key == "inflight") {
        quota.max_in_flight = static_cast<int>(value);
      } else if (key == "rate") {
        quota.rate_per_s = value;
      } else if (key == "burst") {
        quota.burst = value;
      } else {
        ok = false;
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "bad --quota entry (want queued=N,inflight=N,rate=R,"
                   "burst=B): %s\n",
                   pair.c_str());
      std::exit(2);
    }
    start = end + 1;
  }
  return quota;
}

data::DatasetProfile ProfileFromName(const std::string& name) {
  bool found = false;
  data::DatasetProfile profile =
      data::DatasetProfile::ByName(name, data::DatasetProfile::MsCoco(),
                                   &found);
  if (!found) {
    std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    std::exit(2);
  }
  return profile;
}

serve::OverloadPolicy PolicyFromName(const std::string& name) {
  if (name == "reject") return serve::OverloadPolicy::kReject;
  if (name == "shed") return serve::OverloadPolicy::kShedOldest;
  return serve::OverloadPolicy::kBlock;
}

/// Parses "--class-mix I:S:B" (e.g. "70:25:5") into per-class shares.
/// Empty mix = everything kStandard.
std::array<double, serve::kNumPriorityClasses> MixFromSpec(
    const std::string& spec) {
  std::array<double, serve::kNumPriorityClasses> mix{0.0, 1.0, 0.0};
  if (spec.empty()) return mix;
  double interactive = 0.0, standard = 0.0, batch = 0.0;
  if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &interactive, &standard,
                  &batch) != 3 ||
      !std::isfinite(interactive) || !std::isfinite(standard) ||
      !std::isfinite(batch) ||
      interactive < 0.0 || standard < 0.0 || batch < 0.0 ||
      interactive + standard + batch <= 0.0) {
    std::fprintf(stderr, "bad --class-mix (want I:S:B shares): %s\n",
                 spec.c_str());
    std::exit(2);
  }
  mix = {interactive, standard, batch};
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Parse(argc, argv);
  // Validate the mix before the (comparatively slow) corpus build.
  const std::array<double, serve::kNumPriorityClasses> mix =
      MixFromSpec(opts.class_mix);

  std::printf("building zoo + %s corpus (%d items, seed %llu)...\n",
              opts.dataset.c_str(), opts.items,
              static_cast<unsigned long long>(opts.seed));
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      ProfileFromName(opts.dataset), zoo.labels(), opts.items, opts.seed);
  const data::Oracle oracle(&zoo, &dataset);

  nn::MlpConfig net_config;
  net_config.input_dim = zoo.labels().total_labels();
  net_config.hidden_dims = {opts.hidden};
  net_config.output_dim = zoo.num_models() + 1;
  rl::Agent agent(std::make_unique<nn::Mlp>(net_config, opts.seed),
                  nn::NetKind::kMlp);

  core::ScheduleConstraints constraints;
  constraints.time_budget_s = opts.deadline;
  constraints.memory_budget_mb = opts.memory_gb * 1024.0;
  // Sharded serving splits the --workers budget evenly: the comparison a
  // `--shards N` run invites is against a single runtime with the same
  // total worker count. A single-shard run keeps the original semantics
  // (<= 0 resolves from hardware concurrency inside the runtime).
  const int per_shard_workers =
      opts.shards > 1
          ? std::max(1, (opts.workers > 0
                             ? opts.workers
                             : std::max(1, static_cast<int>(
                                               std::thread::
                                                   hardware_concurrency()))) /
                            opts.shards)
          : opts.workers;
  std::vector<core::LabelingService> sessions;
  sessions.reserve(static_cast<size_t>(opts.shards));
  for (int s = 0; s < opts.shards; ++s) {
    // One session per shard: a session's predictor clone pool serves one
    // runtime's workers.
    sessions.push_back(core::LabelingServiceBuilder(&zoo)
                           .WithOracle(&oracle)
                           .WithPredictor(&agent)
                           .WithMode(core::ExecutionMode::kParallel)
                           .WithConstraints(constraints)
                           .WithKernelMode(core::KernelMode::kLean)
                           .WithQuantizedInference(opts.quantized)
                           .WithWorkers(per_shard_workers)
                           .WithSeed(opts.seed + static_cast<uint64_t>(s))
                           .Build());
  }

  serve::ServeOptions serve_options;
  serve_options.workers = per_shard_workers;
  serve_options.queue_capacity = opts.queue_cap;
  serve_options.max_resident_per_worker = opts.resident;
  serve_options.overload = PolicyFromName(opts.overload);
  serve_options.starvation_bound = opts.starvation_bound;
  serve_options.within_class_order = opts.order_enum;
  if (!opts.quota.empty()) {
    serve_options.tenant_quotas.default_quota = QuotaFromSpec(opts.quota);
  }
  if (opts.slack_s > 0.0) serve_options.default_slack_s = opts.slack_s;
  serve_options.coalesce_forwards = opts.coalesce;

  // One tracer for the whole process: every shard runtime registers its
  // lanes in it, so the post-run dump is a single merged timeline.
  std::unique_ptr<obs::Tracer> tracer;
  if (!opts.trace_path.empty()) {
    obs::Tracer::Options trace_options;
    trace_options.sample_every = opts.trace_sample;
    tracer = std::make_unique<obs::Tracer>(trace_options);
    serve_options.tracer = tracer.get();
  }

  std::unique_ptr<route::Placement> placement;
  std::unique_ptr<serve::ServerRuntime> runtime;
  std::unique_ptr<route::ShardRouter> router;
  if (opts.shards > 1) {
    placement = route::PlacementFromName(opts.placement.c_str(), opts.seed);
    route::RouterOptions router_options;
    router_options.serve = serve_options;
    router_options.placement = placement.get();
    router_options.rebalance_interval_s = opts.rebalance_s;
    std::vector<core::LabelingService*> shard_sessions;
    for (core::LabelingService& session : sessions) {
      shard_sessions.push_back(&session);
    }
    router = std::make_unique<route::ShardRouter>(shard_sessions,
                                                  router_options);
  } else {
    runtime =
        std::make_unique<serve::ServerRuntime>(&sessions[0], serve_options);
  }
  const int worker_count = router != nullptr
                               ? opts.shards * router->shard(0).worker_count()
                               : runtime->worker_count();

  std::printf(
      "serving %d %srequests (rate %s/s, %d workers, queue %d, overload %s, "
      "order %s, slack %s, mix %s, %d tenant%s%s%s%s)...\n",
      opts.requests, opts.live ? "live " : "",
      opts.rate > 0.0 ? util::FormatDouble(opts.rate, 0).c_str() : "inf",
      worker_count, opts.queue_cap, opts.overload.c_str(),
      opts.order.c_str(),
      opts.slack_s > 0.0 ? util::FormatDouble(opts.slack_s, 3).c_str()
                         : "inf",
      opts.class_mix.empty() ? "standard-only" : opts.class_mix.c_str(),
      opts.tenants, opts.tenants == 1 ? "" : "s",
      opts.quota.empty() ? "" : ", quota-limited",
      opts.quantized ? ", int8 predictor" : "",
      opts.coalesce ? ", coalesced forwards" : "");
  if (router != nullptr) {
    std::printf("routing over %d shards (%s placement, rebalance %s)\n",
                opts.shards, opts.placement.c_str(),
                opts.rebalance_s > 0.0
                    ? (util::FormatDouble(opts.rebalance_s, 3) + " s").c_str()
                    : "off");
  }

  // Open-loop arrivals: exponential inter-arrival gaps at --rate, paced
  // against the wall clock so service-time jitter never slows admission.
  std::mt19937_64 rng(opts.seed);
  std::exponential_distribution<double> gap(opts.rate > 0.0 ? opts.rate : 1.0);
  std::discrete_distribution<int> class_of(mix.begin(), mix.end());
  // Seeded harmonic tenant skew: tenant t's arrival share is proportional
  // to 1/(t+1), so tenant 0 dominates — the regime quotas are for.
  std::vector<double> tenant_weights;
  for (int t = 0; t < opts.tenants; ++t) {
    tenant_weights.push_back(1.0 / static_cast<double>(t + 1));
  }
  std::discrete_distribution<int> tenant_of(tenant_weights.begin(),
                                            tenant_weights.end());
  util::Timer wall;
  double next_arrival_s = 0.0;
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(static_cast<size_t>(opts.requests));
  for (int r = 0; r < opts.requests; ++r) {
    if (opts.rate > 0.0) {
      next_arrival_s += gap(rng);
      const double ahead = next_arrival_s - wall.ElapsedSeconds();
      if (ahead > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
      }
    }
    serve::ServerRuntime::RequestOptions request;
    request.priority_class = static_cast<serve::PriorityClass>(class_of(rng));
    request.tenant_id = opts.tenants > 1 ? tenant_of(rng) : 0;
    // Live requests run the scene straight from the corpus (no stored id,
    // no replay cache); the corpus outlives the runtime, as Live requires.
    const core::WorkItem item =
        opts.live ? core::WorkItem::Live(&dataset.item(r % opts.items).scene)
                  : core::WorkItem::Stored(r % opts.items);
    futures.push_back(router != nullptr ? router->Enqueue(item, request)
                                        : runtime->Enqueue(item, request));
  }
  if (router != nullptr) {
    router->Drain();
  } else {
    runtime->Drain();
  }
  const double wall_s = wall.ElapsedSeconds();

  long ok = 0, rejected = 0, shed = 0, misses = 0;
  util::RunningStat recall;
  for (std::future<serve::ServeResult>& future : futures) {
    const serve::ServeResult result = future.get();
    switch (result.status) {
      case serve::ServeStatus::kOk:
        ++ok;
        recall.Add(result.outcome.recall);
        if (!result.deadline_met()) ++misses;
        break;
      case serve::ServeStatus::kRejected:
        ++rejected;
        break;
      case serve::ServeStatus::kShed:
        ++shed;
        break;
      case serve::ServeStatus::kShutdown:
        break;
    }
  }

  // Sharded runs report the aggregated cluster registry; the per-shard
  // breakdown rides along in the JSON snapshot and the shard table below.
  serve::Metrics merged;
  if (router != nullptr) {
    std::vector<const serve::Metrics*> registries;
    for (int s = 0; s < opts.shards; ++s) {
      registries.push_back(&router->shard(s).metrics());
    }
    route::AggregatedMetrics(registries).MergeInto(&merged);
  }
  const serve::Metrics& metrics =
      router != nullptr ? merged : runtime->metrics();
  util::AsciiTable table;
  table.SetHeader({"metric", "value"});
  table.AddRow("completed", {static_cast<double>(ok)});
  table.AddRow("rejected", {static_cast<double>(rejected)});
  table.AddRow("quota rejected",
               {static_cast<double>(metrics.quota_rejected.load())});
  table.AddRow("shed", {static_cast<double>(shed)});
  table.AddRow("deadline misses", {static_cast<double>(misses)});
  table.AddRow("wall (s)", {wall_s});
  table.AddRow("completed/s", {static_cast<double>(ok) / wall_s});
  table.AddRow("mean recall", {recall.mean()});
  table.AddRow("queue delay p50 (ms)",
               {metrics.queue_delay.Percentile(50) * 1e3});
  table.AddRow("queue delay p99 (ms)",
               {metrics.queue_delay.Percentile(99) * 1e3});
  table.AddRow("total latency p50 (ms)",
               {metrics.total_latency.Percentile(50) * 1e3});
  table.AddRow("total latency p95 (ms)",
               {metrics.total_latency.Percentile(95) * 1e3});
  table.AddRow("total latency p99 (ms)",
               {metrics.total_latency.Percentile(99) * 1e3});
  table.Print(std::cout);

  if (!opts.class_mix.empty()) {
    // The tenant-isolation view: how each service band fared.
    util::AsciiTable per_class;
    per_class.SetHeader({"class", "enqueued", "completed", "rejected", "shed",
                         "misses", "p50 (ms)", "p99 (ms)"});
    for (int c = 0; c < serve::kNumPriorityClasses; ++c) {
      const serve::ClassMetrics& slice =
          metrics.for_class(static_cast<serve::PriorityClass>(c));
      per_class.AddRow(
          serve::PriorityClassName(static_cast<serve::PriorityClass>(c)),
          {static_cast<double>(slice.enqueued.load()),
           static_cast<double>(slice.completed.load()),
           static_cast<double>(slice.rejected.load()),
           static_cast<double>(slice.shed.load()),
           static_cast<double>(slice.deadline_misses.load()),
           slice.total_latency.Percentile(50) * 1e3,
           slice.total_latency.Percentile(99) * 1e3});
    }
    per_class.Print(std::cout);
  }

  if (opts.tenants > 1) {
    // The quota-accounting view: how each tenant's traffic fared.
    util::AsciiTable per_tenant;
    per_tenant.SetHeader({"tenant", "enqueued", "completed", "rejected",
                          "quota rej", "shed", "p50 (ms)", "p99 (ms)"});
    for (int t = 0; t < opts.tenants; ++t) {
      const serve::TenantMetrics* slice = metrics.find_tenant(t);
      if (slice == nullptr) continue;
      per_tenant.AddRow(
          std::to_string(t),
          {static_cast<double>(slice->enqueued.load()),
           static_cast<double>(slice->completed.load()),
           static_cast<double>(slice->rejected.load()),
           static_cast<double>(slice->quota_rejected.load()),
           static_cast<double>(slice->shed.load()),
           slice->total_latency.Percentile(50) * 1e3,
           slice->total_latency.Percentile(99) * 1e3});
    }
    per_tenant.Print(std::cout);
  }

  if (router != nullptr) {
    // The load-balancing view: where placement sent traffic and how much
    // the rebalancer had to move afterwards.
    util::AsciiTable per_shard;
    per_shard.SetHeader({"shard", "routed", "enqueued", "completed",
                         "migrated in", "migrated out"});
    for (int s = 0; s < opts.shards; ++s) {
      const serve::Metrics& shard = router->shard(s).metrics();
      per_shard.AddRow(std::to_string(s),
                       {static_cast<double>(router->routed(s)),
                        static_cast<double>(shard.enqueued.load()),
                        static_cast<double>(shard.completed.load()),
                        static_cast<double>(shard.migrated_in.load()),
                        static_cast<double>(shard.migrated_out.load())});
    }
    per_shard.Print(std::cout);
  }

  const std::string snapshot =
      router != nullptr ? router->MetricsJson() : runtime->MetricsJson();
  if (!opts.json_path.empty()) {
    std::FILE* out = std::fopen(opts.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
    std::fputs(snapshot.c_str(), out);
    std::fputs("\n", out);
    std::fclose(out);
    std::printf("metrics snapshot written to %s\n", opts.json_path.c_str());
  } else {
    std::printf("%s\n", snapshot.c_str());
  }
  if (tracer != nullptr) {
    std::ofstream trace_out(opts.trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
      return 1;
    }
    const std::vector<obs::TraceEvent> events = tracer->Collect();
    if (router != nullptr) {
      router->DumpTrace(trace_out);
    } else {
      obs::ChromeTraceSink().Write(events, trace_out);
    }
    std::printf("trace written to %s (%zu events, %zu dropped)\n",
                opts.trace_path.c_str(), events.size(),
                tracer->TotalDropped());
  }
  if (router != nullptr) {
    router->Shutdown();
  } else {
    runtime->Shutdown();
  }
  return 0;
}
