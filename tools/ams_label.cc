// ams_label — command-line front end for the whole pipeline: generate a
// corpus, train (or load) a DRL agent, and label items through a
// core::LabelingService session under resource constraints, reporting the
// value/recall/compute trade-off.
//
// Usage:
//   ams_label [--dataset NAME] [--scheme dqn|double|dueling|sarsa]
//             [--policy NAME] [--items N] [--episodes N] [--hidden N]
//             [--seed N] [--deadline SECONDS] [--memory GB] [--label N]
//             [--workers N] [--cache DIR] [--csv PATH]
//
// `--policy` accepts any sched::PolicyRegistry name (default cost_q_greedy,
// i.e. Algorithm 1); `--memory` switches to Algorithm 2 (parallel
// scheduling under deadline + memory).
//
// Examples:
//   ams_label --dataset mirflickr25 --deadline 0.5 --label 200
//   ams_label --dataset voc2012 --deadline 1.0 --memory 8 --label 100
//   ams_label --dataset mscoco --policy random --deadline 0.5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/labeling_service.h"
#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/agent_cache.h"
#include "rl/trainer.h"
#include "sched/policy_registry.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;

struct Options {
  std::string dataset = "mscoco";
  std::string scheme = "dueling";
  std::string policy = "cost_q_greedy";
  bool policy_set = false;  // --policy given explicitly
  int items = 1500;
  int episodes = 1200;
  int hidden = 128;
  uint64_t seed = 7;
  double deadline = 1.0;
  double memory_gb = 0.0;  // 0 = serial scheduling (Algorithm 1)
  int label_count = 200;
  /// Default 1: results must reproduce for a fixed --seed regardless of the
  /// machine's core count (the batch partition and per-worker policy seeds
  /// depend on the worker count). Opt into fan-out explicitly.
  int workers = 1;
  std::string cache_dir = "artifacts/agents";
  std::string csv_path;
};

[[noreturn]] void Usage(const char* argv0) {
  std::string policies;
  for (const std::string& name : sched::PolicyRegistry::Global().Names()) {
    if (!policies.empty()) policies += "|";
    policies += name;
  }
  std::fprintf(stderr,
               "usage: %s [--dataset mscoco|places365|mirflickr25|stanford40|"
               "voc2012]\n"
               "          [--scheme dqn|double|dueling|sarsa]\n"
               "          [--policy %s]\n"
               "          [--items N] [--episodes N] [--hidden N] [--seed N]\n"
               "          [--deadline S] [--memory GB] [--label N]\n"
               "          [--workers N] [--cache DIR] [--csv PATH]\n",
               argv0, policies.c_str());
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opts.dataset = next();
    } else if (!std::strcmp(argv[i], "--scheme")) {
      opts.scheme = next();
    } else if (!std::strcmp(argv[i], "--policy")) {
      opts.policy = next();
      opts.policy_set = true;
    } else if (!std::strcmp(argv[i], "--items")) {
      opts.items = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--episodes")) {
      opts.episodes = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--hidden")) {
      opts.hidden = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      opts.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--deadline")) {
      opts.deadline = std::atof(next());
    } else if (!std::strcmp(argv[i], "--memory")) {
      opts.memory_gb = std::atof(next());
    } else if (!std::strcmp(argv[i], "--label")) {
      opts.label_count = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--workers")) {
      opts.workers = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--cache")) {
      opts.cache_dir = next();
    } else if (!std::strcmp(argv[i], "--csv")) {
      opts.csv_path = next();
    } else {
      Usage(argv[0]);
    }
  }
  if (!sched::PolicyRegistry::Global().Contains(opts.policy)) {
    std::fprintf(stderr, "unknown policy: %s\n", opts.policy.c_str());
    Usage(argv[0]);
  }
  if (opts.policy_set && opts.memory_gb > 0.0) {
    std::fprintf(stderr,
                 "--policy selects a serial policy; --memory runs Algorithm 2 "
                 "(predictor-driven). Pick one.\n");
    Usage(argv[0]);
  }
  if (sched::PolicyRegistry::Global().Traits(opts.policy).needs_chunked_stream) {
    std::fprintf(stderr,
                 "policy '%s' needs a chunked stream; this tool generates "
                 "i.i.d. corpora (see examples/video_surveillance).\n",
                 opts.policy.c_str());
    Usage(argv[0]);
  }
  return opts;
}

rl::DrlScheme SchemeFromName(const std::string& name) {
  if (name == "dqn") return rl::DrlScheme::kDqn;
  if (name == "double") return rl::DrlScheme::kDoubleDqn;
  if (name == "dueling") return rl::DrlScheme::kDuelingDqn;
  if (name == "sarsa") return rl::DrlScheme::kDeepSarsa;
  std::fprintf(stderr, "unknown scheme: %s\n", name.c_str());
  std::exit(2);
}

data::DatasetProfile ProfileFromName(const std::string& name) {
  bool found = false;
  data::DatasetProfile profile =
      data::DatasetProfile::ByName(name, data::DatasetProfile::MsCoco(),
                                   &found);
  if (!found) {
    std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    std::exit(2);
  }
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Parse(argc, argv);

  std::printf("building zoo + %s corpus (%d items, seed %llu)...\n",
              opts.dataset.c_str(), opts.items,
              static_cast<unsigned long long>(opts.seed));
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      ProfileFromName(opts.dataset), zoo.labels(), opts.items, opts.seed);
  const data::Oracle oracle(&zoo, &dataset);

  // Only Q-driven scheduling consults the agent; baselines like random or
  // rule_based skip training entirely.
  const bool needs_agent =
      opts.memory_gb > 0.0 ||
      sched::PolicyRegistry::Global().Traits(opts.policy).needs_predictor;
  std::unique_ptr<rl::Agent> agent;
  if (needs_agent) {
    eval::AgentCache cache(opts.cache_dir);
    eval::AgentRequest request;
    request.key = opts.dataset + "_" + opts.scheme + "_i" +
                  std::to_string(opts.items) + "_e" +
                  std::to_string(opts.episodes) + "_h" +
                  std::to_string(opts.hidden) + "_s" +
                  std::to_string(opts.seed);
    request.oracle = &oracle;
    request.config.scheme = SchemeFromName(opts.scheme);
    request.config.hidden_dim = opts.hidden;
    request.config.episodes = opts.episodes;
    request.config.eps_decay_steps = opts.episodes * 4;
    request.config.seed = opts.seed;
    std::printf("training/loading agent %s...\n", request.key.c_str());
    agent = cache.GetOrTrain(request);
  }

  // One labeling session for the whole run, built from the command line.
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = opts.deadline;
  core::LabelingServiceBuilder builder(&zoo);
  builder.WithOracle(&oracle)
      .WithConstraints(constraints)
      .WithWorkers(opts.workers)
      .WithSeed(opts.seed);
  if (opts.memory_gb > 0.0) {
    constraints.memory_budget_mb = opts.memory_gb * 1024.0;
    builder.WithConstraints(constraints)
        .WithMode(core::ExecutionMode::kParallel)
        .WithPredictor(agent.get());
    std::printf(
        "scheduling with Algorithm 2 (deadline %.2f s, memory %.0f GB)...\n",
        opts.deadline, opts.memory_gb);
  } else {
    sched::PolicyOptions policy_options;
    policy_options.predictor = agent.get();  // null for predictor-less policies
    policy_options.seed = opts.seed;
    builder.WithMode(core::ExecutionMode::kSerial)
        .WithPolicy(opts.policy, policy_options);
    std::printf("scheduling with policy '%s' (deadline %.2f s)...\n",
                opts.policy.c_str(), opts.deadline);
  }
  core::LabelingService service = builder.Build();

  const std::vector<int>& test = dataset.test_indices();
  const int n = std::min<int>(opts.label_count, static_cast<int>(test.size()));
  std::printf("labeling %d items over %d workers...\n", n,
              service.worker_count());
  std::vector<core::WorkItem> work;
  work.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    work.push_back(core::WorkItem::Stored(test[static_cast<size_t>(i)]));
  }
  const std::vector<core::LabelOutcome> outcomes = service.SubmitBatch(work);

  util::RunningStat recall, models, sim_time;
  std::vector<std::vector<std::string>> csv_rows;
  for (int i = 0; i < n; ++i) {
    const core::LabelOutcome& outcome = outcomes[static_cast<size_t>(i)];
    const int executed =
        static_cast<int>(outcome.schedule.executions.size());
    recall.Add(outcome.recall);
    models.Add(executed);
    sim_time.Add(outcome.schedule.makespan_s);
    csv_rows.push_back({std::to_string(work[static_cast<size_t>(i)].item),
                        util::FormatDouble(outcome.recall, 4),
                        std::to_string(executed),
                        util::FormatDouble(outcome.schedule.makespan_s, 4)});
  }

  util::AsciiTable report;
  report.SetHeader({"metric", "mean", "min", "max"});
  report.AddRow("value recall", {recall.mean(), recall.min(), recall.max()});
  report.AddRow("models executed",
                {models.mean(), models.min(), models.max()});
  report.AddRow("simulated time (s)",
                {sim_time.mean(), sim_time.min(), sim_time.max()});
  report.Print(std::cout);
  std::printf("compute saved vs no-policy: %.1f%%\n",
              100.0 * (1.0 - sim_time.mean() / zoo.TotalTimeSeconds()));

  if (!opts.csv_path.empty()) {
    util::WriteCsv(opts.csv_path, {"item", "recall", "models", "time_s"},
                   csv_rows);
    std::printf("per-item results written to %s\n", opts.csv_path.c_str());
  }
  return 0;
}
