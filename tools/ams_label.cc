// ams_label — command-line front end for the whole pipeline: generate a
// corpus, train (or load) a DRL agent, and schedule model executions under
// resource constraints, reporting the value/recall/compute trade-off.
//
// Usage:
//   ams_label [--dataset NAME] [--scheme dqn|double|dueling|sarsa]
//             [--items N] [--episodes N] [--hidden N] [--seed N]
//             [--deadline SECONDS] [--memory GB] [--label N]
//             [--cache DIR] [--csv PATH]
//
// Examples:
//   ams_label --dataset mirflickr25 --deadline 0.5 --label 200
//   ams_label --dataset voc2012 --deadline 1.0 --memory 8 --label 100
//   ams_label --dataset mscoco --scheme dqn --episodes 2000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/dataset_profile.h"
#include "data/oracle.h"
#include "eval/agent_cache.h"
#include "rl/trainer.h"
#include "sched/basic_policies.h"
#include "sched/cost_q_greedy.h"
#include "sched/parallel_runner.h"
#include "sched/serial_runner.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ams;

struct Options {
  std::string dataset = "mscoco";
  std::string scheme = "dueling";
  int items = 1500;
  int episodes = 1200;
  int hidden = 128;
  uint64_t seed = 7;
  double deadline = 1.0;
  double memory_gb = 0.0;  // 0 = serial scheduling (Algorithm 1)
  int label_count = 200;
  std::string cache_dir = "artifacts/agents";
  std::string csv_path;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset mscoco|places365|mirflickr25|stanford40|"
               "voc2012]\n"
               "          [--scheme dqn|double|dueling|sarsa] [--items N]\n"
               "          [--episodes N] [--hidden N] [--seed N]\n"
               "          [--deadline S] [--memory GB] [--label N]\n"
               "          [--cache DIR] [--csv PATH]\n",
               argv0);
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dataset")) {
      opts.dataset = next();
    } else if (!std::strcmp(argv[i], "--scheme")) {
      opts.scheme = next();
    } else if (!std::strcmp(argv[i], "--items")) {
      opts.items = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--episodes")) {
      opts.episodes = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--hidden")) {
      opts.hidden = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      opts.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--deadline")) {
      opts.deadline = std::atof(next());
    } else if (!std::strcmp(argv[i], "--memory")) {
      opts.memory_gb = std::atof(next());
    } else if (!std::strcmp(argv[i], "--label")) {
      opts.label_count = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--cache")) {
      opts.cache_dir = next();
    } else if (!std::strcmp(argv[i], "--csv")) {
      opts.csv_path = next();
    } else {
      Usage(argv[0]);
    }
  }
  return opts;
}

rl::DrlScheme SchemeFromName(const std::string& name) {
  if (name == "dqn") return rl::DrlScheme::kDqn;
  if (name == "double") return rl::DrlScheme::kDoubleDqn;
  if (name == "dueling") return rl::DrlScheme::kDuelingDqn;
  if (name == "sarsa") return rl::DrlScheme::kDeepSarsa;
  std::fprintf(stderr, "unknown scheme: %s\n", name.c_str());
  std::exit(2);
}

data::DatasetProfile ProfileFromName(const std::string& name) {
  for (const auto& profile : data::DatasetProfile::AllProfiles()) {
    if (profile.name == name) return profile;
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Parse(argc, argv);

  std::printf("building zoo + %s corpus (%d items, seed %llu)...\n",
              opts.dataset.c_str(), opts.items,
              static_cast<unsigned long long>(opts.seed));
  const zoo::ModelZoo zoo = zoo::ModelZoo::CreateDefault();
  const data::Dataset dataset = data::Dataset::Generate(
      ProfileFromName(opts.dataset), zoo.labels(), opts.items, opts.seed);
  const data::Oracle oracle(&zoo, &dataset);

  eval::AgentCache cache(opts.cache_dir);
  eval::AgentRequest request;
  request.key = opts.dataset + "_" + opts.scheme + "_i" +
                std::to_string(opts.items) + "_e" +
                std::to_string(opts.episodes) + "_h" +
                std::to_string(opts.hidden) + "_s" + std::to_string(opts.seed);
  request.oracle = &oracle;
  request.config.scheme = SchemeFromName(opts.scheme);
  request.config.hidden_dim = opts.hidden;
  request.config.episodes = opts.episodes;
  request.config.eps_decay_steps = opts.episodes * 4;
  request.config.seed = opts.seed;
  std::printf("training/loading agent %s...\n", request.key.c_str());
  std::unique_ptr<rl::Agent> agent = cache.GetOrTrain(request);

  const std::vector<int>& test = dataset.test_indices();
  const int n = std::min<int>(opts.label_count, static_cast<int>(test.size()));
  util::RunningStat recall, models, sim_time;
  std::vector<std::vector<std::string>> csv_rows;

  if (opts.memory_gb > 0.0) {
    std::printf(
        "scheduling %d items with Algorithm 2 (deadline %.2f s, memory %.0f "
        "GB)...\n",
        n, opts.deadline, opts.memory_gb);
    for (int i = 0; i < n; ++i) {
      sched::ParallelRunConfig config;
      config.time_budget = opts.deadline;
      config.mem_budget_mb = opts.memory_gb * 1024.0;
      const auto run =
          sched::RunParallel(sched::ParallelPolicyKind::kAlgorithm2,
                             agent.get(), oracle, test[static_cast<size_t>(i)],
                             config);
      recall.Add(run.recall);
      models.Add(run.models_executed);
      sim_time.Add(run.makespan);
      csv_rows.push_back({std::to_string(test[static_cast<size_t>(i)]),
                          util::FormatDouble(run.recall, 4),
                          std::to_string(run.models_executed),
                          util::FormatDouble(run.makespan, 4)});
    }
  } else {
    std::printf("scheduling %d items with Algorithm 1 (deadline %.2f s)...\n",
                n, opts.deadline);
    std::unique_ptr<rl::Agent> worker = agent->Clone();
    sched::CostQGreedyPolicy policy(worker.get());
    for (int i = 0; i < n; ++i) {
      sched::SerialRunConfig config;
      config.time_budget = opts.deadline;
      const auto run = sched::RunSerial(&policy, oracle,
                                        test[static_cast<size_t>(i)], config);
      recall.Add(run.recall);
      models.Add(run.models_executed);
      sim_time.Add(run.time_used);
      csv_rows.push_back({std::to_string(test[static_cast<size_t>(i)]),
                          util::FormatDouble(run.recall, 4),
                          std::to_string(run.models_executed),
                          util::FormatDouble(run.time_used, 4)});
    }
  }

  util::AsciiTable report;
  report.SetHeader({"metric", "mean", "min", "max"});
  report.AddRow("value recall", {recall.mean(), recall.min(), recall.max()});
  report.AddRow("models executed",
                {models.mean(), models.min(), models.max()});
  report.AddRow("simulated time (s)",
                {sim_time.mean(), sim_time.min(), sim_time.max()});
  report.Print(std::cout);
  std::printf("compute saved vs no-policy: %.1f%%\n",
              100.0 * (1.0 - sim_time.mean() / zoo.TotalTimeSeconds()));

  if (!opts.csv_path.empty()) {
    util::WriteCsv(opts.csv_path, {"item", "recall", "models", "time_s"},
                   csv_rows);
    std::printf("per-item results written to %s\n", opts.csv_path.c_str());
  }
  return 0;
}
