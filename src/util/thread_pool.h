#ifndef AMS_UTIL_THREAD_POOL_H_
#define AMS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ams::util {

/// Fixed-size worker pool. Used to train several DRL agents in parallel and
/// to parallelize evaluation sweeps; tasks must be independent.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  std::future<void> Submit(std::function<void()> fn);

  /// Hardware concurrency, at least 1.
  static int DefaultThreads();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across `num_threads` threads (static
/// block partitioning). Blocks until all iterations finish.
void ParallelFor(int begin, int end, int num_threads,
                 const std::function<void(int)>& fn);

}  // namespace ams::util

#endif  // AMS_UTIL_THREAD_POOL_H_
