#ifndef AMS_UTIL_CLOCK_H_
#define AMS_UTIL_CLOCK_H_

#include <atomic>

namespace ams::util {

/// Time source seam: every timestamp the serving stack takes (admission
/// stamps, deadlines, latency measurements, metrics uptime, trace events)
/// goes through this interface, so tests can substitute a deterministic
/// ManualClock and assert exact latencies, deadline misses, EDF order and
/// span durations without sleeping. Implementations must be monotonic
/// non-decreasing and safe to read from any thread.
///
/// Lives in util:: (rather than serve:: where it was born) so lower layers
/// — obs:: tracing, core:: steppers — can take timestamps without a
/// dependency on the serving runtime. serve/clock.h aliases these types.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds on this clock's own monotonic axis (only differences and
  /// orderings are meaningful; the epoch is implementation-defined).
  virtual double NowSeconds() const = 0;

  /// The process-wide default: a steady wall clock whose epoch is its first
  /// use. Never destroyed (safe to read during static teardown).
  static const Clock& Monotonic();
};

/// Deterministic test clock: time moves only when the test advances it.
/// Reads are lock-free; Advance is safe to call concurrently with readers
/// (but advancing from multiple threads at once makes "now" racy by
/// definition — tests should own time from one thread).
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_s = 0.0) : now_s_(start_s) {}

  double NowSeconds() const override {
    return now_s_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `seconds` (>= 0).
  void Advance(double seconds);

  /// Jumps to an absolute reading; must not move time backwards.
  void Set(double seconds);

 private:
  std::atomic<double> now_s_;
};

}  // namespace ams::util

#endif  // AMS_UTIL_CLOCK_H_
