#ifndef AMS_UTIL_TABLE_H_
#define AMS_UTIL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace ams::util {

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

/// Minimal ASCII table printer used by the benchmark harnesses so every
/// figure/table of the paper prints as aligned, copy-pasteable rows.
class AsciiTable {
 public:
  /// Sets the column headers; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `digits` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 3);

  /// Renders the table with a separator under the header.
  void Print(std::ostream& os) const;

  /// Renders to a string (used in tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a CSV file (header + rows). Crashes on I/O failure: benches must
/// not silently drop results.
void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace ams::util

#endif  // AMS_UTIL_TABLE_H_
