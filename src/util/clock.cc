#include "util/clock.h"

#include <chrono>

#include "util/check.h"

namespace ams::util {

namespace {

class MonotonicClock : public Clock {
 public:
  MonotonicClock() : start_(std::chrono::steady_clock::now()) {}

  double NowSeconds() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace

const Clock& Clock::Monotonic() {
  // Leaked singleton: the serving runtime may read timestamps from detached
  // paths during process teardown.
  static const MonotonicClock* const kInstance = new MonotonicClock();
  return *kInstance;
}

void ManualClock::Advance(double seconds) {
  AMS_CHECK(seconds >= 0.0, "a monotonic clock cannot go backwards");
  double current = now_s_.load(std::memory_order_relaxed);
  while (!now_s_.compare_exchange_weak(current, current + seconds,
                                       std::memory_order_acq_rel)) {
  }
}

void ManualClock::Set(double seconds) {
  double current = now_s_.load(std::memory_order_relaxed);
  while (true) {
    AMS_CHECK(seconds >= current, "a monotonic clock cannot go backwards");
    if (now_s_.compare_exchange_weak(current, seconds,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

}  // namespace ams::util
