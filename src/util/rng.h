#ifndef AMS_UTIL_RNG_H_
#define AMS_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace ams::util {

/// One step of the SplitMix64 generator; used for seeding and hashing.
uint64_t SplitMix64(uint64_t* state);

/// Deterministically mixes two 64-bit values into one (order-sensitive).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All stochastic behaviour in the library flows through this class so that
/// datasets, model outputs and training runs replay bit-exactly for a seed.
/// Not thread-safe; fork per-thread instances with Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Gaussian sample (Box–Muller, spare cached).
  double Normal(double mean, double stddev);

  /// Log-normal sample parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma);

  /// Samples an index proportionally to `weights` (must be non-negative,
  /// not all zero). Linear scan; fine for the few hundred categories we use.
  int Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Deterministically derives an independent child generator. Forking with
  /// distinct stream ids yields decorrelated streams.
  Rng Fork(uint64_t stream_id) const;

 private:
  std::array<uint64_t, 4> s_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// Cumulative-weight categorical distribution with O(log n) sampling.
/// Use when the same weight vector is sampled many times.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Samples an index in [0, size()).
  int Sample(Rng* rng) const;

  int size() const { return static_cast<int>(cumulative_.size()); }

  /// Probability mass of index i.
  double Probability(int i) const;

 private:
  std::vector<double> cumulative_;  // normalized, strictly increasing to 1.0
};

/// Weights for a Zipf-like distribution over n categories with exponent s.
/// Heavier heads model natural label frequencies (a few categories dominate).
std::vector<double> ZipfWeights(int n, double s);

}  // namespace ams::util

#endif  // AMS_UTIL_RNG_H_
