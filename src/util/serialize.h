#ifndef AMS_UTIL_SERIALIZE_H_
#define AMS_UTIL_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ams::util {

/// Little binary writer for agent checkpoints and cached artifacts.
/// Format: raw little-endian PODs; vectors/strings are length-prefixed (u64).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* os) : os_(os) {}

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteDoubleVector(const std::vector<double>& v);

  /// True if all writes so far succeeded.
  bool ok() const;

 private:
  void WriteRaw(const void* data, size_t n);
  std::ostream* os_;
};

/// Counterpart reader. After any failed/short read, ok() turns false and all
/// subsequent reads return zero values; callers check ok() once at the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* is) : is_(is) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<double> ReadDoubleVector();

  bool ok() const { return ok_; }

 private:
  bool ReadRaw(void* data, size_t n);
  std::istream* is_;
  bool ok_ = true;
};

}  // namespace ams::util

#endif  // AMS_UTIL_SERIALIZE_H_
