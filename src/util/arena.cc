#include "util/arena.h"

#include <new>

#include "util/check.h"

namespace ams::util {

namespace {
constexpr size_t kBlockAlign = 64;

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

char* AlignUp(char* p, size_t align) {
  const uintptr_t u = reinterpret_cast<uintptr_t>(p);
  return reinterpret_cast<char*>((u + align - 1) & ~(align - 1));
}
}  // namespace

Arena::Arena(size_t initial_bytes) {
  primary_ = NewBlock(RoundUpPow2(initial_bytes));
  primary_size_ = primary_.size;
  head_ = primary_.data;
  end_ = primary_.data + primary_.size;
}

Arena::~Arena() {
  for (Block& block : overflow_) FreeBlock(&block);
  FreeBlock(&primary_);
}

Arena::Block Arena::NewBlock(size_t bytes) {
  ++block_allocs_;
  return Block{static_cast<char*>(
                   ::operator new(bytes, std::align_val_t(kBlockAlign))),
               bytes};
}

void Arena::FreeBlock(Block* block) {
  if (block->data != nullptr) {
    ::operator delete(block->data, block->size, std::align_val_t(kBlockAlign));
    block->data = nullptr;
  }
}

void* Arena::Alloc(size_t bytes, size_t align) {
  AMS_DCHECK(align != 0 && (align & (align - 1)) == 0 && align <= kBlockAlign,
             "arena alignment must be a power of two <= 64");
  char* p = AlignUp(head_, align);
  if (p + bytes > end_) {
    // Overflow: satisfy this allocation from a fresh block and keep bumping
    // there. Reset() folds the extra capacity back into the primary block.
    Block block = NewBlock(RoundUpPow2(bytes + align + primary_size_));
    overflow_.push_back(block);
    head_ = block.data;
    end_ = block.data + block.size;
    p = AlignUp(head_, align);
  }
  cycle_used_ += static_cast<size_t>((p + bytes) - head_);
  head_ = p + bytes;
  return p;
}

void Arena::Reset() {
  if (!overflow_.empty()) {
    // The last cycle outgrew the primary block: replace it with one block
    // sized to the observed high water mark so the next cycle fits without
    // overflow and subsequent Resets become pointer rewinds.
    const size_t want = RoundUpPow2(cycle_used_ + kBlockAlign);
    for (Block& block : overflow_) FreeBlock(&block);
    overflow_.clear();
    if (want > primary_.size) {
      FreeBlock(&primary_);
      primary_ = NewBlock(want);
      primary_size_ = primary_.size;
    }
  }
  head_ = primary_.data;
  end_ = primary_.data + primary_.size;
  cycle_used_ = 0;
}

}  // namespace ams::util
