#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace ams::util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  uint64_t h = SplitMix64(&state);
  return h ^ (b << 1);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  AMS_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  AMS_DCHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextU64() % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(two_pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int Rng::Categorical(const std::vector<double>& weights) {
  AMS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AMS_DCHECK(w >= 0.0);
    total += w;
  }
  AMS_CHECK(total > 0.0, "all categorical weights are zero");
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  AMS_CHECK(k >= 0 && k <= n);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  // Partial Fisher–Yates: the first k slots become the sample.
  for (int i = 0; i < k; ++i) {
    int j = UniformInt(i, n - 1);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(HashCombine(HashCombine(s_[0], s_[3]), stream_id));
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  AMS_CHECK(!weights.empty());
  cumulative_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    AMS_CHECK(weights[i] >= 0.0, "negative weight");
    total += weights[i];
    cumulative_[i] = total;
  }
  AMS_CHECK(total > 0.0, "all weights are zero");
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;
}

int DiscreteDistribution::Sample(Rng* rng) const {
  AMS_DCHECK(!cumulative_.empty());
  const double u = rng->NextDouble();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<int>(it - cumulative_.begin());
}

double DiscreteDistribution::Probability(int i) const {
  AMS_DCHECK(i >= 0 && i < size());
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

std::vector<double> ZipfWeights(int n, double s) {
  AMS_CHECK(n > 0);
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return w;
}

}  // namespace ams::util
