#ifndef AMS_UTIL_TIMER_H_
#define AMS_UTIL_TIMER_H_

#include <chrono>

namespace ams::util {

/// Wall-clock stopwatch (steady clock).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ams::util

#endif  // AMS_UTIL_TIMER_H_
