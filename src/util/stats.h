#ifndef AMS_UTIL_STATS_H_
#define AMS_UTIL_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace ams::util {

/// Single-pass accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile (p in [0,100]) by linear interpolation on a sorted copy.
double Percentile(std::vector<double> values, double p);

/// One point of an empirical CDF: P(X <= x) = p.
struct CdfPoint {
  double x;
  double p;
};

/// Empirical CDF of `values` down-sampled to at most `max_points` points
/// (always includes min and max). Returns an empty vector for empty input.
std::vector<CdfPoint> ComputeCdf(std::vector<double> values, int max_points);

/// Fraction of `values` that are <= x.
double CdfAt(const std::vector<double>& sorted_values, double x);

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

}  // namespace ams::util

#endif  // AMS_UTIL_STATS_H_
