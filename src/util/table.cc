#include "util/table.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace ams::util {

std::string FormatDouble(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

void AsciiTable::SetHeader(std::vector<std::string> header) {
  AMS_CHECK(!header.empty());
  header_ = std::move(header);
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  AMS_CHECK(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void AsciiTable::AddRow(const std::string& label, const std::vector<double>& values,
                        int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  AddRow(std::move(row));
}

void AsciiTable::Print(std::ostream& os) const { os << ToString(); }

std::string AsciiTable::ToString() const {
  AMS_CHECK(!header_.empty(), "SetHeader not called");
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void WriteCsv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  AMS_CHECK(out.good(), "cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    AMS_CHECK(row.size() == header.size(), "csv row width mismatch");
    emit(row);
  }
  AMS_CHECK(out.good(), "write failed for " + path);
}

}  // namespace ams::util
