#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace ams::util {

ThreadPool::ThreadPool(int num_threads) {
  AMS_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    AMS_CHECK(!stop_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ParallelFor(int begin, int end, int num_threads,
                 const std::function<void(int)>& fn) {
  AMS_CHECK(begin <= end);
  const int n = end - begin;
  if (n == 0) return;
  num_threads = std::max(1, std::min(num_threads, n));
  if (num_threads == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  const int chunk = (n + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const int lo = begin + t * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (int i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace ams::util
