#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ams::util {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  AMS_CHECK(!values.empty());
  AMS_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> ComputeCdf(std::vector<double> values, int max_points) {
  if (values.empty()) return {};
  AMS_CHECK(max_points >= 2);
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  std::vector<CdfPoint> cdf;
  const size_t step = std::max<size_t>(1, n / static_cast<size_t>(max_points));
  for (size_t i = 0; i < n; i += step) {
    cdf.push_back({values[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (cdf.back().x != values.back() || cdf.back().p != 1.0) {
    cdf.push_back({values.back(), 1.0});
  }
  return cdf;
}

double CdfAt(const std::vector<double>& sorted_values, double x) {
  if (sorted_values.empty()) return 0.0;
  auto it = std::upper_bound(sorted_values.begin(), sorted_values.end(), x);
  return static_cast<double>(it - sorted_values.begin()) /
         static_cast<double>(sorted_values.size());
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace ams::util
