#ifndef AMS_UTIL_ARENA_H_
#define AMS_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace ams::util {

/// Bump allocator for per-tick scratch memory.
///
/// The serving hot path (ItemStepper::Tick -> DecisionPlane::Prefetch ->
/// Agent batch forward) needs a handful of short-lived arrays every tick.
/// Growing std::vectors amortize, but never reach zero allocations because
/// tick shapes vary. An arena does: each worker owns one, Reset()s it at the
/// top of its tick, and every Alloc is a pointer bump. After warm-up Reset
/// is a pointer rewind — no heap traffic at all.
///
/// Allocation outlives only the current cycle: Reset() invalidates every
/// pointer handed out since the previous Reset(). Not thread-safe; one arena
/// per worker.
class Arena {
 public:
  explicit Arena(size_t initial_bytes = 1 << 16);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power of
  /// two, at most 64). Never fails (grows on overflow).
  void* Alloc(size_t bytes, size_t align);

  /// Typed array of n elements. T must be trivial: the arena never runs
  /// constructors or destructors.
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is raw memory");
    return static_cast<T*>(Alloc(n * sizeof(T), alignof(T)));
  }

  /// Recycles all storage. If the previous cycle overflowed into extra
  /// blocks, they are coalesced into one block sized to the cycle's high
  /// water mark, so a steady-state workload settles into malloc-free Resets.
  void Reset();

  /// Bytes handed out since the last Reset (including alignment padding).
  size_t used() const { return cycle_used_; }
  /// Capacity of the primary block.
  size_t capacity() const { return primary_size_; }
  /// Heap allocations performed by the arena since construction (growth
  /// events); flat across ticks once warm.
  size_t block_allocs() const { return block_allocs_; }

 private:
  struct Block {
    char* data;
    size_t size;
  };

  Block NewBlock(size_t bytes);
  static void FreeBlock(Block* block);

  Block primary_{nullptr, 0};
  size_t primary_size_ = 0;
  std::vector<Block> overflow_;
  char* head_ = nullptr;
  char* end_ = nullptr;
  size_t cycle_used_ = 0;
  size_t block_allocs_ = 0;
};

}  // namespace ams::util

#endif  // AMS_UTIL_ARENA_H_
