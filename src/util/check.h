#ifndef AMS_UTIL_CHECK_H_
#define AMS_UTIL_CHECK_H_

#include <string>

namespace ams::util {

/// Aborts the process with a diagnostic message. Used by AMS_CHECK.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace ams::util

/// Fatal assertion, enabled in all build types. Invalid configuration and
/// broken invariants fail fast rather than propagating corrupted state.
/// Usage: AMS_CHECK(n > 0) or AMS_CHECK(n > 0, "n must be positive").
#define AMS_CHECK(cond, ...)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ams::util::CheckFailed(__FILE__, __LINE__, #cond,                    \
                               ::std::string(__VA_ARGS__));                  \
    }                                                                        \
  } while (0)

/// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define AMS_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#else
#define AMS_DCHECK(cond, ...) AMS_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // AMS_UTIL_CHECK_H_
