#include "util/serialize.h"

#include <istream>
#include <ostream>

#include "util/check.h"

namespace ams::util {

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  os_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(double));
}

bool BinaryWriter::ok() const { return os_->good(); }

bool BinaryReader::ReadRaw(void* data, size_t n) {
  if (!ok_) return false;
  is_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(is_->gcount()) != n) ok_ = false;
  return ok_;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return ok_ ? v : 0;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return ok_ ? v : 0;
}

int32_t BinaryReader::ReadI32() {
  int32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return ok_ ? v : 0;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return ok_ ? v : 0;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return ok_ ? v : 0;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > (1ULL << 32)) {
    ok_ = false;
    return {};
  }
  std::string s(n, '\0');
  ReadRaw(s.data(), n);
  return ok_ ? s : std::string();
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > (1ULL << 32)) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(n);
  ReadRaw(v.data(), n * sizeof(float));
  return ok_ ? v : std::vector<float>();
}

std::vector<double> BinaryReader::ReadDoubleVector() {
  const uint64_t n = ReadU64();
  if (!ok_ || n > (1ULL << 32)) {
    ok_ = false;
    return {};
  }
  std::vector<double> v(n);
  ReadRaw(v.data(), n * sizeof(double));
  return ok_ ? v : std::vector<double>();
}

}  // namespace ams::util
