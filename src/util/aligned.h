#ifndef AMS_UTIL_ALIGNED_H_
#define AMS_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace ams::util {

/// Minimal std::allocator replacement that over-aligns every allocation.
/// Matrix buffers use it (64-byte lines) so SIMD kernels can rely on the
/// base pointer being cache-line aligned; individual rows still start at
/// arbitrary offsets (row stride = cols), so kernels use unaligned loads.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Vector whose buffer starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace ams::util

#endif  // AMS_UTIL_ALIGNED_H_
