#ifndef AMS_RL_TRAINER_H_
#define AMS_RL_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/env.h"
#include "data/oracle.h"
#include "nn/loss.h"
#include "rl/agent.h"

namespace ams::rl {

/// The four Q-value-network training schemes evaluated in §VI-B.
enum class DrlScheme : int {
  kDqn = 0,
  kDoubleDqn = 1,
  kDuelingDqn = 2,
  kDeepSarsa = 3,
};

/// Short scheme name ("dqn", "double", "dueling", "sarsa").
std::string SchemeName(DrlScheme scheme);

/// Hyperparameters of agent training. Defaults reproduce the paper's setup
/// (one 256-unit ReLU hidden layer, §IV-B) at a CPU-friendly scale.
struct TrainConfig {
  DrlScheme scheme = DrlScheme::kDuelingDqn;
  /// Width of the hidden layer(s). The paper uses 256.
  int hidden_dim = 256;
  /// Training episodes (one episode = one item labeled to completion).
  int episodes = 600;
  int batch_size = 32;
  double gamma = 0.95;
  double learning_rate = 1e-3;
  double eps_start = 1.0;
  double eps_end = 0.05;
  /// Environment steps over which epsilon decays linearly.
  int eps_decay_steps = 5000;
  /// Gradient updates between target-network syncs.
  int target_sync_interval = 250;
  size_t replay_capacity = 20000;
  /// Minimum buffer fill before learning starts.
  int min_replay = 400;
  /// Gradient updates per environment step.
  int updates_per_step = 1;
  core::RewardShaping shaping = core::RewardShaping::kLogSum;
  /// §IV-B: the END action speeds up convergence; disable for the ablation.
  bool enable_end_action = true;
  nn::LossKind loss = nn::LossKind::kHuber;
  std::string optimizer = "adam";
  uint64_t seed = 42;
};

/// Diagnostics collected during training.
struct TrainStats {
  std::vector<double> episode_rewards;
  std::vector<double> episode_lengths;
  int total_steps = 0;
  int total_updates = 0;
  /// Mean episode reward over the final 10% of episodes.
  double final_avg_reward = 0.0;
  double wall_seconds = 0.0;
};

/// Trains a DRL agent on an oracle's stored execution results, exactly as
/// the paper trains on pre-executed outputs (§VI-A). Episodes sample items
/// from the provided index set (normally the dataset's train split).
class AgentTrainer {
 public:
  AgentTrainer(const data::Oracle* oracle, const TrainConfig& config);

  /// Trains on `item_indices`; empty means the dataset's train split.
  std::unique_ptr<Agent> Train(const std::vector<int>& item_indices = {},
                               TrainStats* stats = nullptr);

 private:
  const data::Oracle* oracle_;
  TrainConfig config_;
};

}  // namespace ams::rl

#endif  // AMS_RL_TRAINER_H_
