#ifndef AMS_RL_REPLAY_BUFFER_H_
#define AMS_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ams::rl {

/// One stored transition. States are sparse binary label vectors, so only
/// the set label ids are kept (a state rarely has more than ~60 set bits out
/// of 1104); batches are densified at sampling time.
struct Transition {
  std::vector<int32_t> state_labels;      // sorted set-bit indices of s
  std::vector<int32_t> next_state_labels; // set-bit indices of s'
  int32_t action = 0;
  float reward = 0.0f;
  bool done = false;
  /// Bitmask of models already executed in s' (bit m set = model m invalid);
  /// used to mask the max/argmax in bootstrapped targets.
  uint32_t next_executed_mask = 0;
  /// Action actually taken at s' by the behaviour policy (Deep SARSA target);
  /// -1 when unknown/terminal.
  int32_t next_action = -1;
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity);

  void Add(Transition t);

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  /// Uniformly samples `n` transitions (with replacement).
  std::vector<const Transition*> SampleBatch(size_t n, util::Rng* rng) const;

  const Transition& at(size_t i) const { return items_[i]; }

 private:
  size_t capacity_;
  size_t next_ = 0;  // ring insertion point once full
  std::vector<Transition> items_;
};

/// Densifies sparse label indices into a row of a batch matrix (the row must
/// already be zeroed).
void ScatterLabels(const std::vector<int32_t>& labels, float* row);

}  // namespace ams::rl

#endif  // AMS_RL_REPLAY_BUFFER_H_
