#include "rl/epsilon.h"

#include "util/check.h"

namespace ams::rl {

EpsilonSchedule::EpsilonSchedule(double start, double end, int decay_steps)
    : start_(start), end_(end), decay_steps_(decay_steps) {
  AMS_CHECK(start >= end, "epsilon must decay");
  AMS_CHECK(decay_steps > 0);
}

double EpsilonSchedule::Value(int step) const {
  if (step <= 0) return start_;
  if (step >= decay_steps_) return end_;
  const double frac = static_cast<double>(step) / decay_steps_;
  return start_ + (end_ - start_) * frac;
}

}  // namespace ams::rl
