#include "rl/trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "rl/epsilon.h"
#include "rl/replay_buffer.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ams::rl {

std::string SchemeName(DrlScheme scheme) {
  switch (scheme) {
    case DrlScheme::kDqn:
      return "dqn";
    case DrlScheme::kDoubleDqn:
      return "double";
    case DrlScheme::kDuelingDqn:
      return "dueling";
    case DrlScheme::kDeepSarsa:
      return "sarsa";
  }
  AMS_CHECK(false, "invalid scheme");
  return "";
}

namespace {

// Extracts the sparse set-bit indices of a dense binary feature vector.
std::vector<int32_t> SparseLabels(const std::vector<float>& features) {
  std::vector<int32_t> out;
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] != 0.0f) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

}  // namespace

AgentTrainer::AgentTrainer(const data::Oracle* oracle, const TrainConfig& config)
    : oracle_(oracle), config_(config) {
  AMS_CHECK(oracle != nullptr);
  AMS_CHECK(config.episodes > 0 && config.batch_size > 0);
  AMS_CHECK(config.gamma >= 0.0 && config.gamma < 1.0);
}

std::unique_ptr<Agent> AgentTrainer::Train(const std::vector<int>& item_indices,
                                           TrainStats* stats) {
  util::Timer timer;
  const std::vector<int>& items = item_indices.empty()
                                      ? oracle_->dataset().train_indices()
                                      : item_indices;
  AMS_CHECK(!items.empty(), "no training items");

  core::EnvConfig env_config;
  env_config.shaping = config_.shaping;
  env_config.enable_end_action = config_.enable_end_action;
  core::SchedulingEnv env(oracle_, env_config);

  const int feature_dim = env.feature_dim();
  const int num_actions = env.num_actions();
  const int num_models = env.num_models();
  const int end_action = env.end_action();

  nn::MlpConfig net_config;
  net_config.input_dim = feature_dim;
  net_config.hidden_dims = {config_.hidden_dim};
  net_config.output_dim = num_actions;

  std::unique_ptr<nn::QValueNet> online;
  nn::NetKind kind;
  if (config_.scheme == DrlScheme::kDuelingDqn) {
    online = std::make_unique<nn::DuelingMlp>(net_config, config_.seed);
    kind = nn::NetKind::kDueling;
  } else {
    online = std::make_unique<nn::Mlp>(net_config, config_.seed);
    kind = nn::NetKind::kMlp;
  }
  std::unique_ptr<nn::QValueNet> target = online->Clone();

  std::vector<nn::ParamGrad> params;
  online->CollectParams(&params);
  std::unique_ptr<nn::Optimizer> optimizer = nn::MakeOptimizer(
      config_.optimizer, static_cast<float>(config_.learning_rate));

  ReplayBuffer buffer(config_.replay_capacity);
  EpsilonSchedule epsilon(config_.eps_start, config_.eps_end,
                          config_.eps_decay_steps);
  util::Rng rng(util::HashCombine(config_.seed, 0x7124A1u));

  // Scratch batch tensors reused across updates.
  nn::Matrix batch_states, batch_next, q_pred, q_next_target, q_next_online,
      grad;
  std::vector<int> actions(static_cast<size_t>(config_.batch_size));
  std::vector<float> targets(static_cast<size_t>(config_.batch_size));

  // Selects an epsilon-greedy action among valid ones; q_values may be null
  // when exploring (saves a forward pass).
  auto select_action = [&](const std::vector<int>& valid, double eps) {
    AMS_CHECK(!valid.empty());
    if (rng.NextDouble() < eps) {
      return valid[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(valid.size()) - 1))];
    }
    const std::vector<float> q = online->Predict1(env.Features());
    int best = valid[0];
    float best_q = q[static_cast<size_t>(valid[0])];
    for (int a : valid) {
      if (q[static_cast<size_t>(a)] > best_q) {
        best = a;
        best_q = q[static_cast<size_t>(a)];
      }
    }
    return best;
  };

  // One gradient update on a sampled minibatch.
  auto update = [&]() {
    const auto batch =
        buffer.SampleBatch(static_cast<size_t>(config_.batch_size), &rng);
    const int bs = static_cast<int>(batch.size());
    batch_states.Resize(bs, feature_dim);
    batch_states.Fill(0.0f);
    batch_next.Resize(bs, feature_dim);
    batch_next.Fill(0.0f);
    for (int b = 0; b < bs; ++b) {
      ScatterLabels(batch[static_cast<size_t>(b)]->state_labels,
                    batch_states.Row(b));
      ScatterLabels(batch[static_cast<size_t>(b)]->next_state_labels,
                    batch_next.Row(b));
    }
    target->Forward(batch_next, &q_next_target);
    if (config_.scheme == DrlScheme::kDoubleDqn) {
      online->Forward(batch_next, &q_next_online);
    }
    for (int b = 0; b < bs; ++b) {
      const Transition& t = *batch[static_cast<size_t>(b)];
      actions[static_cast<size_t>(b)] = t.action;
      if (t.done) {
        targets[static_cast<size_t>(b)] = t.reward;
        continue;
      }
      // Valid actions at s': models not in the executed mask, plus END when
      // enabled during training.
      auto valid_at_next = [&](int a) {
        if (a == end_action) return config_.enable_end_action;
        return (t.next_executed_mask & (1u << a)) == 0;
      };
      double bootstrap = 0.0;
      if (config_.scheme == DrlScheme::kDeepSarsa) {
        AMS_DCHECK(t.next_action >= 0);
        bootstrap = q_next_target.At(b, t.next_action);
      } else if (config_.scheme == DrlScheme::kDoubleDqn) {
        int best = -1;
        float best_q = 0.0f;
        for (int a = 0; a < num_actions; ++a) {
          if (!valid_at_next(a)) continue;
          if (best == -1 || q_next_online.At(b, a) > best_q) {
            best = a;
            best_q = q_next_online.At(b, a);
          }
        }
        AMS_DCHECK(best >= 0);
        bootstrap = q_next_target.At(b, best);
      } else {  // DQN / DuelingDQN: max over valid actions of the target net
        bool any = false;
        float best_q = 0.0f;
        for (int a = 0; a < num_actions; ++a) {
          if (!valid_at_next(a)) continue;
          if (!any || q_next_target.At(b, a) > best_q) {
            any = true;
            best_q = q_next_target.At(b, a);
          }
        }
        AMS_DCHECK(any);
        bootstrap = best_q;
      }
      targets[static_cast<size_t>(b)] =
          t.reward + static_cast<float>(config_.gamma * bootstrap);
    }
    actions.resize(static_cast<size_t>(bs));
    targets.resize(static_cast<size_t>(bs));
    online->Forward(batch_states, &q_pred);
    nn::QLoss(q_pred, actions, targets, config_.loss, &grad);
    online->Backward(grad);
    optimizer->Step(params);
  };

  int global_step = 0;
  int updates = 0;
  std::vector<int> order(items.begin(), items.end());
  if (stats != nullptr) {
    stats->episode_rewards.clear();
    stats->episode_lengths.clear();
  }

  for (int episode = 0; episode < config_.episodes; ++episode) {
    if (episode % static_cast<int>(order.size()) == 0) rng.Shuffle(&order);
    const int item = order[static_cast<size_t>(
        episode % static_cast<int>(order.size()))];
    env.Reset(item);
    double episode_reward = 0.0;
    int episode_len = 0;

    int action = select_action(env.ValidActions(), epsilon.Value(global_step));
    while (!env.done()) {
      Transition t;
      t.state_labels = SparseLabels(env.Features());
      t.action = action;
      const core::StepResult step = env.Step(action);
      t.reward = static_cast<float>(step.reward);
      t.done = step.done;
      episode_reward += step.reward;
      ++episode_len;
      ++global_step;
      if (!step.done) {
        t.next_state_labels = SparseLabels(env.Features());
        uint32_t mask = 0;
        for (int m = 0; m < num_models; ++m) {
          if (env.state().model_executed(m)) mask |= (1u << m);
        }
        t.next_executed_mask = mask;
        // SARSA is on-policy: commit to the next action now and follow it.
        action = select_action(env.ValidActions(), epsilon.Value(global_step));
        t.next_action = action;
      }
      buffer.Add(std::move(t));
      if (static_cast<int>(buffer.size()) >= config_.min_replay) {
        for (int u = 0; u < config_.updates_per_step; ++u) {
          update();
          ++updates;
          if (updates % config_.target_sync_interval == 0) {
            target->CopyWeightsFrom(online.get());
          }
        }
      }
    }
    if (stats != nullptr) {
      stats->episode_rewards.push_back(episode_reward);
      stats->episode_lengths.push_back(static_cast<double>(episode_len));
    }
  }

  if (stats != nullptr) {
    stats->total_steps = global_step;
    stats->total_updates = updates;
    const size_t n = stats->episode_rewards.size();
    const size_t tail = std::max<size_t>(1, n / 10);
    double sum = 0.0;
    for (size_t i = n - tail; i < n; ++i) sum += stats->episode_rewards[i];
    stats->final_avg_reward = sum / static_cast<double>(tail);
    stats->wall_seconds = timer.ElapsedSeconds();
  }
  return std::make_unique<Agent>(std::move(online), kind);
}

}  // namespace ams::rl
