#include "rl/replay_buffer.h"

#include "util/check.h"

namespace ams::rl {

ReplayBuffer::ReplayBuffer(size_t capacity) : capacity_(capacity) {
  AMS_CHECK(capacity > 0);
  items_.reserve(capacity);
}

void ReplayBuffer::Add(Transition t) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(t));
  } else {
    items_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::SampleBatch(size_t n,
                                                         util::Rng* rng) const {
  AMS_CHECK(!items_.empty(), "sampling from empty buffer");
  std::vector<const Transition*> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int idx = rng->UniformInt(0, static_cast<int>(items_.size()) - 1);
    batch.push_back(&items_[static_cast<size_t>(idx)]);
  }
  return batch;
}

void ScatterLabels(const std::vector<int32_t>& labels, float* row) {
  for (int32_t id : labels) row[id] = 1.0f;
}

}  // namespace ams::rl
