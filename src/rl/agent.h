#ifndef AMS_RL_AGENT_H_
#define AMS_RL_AGENT_H_

#include <memory>
#include <string>

#include "core/predictor.h"
#include "nn/net.h"

namespace ams::rl {

/// A trained DRL agent: a Q-value network plus checkpoint I/O. Implements
/// the framework's ModelValuePredictor interface (§IV).
///
/// Not thread-safe (the net caches activations); Clone() per thread.
class Agent : public core::ModelValuePredictor {
 public:
  Agent(std::unique_ptr<nn::QValueNet> net, nn::NetKind kind);

  std::vector<double> PredictValues(
      const std::vector<float>& state_features) override;

  /// One [n, input_dim] forward pass through the Q-network. Each row is
  /// bitwise identical to the scalar PredictValues result (the net's Gemm
  /// computes rows independently in the same operation order). Set-index
  /// lists, when provided, route the first layer through the sparse-row
  /// fast path; the batch Matrix scratch is reused across calls.
  void PredictValuesBatchInto(
      const std::vector<const std::vector<float>*>& states,
      const std::vector<const std::vector<int>*>& set_indices,
      std::vector<double>* out) override;

  /// Raw-buffer batched forward: the allocation-free primitive both batch
  /// entry points share. After warm-up (pointer scratch + net activation
  /// matrices at steady capacity) a call performs zero heap allocations,
  /// which is what lets an arena-fed DecisionPlane tick allocation-free.
  void PredictValuesBatchTo(const std::vector<float>* const* states,
                            const std::vector<int>* const* set_indices,
                            size_t count, double* out) override;

  int num_actions() const override { return net_->output_dim(); }
  int feature_dim() const { return net_->input_dim(); }

  /// Reports the runtime-dispatched SIMD tier and whether this agent serves
  /// from a frozen int8 snapshot (kForward trace-span args).
  BackendInfo backend_info() const override;

  nn::QValueNet* net() { return net_.get(); }
  nn::NetKind kind() const { return kind_; }

  /// Writes a checkpoint; crashes on I/O failure.
  void Save(const std::string& path) const;

  /// Loads a checkpoint written by Save(); nullptr if missing/corrupt.
  static std::unique_ptr<Agent> Load(const std::string& path);

  std::unique_ptr<Agent> Clone() const;

  std::unique_ptr<core::ModelValuePredictor> ClonePredictor() const override {
    return Clone();
  }

  /// Raw weight copy from a same-architecture agent (no checkpoint
  /// round-trip), so pooled clones can track a live source per batch.
  /// Returns false when either side holds a quantized (frozen) net.
  bool SyncWeightsFrom(core::ModelValuePredictor* source) override;

  /// Frozen int8 snapshot via QValueNet::Quantize (nn/quantized.h); the
  /// calibration rows set the per-layer activation scales. Returns nullptr
  /// if the underlying net has no quantized form.
  std::unique_ptr<core::ModelValuePredictor> CloneQuantized(
      const std::vector<std::vector<float>>& calibration_rows) const override;

 private:
  std::unique_ptr<nn::QValueNet> net_;
  nn::NetKind kind_;
  /// Scratch for the batched forwards, reused across calls.
  nn::Matrix batch_q_;
  std::vector<const std::vector<float>*> batch_rows_;
  std::vector<const std::vector<int>*> batch_indices_;
};

}  // namespace ams::rl

#endif  // AMS_RL_AGENT_H_
