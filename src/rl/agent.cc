#include "rl/agent.h"

#include <fstream>

#include "util/check.h"
#include "util/serialize.h"

namespace ams::rl {

namespace {
constexpr uint32_t kCheckpointMagic = 0x414D5331;  // "AMS1"
}  // namespace

Agent::Agent(std::unique_ptr<nn::QValueNet> net, nn::NetKind kind)
    : net_(std::move(net)), kind_(kind) {
  AMS_CHECK(net_ != nullptr);
}

std::vector<double> Agent::PredictValues(
    const std::vector<float>& state_features) {
  const std::vector<float> q = net_->Predict1(state_features);
  return std::vector<double>(q.begin(), q.end());
}

void Agent::PredictValuesBatchInto(
    const std::vector<const std::vector<float>*>& states,
    const std::vector<const std::vector<int>*>& set_indices,
    std::vector<double>* out) {
  const int n = static_cast<int>(states.size());
  const size_t stride = static_cast<size_t>(num_actions());
  out->resize(static_cast<size_t>(n) * stride);
  if (n == 0) return;
  net_->PredictBatch(states, set_indices, &batch_q_);
  double* dst = out->data();
  for (int i = 0; i < n; ++i) {
    const float* row = batch_q_.Row(i);
    for (size_t j = 0; j < stride; ++j) dst[j] = row[j];
    dst += stride;
  }
}

void Agent::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  AMS_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  util::BinaryWriter w(&out);
  w.WriteU32(kCheckpointMagic);
  nn::SaveNet(*net_, kind_, &w);
  AMS_CHECK(w.ok(), "checkpoint write failed: " + path);
}

std::unique_ptr<Agent> Agent::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return nullptr;
  util::BinaryReader r(&in);
  if (r.ReadU32() != kCheckpointMagic) return nullptr;
  nn::NetKind kind;
  std::unique_ptr<nn::QValueNet> net = nn::LoadNet(&r, &kind);
  if (net == nullptr || !r.ok()) return nullptr;
  return std::make_unique<Agent>(std::move(net), kind);
}

std::unique_ptr<Agent> Agent::Clone() const {
  return std::make_unique<Agent>(net_->Clone(), kind_);
}

bool Agent::SyncWeightsFrom(core::ModelValuePredictor* source) {
  auto* other = dynamic_cast<Agent*>(source);
  if (other == nullptr || other->kind_ != kind_ ||
      other->net_->input_dim() != net_->input_dim() ||
      other->net_->output_dim() != net_->output_dim()) {
    return false;
  }
  net_->CopyWeightsFrom(other->net_.get());
  return true;
}

}  // namespace ams::rl
