#include "rl/agent.h"

#include <fstream>

#include "nn/simd.h"
#include "util/check.h"
#include "util/serialize.h"

namespace ams::rl {

namespace {
constexpr uint32_t kCheckpointMagic = 0x414D5331;  // "AMS1"
}  // namespace

Agent::Agent(std::unique_ptr<nn::QValueNet> net, nn::NetKind kind)
    : net_(std::move(net)), kind_(kind) {
  AMS_CHECK(net_ != nullptr);
}

core::ModelValuePredictor::BackendInfo Agent::backend_info() const {
  BackendInfo info;
  info.simd_tier = static_cast<int>(nn::simd::ActiveTier());
  info.int8 = net_->IsQuantized();
  return info;
}

std::vector<double> Agent::PredictValues(
    const std::vector<float>& state_features) {
  const std::vector<float> q = net_->Predict1(state_features);
  return std::vector<double>(q.begin(), q.end());
}

void Agent::PredictValuesBatchInto(
    const std::vector<const std::vector<float>*>& states,
    const std::vector<const std::vector<int>*>& set_indices,
    std::vector<double>* out) {
  const size_t stride = static_cast<size_t>(num_actions());
  out->resize(states.size() * stride);
  if (states.empty()) return;
  PredictValuesBatchTo(states.data(),
                       set_indices.empty() ? nullptr : set_indices.data(),
                       states.size(), out->data());
}

void Agent::PredictValuesBatchTo(const std::vector<float>* const* states,
                                 const std::vector<int>* const* set_indices,
                                 size_t count, double* out) {
  if (count == 0) return;
  // assign() reuses the pointer-scratch capacity; after warm-up this whole
  // call (including the net's activation matrices) allocates nothing.
  batch_rows_.assign(states, states + count);
  if (set_indices != nullptr) {
    batch_indices_.assign(set_indices, set_indices + count);
  } else {
    batch_indices_.clear();
  }
  net_->PredictBatch(batch_rows_, batch_indices_, &batch_q_);
  const size_t stride = static_cast<size_t>(num_actions());
  double* dst = out;
  for (size_t i = 0; i < count; ++i) {
    const float* row = batch_q_.Row(static_cast<int>(i));
    for (size_t j = 0; j < stride; ++j) dst[j] = row[j];
    dst += stride;
  }
}

void Agent::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  AMS_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  util::BinaryWriter w(&out);
  w.WriteU32(kCheckpointMagic);
  nn::SaveNet(*net_, kind_, &w);
  AMS_CHECK(w.ok(), "checkpoint write failed: " + path);
}

std::unique_ptr<Agent> Agent::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return nullptr;
  util::BinaryReader r(&in);
  if (r.ReadU32() != kCheckpointMagic) return nullptr;
  nn::NetKind kind;
  std::unique_ptr<nn::QValueNet> net = nn::LoadNet(&r, &kind);
  if (net == nullptr || !r.ok()) return nullptr;
  return std::make_unique<Agent>(std::move(net), kind);
}

std::unique_ptr<Agent> Agent::Clone() const {
  return std::make_unique<Agent>(net_->Clone(), kind_);
}

bool Agent::SyncWeightsFrom(core::ModelValuePredictor* source) {
  auto* other = dynamic_cast<Agent*>(source);
  if (other == nullptr || other->kind_ != kind_ ||
      other->net_->input_dim() != net_->input_dim() ||
      other->net_->output_dim() != net_->output_dim()) {
    return false;
  }
  // Quantized nets have no trainable tensors to copy into or out of; a
  // frozen quantized clone stays frozen (see CloneQuantized).
  if (net_->IsQuantized() || other->net_->IsQuantized()) return false;
  net_->CopyWeightsFrom(other->net_.get());
  return true;
}

std::unique_ptr<core::ModelValuePredictor> Agent::CloneQuantized(
    const std::vector<std::vector<float>>& calibration_rows) const {
  // Quantize() runs calibration forwards that clobber cached activations,
  // so it operates on a throwaway fp32 clone rather than this net.
  std::unique_ptr<nn::QValueNet> scratch = net_->Clone();
  std::unique_ptr<nn::QValueNet> quantized =
      scratch->Quantize(calibration_rows);
  if (quantized == nullptr) return nullptr;
  return std::make_unique<Agent>(std::move(quantized), kind_);
}

}  // namespace ams::rl
