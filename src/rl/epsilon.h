#ifndef AMS_RL_EPSILON_H_
#define AMS_RL_EPSILON_H_

namespace ams::rl {

/// Linearly decaying exploration rate for epsilon-greedy action selection.
class EpsilonSchedule {
 public:
  /// Decays from `start` to `end` over `decay_steps` environment steps, then
  /// stays at `end`.
  EpsilonSchedule(double start, double end, int decay_steps);

  /// Epsilon at a given global step (step 0 = start value).
  double Value(int step) const;

 private:
  double start_;
  double end_;
  int decay_steps_;
};

}  // namespace ams::rl

#endif  // AMS_RL_EPSILON_H_
