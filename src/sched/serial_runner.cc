#include "sched/serial_runner.h"

#include "core/labeling_state.h"
#include "core/value.h"
#include "util/check.h"

namespace ams::sched {

SerialRunResult RunSerial(SchedulingPolicy* policy, const data::Oracle& oracle,
                          int item, const SerialRunConfig& config,
                          int chunk_id) {
  AMS_CHECK(policy != nullptr);
  AMS_CHECK(item >= 0 && item < oracle.num_items());

  ItemContext ctx;
  ctx.oracle = &oracle;
  ctx.item = item;
  ctx.chunk_id = chunk_id;
  policy->BeginItem(ctx);

  core::LabelingState state(oracle.zoo().labels().total_labels(),
                            oracle.num_models());
  core::ValueAccumulator acc(&oracle, item);
  SerialRunResult result;
  double remaining = config.time_budget;

  while (state.num_executed() < oracle.num_models()) {
    if (config.recall_target >= 0.0 &&
        acc.Recall() >= config.recall_target - 1e-12) {
      break;
    }
    const int model = policy->NextModel(state, remaining);
    if (model < 0) break;
    AMS_CHECK(!state.model_executed(model), "policy returned executed model");
    const double exec_time = oracle.ExecutionTime(item, model);
    AMS_CHECK(exec_time <= remaining + 1e-9,
              "policy returned model exceeding the budget");
    const std::vector<zoo::LabelOutput> fresh =
        state.Apply(model, oracle.Output(item, model));
    acc.AddModel(model);
    policy->OnExecuted(model, fresh);
    remaining -= exec_time;
    result.time_used += exec_time;
    result.steps.push_back(
        {model, result.time_used, acc.Recall(), acc.Value()});
  }
  result.value = acc.Value();
  result.recall = acc.Recall();
  result.models_executed = state.num_executed();
  return result;
}

}  // namespace ams::sched
