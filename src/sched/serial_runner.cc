#include "sched/serial_runner.h"

#include "core/schedule_kernel.h"
#include "core/value.h"
#include "sched/policy_adapter.h"
#include "util/check.h"

namespace ams::sched {

SerialRunResult RunSerial(SchedulingPolicy* policy, const data::Oracle& oracle,
                          int item, const SerialRunConfig& config,
                          int chunk_id) {
  AMS_CHECK(policy != nullptr);
  AMS_CHECK(item >= 0 && item < oracle.num_items());

  ItemContext ctx;
  ctx.oracle = &oracle;
  ctx.zoo = &oracle.zoo();
  ctx.item = item;
  ctx.chunk_id = chunk_id;
  PolicyAdapter adapter(policy, ctx);

  core::ValueAccumulator acc(&oracle, item);
  SerialRunResult result;
  const auto target_reached = [&] {
    return core::RecallTargetReached(acc, config.recall_target);
  };
  // Items whose target is met before any execution (e.g. no valuable labels
  // at all) schedule nothing.
  if (target_reached()) {
    result.value = acc.Value();
    result.recall = acc.Recall();
    return result;
  }

  core::ReplayExecutionContext exec(&oracle, item);
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = config.time_budget;
  core::KernelHooks hooks;
  hooks.on_executed = [&](const core::ExecutionRecord& record,
                          const core::LabelingState&) {
    acc.AddModel(record.model_id);
    adapter.NotifyExecuted(record);
    result.time_used = record.finish_s;  // serial: cumulative time
    result.steps.push_back(
        {record.model_id, record.finish_s, acc.Recall(), acc.Value()});
    return target_reached();
  };
  RunScheduleKernel(exec, constraints, adapter.Picker(), hooks);

  result.value = acc.Value();
  result.recall = acc.Recall();
  result.models_executed = static_cast<int>(result.steps.size());
  return result;
}

}  // namespace ams::sched
