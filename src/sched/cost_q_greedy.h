#ifndef AMS_SCHED_COST_Q_GREEDY_H_
#define AMS_SCHED_COST_Q_GREEDY_H_

#include "core/predictor.h"
#include "sched/policy.h"

namespace ams::sched {

/// Algorithm 1: model scheduling under a deadline constraint.
///
/// At each iteration, among the unexecuted models that still fit the
/// remaining budget, executes the one maximizing Q(m, d) / m.time — the
/// cost-profit greedy with the DRL agent's Q value standing in for the
/// unknown true profit (§V-A).
class CostQGreedyPolicy : public SchedulingPolicy {
 public:
  /// The predictor must outlive the policy.
  explicit CostQGreedyPolicy(core::ModelValuePredictor* predictor);

  std::string name() const override { return "cost_q_greedy"; }
  void BeginItem(const ItemContext& ctx) override { ctx_ = ctx; }
  int NextModel(const core::LabelingState& state, double remaining_time) override;

 private:
  core::ModelValuePredictor* predictor_;
  ItemContext ctx_;
};

}  // namespace ams::sched

#endif  // AMS_SCHED_COST_Q_GREEDY_H_
