#ifndef AMS_SCHED_SERIAL_RUNNER_H_
#define AMS_SCHED_SERIAL_RUNNER_H_

#include <limits>
#include <vector>

#include "data/oracle.h"
#include "sched/policy.h"

namespace ams::sched {

/// Stop conditions and accounting options of a single-processor run.
struct SerialRunConfig {
  /// Deadline per item in seconds; infinity = unconstrained.
  double time_budget = std::numeric_limits<double>::infinity();
  /// Stop once value recall reaches this fraction; <0 disables. The stop
  /// condition is ground-truth driven, exactly as in §VI-B's experiments.
  double recall_target = -1.0;
};

/// One executed model in a serial run.
struct SerialStep {
  int model = -1;
  double time_after = 0.0;    // cumulative execution time after this model
  double recall_after = 0.0;  // value recall after this model
  double value_after = 0.0;
};

/// Outcome of scheduling one item serially.
struct SerialRunResult {
  std::vector<SerialStep> steps;
  double time_used = 0.0;
  double value = 0.0;
  double recall = 0.0;
  int models_executed = 0;
};

/// Drives a policy over one item: asks for the next model, replays its
/// stored output, updates the labeling state and value accumulator, and
/// enforces the stop conditions. The full per-step trajectory is recorded so
/// a single run yields every recall threshold's statistics (Figs. 4-6).
SerialRunResult RunSerial(SchedulingPolicy* policy, const data::Oracle& oracle,
                          int item, const SerialRunConfig& config,
                          int chunk_id = -1);

}  // namespace ams::sched

#endif  // AMS_SCHED_SERIAL_RUNNER_H_
