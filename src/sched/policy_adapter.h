#ifndef AMS_SCHED_POLICY_ADAPTER_H_
#define AMS_SCHED_POLICY_ADAPTER_H_

#include "core/schedule_kernel.h"
#include "sched/policy.h"

namespace ams::sched {

/// Presents a serial SchedulingPolicy as a core::ModelPicker, so the one
/// shared scheduling kernel drives both the offline runners and the online
/// LabelingService with any policy. The adapter enforces the policy
/// contract: a picked model must be unexecuted and its time estimate must
/// fit the remaining budget.
///
/// The policy and context must outlive the adapter; the adapter must
/// outlive any picker or hook obtained from it.
class PolicyAdapter {
 public:
  /// Calls `policy->BeginItem(ctx)`.
  PolicyAdapter(SchedulingPolicy* policy, const ItemContext& ctx);

  /// Picker for core::RunScheduleKernel. Serial: picks only when idle.
  core::ModelPicker Picker();

  /// Forwards a finish event to the policy's OnExecuted. Wire this into
  /// KernelHooks::on_executed (directly or from a larger hook).
  void NotifyExecuted(const core::ExecutionRecord& record);

  SchedulingPolicy* policy() const { return policy_; }
  const ItemContext& ctx() const { return ctx_; }

 private:
  SchedulingPolicy* policy_;
  ItemContext ctx_;
};

}  // namespace ams::sched

#endif  // AMS_SCHED_POLICY_ADAPTER_H_
