#ifndef AMS_SCHED_BASIC_POLICIES_H_
#define AMS_SCHED_BASIC_POLICIES_H_

#include <memory>
#include <vector>

#include "core/predictor.h"
#include "sched/policy.h"
#include "util/rng.h"

namespace ams::sched {

/// "Random policy" baseline (§II, §VI): a fresh uniformly random model
/// permutation per item, executed in order; models that no longer fit the
/// remaining budget are skipped.
class RandomPolicy : public SchedulingPolicy {
 public:
  explicit RandomPolicy(uint64_t seed);
  std::string name() const override { return "random"; }
  void BeginItem(const ItemContext& ctx) override;
  int NextModel(const core::LabelingState& state, double remaining_time) override;

 private:
  util::Rng rng_;
  ItemContext ctx_;
  std::vector<int> order_;
  size_t pos_ = 0;
};

/// "No policy" baseline (§II): executes every model in id order.
class NoPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "no_policy"; }
  void BeginItem(const ItemContext& ctx) override { ctx_ = ctx; }
  int NextModel(const core::LabelingState& state, double remaining_time) override;

 private:
  ItemContext ctx_;
};

/// "Optimal policy" baseline (§VI-B): orders models by their true output
/// value (oracle solo value, descending); stops once only worthless models
/// remain. An oracle policy — it peeks at ground truth.
class OptimalPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "optimal"; }
  void BeginItem(const ItemContext& ctx) override;
  int NextModel(const core::LabelingState& state, double remaining_time) override;

 private:
  ItemContext ctx_;
  std::vector<int> order_;  // models with positive solo value, best first
  size_t pos_ = 0;
};

/// "Q-Greedy policy" (§VI-B): executes the unexecuted model with the highest
/// predicted Q value; never stops voluntarily (the run driver's stop
/// condition — recall target or deadline — terminates it).
class QGreedyPolicy : public SchedulingPolicy {
 public:
  /// The predictor must outlive the policy.
  explicit QGreedyPolicy(core::ModelValuePredictor* predictor);
  std::string name() const override { return "q_greedy"; }
  void BeginItem(const ItemContext& ctx) override { ctx_ = ctx; }
  int NextModel(const core::LabelingState& state, double remaining_time) override;

 private:
  core::ModelValuePredictor* predictor_;
  ItemContext ctx_;
};

}  // namespace ams::sched

#endif  // AMS_SCHED_BASIC_POLICIES_H_
