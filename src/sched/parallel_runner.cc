#include "sched/parallel_runner.h"

#include "core/schedule_kernel.h"
#include "core/value.h"
#include "util/check.h"
#include "util/rng.h"

namespace ams::sched {

ParallelRunResult RunParallel(ParallelPolicyKind kind,
                              core::ModelValuePredictor* predictor,
                              const data::Oracle& oracle, int item,
                              const ParallelRunConfig& config) {
  if (kind == ParallelPolicyKind::kAlgorithm2) {
    AMS_CHECK(predictor != nullptr, "Algorithm 2 needs a value predictor");
  }
  AMS_CHECK(item >= 0 && item < oracle.num_items());

  core::ReplayExecutionContext exec(&oracle, item);
  const core::ModelPicker picker =
      kind == ParallelPolicyKind::kAlgorithm2
          ? core::MakeDeadlineMemoryPicker(predictor)
          : core::MakeRandomPackingPicker(
                util::HashCombine(config.seed, 0x9A7Au + item));

  core::ValueAccumulator acc(&oracle, item);
  ParallelRunResult result;
  core::KernelHooks hooks;
  hooks.on_executed = [&](const core::ExecutionRecord& record,
                          const core::LabelingState&) {
    acc.AddModel(record.model_id);
    result.steps.push_back({record.model_id, record.start_s, record.finish_s});
    return false;
  };
  core::ScheduleConstraints constraints;
  constraints.time_budget_s = config.time_budget;
  constraints.memory_budget_mb = config.mem_budget_mb;
  const core::ScheduleResult schedule =
      RunScheduleKernel(exec, constraints, picker, hooks);

  result.makespan = schedule.makespan_s;
  result.peak_mem_mb = schedule.peak_mem_mb;
  result.value = acc.Value();
  result.recall = acc.Recall();
  result.models_executed = static_cast<int>(result.steps.size());
  return result;
}

}  // namespace ams::sched
