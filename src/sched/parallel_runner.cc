#include "sched/parallel_runner.h"

#include <algorithm>
#include <limits>

#include "core/labeling_state.h"
#include "core/value.h"
#include "sched/cost_q_greedy.h"
#include "util/check.h"
#include "util/rng.h"

namespace ams::sched {

ParallelRunResult RunParallel(ParallelPolicyKind kind,
                              core::ModelValuePredictor* predictor,
                              const data::Oracle& oracle, int item,
                              const ParallelRunConfig& config) {
  if (kind == ParallelPolicyKind::kAlgorithm2) {
    AMS_CHECK(predictor != nullptr, "Algorithm 2 needs a value predictor");
  }
  const int num_models = oracle.num_models();
  core::LabelingState state(oracle.zoo().labels().total_labels(), num_models);
  core::ValueAccumulator acc(&oracle, item);
  util::Rng rng(util::HashCombine(config.seed, 0x9A7Au + item));

  struct Running {
    int model;
    double start;
    double finish;
    double mem;
  };
  std::vector<Running> running;
  std::vector<bool> started(static_cast<size_t>(num_models), false);
  double now = 0.0;
  double mem_free = config.mem_budget_mb;
  double mem_used = 0.0;
  double window_end = 0.0;
  ParallelRunResult result;

  auto feasible = [&](int m, double horizon) {
    if (started[static_cast<size_t>(m)]) return false;
    const auto& spec = oracle.zoo().model(m);
    if (spec.mem_mb > mem_free) return false;
    const double exec = oracle.ExecutionTime(item, m);
    if (now + exec > horizon) return false;
    return now + exec <= config.time_budget;
  };

  auto start_model = [&](int m) {
    started[static_cast<size_t>(m)] = true;
    const auto& spec = oracle.zoo().model(m);
    const double exec = oracle.ExecutionTime(item, m);
    running.push_back({m, now, now + exec, spec.mem_mb});
    mem_free -= spec.mem_mb;
    mem_used += spec.mem_mb;
    result.peak_mem_mb = std::max(result.peak_mem_mb, mem_used);
    window_end = std::max(window_end, now + spec.time_s);
  };

  const double inf = std::numeric_limits<double>::infinity();

  for (;;) {
    if (kind == ParallelPolicyKind::kAlgorithm2) {
      const std::vector<double> q = predictor->PredictValues(state.Features());
      // Q mapped through the order-preserving positive profit transform
      // (core::SchedulingProfit) so the cost ratios stay meaningful when
      // predictions are negative.
      auto profit = [&](int m) {
        return core::SchedulingProfit(q[static_cast<size_t>(m)]);
      };
      if (running.empty()) {
        // Anchor: argmax Q / (time * mem) among feasible models (line 4).
        int anchor = -1;
        double best = 0.0;
        for (int m = 0; m < num_models; ++m) {
          if (!feasible(m, inf)) continue;
          const auto& spec = oracle.zoo().model(m);
          const double score = profit(m) / (spec.time_s * spec.mem_mb);
          if (anchor == -1 || score > best) {
            anchor = m;
            best = score;
          }
        }
        if (anchor == -1) break;
        window_end = 0.0;
        start_model(anchor);
      }
      // Fill remaining memory by Q / mem (lines 7-12). The paper bounds
      // fills by the anchor's finish ("temporary deadline"); taken
      // literally that degenerates to near-serial execution whenever the
      // value-density anchor is a short model, so fills here are bounded by
      // the global deadline — same greedy spirit, no degenerate case (see
      // DESIGN.md).
      for (;;) {
        int pick = -1;
        double best = 0.0;
        for (int m = 0; m < num_models; ++m) {
          if (!feasible(m, inf)) continue;
          const double score = profit(m) / oracle.zoo().model(m).mem_mb;
          if (pick == -1 || score > best) {
            pick = m;
            best = score;
          }
        }
        if (pick == -1) break;
        start_model(pick);
      }
    } else {  // kRandom: pack any feasible model in random order.
      std::vector<int> order(static_cast<size_t>(num_models));
      for (int m = 0; m < num_models; ++m) order[static_cast<size_t>(m)] = m;
      rng.Shuffle(&order);
      for (int m : order) {
        if (feasible(m, inf)) start_model(m);
      }
      if (running.empty()) break;
    }

    if (running.empty()) break;
    // Advance to the earliest finish; apply its output.
    size_t next = 0;
    for (size_t i = 1; i < running.size(); ++i) {
      if (running[i].finish < running[next].finish) next = i;
    }
    const Running done = running[next];
    running.erase(running.begin() + static_cast<long>(next));
    now = done.finish;
    mem_free += done.mem;
    mem_used -= done.mem;
    state.Apply(done.model, oracle.Output(item, done.model));
    acc.AddModel(done.model);
    result.steps.push_back({done.model, done.start, done.finish});
    result.makespan = std::max(result.makespan, done.finish);
    if (now >= config.time_budget) break;
  }
  // Drain remaining running models (they were all scheduled to finish within
  // the deadline, so they count).
  std::sort(running.begin(), running.end(),
            [](const Running& a, const Running& b) {
              return a.finish < b.finish;
            });
  for (const Running& r : running) {
    state.Apply(r.model, oracle.Output(item, r.model));
    acc.AddModel(r.model);
    result.steps.push_back({r.model, r.start, r.finish});
    result.makespan = std::max(result.makespan, r.finish);
  }
  result.value = acc.Value();
  result.recall = acc.Recall();
  result.models_executed = static_cast<int>(result.steps.size());
  return result;
}

}  // namespace ams::sched
