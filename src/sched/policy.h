#ifndef AMS_SCHED_POLICY_H_
#define AMS_SCHED_POLICY_H_

#include <string>
#include <vector>

#include "core/labeling_state.h"
#include "data/oracle.h"

namespace ams::sched {

/// Everything a policy may know when an item arrives. Policies other than
/// the oracle-based baselines (Optimal, Optimal*) must not inspect stored
/// outputs — only costs, ids and, for chunked streams, the chunk id.
struct ItemContext {
  const data::Oracle* oracle = nullptr;
  int item = -1;
  /// Chunk id for correlated streams; -1 for i.i.d. items.
  int chunk_id = -1;
};

/// Interactive serial scheduling policy: repeatedly asked for the next model
/// to execute given the current labeling state and remaining time budget.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once per item before any NextModel call.
  virtual void BeginItem(const ItemContext& ctx) = 0;

  /// Returns the next model to execute (an unexecuted model id whose
  /// *realized* execution time fits `remaining_time`), or -1 to stop.
  /// Implementations use ctx.oracle->ExecutionTime for the fit check.
  virtual int NextModel(const core::LabelingState& state,
                        double remaining_time) = 0;

  /// Notification with the model's newly produced valuable labels (O');
  /// adaptive policies (rule-based, explore-exploit) react here.
  virtual void OnExecuted(int model,
                          const std::vector<zoo::LabelOutput>& fresh) {
    (void)model;
    (void)fresh;
  }
};

/// Helper shared by policy implementations: true if `model` may still be run.
bool Fits(const ItemContext& ctx, const core::LabelingState& state, int model,
          double remaining_time);

}  // namespace ams::sched

#endif  // AMS_SCHED_POLICY_H_
