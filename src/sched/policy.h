#ifndef AMS_SCHED_POLICY_H_
#define AMS_SCHED_POLICY_H_

#include <string>
#include <vector>

#include "core/labeling_state.h"
#include "data/oracle.h"
#include "zoo/model_zoo.h"

namespace ams::sched {

/// Everything a policy may know when an item arrives. Policies other than
/// the oracle-based baselines (Optimal, Optimal*) must not inspect stored
/// outputs — only costs, ids and, for chunked streams, the chunk id.
///
/// Two information patterns share this context:
///  - offline replay: `oracle` is set and fit checks use the realized
///    per-item execution times (exactly what a stored-output evaluation
///    knows);
///  - live scheduling: `oracle` is null, `zoo` is set, and fit checks fall
///    back to the spec's planned mean times (all a production deployment
///    knows up front). This is what lets any SchedulingPolicy drive the
///    online LabelingService through a PolicyAdapter.
struct ItemContext {
  const data::Oracle* oracle = nullptr;
  /// Always available; when `oracle` is set it equals &oracle->zoo().
  const zoo::ModelZoo* zoo = nullptr;
  int item = -1;
  /// Chunk id for correlated streams; -1 for i.i.d. items.
  int chunk_id = -1;

  int num_models() const {
    return oracle != nullptr ? oracle->num_models() : zoo->num_models();
  }

  /// Best available time estimate for `model`: realized when replaying
  /// stored outputs, planned mean when live.
  double TimeEstimate(int model) const {
    return oracle != nullptr ? oracle->ExecutionTime(item, model)
                             : zoo->model(model).time_s;
  }

  /// The zoo, regardless of which pattern the context carries.
  const zoo::ModelZoo& model_zoo() const {
    return oracle != nullptr ? oracle->zoo() : *zoo;
  }
};

/// Interactive serial scheduling policy: repeatedly asked for the next model
/// to execute given the current labeling state and remaining time budget.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once per item before any NextModel call.
  virtual void BeginItem(const ItemContext& ctx) = 0;

  /// Returns the next model to execute (an unexecuted model id whose
  /// execution time estimate fits `remaining_time`), or -1 to stop.
  /// Implementations use ItemContext::TimeEstimate for the fit check.
  virtual int NextModel(const core::LabelingState& state,
                        double remaining_time) = 0;

  /// Notification with the model's newly produced valuable labels (O');
  /// adaptive policies (rule-based, explore-exploit) react here.
  virtual void OnExecuted(int model,
                          const std::vector<zoo::LabelOutput>& fresh) {
    (void)model;
    (void)fresh;
  }
};

/// Helper shared by policy implementations: true if `model` may still be run.
bool Fits(const ItemContext& ctx, const core::LabelingState& state, int model,
          double remaining_time);

}  // namespace ams::sched

#endif  // AMS_SCHED_POLICY_H_
