#include "sched/policy_registry.h"

#include <utility>

#include "sched/basic_policies.h"
#include "sched/cost_q_greedy.h"
#include "sched/explore_exploit.h"
#include "util/check.h"

namespace ams::sched {

namespace {

core::ModelValuePredictor* RequirePredictor(const PolicyOptions& options,
                                            const char* name) {
  AMS_CHECK(options.predictor != nullptr,
            std::string("policy '") + name +
                "' needs PolicyOptions::predictor");
  return options.predictor;
}

constexpr PolicyTraits kPredictorDriven = {/*needs_predictor=*/true,
                                           /*needs_chunked_stream=*/false};
constexpr PolicyTraits kChunked = {/*needs_predictor=*/false,
                                   /*needs_chunked_stream=*/true};

}  // namespace

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

PolicyRegistry::PolicyRegistry() {
  Register("random", [](const PolicyOptions& options) {
    return std::make_unique<RandomPolicy>(options.seed);
  });
  Register("no_policy", [](const PolicyOptions&) {
    return std::make_unique<NoPolicy>();
  });
  Register("optimal", [](const PolicyOptions&) {
    return std::make_unique<OptimalPolicy>();
  });
  Register(
      "q_greedy",
      [](const PolicyOptions& options) {
        return std::make_unique<QGreedyPolicy>(
            RequirePredictor(options, "q_greedy"));
      },
      kPredictorDriven);
  Register(
      "cost_q_greedy",
      [](const PolicyOptions& options) {
        return std::make_unique<CostQGreedyPolicy>(
            RequirePredictor(options, "cost_q_greedy"));
      },
      kPredictorDriven);
  Register("rule_based", [](const PolicyOptions& options) {
    return std::make_unique<RuleBasedPolicy>(
        options.rules.empty() ? DefaultRules() : options.rules, options.seed);
  });
  Register(
      "explore_exploit",
      [](const PolicyOptions& options) {
        return std::make_unique<ExploreExploitPolicy>(options.explore_items);
      },
      kChunked);
}

void PolicyRegistry::Register(const std::string& name,
                              NamedPolicyFactory factory,
                              PolicyTraits traits) {
  AMS_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted =
      entries_.emplace(name, Entry{std::move(factory), traits}).second;
  AMS_CHECK(inserted, "policy '" + name + "' is already registered");
}

bool PolicyRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) != 0;
}

PolicyTraits PolicyRegistry::Traits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  AMS_CHECK(it != entries_.end(), "unknown policy '" + name + "'");
  return it->second.traits;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string PolicyRegistry::JoinedNames() const {
  std::string joined;
  for (const std::string& name : Names()) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::Create(
    const std::string& name, const PolicyOptions& options) const {
  std::unique_ptr<SchedulingPolicy> policy = TryCreate(name, options);
  if (policy == nullptr) {
    AMS_CHECK(false,
              "unknown policy '" + name + "'; known: " + JoinedNames());
  }
  return policy;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::TryCreate(
    const std::string& name, const PolicyOptions& options) const {
  NamedPolicyFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory(options);
}

}  // namespace ams::sched
