#include "sched/basic_policies.h"

#include <algorithm>

#include "util/check.h"

namespace ams::sched {

RandomPolicy::RandomPolicy(uint64_t seed) : rng_(seed) {}

void RandomPolicy::BeginItem(const ItemContext& ctx) {
  ctx_ = ctx;
  order_.resize(static_cast<size_t>(ctx.num_models()));
  for (int m = 0; m < ctx.num_models(); ++m) {
    order_[static_cast<size_t>(m)] = m;
  }
  rng_.Shuffle(&order_);
  pos_ = 0;
}

int RandomPolicy::NextModel(const core::LabelingState& state,
                            double remaining_time) {
  // Walk the permutation; skip models that no longer fit.
  for (size_t i = pos_; i < order_.size(); ++i) {
    const int m = order_[i];
    if (state.model_executed(m)) continue;
    if (Fits(ctx_, state, m, remaining_time)) {
      if (i == pos_) ++pos_;
      return m;
    }
  }
  return -1;
}

int NoPolicy::NextModel(const core::LabelingState& state,
                        double remaining_time) {
  for (int m = 0; m < ctx_.num_models(); ++m) {
    if (Fits(ctx_, state, m, remaining_time)) return m;
  }
  return -1;
}

void OptimalPolicy::BeginItem(const ItemContext& ctx) {
  AMS_CHECK(ctx.oracle != nullptr,
            "OptimalPolicy is an oracle baseline and needs stored outputs");
  ctx_ = ctx;
  order_.clear();
  for (int m = 0; m < ctx.oracle->num_models(); ++m) {
    if (ctx.oracle->ModelSoloValue(ctx.item, m) > 0.0) order_.push_back(m);
  }
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    return ctx.oracle->ModelSoloValue(ctx.item, a) >
           ctx.oracle->ModelSoloValue(ctx.item, b);
  });
  pos_ = 0;
}

int OptimalPolicy::NextModel(const core::LabelingState& state,
                             double remaining_time) {
  for (size_t i = pos_; i < order_.size(); ++i) {
    const int m = order_[i];
    if (state.model_executed(m)) continue;
    if (Fits(ctx_, state, m, remaining_time)) {
      if (i == pos_) ++pos_;
      return m;
    }
  }
  return -1;
}

QGreedyPolicy::QGreedyPolicy(core::ModelValuePredictor* predictor)
    : predictor_(predictor) {
  AMS_CHECK(predictor != nullptr);
}

int QGreedyPolicy::NextModel(const core::LabelingState& state,
                             double remaining_time) {
  const std::vector<double> q = predictor_->PredictValues(state.Features());
  int best = -1;
  double best_q = 0.0;
  for (int m = 0; m < ctx_.num_models(); ++m) {
    if (!Fits(ctx_, state, m, remaining_time)) continue;
    if (best == -1 || q[static_cast<size_t>(m)] > best_q) {
      best = m;
      best_q = q[static_cast<size_t>(m)];
    }
  }
  return best;
}

}  // namespace ams::sched
