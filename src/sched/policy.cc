#include "sched/policy.h"

namespace ams::sched {

bool Fits(const ItemContext& ctx, const core::LabelingState& state, int model,
          double remaining_time) {
  if (state.model_executed(model)) return false;
  return ctx.TimeEstimate(model) <= remaining_time;
}

}  // namespace ams::sched
