#ifndef AMS_SCHED_PARALLEL_RUNNER_H_
#define AMS_SCHED_PARALLEL_RUNNER_H_

#include <cstdint>

#include "core/predictor.h"
#include "data/oracle.h"

namespace ams::sched {

/// Policies available under the two-dimensional (deadline x memory)
/// constraint of §V-B / §VI-G.
enum class ParallelPolicyKind {
  /// Algorithm 2: Q-driven anchor + fill heuristic.
  kAlgorithm2,
  /// Random feasible packing until the deadline.
  kRandom,
};

struct ParallelRunConfig {
  double time_budget = 1.0;    // seconds
  double mem_budget_mb = 8000;  // GPU memory
  uint64_t seed = 1;            // randomness for kRandom
};

/// One finished model execution in a parallel run.
struct ParallelStep {
  int model = -1;
  double start = 0.0;
  double finish = 0.0;
};

struct ParallelRunResult {
  std::vector<ParallelStep> steps;
  double makespan = 0.0;
  double value = 0.0;
  double recall = 0.0;
  int models_executed = 0;
  /// Peak simultaneous memory use, for asserting the constraint held.
  double peak_mem_mb = 0.0;
};

/// Event-driven multi-processor execution simulator under deadline + memory
/// constraints (Eq. 5). Semantics shared by all policies:
///  - a model may start only if its memory fits the free budget and its
///    realized execution time finishes before the deadline;
///  - outputs (and hence labeling-state/Q updates) apply at finish events;
///  - memory is released at finish events.
/// Algorithm 2 additionally anchors each window with the model maximizing
/// Q/(time*mem) and fills remaining memory with models maximizing Q/mem that
/// finish within the window (the "temporary deadline" of Algorithm 2).
///
/// `predictor` is required for kAlgorithm2 and ignored for kRandom.
ParallelRunResult RunParallel(ParallelPolicyKind kind,
                              core::ModelValuePredictor* predictor,
                              const data::Oracle& oracle, int item,
                              const ParallelRunConfig& config);

}  // namespace ams::sched

#endif  // AMS_SCHED_PARALLEL_RUNNER_H_
