#include "sched/policy_adapter.h"

#include "util/check.h"

namespace ams::sched {

PolicyAdapter::PolicyAdapter(SchedulingPolicy* policy, const ItemContext& ctx)
    : policy_(policy), ctx_(ctx) {
  AMS_CHECK(policy != nullptr);
  AMS_CHECK(ctx.oracle != nullptr || ctx.zoo != nullptr,
            "ItemContext needs an oracle or a zoo");
  policy_->BeginItem(ctx_);
}

core::ModelPicker PolicyAdapter::Picker() {
  return [this](const core::PickContext& pick) -> int {
    if (!pick.idle) return -1;
    const double remaining = pick.remaining_time();
    const int model = policy_->NextModel(*pick.state, remaining);
    if (model < 0) return -1;
    AMS_CHECK(!pick.state->model_executed(model),
              "policy returned executed model");
    AMS_CHECK(ctx_.TimeEstimate(model) <= remaining + 1e-9,
              "policy returned model exceeding the budget");
    return model;
  };
}

void PolicyAdapter::NotifyExecuted(const core::ExecutionRecord& record) {
  policy_->OnExecuted(record.model_id, record.fresh);
}

}  // namespace ams::sched
