#ifndef AMS_SCHED_RULE_BASED_H_
#define AMS_SCHED_RULE_BASED_H_

#include <string>
#include <vector>

#include "sched/policy.h"
#include "util/rng.h"
#include "zoo/task.h"

namespace ams::sched {

/// One handcrafted execution rule (Table II): when a trigger label arrives,
/// the execution probability of every model of `target_task` is multiplied
/// by `factor`. Each rule fires at most once per item.
struct ExecutionRule {
  std::string description;
  /// Matches a freshly emitted valuable label.
  enum class Trigger {
    kObjectPerson,
    kObjectDog,
    kFace,
    kAnyPoseKeypoint,
    kWristKeypoint,
    kIndoorPlace,
  } trigger;
  zoo::TaskKind target_task;
  double factor;  // 2.0 boosts, 0.5 suppresses
};

/// The repo's Table-II rule set: ten pairwise rules volunteered from common
/// sense, mirroring the paper's (person->pose, person->gender, dog->breed,
/// face->landmarks, face->emotion, pose->action, wrist->hand, indoor
/// suppressions).
std::vector<ExecutionRule> DefaultRules();

/// Rule-based scheduling policy (§III-B, §VI-C): every task starts with an
/// equal execution weight; fresh labels fire rules that scale task weights;
/// the next model is sampled proportionally to its task's weight among those
/// that fit. Within a task, the cheaper tiers are preferred first, matching
/// how a practitioner would order a model family by cost.
class RuleBasedPolicy : public SchedulingPolicy {
 public:
  RuleBasedPolicy(std::vector<ExecutionRule> rules, uint64_t seed);

  std::string name() const override { return "rule_based"; }
  void BeginItem(const ItemContext& ctx) override;
  int NextModel(const core::LabelingState& state, double remaining_time) override;
  void OnExecuted(int model, const std::vector<zoo::LabelOutput>& fresh) override;

  /// Number of times each rule fired since construction (for Table II
  /// diagnostics).
  const std::vector<int>& rule_fire_counts() const { return fire_counts_; }
  const std::vector<ExecutionRule>& rules() const { return rules_; }

 private:
  std::vector<ExecutionRule> rules_;
  std::vector<int> fire_counts_;
  std::vector<bool> fired_this_item_;
  std::vector<double> task_weight_;
  util::Rng rng_;
  ItemContext ctx_;
};

}  // namespace ams::sched

#endif  // AMS_SCHED_RULE_BASED_H_
