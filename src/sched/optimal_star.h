#ifndef AMS_SCHED_OPTIMAL_STAR_H_
#define AMS_SCHED_OPTIMAL_STAR_H_

#include "data/oracle.h"

namespace ams::sched {

/// The relaxed upper bounds of §V-C ("optimal* policy").
///
/// The exact optimum is infeasible to enumerate (O(|M|!)), so the paper
/// relaxes the problem: a model whose remaining resources do not suffice may
/// still be selected and contributes the corresponding *fraction* of its
/// value. The relaxed optimum is then obtained greedily with true marginal
/// gains, and upper-bounds the exact optimum of the original problem.

/// Deadline-only bound: greedily adds the model maximizing
/// (f(S ∪ {m}) − f(S)) / m.time; the first model that no longer fits
/// contributes proportionally. Returns the achieved value f*(d).
double OptimalStarValueDeadline(const data::Oracle& oracle, int item,
                                double time_budget);

/// Deadline-memory bound: resources form a time x memory area (Eq. 5's two
/// knapsack dimensions); each model consumes time*mem of it. Greedy by
/// (f gain) / (time * mem) with a fractional last model.
double OptimalStarValueDeadlineMemory(const data::Oracle& oracle, int item,
                                      double time_budget, double mem_budget);

}  // namespace ams::sched

#endif  // AMS_SCHED_OPTIMAL_STAR_H_
