#ifndef AMS_SCHED_POLICY_REGISTRY_H_
#define AMS_SCHED_POLICY_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "sched/policy.h"
#include "sched/rule_based.h"

namespace ams::sched {

/// Everything a registered policy constructor may need. Callers fill only
/// the fields their policy uses; constructors crash with a clear message on
/// a missing requirement (e.g. "cost_q_greedy" without a predictor).
struct PolicyOptions {
  /// Q-value source for "q_greedy" / "cost_q_greedy". Must outlive the
  /// policy. Not cloned here: clone per thread before constructing when the
  /// predictor is stateful (rl::Agent is).
  core::ModelValuePredictor* predictor = nullptr;
  /// Randomness for "random" / "rule_based".
  uint64_t seed = 1;
  /// Items fully executed at each chunk head for "explore_exploit".
  int explore_items = 2;
  /// Rule set for "rule_based"; empty means DefaultRules().
  std::vector<ExecutionRule> rules;
};

/// Constructs one policy instance from options.
using NamedPolicyFactory =
    std::function<std::unique_ptr<SchedulingPolicy>(const PolicyOptions&)>;

/// What a registered policy requires of its caller. Entry points query this
/// instead of hard-coding policy names (e.g. to know whether an agent must
/// be trained before the policy can run).
struct PolicyTraits {
  /// Requires PolicyOptions::predictor (q_greedy, cost_q_greedy).
  bool needs_predictor = false;
  /// Requires items with chunk ids, i.e. a correlated stream
  /// (explore_exploit).
  bool needs_chunked_stream = false;
};

/// String-keyed factory of scheduling policies: the single place where every
/// entry point (LabelingService, ams_label, benches) resolves a policy name.
/// The built-ins are registered up front:
///
///   random, no_policy, optimal, q_greedy, cost_q_greedy, rule_based,
///   explore_exploit
///
/// Thread-safe. Extensions Register() additional names at startup.
class PolicyRegistry {
 public:
  /// The process-wide registry with the built-ins pre-registered.
  static PolicyRegistry& Global();

  PolicyRegistry();

  /// Registers a new policy; crashes if the name is already taken.
  void Register(const std::string& name, NamedPolicyFactory factory,
                PolicyTraits traits = {});

  bool Contains(const std::string& name) const;

  /// Traits of a registered policy; crashes on an unknown name.
  PolicyTraits Traits(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// The registered names as one comma-separated string (for error
  /// messages).
  std::string JoinedNames() const;

  /// Creates a policy; crashes with the known names on an unknown one.
  std::unique_ptr<SchedulingPolicy> Create(const std::string& name,
                                           const PolicyOptions& options) const;

  /// Creates a policy, or returns nullptr on an unknown name.
  std::unique_ptr<SchedulingPolicy> TryCreate(
      const std::string& name, const PolicyOptions& options) const;

 private:
  struct Entry {
    NamedPolicyFactory factory;
    PolicyTraits traits;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ams::sched

#endif  // AMS_SCHED_POLICY_REGISTRY_H_
