#include "sched/optimal_star.h"

#include <algorithm>

#include "core/value.h"
#include "util/check.h"

namespace ams::sched {

namespace {

// Shared greedy: cost(m) is the resource consumption of model m; `budget` the
// total resource. Marginal gains are re-evaluated after every committed model
// (f is submodular, so stale gains would overestimate). When `by_ratio` the
// candidate order is gain/cost, otherwise pure gain.
template <typename CostFn>
double RelaxedGreedy(const data::Oracle& oracle, int item, double budget,
                     CostFn cost, bool by_ratio) {
  core::ValueAccumulator acc(&oracle, item);
  const int num_models = oracle.num_models();
  std::vector<bool> used(static_cast<size_t>(num_models), false);
  double value = 0.0;
  for (;;) {
    int best = -1;
    double best_score = 0.0;
    double best_gain = 0.0;
    for (int m = 0; m < num_models; ++m) {
      if (used[static_cast<size_t>(m)]) continue;
      const double gain = acc.MarginalGain(m);
      if (gain <= 0.0) continue;
      const double score = by_ratio ? gain / cost(m) : gain;
      if (best == -1 || score > best_score) {
        best = m;
        best_score = score;
        best_gain = gain;
      }
    }
    if (best == -1) break;  // no remaining model adds value
    const double c = cost(best);
    if (c <= budget) {
      acc.AddModel(best);
      value += best_gain;
      budget -= c;
      used[static_cast<size_t>(best)] = true;
    } else {
      // Relaxation: the overflowing model contributes proportionally.
      value += best_gain * (budget / c);
      break;
    }
    if (budget <= 0.0) break;
  }
  return value;
}

// The reference bound takes the better of the two greedy orders: the
// cost-profit ratio greedy (the classic knapsack move) and the pure-gain
// greedy (which catches the "one expensive model dominates" cases the ratio
// order can miss under tiny budgets).
template <typename CostFn>
double RelaxedGreedyBest(const data::Oracle& oracle, int item, double budget,
                         CostFn cost) {
  return std::max(RelaxedGreedy(oracle, item, budget, cost, /*by_ratio=*/true),
                  RelaxedGreedy(oracle, item, budget, cost, /*by_ratio=*/false));
}

}  // namespace

double OptimalStarValueDeadline(const data::Oracle& oracle, int item,
                                double time_budget) {
  AMS_CHECK(time_budget >= 0.0);
  return RelaxedGreedyBest(oracle, item, time_budget, [&](int m) {
    return oracle.ExecutionTime(item, m);
  });
}

double OptimalStarValueDeadlineMemory(const data::Oracle& oracle, int item,
                                      double time_budget, double mem_budget) {
  AMS_CHECK(time_budget >= 0.0 && mem_budget > 0.0);
  // Normalize memory by the budget so the area is measured in
  // "seconds x budget-fractions": a model using the whole memory for its
  // entire runtime consumes exactly its runtime of the area, and the total
  // area equals the time budget.
  return RelaxedGreedyBest(oracle, item, time_budget, [&](int m) {
    const double mem_fraction =
        std::min(1.0, oracle.zoo().model(m).mem_mb / mem_budget);
    return oracle.ExecutionTime(item, m) * mem_fraction;
  });
}

}  // namespace ams::sched
