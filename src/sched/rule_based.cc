#include "sched/rule_based.h"

#include "util/check.h"
#include "zoo/label_space.h"

namespace ams::sched {

using zoo::TaskKind;

std::vector<ExecutionRule> DefaultRules() {
  using T = ExecutionRule::Trigger;
  return {
      {"object person => 2 x P(Pose Estimation)", T::kObjectPerson,
       TaskKind::kPoseEstimation, 2.0},
      {"object person => 2 x P(Gender Classification)", T::kObjectPerson,
       TaskKind::kGenderClassification, 2.0},
      {"object person => 2 x P(Face Detection)", T::kObjectPerson,
       TaskKind::kFaceDetection, 2.0},
      {"object dog => 2 x P(Dog Classification)", T::kObjectDog,
       TaskKind::kDogClassification, 2.0},
      {"face => 2 x P(Face Landmark Localization)", T::kFace,
       TaskKind::kFaceLandmark, 2.0},
      {"face => 2 x P(Emotion Classification)", T::kFace,
       TaskKind::kEmotionClassification, 2.0},
      {"body keypoints => 2 x P(Action Classification)", T::kAnyPoseKeypoint,
       TaskKind::kActionClassification, 2.0},
      {"wrist keypoints => 2 x P(Hand Landmark Localization)",
       T::kWristKeypoint, TaskKind::kHandLandmark, 2.0},
      {"indoor place => 0.5 x P(Dog Classification)", T::kIndoorPlace,
       TaskKind::kDogClassification, 0.5},
      {"indoor place => 0.5 x P(Action Classification)", T::kIndoorPlace,
       TaskKind::kActionClassification, 0.5},
  };
}

RuleBasedPolicy::RuleBasedPolicy(std::vector<ExecutionRule> rules, uint64_t seed)
    : rules_(std::move(rules)),
      fire_counts_(rules_.size(), 0),
      fired_this_item_(rules_.size(), false),
      task_weight_(static_cast<size_t>(zoo::kNumTasks), 1.0),
      rng_(seed) {}

void RuleBasedPolicy::BeginItem(const ItemContext& ctx) {
  ctx_ = ctx;
  std::fill(task_weight_.begin(), task_weight_.end(), 1.0);
  std::fill(fired_this_item_.begin(), fired_this_item_.end(), false);
}

int RuleBasedPolicy::NextModel(const core::LabelingState& state,
                               double remaining_time) {
  // Sample a task by weight among tasks that still have a runnable model,
  // then pick that task's most capable runnable model (a practitioner runs
  // the best variant of a family first; weaker tiers only as fallback).
  const auto& zoo = ctx_.model_zoo();
  std::vector<double> weights(static_cast<size_t>(zoo::kNumTasks), 0.0);
  std::vector<int> best_model(static_cast<size_t>(zoo::kNumTasks), -1);
  bool any = false;
  for (int m = 0; m < zoo.num_models(); ++m) {
    if (!Fits(ctx_, state, m, remaining_time)) continue;
    const int t = static_cast<int>(zoo.model(m).task);
    if (best_model[static_cast<size_t>(t)] == -1 ||
        zoo.model(m).accuracy >
            zoo.model(best_model[static_cast<size_t>(t)]).accuracy) {
      best_model[static_cast<size_t>(t)] = m;
    }
    weights[static_cast<size_t>(t)] = task_weight_[static_cast<size_t>(t)];
    any = true;
  }
  if (!any) return -1;
  const int task = rng_.Categorical(weights);
  return best_model[static_cast<size_t>(task)];
}

void RuleBasedPolicy::OnExecuted(int model,
                                 const std::vector<zoo::LabelOutput>& fresh) {
  (void)model;
  const auto& labels = ctx_.model_zoo().labels();
  for (const auto& out : fresh) {
    const TaskKind task = labels.TaskOfLabel(out.label_id);
    const int offset = labels.OffsetInTask(out.label_id);
    for (size_t r = 0; r < rules_.size(); ++r) {
      if (fired_this_item_[r]) continue;
      const ExecutionRule& rule = rules_[r];
      bool triggered = false;
      switch (rule.trigger) {
        case ExecutionRule::Trigger::kObjectPerson:
          triggered = task == TaskKind::kObjectDetection &&
                      offset == zoo::LabelSpace::kObjectPerson;
          break;
        case ExecutionRule::Trigger::kObjectDog:
          triggered = task == TaskKind::kObjectDetection &&
                      offset == zoo::LabelSpace::kObjectDog;
          break;
        case ExecutionRule::Trigger::kFace:
          triggered = task == TaskKind::kFaceDetection;
          break;
        case ExecutionRule::Trigger::kAnyPoseKeypoint:
          triggered = task == TaskKind::kPoseEstimation;
          break;
        case ExecutionRule::Trigger::kWristKeypoint:
          triggered = task == TaskKind::kPoseEstimation &&
                      (offset == zoo::LabelSpace::kPoseLeftWrist ||
                       offset == zoo::LabelSpace::kPoseRightWrist);
          break;
        case ExecutionRule::Trigger::kIndoorPlace:
          triggered = task == TaskKind::kPlaceClassification &&
                      labels.IsIndoorScene(offset);
          break;
      }
      if (triggered) {
        fired_this_item_[r] = true;
        ++fire_counts_[r];
        task_weight_[static_cast<size_t>(rule.target_task)] *= rule.factor;
      }
    }
  }
}

}  // namespace ams::sched
