#include "sched/cost_q_greedy.h"

#include <algorithm>

#include "util/check.h"

namespace ams::sched {

CostQGreedyPolicy::CostQGreedyPolicy(core::ModelValuePredictor* predictor)
    : predictor_(predictor) {
  AMS_CHECK(predictor != nullptr);
}

int CostQGreedyPolicy::NextModel(const core::LabelingState& state,
                                 double remaining_time) {
  const std::vector<double> q = predictor_->PredictValues(state.Features());
  int best = -1;
  double best_ratio = 0.0;
  for (int m = 0; m < ctx_.num_models(); ++m) {
    if (!Fits(ctx_, state, m, remaining_time)) continue;  // Alg. 1, line 3
    // Q mapped through the order-preserving positive profit transform; see
    // core::SchedulingProfit for why raw Q must not enter the ratio.
    const double ratio = core::SchedulingProfit(q[static_cast<size_t>(m)]) /
                         ctx_.model_zoo().model(m).time_s;
    if (best == -1 || ratio > best_ratio) {  // Alg. 1, line 4
      best = m;
      best_ratio = ratio;
    }
  }
  return best;
}

}  // namespace ams::sched
