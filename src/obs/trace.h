#ifndef AMS_OBS_TRACE_H_
#define AMS_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/clock.h"

namespace ams::obs {

/// Span taxonomy for the request lifecycle. Instants mark a decision point;
/// spans carry a duration. Every phase's four int args have fixed meanings
/// (see kPhaseArgNames in trace.cc and the README "Observability" section):
///
///   kEnqueue     instant  admission decision   a0=class a1=tenant a2=outcome
///   kQuotaReject instant  quota refusal        a0=class a1=tenant
///   kPlacement   instant  router pick          a0=shard a1=class
///   kQueueWait   span     enqueue -> pop       a0=class a1=tenant
///   kExec        span     pop -> completion    a0=class a1=deadline_missed
///   kTick        span     one stepper tick     a0=resident a1=completed
///                                              a2=arena_used_bytes
///   kForward     span     batched Q-forward    a0=rows a1=memo_hits
///                                              a2=simd_tier a3=int8
///   kMigrateOut  instant  StealBatch handoff   a0=from_shard a1=to_shard
///   kMigrateIn   instant  Requeue arrival      a0=from_shard a1=to_shard
///   kCoalescedForward span one cluster-coalesced forward round
///                                              a0=members a1=gathered_rows
///                                              a2=rows a3=shards
enum class Phase : std::uint8_t {
  kEnqueue = 0,
  kQuotaReject,
  kPlacement,
  kQueueWait,
  kExec,
  kTick,
  kForward,
  kMigrateOut,
  kMigrateIn,
  kCoalescedForward,
};
inline constexpr int kNumPhases = 10;

/// Stable lowercase name used in trace JSON and summaries.
const char* PhaseName(Phase phase);

/// One trace record. Plain data, fixed size, no owned storage — recording
/// one is a handful of stores into a preallocated ring slot, which is what
/// keeps the instrumented steady-state tick at zero heap allocations.
/// `id` is the request's trace id (0 for lane-scoped events like ticks);
/// `dur_s` == 0 marks an instant. Unused args stay 0.
struct TraceEvent {
  std::uint64_t id = 0;
  double ts_s = 0.0;
  double dur_s = 0.0;
  std::uint16_t shard = 0;
  std::uint16_t lane = 0;
  std::uint8_t phase = 0;
  std::int32_t a0 = 0;
  std::int32_t a1 = 0;
  std::int32_t a2 = 0;
  std::int32_t a3 = 0;
};

/// The lane index admission-side events (enqueue/placement/migration) are
/// recorded under; worker lanes use their worker index. Exported traces name
/// this lane "admission" instead of "worker 65535".
inline constexpr std::uint16_t kAdmissionLane = 0xFFFF;

/// The lane coalesced-forward round spans are recorded under (one span per
/// cluster round, stamped by whichever worker led the round). Exported
/// traces name this lane "coalescer".
inline constexpr std::uint16_t kCoalescerLane = 0xFFFE;

/// Bounded drop-oldest ring of TraceEvents. All slots are allocated at
/// construction; Record() claims a slot with one relaxed fetch_add and
/// overwrites whatever was there, so the hot path never allocates, never
/// locks, and never blocks on a slow reader — old events simply fall off.
///
/// Concurrency contract: multiple producers may Record() concurrently
/// (distinct fetch_add tickets write distinct slots). Each slot carries a
/// publish sequence (seqlock): a writer marks the slot in-progress, stores
/// the payload as relaxed atomic words, then publishes with a release store
/// of the slot's ticket. Snapshot() validates the sequence before and after
/// copying and silently drops slots whose writer is still in flight (or that
/// were lapped mid-copy), so a concurrent wrap can lose a few events from
/// the snapshot but can never export a torn one. Deterministic tests drive
/// a single thread and see exact contents.
class TraceBuffer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  TraceBuffer(std::size_t capacity, std::uint16_t shard, std::uint16_t lane);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Stamps shard/lane and stores the event into the next ring slot.
  void Record(TraceEvent event);

  std::uint16_t shard() const { return shard_; }
  std::uint16_t lane() const { return lane_; }
  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (including since-overwritten ones).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to drop-oldest overwrite.
  std::uint64_t dropped() const;

  /// Copies the retained events out, oldest first. Safe against concurrent
  /// Record(); in-flight or lapped slots are dropped, never emitted torn.
  std::vector<TraceEvent> Snapshot() const;

 private:
  static constexpr std::size_t kPayloadWords =
      (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

  /// One ring slot. `seq` holds 2*ticket+1 while the writer owns the slot
  /// and 2*ticket+2 once published, so a reader expecting ticket T accepts
  /// the payload only when it observes exactly 2*T+2 on both sides of the
  /// copy. The payload lives in relaxed atomic words (not a TraceEvent) so
  /// concurrent overwrite is well-defined and TSan-clean by construction.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kPayloadWords] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_;
  std::size_t mask_;
  const std::uint16_t shard_;
  const std::uint16_t lane_;
  std::atomic<std::uint64_t> next_{0};
};

/// Sampling decision + identity that rides on a request through the queue
/// and across shard migrations (a field on serve::QueuedRequest). `id` is
/// cluster-unique: (admitting shard + 1) << 40 | admission sequence.
struct TraceContext {
  std::uint64_t id = 0;
  bool sampled = false;
};

/// Owner of the per-(shard, lane) TraceBuffers and the runtime on/off
/// switch. One Tracer serves a whole process — a sharded router hands the
/// same Tracer to every shard runtime; lanes are keyed by (shard, lane).
///
/// Cost model: when disabled (or when a request was not sampled) every
/// instrumentation site reduces to one relaxed atomic load and a branch.
/// Lanes register once at startup under a mutex and hand back a stable
/// TraceBuffer* that hot paths cache; recording is lock-free thereafter.
class Tracer {
 public:
  struct Options {
    /// Per-lane ring capacity (events), rounded up to a power of two.
    std::size_t lane_capacity = 1 << 14;
    /// Record every Nth request's lifecycle spans (1 = all). Lane-scoped
    /// events (kTick/kForward) are not sampled — they are already bounded
    /// at one per tick.
    std::uint64_t sample_every = 1;
    /// Start enabled? The toggle can flip at runtime either way.
    bool enabled = true;
  };

  Tracer();
  explicit Tracer(Options options);

  /// The single branch every instrumentation site takes first.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// True when request `sequence` should get lifecycle spans.
  bool ShouldSample(std::uint64_t sequence) const {
    return sample_every_ <= 1 || sequence % sample_every_ == 0;
  }

  /// The lane's buffer, created on first use. Not for hot paths — callers
  /// cache the pointer (stable for the Tracer's lifetime).
  TraceBuffer* EnsureLane(std::uint16_t shard, std::uint16_t lane);

  /// All retained events across every lane, merged and sorted by timestamp
  /// (stable, so equal-timestamp events keep lane order).
  std::vector<TraceEvent> Collect() const;

  /// Total events lost to drop-oldest overwrite across all lanes.
  std::uint64_t TotalDropped() const;

 private:
  const std::size_t lane_capacity_;
  const std::uint64_t sample_every_;
  std::atomic<bool> enabled_;
  mutable std::mutex lanes_mu_;
  /// deque gives pointer stability; the map indexes it by (shard, lane).
  std::deque<TraceBuffer> lanes_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, TraceBuffer*> by_key_;
};

/// RAII span: stamps the start on construction, records one TraceEvent with
/// the measured duration on destruction (or on Close()). Does nothing — not
/// even a clock read — when the tracer is off or `lane` is null, so it can
/// sit unconditionally in hot loops.
class ScopedSpan {
 public:
  ScopedSpan(const Tracer* tracer, TraceBuffer* lane, const util::Clock* clock,
             Phase phase, std::uint64_t id = 0)
      : lane_(tracer != nullptr && tracer->enabled() ? lane : nullptr),
        clock_(clock),
        phase_(phase),
        id_(id) {
    if (lane_ != nullptr) start_s_ = clock_->NowSeconds();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { Close(); }

  bool active() const { return lane_ != nullptr; }
  double start_s() const { return start_s_; }

  void set_args(std::int32_t a0, std::int32_t a1 = 0, std::int32_t a2 = 0,
                std::int32_t a3 = 0) {
    a0_ = a0;
    a1_ = a1;
    a2_ = a2;
    a3_ = a3;
  }

  /// Records the span now (idempotent); returns its duration in seconds
  /// (0 when inactive).
  double Close();

 private:
  TraceBuffer* lane_;
  const util::Clock* clock_;
  const Phase phase_;
  const std::uint64_t id_;
  double start_s_ = 0.0;
  std::int32_t a0_ = 0, a1_ = 0, a2_ = 0, a3_ = 0;
};

/// Export seam: turns collected events into bytes. Implementations must not
/// assume events are request-complete — a ring that wrapped has holes.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const std::vector<TraceEvent>& events,
                     std::ostream& out) const = 0;
};

/// Chrome trace-event JSON ({"traceEvents": [...]}), loadable in Perfetto
/// and chrome://tracing. Spans become complete ("ph":"X") events, instants
/// become thread-scoped instants ("ph":"i"); pid = shard, tid = lane, with
/// process/thread-name metadata so shards and workers read naturally.
/// Timestamps are microseconds on the recording clock's own axis.
class ChromeTraceSink : public TraceSink {
 public:
  void Write(const std::vector<TraceEvent>& events,
             std::ostream& out) const override;
};

}  // namespace ams::obs

#endif  // AMS_OBS_TRACE_H_
