#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "util/check.h"

namespace ams::obs {

namespace {

constexpr std::array<const char*, kNumPhases> kPhaseNames = {
    "enqueue",     "quota_reject", "placement", "queue_wait", "exec",
    "tick",        "forward",      "migrate_out", "migrate_in",
    "coalesced_forward",
};

/// Per-phase names for args a0..a3 in exported JSON. nullptr = arg unused.
constexpr std::array<std::array<const char*, 4>, kNumPhases> kPhaseArgNames = {{
    {"class", "tenant", "outcome", nullptr},        // enqueue
    {"class", "tenant", nullptr, nullptr},          // quota_reject
    {"shard", "class", nullptr, nullptr},           // placement
    {"class", "tenant", nullptr, nullptr},          // queue_wait
    {"class", "deadline_missed", nullptr, nullptr}, // exec
    {"resident", "completed", "arena_used_bytes", nullptr},  // tick
    {"rows", "memo_hits", "simd_tier", "int8"},     // forward
    {"from_shard", "to_shard", nullptr, nullptr},   // migrate_out
    {"from_shard", "to_shard", nullptr, nullptr},   // migrate_in
    {"members", "gathered_rows", "rows", "shards"}, // coalesced_forward
}};

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* PhaseName(Phase phase) {
  const auto i = static_cast<std::size_t>(phase);
  AMS_CHECK(i < kPhaseNames.size(), "phase out of range");
  return kPhaseNames[i];
}

static_assert(std::is_trivially_copyable<TraceEvent>::value,
              "TraceEvent is memcpy'd through the ring's payload words");

TraceBuffer::TraceBuffer(std::size_t capacity, std::uint16_t shard,
                         std::uint16_t lane)
    : slots_(new Slot[RoundUpPow2(capacity)]),
      capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      shard_(shard),
      lane_(lane) {}

void TraceBuffer::Record(TraceEvent event) {
  event.shard = shard_;
  event.lane = lane_;
  std::uint64_t words[kPayloadWords] = {0};
  std::memcpy(words, &event, sizeof(event));
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(ticket) & mask_];
  // Seqlock writer: mark the slot in-progress before touching the payload
  // (the release fence keeps the odd mark visible to any reader that sees a
  // payload word from this write), then publish with a release store so a
  // reader that accepts the even sequence also sees the full payload.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t n = recorded();
  return n > capacity_ ? n - capacity_ : 0;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t first = n > capacity_ ? n - capacity_ : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t ticket = first; ticket < n; ++ticket) {
    const Slot& slot = slots_[static_cast<std::size_t>(ticket) & mask_];
    const std::uint64_t want = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    std::uint64_t words[kPayloadWords];
    for (std::size_t i = 0; i < kPayloadWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    // Re-validate after the copy (the acquire fence orders the payload loads
    // before the re-read): any concurrent writer that touched a copied word
    // has already made its odd mark visible, so a torn copy is rejected.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    TraceEvent event;
    std::memcpy(&event, words, sizeof(event));
    out.push_back(event);
  }
  return out;
}

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(Options options)
    : lane_capacity_(options.lane_capacity),
      sample_every_(options.sample_every),
      enabled_(options.enabled) {}

TraceBuffer* Tracer::EnsureLane(std::uint16_t shard, std::uint16_t lane) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  const auto key = std::make_pair(shard, lane);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  lanes_.emplace_back(lane_capacity_, shard, lane);
  TraceBuffer* buffer = &lanes_.back();
  by_key_.emplace(key, buffer);
  return buffer;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    for (const TraceBuffer& lane : lanes_) {
      const std::vector<TraceEvent> events = lane.Snapshot();
      all.insert(all.end(), events.begin(), events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_s < b.ts_s;
                   });
  return all;
}

std::uint64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::uint64_t dropped = 0;
  for (const TraceBuffer& lane : lanes_) dropped += lane.dropped();
  return dropped;
}

double ScopedSpan::Close() {
  if (lane_ == nullptr) return 0.0;
  const double dur_s = clock_->NowSeconds() - start_s_;
  TraceEvent event;
  event.id = id_;
  event.ts_s = start_s_;
  event.dur_s = dur_s;
  event.phase = static_cast<std::uint8_t>(phase_);
  event.a0 = a0_;
  event.a1 = a1_;
  event.a2 = a2_;
  event.a3 = a3_;
  lane_->Record(event);
  lane_ = nullptr;
  return dur_s;
}

namespace {

/// Microseconds with sub-µs fraction kept: Perfetto accepts fractional ts.
double Micros(double seconds) { return seconds * 1e6; }

void WriteEventJson(const TraceEvent& event, std::ostream& out) {
  const auto phase_index = static_cast<std::size_t>(event.phase);
  const char* name = phase_index < kPhaseNames.size()
                         ? kPhaseNames[phase_index]
                         : "unknown";
  out << "{\"name\": \"" << name << "\", \"cat\": \"ams\", ";
  if (event.dur_s > 0.0) {
    out << "\"ph\": \"X\", \"dur\": " << Micros(event.dur_s) << ", ";
  } else {
    out << "\"ph\": \"i\", \"s\": \"t\", ";
  }
  out << "\"ts\": " << Micros(event.ts_s) << ", \"pid\": " << event.shard
      << ", \"tid\": " << event.lane << ", \"args\": {";
  bool first = true;
  if (event.id != 0) {
    out << "\"trace_id\": " << event.id;
    first = false;
  }
  const std::array<const char*, 4> arg_names =
      phase_index < kPhaseArgNames.size()
          ? kPhaseArgNames[phase_index]
          : std::array<const char*, 4>{nullptr, nullptr, nullptr, nullptr};
  const std::array<std::int32_t, 4> args = {event.a0, event.a1, event.a2,
                                            event.a3};
  for (std::size_t i = 0; i < arg_names.size(); ++i) {
    if (arg_names[i] == nullptr) continue;
    if (!first) out << ", ";
    out << "\"" << arg_names[i] << "\": " << args[i];
    first = false;
  }
  out << "}}";
}

void WriteNameMetadata(const char* kind, std::uint16_t pid, std::uint16_t tid,
                       const std::string& name, bool is_process,
                       std::ostream& out) {
  out << "{\"name\": \"" << kind << "\", \"ph\": \"M\", \"pid\": " << pid;
  if (!is_process) out << ", \"tid\": " << tid;
  out << ", \"args\": {\"name\": \"" << name << "\"}}";
}

}  // namespace

void ChromeTraceSink::Write(const std::vector<TraceEvent>& events,
                            std::ostream& out) const {
  // Default ostream precision (6 significant digits) would round µs
  // timestamps on long runs down to ~10µs granularity; 15 digits keeps the
  // double exact.
  const std::streamsize saved_precision = out.precision(15);
  out << "{\"traceEvents\": [";
  bool first = true;
  // Name the shards and lanes once each so Perfetto's track labels read as
  // "shard N" / "worker K" / "admission" instead of raw pids.
  std::map<std::uint16_t, std::map<std::uint16_t, bool>> seen;
  for (const TraceEvent& event : events) {
    seen[event.shard][event.lane] = true;
  }
  for (const auto& [shard, lanes] : seen) {
    if (!first) out << ",\n";
    first = false;
    WriteNameMetadata("process_name", shard, 0,
                      "shard " + std::to_string(shard), /*is_process=*/true,
                      out);
    for (const auto& [lane, unused] : lanes) {
      (void)unused;
      out << ",\n";
      const std::string lane_name =
          lane == kAdmissionLane
              ? "admission"
              : lane == kCoalescerLane ? "coalescer"
                                       : "worker " + std::to_string(lane);
      WriteNameMetadata("thread_name", shard, lane, lane_name,
                        /*is_process=*/false, out);
    }
  }
  for (const TraceEvent& event : events) {
    if (!first) out << ",\n";
    first = false;
    WriteEventJson(event, out);
  }
  out << "]}\n";
  out.precision(saved_precision);
}

}  // namespace ams::obs
