#ifndef AMS_ZOO_MODEL_SPEC_H_
#define AMS_ZOO_MODEL_SPEC_H_

#include <string>

#include "zoo/task.h"

namespace ams::zoo {

/// Capacity/cost tier of a model within its task (the zoo carries three
/// tiers per task, mirroring e.g. the small/medium/large variants of a
/// detector family).
enum class ModelTier : int {
  kSmall = 0,
  kMedium = 1,
  kLarge = 2,
};

inline constexpr int kNumTiers = 3;

/// Static description of one deployed model: what it labels and what it
/// costs. This is all the scheduler is allowed to know a priori.
struct ModelSpec {
  int id = -1;              // 0..29, dense
  std::string name;
  TaskKind task = TaskKind::kObjectDetection;
  ModelTier tier = ModelTier::kSmall;
  double time_s = 0.0;      // mean execution time per item, seconds
  double mem_mb = 0.0;      // peak GPU memory, megabytes
  /// Base recognition quality in (0,1); higher tiers are more accurate.
  double accuracy = 0.0;
  /// User-defined priority θ_m from Eq. (3); default 1 (§IV-A).
  double theta = 1.0;
};

}  // namespace ams::zoo

#endif  // AMS_ZOO_MODEL_SPEC_H_
