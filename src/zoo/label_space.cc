#include "zoo/label_space.h"

#include <unordered_map>

#include "util/check.h"

namespace ams::zoo {

const char* TaskName(TaskKind task) {
  switch (task) {
    case TaskKind::kObjectDetection:
      return "Object Detection";
    case TaskKind::kPlaceClassification:
      return "Place Classification";
    case TaskKind::kFaceDetection:
      return "Face Detection";
    case TaskKind::kFaceLandmark:
      return "Face Landmark Localization";
    case TaskKind::kPoseEstimation:
      return "Pose Estimation";
    case TaskKind::kEmotionClassification:
      return "Emotion Classification";
    case TaskKind::kGenderClassification:
      return "Gender Classification";
    case TaskKind::kActionClassification:
      return "Action Classification";
    case TaskKind::kHandLandmark:
      return "Hand Landmark Localization";
    case TaskKind::kDogClassification:
      return "Dog Classification";
  }
  AMS_CHECK(false, "invalid task");
  return "";
}

namespace {

// A few well-known category names per task make rules, examples and bench
// output readable; the remaining labels get generated names. Offset 0 of
// object detection is always "person" and offset 16 is "dog" (see the
// kObjectPerson / kObjectDog constants).
const char* kObjectNames[] = {
    "person",  "bicycle", "car",    "motorbike", "bus",     "train",
    "truck",   "boat",    "bench",  "bird",      "cat",     "horse",
    "sheep",   "cow",     "bottle", "elephant",  "dog",     "chair",
    "sofa",    "cup",     "fork",   "knife",     "spoon",   "bowl",
    "banana",  "apple",   "pizza",  "cake",      "bed",     "table",
    "toilet",  "tv_monitor", "laptop", "mouse",  "keyboard", "phone",
    "book",    "clock",   "vase",   "scissors"};

// First 12 scene names are indoor, next 8 outdoor; the generated remainder
// alternates deterministically (even offsets indoor).
const char* kSceneNames[] = {"pub",      "beer_hall", "lobby",   "bathroom",
                             "mall",     "kitchen",   "office",  "bedroom",
                             "library",  "gym",       "bar",     "classroom",
                             "mountain", "beach",     "forest",  "street",
                             "lawn",     "harbor",    "desert",  "undersea"};
constexpr int kNumNamedScenes = 20;
constexpr int kNumNamedIndoorScenes = 12;

const char* kPoseKeypointNames[] = {
    "nose",           "left_eye",      "right_eye",  "left_ear",
    "right_ear",      "left_shoulder", "right_shoulder", "left_elbow",
    "right_elbow",    "left_wrist",    "right_wrist",    "left_hip",
    "right_hip",      "left_knee",     "right_knee",     "left_ankle",
    "right_ankle"};

const char* kEmotionNames[] = {"angry", "disgust", "fear",   "happy",
                               "sad",   "surprise", "neutral"};

const char* kActionNames[] = {"drinking_beer", "riding_bike", "making_up",
                              "falling_down",  "playing_soccer", "cooking",
                              "reading_book",  "walking_dog",  "swimming",
                              "dancing"};

const char* kDogBreedNames[] = {"akita",    "husky",  "poodle", "labrador",
                                "beagle",   "collie", "boxer",  "dalmatian"};

std::string PaddedIndex(int i) {
  std::string s = std::to_string(i);
  while (s.size() < 3) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

LabelSpace LabelSpace::CreateDefault() {
  LabelSpace space;
  int next = 0;
  for (int t = 0; t < kNumTasks; ++t) {
    TaskInfo info;
    info.kind = static_cast<TaskKind>(t);
    info.name = TaskName(info.kind);
    info.first_label = next;
    info.num_labels = kTaskLabelCounts[t];
    next += info.num_labels;
    space.tasks_.push_back(std::move(info));
  }
  space.total_labels_ = next;
  AMS_CHECK(space.total_labels_ == kTotalLabels);

  space.label_names_.resize(static_cast<size_t>(next));
  space.label_task_.resize(static_cast<size_t>(next));
  for (const TaskInfo& info : space.tasks_) {
    for (int off = 0; off < info.num_labels; ++off) {
      const int id = info.first_label + off;
      space.label_task_[static_cast<size_t>(id)] = static_cast<int>(info.kind);
      std::string name;
      switch (info.kind) {
        case TaskKind::kObjectDetection:
          name = off < static_cast<int>(std::size(kObjectNames))
                     ? std::string("object:") + kObjectNames[off]
                     : "object:category_" + PaddedIndex(off);
          break;
        case TaskKind::kPlaceClassification:
          name = off < kNumNamedScenes
                     ? std::string("place:") + kSceneNames[off]
                     : "place:scene_" + PaddedIndex(off);
          break;
        case TaskKind::kFaceDetection:
          name = "face:face";
          break;
        case TaskKind::kFaceLandmark:
          name = "face_kp:kp_" + PaddedIndex(off);
          break;
        case TaskKind::kPoseEstimation:
          name = std::string("pose:") + kPoseKeypointNames[off];
          break;
        case TaskKind::kEmotionClassification:
          name = std::string("emotion:") + kEmotionNames[off];
          break;
        case TaskKind::kGenderClassification:
          name = off == 0 ? "gender:male" : "gender:female";
          break;
        case TaskKind::kActionClassification:
          name = off < static_cast<int>(std::size(kActionNames))
                     ? std::string("action:") + kActionNames[off]
                     : "action:act_" + PaddedIndex(off);
          break;
        case TaskKind::kHandLandmark:
          name = (off < 21 ? "hand_kp:left_" : "hand_kp:right_") +
                 PaddedIndex(off % 21);
          break;
        case TaskKind::kDogClassification:
          name = off < static_cast<int>(std::size(kDogBreedNames))
                     ? std::string("dog:") + kDogBreedNames[off]
                     : "dog:breed_" + PaddedIndex(off);
          break;
      }
      space.label_names_[static_cast<size_t>(id)] = std::move(name);
    }
  }

  const int num_scenes = kTaskLabelCounts[static_cast<int>(
      TaskKind::kPlaceClassification)];
  space.scene_indoor_.resize(static_cast<size_t>(num_scenes));
  for (int off = 0; off < num_scenes; ++off) {
    if (off < kNumNamedScenes) {
      space.scene_indoor_[static_cast<size_t>(off)] =
          off < kNumNamedIndoorScenes;
    } else {
      space.scene_indoor_[static_cast<size_t>(off)] = (off % 2) == 0;
    }
  }
  return space;
}

const TaskInfo& LabelSpace::task(TaskKind kind) const {
  return tasks_[static_cast<size_t>(kind)];
}

int LabelSpace::LabelId(TaskKind task_kind, int offset) const {
  const TaskInfo& info = task(task_kind);
  AMS_DCHECK(offset >= 0 && offset < info.num_labels, "label offset range");
  return info.first_label + offset;
}

TaskKind LabelSpace::TaskOfLabel(int label_id) const {
  AMS_DCHECK(label_id >= 0 && label_id < total_labels_);
  return static_cast<TaskKind>(label_task_[static_cast<size_t>(label_id)]);
}

int LabelSpace::OffsetInTask(int label_id) const {
  return label_id - task(TaskOfLabel(label_id)).first_label;
}

const std::string& LabelSpace::LabelName(int label_id) const {
  AMS_CHECK(label_id >= 0 && label_id < total_labels_);
  return label_names_[static_cast<size_t>(label_id)];
}

int LabelSpace::FindLabel(const std::string& name) const {
  for (int i = 0; i < total_labels_; ++i) {
    if (label_names_[static_cast<size_t>(i)] == name) return i;
  }
  return -1;
}

bool LabelSpace::IsIndoorScene(int scene_offset) const {
  AMS_CHECK(scene_offset >= 0 &&
            scene_offset < static_cast<int>(scene_indoor_.size()));
  return scene_indoor_[static_cast<size_t>(scene_offset)];
}

}  // namespace ams::zoo
