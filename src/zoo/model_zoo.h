#ifndef AMS_ZOO_MODEL_ZOO_H_
#define AMS_ZOO_MODEL_ZOO_H_

#include <vector>

#include "zoo/label_space.h"
#include "zoo/latent_scene.h"
#include "zoo/model_spec.h"

namespace ams::zoo {

/// One emitted label with the model's confidence in it.
struct LabelOutput {
  int label_id;
  double confidence;
};

/// Confidence threshold above which a label counts as "valuable"
/// (high-confidence) throughout the repo.
inline constexpr double kValuableConfidence = 0.5;

/// The deployed collection of 30 models (3 tiers x 10 tasks, Table I).
///
/// Execute() is a pure function of (scene, model): repeated calls return the
/// identical output, which is what lets the Oracle precompute ground truth
/// exactly as the paper does (§VI-A).
class ModelZoo {
 public:
  /// Builds the default 30-model zoo calibrated so that executing all models
  /// costs ~5.17 s per item (the paper's "no policy" 5.16 s, §II), with
  /// per-model times in 50-400 ms and memory in 500-8000 MB (Table III).
  static ModelZoo CreateDefault();

  const LabelSpace& labels() const { return labels_; }
  const std::vector<ModelSpec>& models() const { return models_; }
  int num_models() const { return static_cast<int>(models_.size()); }
  const ModelSpec& model(int id) const;

  /// Model ids belonging to `task`, ordered small -> large tier.
  std::vector<int> ModelsForTask(TaskKind task) const;

  /// Simulated inference: labels the scene with (label, confidence) pairs.
  /// May return an empty vector (the model "found nothing") or only
  /// low-confidence outputs — both are the waste the paper's Fig. 1 shows.
  std::vector<LabelOutput> Execute(int model_id, const LatentScene& scene) const;

  /// Sum of all model mean times (the "no policy" per-item cost).
  double TotalTimeSeconds() const;

  /// Sets the priority parameter θ_m used by the reward (Eq. 3).
  void SetTheta(int model_id, double theta);

  /// Draws a jittered execution time for one run of `model_id` (lognormal
  /// around the spec's mean, ±~10%). Deterministic in (scene seed, model).
  double SampleExecutionTime(int model_id, const LatentScene& scene) const;

 private:
  ModelZoo() = default;

  LabelSpace labels_;
  std::vector<ModelSpec> models_;
};

}  // namespace ams::zoo

#endif  // AMS_ZOO_MODEL_ZOO_H_
