#include "zoo/model_zoo.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace ams::zoo {

namespace {

// Per-task mean execution times in milliseconds for the (small, medium,
// large) tiers. Chosen so every model lies in the paper's 50-400 ms band
// (Table III) and the 30-model total is ~5.17 s, matching the "no policy"
// cost of §II.
constexpr double kTimeMs[kNumTasks][kNumTiers] = {
    {80, 160, 320},   // object detection
    {65, 120, 205},   // place classification
    {65, 115, 200},   // face detection
    {75, 140, 250},   // face landmark localization
    {160, 280, 400},  // pose estimation
    {65, 105, 170},   // emotion classification
    {60, 95, 150},    // gender classification
    {150, 270, 400},  // action classification
    {110, 200, 350},  // hand landmark localization
    {70, 130, 215},   // dog classification
};

// Peak GPU memory in MB per task/tier, within Table III's 500-8000 MB band.
constexpr double kMemMb[kNumTasks][kNumTiers] = {
    {900, 1800, 3500},   // object detection
    {600, 1100, 2000},   // place classification
    {500, 900, 1600},    // face detection
    {700, 1300, 2400},   // face landmark localization
    {2500, 4500, 8000},  // pose estimation
    {500, 800, 1400},    // emotion classification
    {500, 750, 1200},    // gender classification
    {2000, 3600, 6500},  // action classification
    {1200, 2200, 4000},  // hand landmark localization
    {600, 1000, 1900},   // dog classification
};

// Base recognition quality per tier. With the confidence model below, this
// yields roughly P(valuable | aspect present) of ~0.25 / ~0.55 / ~0.9 for
// small / medium / large models — small models frequently emit only
// low-confidence output (the grey boxes of Fig. 1).
constexpr double kTierAccuracy[kNumTiers] = {0.55, 0.72, 0.90};

const char* kTierSuffix[kNumTiers] = {"s", "m", "l"};

const char* kTaskShortName[kNumTasks] = {
    "object_det", "place_cls", "face_det", "face_lm",  "pose_est",
    "emotion_cls", "gender_cls", "action_cls", "hand_lm", "dog_cls"};

// Deterministic per-(label, model) specialisation bias in [-0.09, 0.09]:
// real model families are systematically better at some categories than
// others (architecture/training-data bias), so which tier is best for a
// given label is a stable property of the zoo — content-predictable, hence
// learnable by the DRL agent — rather than per-image noise.
double TierLabelBias(int label_id, int model_id) {
  uint64_t h = util::HashCombine(0xB1A5u + label_id, model_id);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
  return (u - 0.5) * 0.18;
}

// Confidence of a detection given model accuracy and aspect visibility:
// conf = acc * (0.26 + 0.50 * visibility) + bias(label, model) + N(0, 0.06),
// clamped to [0.02, 0.99]. Calibrated so P(valuable | aspect present) is
// roughly 0.05 / 0.4 / 0.8 for the small / medium / large tiers at typical
// visibility, which reproduces the paper's "optimal policy costs ~22% of no
// policy" (§II).
double Confidence(double accuracy, double visibility, int label_id,
                  int model_id, util::Rng* rng) {
  double c = accuracy * (0.26 + 0.50 * visibility) +
             TierLabelBias(label_id, model_id) + rng->Normal(0.0, 0.06);
  return std::clamp(c, 0.02, 0.99);
}

// A spurious low-confidence output (Fig. 1 "person 0.43"); never valuable.
double FalsePositiveConfidence(util::Rng* rng) {
  return std::clamp(rng->Uniform(0.05, 0.45), 0.02, 0.45);
}

}  // namespace

ModelZoo ModelZoo::CreateDefault() {
  ModelZoo zoo;
  zoo.labels_ = LabelSpace::CreateDefault();
  int id = 0;
  for (int t = 0; t < kNumTasks; ++t) {
    for (int tier = 0; tier < kNumTiers; ++tier) {
      ModelSpec spec;
      spec.id = id++;
      spec.task = static_cast<TaskKind>(t);
      spec.tier = static_cast<ModelTier>(tier);
      spec.name = std::string(kTaskShortName[t]) + "_" + kTierSuffix[tier];
      spec.time_s = kTimeMs[t][tier] / 1000.0;
      spec.mem_mb = kMemMb[t][tier];
      spec.accuracy = kTierAccuracy[tier];
      spec.theta = 1.0;
      zoo.models_.push_back(std::move(spec));
    }
  }
  return zoo;
}

const ModelSpec& ModelZoo::model(int id) const {
  AMS_CHECK(id >= 0 && id < num_models(), "model id out of range");
  return models_[static_cast<size_t>(id)];
}

std::vector<int> ModelZoo::ModelsForTask(TaskKind task) const {
  std::vector<int> out;
  for (const auto& spec : models_) {
    if (spec.task == task) out.push_back(spec.id);
  }
  return out;
}

double ModelZoo::TotalTimeSeconds() const {
  double total = 0.0;
  for (const auto& spec : models_) total += spec.time_s;
  return total;
}

void ModelZoo::SetTheta(int model_id, double theta) {
  AMS_CHECK(theta > 0.0, "theta must be positive");
  models_[static_cast<size_t>(model_id)].theta = theta;
}

double ModelZoo::SampleExecutionTime(int model_id, const LatentScene& scene) const {
  const ModelSpec& spec = model(model_id);
  util::Rng rng(util::HashCombine(scene.item_seed, 0xD1CEu + model_id));
  // Lognormal with sigma 0.10 around the mean: ~±10% per-item jitter.
  const double sigma = 0.10;
  const double mu = std::log(spec.time_s) - 0.5 * sigma * sigma;
  return rng.LogNormal(mu, sigma);
}

std::vector<LabelOutput> ModelZoo::Execute(int model_id,
                                           const LatentScene& scene) const {
  const ModelSpec& spec = model(model_id);
  // Independent deterministic noise stream per (item, model).
  util::Rng rng(util::HashCombine(scene.item_seed, 0xE0E0u + model_id));
  std::vector<LabelOutput> out;
  const double acc = spec.accuracy;

  switch (spec.task) {
    case TaskKind::kObjectDetection: {
      for (size_t i = 0; i < scene.objects.size(); ++i) {
        const double vis = scene.object_visibility[i];
        // Small models miss hard objects entirely rather than flagging them.
        if (rng.Bernoulli(0.25 * (1.0 - acc) * (1.0 - vis))) continue;
        const int label =
            labels_.LabelId(TaskKind::kObjectDetection, scene.objects[i]);
        out.push_back({label, Confidence(acc, vis, label, model_id, &rng)});
      }
      // Occasional spurious low-confidence detection.
      if (rng.Bernoulli(0.15)) {
        const int fake = rng.UniformInt(
            0, kTaskLabelCounts[static_cast<int>(TaskKind::kObjectDetection)] - 1);
        out.push_back({labels_.LabelId(TaskKind::kObjectDetection, fake),
                       FalsePositiveConfidence(&rng)});
      }
      break;
    }
    case TaskKind::kPlaceClassification: {
      const int label =
          labels_.LabelId(TaskKind::kPlaceClassification, scene.scene_id);
      out.push_back(
          {label, Confidence(acc, scene.scene_clarity, label, model_id, &rng)});
      // A runner-up guess with low confidence.
      if (rng.Bernoulli(0.4)) {
        const int second = rng.UniformInt(
            0,
            kTaskLabelCounts[static_cast<int>(TaskKind::kPlaceClassification)] -
                1);
        if (second != scene.scene_id) {
          out.push_back({labels_.LabelId(TaskKind::kPlaceClassification, second),
                         FalsePositiveConfidence(&rng)});
        }
      }
      break;
    }
    case TaskKind::kFaceDetection: {
      double best_quality = 0.0;
      for (const auto& p : scene.persons) {
        if (p.face_visible) best_quality = std::max(best_quality, p.face_quality);
      }
      if (best_quality > 0.0) {
        const int label = labels_.LabelId(TaskKind::kFaceDetection, 0);
        out.push_back(
            {label, Confidence(acc, best_quality, label, model_id, &rng)});
      } else if (scene.has_person() && rng.Bernoulli(0.1)) {
        out.push_back({labels_.LabelId(TaskKind::kFaceDetection, 0),
                       FalsePositiveConfidence(&rng)});
      }
      break;
    }
    case TaskKind::kFaceLandmark: {
      double best_quality = 0.0;
      for (const auto& p : scene.persons) {
        if (p.face_visible) best_quality = std::max(best_quality, p.face_quality);
      }
      if (best_quality > 0.0) {
        // Number of localizable keypoints grows with face quality and tier.
        const int max_kp =
            kTaskLabelCounts[static_cast<int>(TaskKind::kFaceLandmark)];
        const int num_kp = static_cast<int>(
            max_kp * std::clamp(best_quality * (0.55 + 0.45 * acc), 0.0, 1.0));
        for (int k = 0; k < num_kp; ++k) {
          const int label = labels_.LabelId(TaskKind::kFaceLandmark, k);
          out.push_back(
              {label, Confidence(acc, best_quality, label, model_id, &rng)});
        }
      }
      break;
    }
    case TaskKind::kPoseEstimation: {
      double best_vis = 0.0;
      for (const auto& p : scene.persons) {
        best_vis = std::max(best_vis, p.pose_visibility);
      }
      if (best_vis > 0.05) {
        const int max_kp =
            kTaskLabelCounts[static_cast<int>(TaskKind::kPoseEstimation)];
        const int num_kp = static_cast<int>(
            max_kp * std::clamp(best_vis * (0.6 + 0.4 * acc), 0.0, 1.0));
        for (int k = 0; k < num_kp; ++k) {
          const int label = labels_.LabelId(TaskKind::kPoseEstimation, k);
          out.push_back(
              {label, Confidence(acc, best_vis, label, model_id, &rng)});
        }
      }
      break;
    }
    case TaskKind::kEmotionClassification: {
      for (const auto& p : scene.persons) {
        if (!p.face_visible) continue;
        const int label =
            labels_.LabelId(TaskKind::kEmotionClassification, p.emotion);
        out.push_back(
            {label, Confidence(acc, p.face_quality, label, model_id, &rng)});
        break;  // classify the most prominent face only
      }
      break;
    }
    case TaskKind::kGenderClassification: {
      for (const auto& p : scene.persons) {
        if (!p.face_visible) continue;
        const int label =
            labels_.LabelId(TaskKind::kGenderClassification, p.gender);
        out.push_back(
            {label, Confidence(acc, p.face_quality, label, model_id, &rng)});
        break;
      }
      break;
    }
    case TaskKind::kActionClassification: {
      if (scene.action_id >= 0 && scene.has_person()) {
        const int label =
            labels_.LabelId(TaskKind::kActionClassification, scene.action_id);
        out.push_back({label, Confidence(acc, scene.action_clarity, label,
                                         model_id, &rng)});
      } else if (rng.Bernoulli(0.1)) {
        const int fake = rng.UniformInt(
            0,
            kTaskLabelCounts[static_cast<int>(TaskKind::kActionClassification)] -
                1);
        out.push_back({labels_.LabelId(TaskKind::kActionClassification, fake),
                       FalsePositiveConfidence(&rng)});
      }
      break;
    }
    case TaskKind::kHandLandmark: {
      double best = 0.0;
      for (const auto& p : scene.persons) {
        if (p.hands_visible) best = std::max(best, p.pose_visibility);
      }
      if (best > 0.05) {
        const int max_kp =
            kTaskLabelCounts[static_cast<int>(TaskKind::kHandLandmark)];
        const int num_kp = static_cast<int>(
            max_kp * std::clamp(best * (0.5 + 0.5 * acc), 0.0, 1.0));
        for (int k = 0; k < num_kp; ++k) {
          const int label = labels_.LabelId(TaskKind::kHandLandmark, k);
          out.push_back({label, Confidence(acc, best, label, model_id, &rng)});
        }
      }
      break;
    }
    case TaskKind::kDogClassification: {
      if (scene.has_dog) {
        const int label =
            labels_.LabelId(TaskKind::kDogClassification, scene.dog_breed);
        out.push_back({label, Confidence(acc, scene.dog_visibility, label,
                                         model_id, &rng)});
      }
      break;
    }
  }
  return out;
}

}  // namespace ams::zoo
