#ifndef AMS_ZOO_TASK_H_
#define AMS_ZOO_TASK_H_

namespace ams::zoo {

/// The ten visual-analysis tasks of the paper's Table I.
enum class TaskKind : int {
  kObjectDetection = 0,        // 80 labels (COCO categories)
  kPlaceClassification = 1,    // 365 labels (Places365 categories)
  kFaceDetection = 2,          // 1 label
  kFaceLandmark = 3,           // 70 labels (face keypoints)
  kPoseEstimation = 4,         // 17 labels (body keypoints)
  kEmotionClassification = 5,  // 7 labels
  kGenderClassification = 6,   // 2 labels
  kActionClassification = 7,   // 400 labels (Kinetics-style actions)
  kHandLandmark = 8,           // 42 labels (hand keypoints, 21 per hand)
  kDogClassification = 9,      // 120 labels (dog breeds)
};

inline constexpr int kNumTasks = 10;

/// Number of labels each task contributes (Table I). Sums to 1104.
inline constexpr int kTaskLabelCounts[kNumTasks] = {80, 365, 1,  70, 17,
                                                    7,  2,   400, 42, 120};

inline constexpr int kTotalLabels = 1104;

/// Human-readable task name (Table I row names).
const char* TaskName(TaskKind task);

}  // namespace ams::zoo

#endif  // AMS_ZOO_TASK_H_
