#ifndef AMS_ZOO_LABEL_SPACE_H_
#define AMS_ZOO_LABEL_SPACE_H_

#include <string>
#include <vector>

#include "zoo/task.h"

namespace ams::zoo {

/// Metadata for one task's contiguous label-id range.
struct TaskInfo {
  TaskKind kind;
  std::string name;
  int first_label;  // inclusive
  int num_labels;
};

/// The global space of 1104 labels (Table I), with contiguous per-task id
/// ranges. Label ids are the indices of the DRL agent's binary state vector.
class LabelSpace {
 public:
  /// Empty space; assign from CreateDefault() before use.
  LabelSpace() = default;

  /// Builds the paper's 10-task / 1104-label space.
  static LabelSpace CreateDefault();

  int total_labels() const { return total_labels_; }

  const TaskInfo& task(TaskKind kind) const;
  const std::vector<TaskInfo>& tasks() const { return tasks_; }

  /// Global label id for the `offset`-th label of `task`.
  int LabelId(TaskKind task, int offset) const;

  /// Task owning a global label id.
  TaskKind TaskOfLabel(int label_id) const;

  /// Offset of a global label id within its task's range.
  int OffsetInTask(int label_id) const;

  const std::string& LabelName(int label_id) const;

  /// Global id for a label name, or -1 if unknown.
  int FindLabel(const std::string& name) const;

  // Well-known offsets used by the rule engine, examples and tests.

  /// Offset of the "person" category within object detection.
  static constexpr int kObjectPerson = 0;
  /// Offset of the "dog" category within object detection.
  static constexpr int kObjectDog = 16;
  /// Pose-estimation offsets of the wrist keypoints (COCO keypoint order).
  static constexpr int kPoseLeftWrist = 9;
  static constexpr int kPoseRightWrist = 10;

  /// True if a Places365-style scene id denotes an indoor place.
  bool IsIndoorScene(int scene_offset) const;

 private:
  std::vector<TaskInfo> tasks_;
  std::vector<std::string> label_names_;
  std::vector<int> label_task_;  // label id -> task index
  std::vector<bool> scene_indoor_;
  int total_labels_ = 0;
};

}  // namespace ams::zoo

#endif  // AMS_ZOO_LABEL_SPACE_H_
