#ifndef AMS_ZOO_LATENT_SCENE_H_
#define AMS_ZOO_LATENT_SCENE_H_

#include <cstdint>
#include <vector>

namespace ams::zoo {

/// Latent attributes of one person in a scene.
struct PersonInstance {
  bool face_visible = false;
  /// Relative face size/frontality in [0,1]; drives face-related confidences.
  double face_quality = 0.0;
  int emotion = 0;          // offset into the 7 emotion labels
  int gender = 0;           // 0 = male, 1 = female
  bool hands_visible = false;
  /// Fraction of the body visible in [0,1]; drives pose confidences.
  double pose_visibility = 0.0;
};

/// The latent semantic content of one data item ("image").
///
/// This is the ground truth the synthetic models observe. It replaces real
/// pixels: a model's output is a deterministic function of this struct and
/// the model's spec, so the scheduling problem (content-dependent, unknown
/// before execution) is identical in structure to the paper's.
struct LatentScene {
  /// Seed driving all execution noise for this item (deterministic replay).
  uint64_t item_seed = 0;

  int scene_id = 0;      // Places365-style category offset, 0..364
  bool indoor = false;
  /// How prototypical the scene looks in [0,1]; low values yield the
  /// "bathroom 0.14"-style low-confidence place outputs of Fig. 1.
  double scene_clarity = 1.0;

  std::vector<PersonInstance> persons;

  /// Action offset (0..399) if the persons perform a recognizable action,
  /// else -1.
  int action_id = -1;
  /// Distinctiveness of the action in [0,1].
  double action_clarity = 0.0;

  bool has_dog = false;
  int dog_breed = 0;        // 0..119
  double dog_visibility = 0.0;

  /// Object-detection category offsets present (unique, sorted not required).
  std::vector<int> objects;
  /// Per-object visibility in [0,1], parallel to `objects`.
  std::vector<double> object_visibility;

  bool has_person() const { return !persons.empty(); }
  bool has_visible_face() const {
    for (const auto& p : persons) {
      if (p.face_visible) return true;
    }
    return false;
  }
  bool has_visible_hands() const {
    for (const auto& p : persons) {
      if (p.hands_visible) return true;
    }
    return false;
  }
};

}  // namespace ams::zoo

#endif  // AMS_ZOO_LATENT_SCENE_H_
