#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

namespace ams::serve {

namespace {

/// Relaxed CAS max for atomic<double> (no fetch_max in C++17).
void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

/// Same for atomic<long>: steady state is one relaxed load.
void AtomicMaxLong(std::atomic<long>* target, long value) {
  long current = target->load(std::memory_order_relaxed);
  while (current < value && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::string FormatSeconds(double s) {
  std::ostringstream out;
  out.precision(6);
  out << s;
  return out.str();
}

}  // namespace

int LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN/negative
  // Growth factor sqrt(2): bucket = floor(2 * log2(s / min)).
  const int b = static_cast<int>(2.0 * std::log2(seconds / kMinSeconds));
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::BucketLow(int b) {
  return kMinSeconds * std::exp2(0.5 * b);
}

void LatencyHistogram::Record(double seconds) {
  buckets_[static_cast<size_t>(BucketOf(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<int64_t>(std::llround(seconds * 1e9)),
                    std::memory_order_relaxed);
  AtomicMax(&max_, seconds);
}

double LatencyHistogram::sum() const {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double LatencyHistogram::mean() const {
  const long n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LatencyHistogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Percentile(double p) const {
  const long n = count();
  // The documented empty contract: every percentile of "no data" is 0.0.
  if (n == 0) return 0.0;
  // NaN-safe clamp (std::clamp on NaN is undefined): NaN and negatives
  // collapse to 0, anything above 100 to 100.
  if (!(p > 0.0)) {
    p = 0.0;
  } else if (p > 100.0) {
    p = 100.0;
  }
  const double target = p / 100.0 * static_cast<double>(n);
  long seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const long in_bucket = buckets_[static_cast<size_t>(b)].load(
        std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation inside the winning bucket, clamped to the
      // recorded maximum (the top bucket is open-ended).
      const double frac =
          std::clamp((target - static_cast<double>(seen)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      const double low = BucketLow(b);
      const double high = std::min(BucketLow(b + 1), std::max(max(), low));
      return low + frac * (high - low);
    }
    seen += in_bucket;
  }
  return max();
}

std::string LatencyHistogram::SnapshotJson() const {
  std::ostringstream out;
  out << "{\"count\": " << count() << ", \"mean_s\": " << FormatSeconds(mean())
      << ", \"p50_s\": " << FormatSeconds(Percentile(50))
      << ", \"p95_s\": " << FormatSeconds(Percentile(95))
      << ", \"p99_s\": " << FormatSeconds(Percentile(99))
      << ", \"max_s\": " << FormatSeconds(max()) << "}";
  return out.str();
}

namespace {

/// other += into target, both relaxed — the merge contract allows torn
/// cross-counter views (same as any scrape of live counters).
void AddCounter(std::atomic<long>* target, const std::atomic<long>& other) {
  const long n = other.load(std::memory_order_relaxed);
  if (n != 0) target->fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    AddCounter(&buckets_[static_cast<size_t>(b)],
               other.buckets_[static_cast<size_t>(b)]);
  }
  AddCounter(&count_, other.count_);
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
}

void ClassMetrics::MergeFrom(const ClassMetrics& other) {
  AddCounter(&enqueued, other.enqueued);
  AddCounter(&completed, other.completed);
  AddCounter(&rejected, other.rejected);
  AddCounter(&shed, other.shed);
  AddCounter(&shutdown_refused, other.shutdown_refused);
  AddCounter(&deadline_misses, other.deadline_misses);
  queue_delay.MergeFrom(other.queue_delay);
  total_latency.MergeFrom(other.total_latency);
}

void TenantMetrics::MergeFrom(const TenantMetrics& other) {
  AddCounter(&enqueued, other.enqueued);
  AddCounter(&completed, other.completed);
  AddCounter(&rejected, other.rejected);
  AddCounter(&quota_rejected, other.quota_rejected);
  AddCounter(&shed, other.shed);
  AddCounter(&shutdown_refused, other.shutdown_refused);
  AddCounter(&deadline_misses, other.deadline_misses);
  queue_delay.MergeFrom(other.queue_delay);
  total_latency.MergeFrom(other.total_latency);
}

void Metrics::RecordTick(double tick_s, std::size_t arena_used_bytes) {
  tick_duration.Record(tick_s);
  AtomicMaxLong(&arena_high_water_bytes,
                static_cast<long>(arena_used_bytes));
}

void Metrics::RecordForward(double forward_s, int rows) {
  forward_duration.Record(forward_s);
  forward_batches.fetch_add(1, std::memory_order_relaxed);
  forward_rows.fetch_add(rows, std::memory_order_relaxed);
  AtomicMaxLong(&forward_rows_max, rows);
}

void Metrics::RecordCoalescedRound(int gathered_rows, int unique_rows) {
  coalesced_rounds.fetch_add(1, std::memory_order_relaxed);
  coalesced_gathered_rows.fetch_add(gathered_rows, std::memory_order_relaxed);
  coalesced_rows.fetch_add(unique_rows, std::memory_order_relaxed);
  AtomicMaxLong(&coalesced_rows_max, unique_rows);
}

void Metrics::MergeFrom(const Metrics& other) {
  AddCounter(&enqueued, other.enqueued);
  AddCounter(&completed, other.completed);
  AddCounter(&rejected, other.rejected);
  AddCounter(&quota_rejected, other.quota_rejected);
  AddCounter(&shed, other.shed);
  AddCounter(&shutdown_refused, other.shutdown_refused);
  AddCounter(&deadline_misses, other.deadline_misses);
  AddCounter(&migrated_in, other.migrated_in);
  AddCounter(&migrated_out, other.migrated_out);
  AddCounter(&queue_depth, other.queue_depth);
  AddCounter(&in_flight, other.in_flight);
  queue_delay.MergeFrom(other.queue_delay);
  service_time.MergeFrom(other.service_time);
  total_latency.MergeFrom(other.total_latency);
  tick_duration.MergeFrom(other.tick_duration);
  forward_duration.MergeFrom(other.forward_duration);
  AddCounter(&forward_batches, other.forward_batches);
  AddCounter(&forward_rows, other.forward_rows);
  AddCounter(&coalesced_rounds, other.coalesced_rounds);
  AddCounter(&coalesced_gathered_rows, other.coalesced_gathered_rows);
  AddCounter(&coalesced_rows, other.coalesced_rows);
  // Gauge/high-water policy (regression-locked by route_metrics_merge_test):
  // counters sum across shards, high-water marks take the max — a 4-shard
  // aggregate's high water is the highest shard's, never 4x one shard's.
  AtomicMaxLong(&forward_rows_max,
                other.forward_rows_max.load(std::memory_order_relaxed));
  AtomicMaxLong(&coalesced_rows_max,
                other.coalesced_rows_max.load(std::memory_order_relaxed));
  AtomicMaxLong(&arena_high_water_bytes,
                other.arena_high_water_bytes.load(std::memory_order_relaxed));
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    by_class[static_cast<size_t>(c)].MergeFrom(
        other.by_class[static_cast<size_t>(c)]);
  }
  default_tenant_.MergeFrom(other.default_tenant_);
  // Other's map mutex only; for_tenant locks this registry's own mutex, so
  // no ordering cycle as long as nobody merges two registries into each
  // other concurrently (the documented one-directional contract).
  std::lock_guard<std::mutex> lock(other.tenants_mu_);
  for (const auto& [tenant_id, tenant] : other.tenants_) {
    for_tenant(tenant_id).MergeFrom(tenant);
  }
}

TenantMetrics& Metrics::for_tenant(int tenant_id) {
  if (tenant_id == 0) return default_tenant_;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_[tenant_id];
}

const TenantMetrics* Metrics::find_tenant(int tenant_id) const {
  if (tenant_id == 0) return &default_tenant_;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : &it->second;
}

void Metrics::AttachClock(const Clock* clock) {
  clock_ = clock;
  attach_time_s_ = clock != nullptr ? clock->NowSeconds() : 0.0;
}

std::string Metrics::SnapshotJson() const {
  const double uptime_s =
      clock_ != nullptr ? clock_->NowSeconds() - attach_time_s_ : 0.0;
  return SnapshotJson(uptime_s);
}

namespace {

/// Plain-value images of the registry's counter sections: SnapshotJson
/// loads each section into one of these in a tight pass *before* any
/// stream formatting, so the values in one emitted snapshot come from a
/// single narrow read window instead of interleaving atomic reads with
/// (comparatively slow) JSON formatting. See the header's consistency
/// contract for what can still tear.
struct CounterSnapshot {
  long enqueued, completed, rejected, quota_rejected, shed, shutdown_refused,
      deadline_misses, migrated_in, migrated_out, queue_depth, in_flight,
      forward_batches, forward_rows, forward_rows_max, arena_high_water_bytes,
      coalesced_rounds, coalesced_gathered_rows, coalesced_rows,
      coalesced_rows_max;
};

struct ClassSnapshot {
  long enqueued, completed, rejected, shed, shutdown_refused, deadline_misses;
};

struct TenantSnapshot {
  long enqueued, completed, rejected, quota_rejected, shed, shutdown_refused,
      deadline_misses;
};

ClassSnapshot LoadClass(const ClassMetrics& cls) {
  ClassSnapshot s;
  s.enqueued = cls.enqueued.load(std::memory_order_relaxed);
  s.completed = cls.completed.load(std::memory_order_relaxed);
  s.rejected = cls.rejected.load(std::memory_order_relaxed);
  s.shed = cls.shed.load(std::memory_order_relaxed);
  s.shutdown_refused = cls.shutdown_refused.load(std::memory_order_relaxed);
  s.deadline_misses = cls.deadline_misses.load(std::memory_order_relaxed);
  return s;
}

TenantSnapshot LoadTenant(const TenantMetrics& tenant) {
  TenantSnapshot s;
  s.enqueued = tenant.enqueued.load(std::memory_order_relaxed);
  s.completed = tenant.completed.load(std::memory_order_relaxed);
  s.rejected = tenant.rejected.load(std::memory_order_relaxed);
  s.quota_rejected = tenant.quota_rejected.load(std::memory_order_relaxed);
  s.shed = tenant.shed.load(std::memory_order_relaxed);
  s.shutdown_refused = tenant.shutdown_refused.load(std::memory_order_relaxed);
  s.deadline_misses = tenant.deadline_misses.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

std::string Metrics::SnapshotJson(double uptime_s) const {
  // Phase 1: the consistent read pass — every counter in the registry is
  // loaded once, back to back, before a single byte is formatted.
  CounterSnapshot top;
  top.enqueued = enqueued.load(std::memory_order_relaxed);
  top.completed = completed.load(std::memory_order_relaxed);
  top.rejected = rejected.load(std::memory_order_relaxed);
  top.quota_rejected = quota_rejected.load(std::memory_order_relaxed);
  top.shed = shed.load(std::memory_order_relaxed);
  top.shutdown_refused = shutdown_refused.load(std::memory_order_relaxed);
  top.deadline_misses = deadline_misses.load(std::memory_order_relaxed);
  top.migrated_in = migrated_in.load(std::memory_order_relaxed);
  top.migrated_out = migrated_out.load(std::memory_order_relaxed);
  top.queue_depth = queue_depth.load(std::memory_order_relaxed);
  top.in_flight = in_flight.load(std::memory_order_relaxed);
  top.forward_batches = forward_batches.load(std::memory_order_relaxed);
  top.forward_rows = forward_rows.load(std::memory_order_relaxed);
  top.forward_rows_max = forward_rows_max.load(std::memory_order_relaxed);
  top.arena_high_water_bytes =
      arena_high_water_bytes.load(std::memory_order_relaxed);
  top.coalesced_rounds = coalesced_rounds.load(std::memory_order_relaxed);
  top.coalesced_gathered_rows =
      coalesced_gathered_rows.load(std::memory_order_relaxed);
  top.coalesced_rows = coalesced_rows.load(std::memory_order_relaxed);
  top.coalesced_rows_max =
      coalesced_rows_max.load(std::memory_order_relaxed);
  std::array<ClassSnapshot, kNumPriorityClasses> classes;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    classes[static_cast<size_t>(c)] = LoadClass(by_class[static_cast<size_t>(c)]);
  }
  std::vector<std::pair<int, TenantSnapshot>> tenants;
  std::vector<const TenantMetrics*> tenant_slices;
  tenants.emplace_back(0, LoadTenant(default_tenant_));
  tenant_slices.push_back(&default_tenant_);
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    for (const auto& [tenant_id, tenant] : tenants_) {
      tenants.emplace_back(tenant_id, LoadTenant(tenant));
      tenant_slices.push_back(&tenant);
    }
  }

  // Phase 2: formatting, from the plain-value images. Histograms snapshot
  // at format time (bucket-consistent, best effort vs. the counter pass).
  std::ostringstream out;
  out << "{\n";
  out << "  \"counters\": {\"enqueued\": " << top.enqueued
      << ", \"completed\": " << top.completed
      << ", \"rejected\": " << top.rejected
      << ", \"quota_rejected\": " << top.quota_rejected
      << ", \"shed\": " << top.shed
      << ", \"shutdown_refused\": " << top.shutdown_refused
      << ", \"deadline_misses\": " << top.deadline_misses
      << ", \"migrated_in\": " << top.migrated_in
      << ", \"migrated_out\": " << top.migrated_out << "},\n";
  out << "  \"gauges\": {\"queue_depth\": " << top.queue_depth
      << ", \"in_flight\": " << top.in_flight << "},\n";
  out << "  \"uptime_s\": " << FormatSeconds(uptime_s)
      << ", \"completed_per_s\": "
      << FormatSeconds(uptime_s > 0.0
                           ? static_cast<double>(top.completed) / uptime_s
                           : 0.0)
      << ",\n";
  out << "  \"latency\": {\"queue_delay\": " << queue_delay.SnapshotJson()
      << ", \"service\": " << service_time.SnapshotJson()
      << ", \"total\": " << total_latency.SnapshotJson() << "},\n";
  out << "  \"phases\": {\"tick\": " << tick_duration.SnapshotJson()
      << ", \"forward\": " << forward_duration.SnapshotJson()
      << ", \"forward_batches\": " << top.forward_batches
      << ", \"forward_rows\": " << top.forward_rows
      << ", \"forward_rows_max\": " << top.forward_rows_max
      << ", \"forward_rows_mean\": "
      << FormatSeconds(top.forward_batches > 0
                           ? static_cast<double>(top.forward_rows) /
                                 static_cast<double>(top.forward_batches)
                           : 0.0)
      << ", \"arena_high_water_bytes\": " << top.arena_high_water_bytes
      << ", \"coalesced_rounds\": " << top.coalesced_rounds
      << ", \"coalesced_gathered_rows\": " << top.coalesced_gathered_rows
      << ", \"coalesced_rows\": " << top.coalesced_rows
      << ", \"coalesced_rows_max\": " << top.coalesced_rows_max
      << ", \"coalesced_rows_mean\": "
      << FormatSeconds(top.coalesced_rounds > 0
                           ? static_cast<double>(top.coalesced_rows) /
                                 static_cast<double>(top.coalesced_rounds)
                           : 0.0)
      << "},\n";
  out << "  \"classes\": {";
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const ClassSnapshot& s = classes[static_cast<size_t>(c)];
    const ClassMetrics& cls = by_class[static_cast<size_t>(c)];
    if (c > 0) out << ", ";
    out << "\"" << PriorityClassName(static_cast<PriorityClass>(c))
        << "\": {\"enqueued\": " << s.enqueued
        << ", \"completed\": " << s.completed
        << ", \"rejected\": " << s.rejected << ", \"shed\": " << s.shed
        << ", \"shutdown_refused\": " << s.shutdown_refused
        << ", \"deadline_misses\": " << s.deadline_misses
        << ", \"queue_delay\": " << cls.queue_delay.SnapshotJson()
        << ", \"total\": " << cls.total_latency.SnapshotJson() << "}";
  }
  out << "},\n";
  out << "  \"tenants\": {";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const auto& [tenant_id, s] = tenants[i];
    const TenantMetrics& tenant = *tenant_slices[i];
    if (i > 0) out << ", ";
    out << "\"" << tenant_id << "\": {\"enqueued\": " << s.enqueued
        << ", \"completed\": " << s.completed
        << ", \"rejected\": " << s.rejected
        << ", \"quota_rejected\": " << s.quota_rejected
        << ", \"shed\": " << s.shed
        << ", \"shutdown_refused\": " << s.shutdown_refused
        << ", \"deadline_misses\": " << s.deadline_misses
        << ", \"queue_delay\": " << tenant.queue_delay.SnapshotJson()
        << ", \"total\": " << tenant.total_latency.SnapshotJson() << "}";
  }
  out << "}\n";
  out << "}";
  return out.str();
}

}  // namespace ams::serve
