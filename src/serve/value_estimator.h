#ifndef AMS_SERVE_VALUE_ESTIMATOR_H_
#define AMS_SERVE_VALUE_ESTIMATOR_H_

#include "core/labeling_service.h"

namespace ams::serve {

/// Admission-time value scorer: estimates how much marginal value recall
/// one queued item buys per second of predicted model-execution cost. The
/// serving runtime stamps QueuedRequest::value_density with this score at
/// enqueue; kValueDensity/kHybrid bands then serve the densest work first
/// and shed the least dense — the paper's "spend scarce execution budget
/// where it returns the most recall per unit cost", lifted from the
/// per-model scheduling decision up to cross-request admission.
///
/// Implementations must be thread-safe (every enqueuer calls concurrently)
/// and cheap — this runs on the admission path, before any queue lock.
class ValueEstimator {
 public:
  virtual ~ValueEstimator() = default;

  /// Estimated marginal value recall per second of predicted cost for
  /// `item`; finite and >= 0 (0 = "no recall expected from this item").
  virtual double ValueDensity(const core::WorkItem& item) const = 0;
};

/// The pluggable default: derives the density from the session's a-priori
/// work profile (core::LabelingService::EstimateWork — oracle per-item
/// profiles for stored items, scene structure x zoo task costs for live
/// scenes). Items whose expected value is 0 score 0; otherwise
/// expected_value / expected_cost_s with the cost floored at 1 ms so
/// near-free items do not produce unbounded densities.
class ProfileValueEstimator : public ValueEstimator {
 public:
  /// `session` must outlive the estimator.
  explicit ProfileValueEstimator(const core::LabelingService* session);

  double ValueDensity(const core::WorkItem& item) const override;

 private:
  const core::LabelingService* session_;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_VALUE_ESTIMATOR_H_
