#ifndef AMS_SERVE_METRICS_H_
#define AMS_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ams::serve {

/// Lock-free latency histogram: values land in geometrically spaced buckets
/// (sqrt(2) growth from 1 microsecond, covering beyond an hour), recorded
/// with relaxed atomic increments so the serving hot path never serializes
/// on a stats mutex. Percentiles interpolate within the winning bucket, so
/// they are exact to one bucket's resolution (~+-20%) — the right trade for
/// an operational p50/p95/p99, not for microbenchmarks.
class LatencyHistogram {
 public:
  void Record(double seconds);

  long count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values; mean() = sum()/count().
  double sum() const;
  double mean() const;
  double max() const;

  /// p in [0, 100]; 0 when nothing was recorded.
  double Percentile(double p) const;

  /// {"count":N,"mean_s":...,"p50_s":...,"p95_s":...,"p99_s":...,"max_s":...}
  std::string SnapshotJson() const;

 private:
  static constexpr int kBuckets = 64;
  static constexpr double kMinSeconds = 1e-6;

  static int BucketOf(double seconds);
  /// Lower bound of bucket b (kMinSeconds * 2^(b/2)).
  static double BucketLow(int b);

  std::array<std::atomic<long>, kBuckets> buckets_{};
  std::atomic<long> count_{0};
  /// Integer nanoseconds: fetch_add is wait-free, where an atomic<double>
  /// sum would need a CAS loop on a contended line (C++17 has no
  /// fetch_add for atomic<double>).
  std::atomic<int64_t> sum_ns_{0};
  /// CAS max; the loop body only runs while the maximum actually grows, so
  /// steady state is a single relaxed load.
  std::atomic<double> max_{0.0};
};

/// The serving runtime's metrics registry: throughput counters, queue/flight
/// gauges, and latency histograms, all safely updatable from every worker
/// and enqueuer concurrently. Exported as one JSON snapshot for scraping.
///
/// Counter semantics: every request increments `enqueued` exactly once and
/// then exactly one of {completed, rejected, shed, shutdown_refused}; at any
/// quiescent instant enqueued == completed + rejected + shed +
/// shutdown_refused.
class Metrics {
 public:
  // --- counters ---
  std::atomic<long> enqueued{0};
  std::atomic<long> completed{0};
  std::atomic<long> rejected{0};
  std::atomic<long> shed{0};
  std::atomic<long> shutdown_refused{0};
  /// Completions that landed after their request deadline.
  std::atomic<long> deadline_misses{0};

  // --- gauges (sampled by the runtime at queue transitions) ---
  std::atomic<long> queue_depth{0};
  std::atomic<long> in_flight{0};

  // --- latency histograms ---
  LatencyHistogram queue_delay;
  LatencyHistogram service_time;
  LatencyHistogram total_latency;

  /// One JSON object with counters, gauges, histograms, and the completion
  /// throughput over `uptime_s` (pass the runtime's clock reading).
  std::string SnapshotJson(double uptime_s) const;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_METRICS_H_
