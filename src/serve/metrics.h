#ifndef AMS_SERVE_METRICS_H_
#define AMS_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "serve/clock.h"
#include "serve/priority_class.h"

namespace ams::serve {

/// Lock-free latency histogram: values land in geometrically spaced buckets
/// (sqrt(2) growth from 1 microsecond, covering beyond an hour), recorded
/// with relaxed atomic increments so the serving hot path never serializes
/// on a stats mutex. Percentiles interpolate within the winning bucket, so
/// they are exact to one bucket's resolution (~+-20%) — the right trade for
/// an operational p50/p95/p99, not for microbenchmarks.
///
/// Empty-histogram contract: while count() == 0, every query is defined to
/// return 0.0 — sum(), mean(), max(), and Percentile(p) for every p
/// (including NaN and out-of-range p, which are treated as 0). "No data"
/// deliberately reads as zero latency rather than NaN so dashboards and
/// JSON consumers never see a non-numeric value.
class LatencyHistogram {
 public:
  void Record(double seconds);

  long count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values; 0 when empty.
  double sum() const;
  /// sum()/count(); 0 when empty.
  double mean() const;
  /// Largest recorded value; 0 when empty.
  double max() const;

  /// p in [0, 100] (out-of-range clamped, NaN treated as 0); 0.0 whenever
  /// nothing was recorded, for every p.
  double Percentile(double p) const;

  /// {"count":N,"mean_s":...,"p50_s":...,"p95_s":...,"p99_s":...,"max_s":...}
  std::string SnapshotJson() const;

  /// Folds `other` into this histogram: bucket-wise counter sums, summed
  /// count/sum, max of maxes. Exact — both histograms share the fixed
  /// bucket layout, so merging loses nothing beyond each input's own
  /// bucket resolution. `other` may be recorded into concurrently (relaxed
  /// reads see some valid recent state); this histogram must not be.
  void MergeFrom(const LatencyHistogram& other);

 private:
  static constexpr int kBuckets = 64;
  static constexpr double kMinSeconds = 1e-6;

  static int BucketOf(double seconds);
  /// Lower bound of bucket b (kMinSeconds * 2^(b/2)).
  static double BucketLow(int b);

  std::array<std::atomic<long>, kBuckets> buckets_{};
  std::atomic<long> count_{0};
  /// Integer nanoseconds: fetch_add is wait-free, where an atomic<double>
  /// sum would need a CAS loop on a contended line (C++17 has no
  /// fetch_add for atomic<double>).
  std::atomic<int64_t> sum_ns_{0};
  /// CAS max; the loop body only runs while the maximum actually grows, so
  /// steady state is a single relaxed load.
  std::atomic<double> max_{0.0};
};

/// Per-priority-class slice of the registry: the same counter semantics as
/// the queue-wide counters, restricted to one class's requests, plus that
/// class's latency breakdown. This is what makes tenant isolation
/// observable — a saturating batch tenant shows up in by-class queue delay
/// long before it moves the global percentiles.
struct ClassMetrics {
  std::atomic<long> enqueued{0};
  std::atomic<long> completed{0};
  std::atomic<long> rejected{0};
  std::atomic<long> shed{0};
  std::atomic<long> shutdown_refused{0};
  std::atomic<long> deadline_misses{0};
  LatencyHistogram queue_delay;
  LatencyHistogram total_latency;

  void MergeFrom(const ClassMetrics& other);
};

/// Per-tenant slice of the registry: the quota-accounting view. Same
/// counter semantics as the queue-wide counters restricted to one tenant's
/// requests, plus `quota_rejected` — refusals caused by the tenant's own
/// quota (queued/in-flight caps, rate bucket) rather than queue pressure.
/// Slices are created lazily on first use and live for the registry's
/// lifetime (pointer-stable).
struct TenantMetrics {
  std::atomic<long> enqueued{0};
  std::atomic<long> completed{0};
  std::atomic<long> rejected{0};
  std::atomic<long> quota_rejected{0};
  std::atomic<long> shed{0};
  std::atomic<long> shutdown_refused{0};
  std::atomic<long> deadline_misses{0};
  LatencyHistogram queue_delay;
  LatencyHistogram total_latency;

  void MergeFrom(const TenantMetrics& other);
};

/// The serving runtime's metrics registry: throughput counters, queue/flight
/// gauges, and latency histograms, all safely updatable from every worker
/// and enqueuer concurrently, plus per-priority-class and per-tenant
/// breakdowns. Exported as one JSON snapshot for scraping.
///
/// Counter semantics: every request increments `enqueued` exactly once and
/// then exactly one of {completed, rejected, shed, shutdown_refused}; at any
/// quiescent instant enqueued + migrated_in == completed + rejected + shed +
/// shutdown_refused + migrated_out. (On an unsharded runtime the migration
/// counters stay 0 and the PR-5 identity holds unchanged.) The same holds
/// within each ClassMetrics slice, whose members never see migration: a
/// migrated request's class/tenant slices are counted where it was admitted
/// and where it completes, so per-class and per-tenant totals remain
/// cluster-wide truths even though the per-shard split shifts.
class Metrics {
 public:
  // --- counters ---
  std::atomic<long> enqueued{0};
  std::atomic<long> completed{0};
  std::atomic<long> rejected{0};
  /// Subset of `rejected` caused by a tenant quota (queued/in-flight cap or
  /// rate bucket) rather than queue pressure.
  std::atomic<long> quota_rejected{0};
  std::atomic<long> shed{0};
  std::atomic<long> shutdown_refused{0};
  /// Completions that landed after their request deadline.
  std::atomic<long> deadline_misses{0};
  /// Requests moved between shards by the router's rebalancer: admitted
  /// here but handed off (`migrated_out`), or admitted on a peer shard and
  /// requeued here (`migrated_in`). Both are 0 outside a sharded setup, and
  /// they cancel in any aggregate across all shards.
  std::atomic<long> migrated_in{0};
  std::atomic<long> migrated_out{0};

  // --- gauges (sampled by the runtime at queue transitions) ---
  std::atomic<long> queue_depth{0};
  std::atomic<long> in_flight{0};

  // --- latency histograms ---
  LatencyHistogram queue_delay;
  LatencyHistogram service_time;
  LatencyHistogram total_latency;

  // --- phase attribution (the MetricsJson face of the obs:: tracing layer;
  //     populated only while a Tracer is attached to the runtime and
  //     enabled, so the untraced hot path never touches these) ---
  /// Duration of one worker stepper tick (arena rewind + batched forward +
  /// one kernel step per resident item).
  LatencyHistogram tick_duration;
  /// Duration of the per-tick deduplicated batched Q-forward (ticks whose
  /// forward had zero fresh rows are not recorded).
  LatencyHistogram forward_duration;
  /// Count / total rows / largest row batch of recorded Q-forwards — the
  /// forward-batch-size gauge (mean = forward_rows / forward_batches).
  std::atomic<long> forward_batches{0};
  std::atomic<long> forward_rows{0};
  std::atomic<long> forward_rows_max{0};
  /// High-water mark of a worker's per-tick arena scratch footprint.
  std::atomic<long> arena_high_water_bytes{0};
  /// Cluster-coalesced forward rounds (serve::ForwardCoalescer): each
  /// non-empty round is recorded exactly once, by its leader, into the
  /// leader's registry — so a sum across shards is the cluster total.
  /// `coalesced_gathered_rows` counts stale rows pooled from every
  /// participant (duplicates included); `coalesced_rows` counts the unique
  /// rows actually forwarded after cross-participant dedup; the gap between
  /// the two is the work coalescing eliminated. `coalesced_rows_max` is the
  /// largest single coalesced batch — a high-water gauge, max-merged.
  std::atomic<long> coalesced_rounds{0};
  std::atomic<long> coalesced_gathered_rows{0};
  std::atomic<long> coalesced_rows{0};
  std::atomic<long> coalesced_rows_max{0};

  /// Folds one traced tick into the phase section (CAS-max on the gauges).
  void RecordTick(double tick_s, std::size_t arena_used_bytes);
  /// Folds one traced forward pass (rows > 0) into the phase section.
  void RecordForward(double forward_s, int rows);
  /// Folds one coalesced forward round (gathered > 0) into the phase
  /// section. Unlike RecordTick/RecordForward this is recorded whether or
  /// not a tracer is attached — round accounting is how the coalescer's
  /// amortization is audited, not a tracing nicety.
  void RecordCoalescedRound(int gathered_rows, int unique_rows);

  // --- per-class slices, indexed by PriorityClass ---
  std::array<ClassMetrics, kNumPriorityClasses> by_class;

  ClassMetrics& for_class(PriorityClass cls) {
    return by_class[static_cast<size_t>(cls)];
  }
  const ClassMetrics& for_class(PriorityClass cls) const {
    return by_class[static_cast<size_t>(cls)];
  }

  /// The tenant's metrics slice. Tenant 0 (the default tenant every plain
  /// Enqueue rides) is an inline member — lock-free, keeping the
  /// single-tenant hot path free of any mutex. Non-zero tenants are created
  /// on first use behind a short mutex-guarded map lookup; cache the
  /// returned reference on hot paths (it stays valid for the registry's
  /// lifetime).
  TenantMetrics& for_tenant(int tenant_id);
  /// Read-only lookup; nullptr when a non-zero tenant has no slice yet.
  const TenantMetrics* find_tenant(int tenant_id) const;

  /// Binds the uptime axis to a serve clock: SnapshotJson() (the no-arg
  /// overload) measures uptime as now - attach time on `clock`. The clock
  /// must outlive the registry.
  void AttachClock(const Clock* clock);

  /// One JSON object with counters, gauges, histograms, the phase section,
  /// the per-class breakdown, and the completion throughput over `uptime_s`
  /// (pass the runtime's clock reading).
  ///
  /// Consistency contract: each section's counters are loaded into plain
  /// locals in one tight pass *before* any formatting, so a snapshot taken
  /// mid-run reflects one narrow read window rather than values drifting
  /// apart over the milliseconds JSON formatting takes. What is still NOT
  /// guaranteed — and cannot be without stalling the hot path — is
  /// cross-counter exactness: a request completing inside the read window
  /// can make identities like enqueued == completed + ... off by the
  /// requests in flight during the pass, and histograms (read after the
  /// counter pass) may include a few events the counters missed. At any
  /// quiescent instant every identity holds exactly.
  std::string SnapshotJson(double uptime_s) const;

  /// Same, with uptime taken from the attached clock (0 when none).
  std::string SnapshotJson() const;

  /// Folds `other` into this registry: counters and gauges summed,
  /// histograms merged bucket-wise, per-class slices merged element-wise,
  /// and per-tenant slices merged by tenant id (creating slices here as
  /// needed). The cross-shard aggregation primitive behind
  /// route::AggregatedMetrics. `other` may still be written to concurrently
  /// (the merge reads each atomic once, relaxed); this registry must be
  /// private to the caller while merging.
  void MergeFrom(const Metrics& other);

 private:
  const Clock* clock_ = nullptr;
  double attach_time_s_ = 0.0;
  /// Tenant 0's slice, inline so the default-tenant path never locks.
  TenantMetrics default_tenant_;
  /// Non-zero tenant slices: std::map for pointer stability (for_tenant
  /// hands out long-lived references) and deterministic JSON ordering. The
  /// mutex only guards the map structure; the slices themselves are atomic.
  mutable std::mutex tenants_mu_;
  std::map<int, TenantMetrics> tenants_;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_METRICS_H_
