#include "serve/admission_queue.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace ams::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kReject:
      return "reject";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

const char* WithinClassOrderName(WithinClassOrder order) {
  switch (order) {
    case WithinClassOrder::kEdf:
      return "edf";
    case WithinClassOrder::kValueDensity:
      return "value";
    case WithinClassOrder::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

bool WithinClassOrderFromName(const char* name, WithinClassOrder* out) {
  if (name == nullptr || out == nullptr) return false;
  if (!std::strcmp(name, "edf")) {
    *out = WithinClassOrder::kEdf;
  } else if (!std::strcmp(name, "value")) {
    *out = WithinClassOrder::kValueDensity;
  } else if (!std::strcmp(name, "hybrid")) {
    *out = WithinClassOrder::kHybrid;
  } else {
    return false;
  }
  return true;
}

AdmissionQueue::AdmissionQueue(const AdmissionConfig& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &Clock::Monotonic()),
      forced_service_after_(config.starvation_bound -
                            (kNumPriorityClasses - 1)),
      track_tenants_(!config.tenant_quotas.empty()) {
  AMS_CHECK(config_.capacity >= 1, "admission queue needs capacity >= 1");
  AMS_CHECK(config_.starvation_bound >= kNumPriorityClasses,
            "the starvation bound must cover one pop per class");
  for (const ClassConfig& cls : config_.classes) {
    AMS_CHECK(cls.weight >= 0, "class weights must be non-negative");
    AMS_CHECK(cls.queue_capacity >= 0,
              "per-class capacity must be >= 0 (0 = uncapped)");
  }
  const auto check_quota = [](const TenantQuota& quota) {
    AMS_CHECK(quota.max_queued >= 0 && quota.max_in_flight >= 0,
              "tenant quota caps must be >= 0 (0 = unlimited)");
    AMS_CHECK(std::isfinite(quota.rate_per_s) && quota.rate_per_s >= 0.0,
              "tenant rate must be finite and >= 0");
    AMS_CHECK(std::isfinite(quota.burst) || quota.rate_per_s == 0.0,
              "tenant burst must be finite when rate limited");
    // A bucket that can never hold one whole token would silently reject
    // the tenant's every request.
    AMS_CHECK(quota.rate_per_s == 0.0 || quota.burst <= 0.0 ||
                  quota.burst >= 1.0,
              "tenant burst in (0, 1) could never admit a request "
              "(leave <= 0 to mean 1)");
  };
  for (const auto& [tenant_id, quota] : config_.tenant_quotas.per_tenant) {
    (void)tenant_id;
    check_quota(quota);
  }
  if (config_.tenant_quotas.default_quota.has_value()) {
    check_quota(*config_.tenant_quotas.default_quota);
  }
}

AdmissionQueue::AdmissionQueue(int capacity, OverloadPolicy policy)
    : AdmissionQueue([&] {
        AdmissionConfig config;
        config.capacity = capacity;
        config.overload = policy;
        return config;
      }()) {}

OverloadPolicy AdmissionQueue::PolicyFor(PriorityClass cls) const {
  const std::optional<OverloadPolicy>& per_class =
      config_.classes[static_cast<size_t>(cls)].overload;
  return per_class.has_value() ? *per_class : config_.overload;
}

WithinClassOrder AdmissionQueue::OrderFor(PriorityClass cls) const {
  return OrderForLocked(static_cast<int>(cls));  // config-only: no lock needed
}

WithinClassOrder AdmissionQueue::OrderForLocked(int cls) const {
  const std::optional<WithinClassOrder>& per_class =
      config_.classes[static_cast<size_t>(cls)].order;
  return per_class.has_value() ? *per_class : config_.within_class_order;
}

size_t AdmissionQueue::TotalLocked() const {
  size_t total = 0;
  for (const ClassBand& band : bands_) total += band.heap.size();
  return total;
}

bool AdmissionQueue::HasSpaceLocked(int cls) const {
  if (TotalLocked() >= static_cast<size_t>(config_.capacity)) return false;
  const int class_cap = config_.classes[static_cast<size_t>(cls)].queue_capacity;
  return class_cap == 0 ||
         bands_[static_cast<size_t>(cls)].heap.size() <
             static_cast<size_t>(class_cap);
}

bool AdmissionQueue::TenantHasRoomLocked(const TenantQuota* quota,
                                         const TenantState* tenant) const {
  if (quota == nullptr || tenant == nullptr) return true;
  if (quota->max_queued > 0 && tenant->queued >= quota->max_queued) {
    return false;
  }
  return quota->max_in_flight == 0 ||
         tenant->in_flight < quota->max_in_flight;
}

int AdmissionQueue::SelectClassLocked() {
  // 1. Starvation guard: a class passed over forced_service_after_ times
  //    while non-empty is served now; longest-passed-over first, ties to
  //    the more important class. Guard service does not touch the
  //    round-robin turn.
  int chosen = -1;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const ClassBand& band = bands_[static_cast<size_t>(c)];
    if (band.heap.empty() || band.passed_over < forced_service_after_) continue;
    if (chosen < 0 ||
        band.passed_over > bands_[static_cast<size_t>(chosen)].passed_over) {
      chosen = c;
    }
  }
  if (chosen < 0) {
    // 2. Weighted round-robin: the current class keeps its turn while it
    //    has work and credit; otherwise the turn advances cyclically to the
    //    next non-empty positive-weight class, reloading that class's
    //    credit from its weight.
    if (rr_credit_ > 0 && config_.classes[static_cast<size_t>(rr_class_)].weight > 0 &&
        !bands_[static_cast<size_t>(rr_class_)].heap.empty()) {
      chosen = rr_class_;
      --rr_credit_;
    } else {
      for (int step = 1; step <= kNumPriorityClasses; ++step) {
        const int c = (rr_class_ + step) % kNumPriorityClasses;
        if (config_.classes[static_cast<size_t>(c)].weight > 0 &&
            !bands_[static_cast<size_t>(c)].heap.empty()) {
          rr_class_ = c;
          rr_credit_ = config_.classes[static_cast<size_t>(c)].weight - 1;
          chosen = c;
          break;
        }
      }
    }
  }
  if (chosen < 0) {
    // 3. Strict fallback: only weight-0 (background) classes have work;
    //    serve the most important one.
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (!bands_[static_cast<size_t>(c)].heap.empty()) {
        chosen = c;
        break;
      }
    }
  }
  AMS_CHECK(chosen >= 0, "SelectClassLocked called on an empty queue");
  // Starvation accounting: every other class with queued work was passed
  // over by this pop; the served class (and empty classes) start fresh.
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    ClassBand& band = bands_[static_cast<size_t>(c)];
    if (c == chosen || band.heap.empty()) {
      band.passed_over = 0;
    } else {
      ++band.passed_over;
    }
  }
  return chosen;
}

size_t AdmissionQueue::SelectWithinLocked(int cls, double now_s) const {
  const std::vector<QueuedRequest>& band =
      bands_[static_cast<size_t>(cls)].heap;
  AMS_CHECK(!band.empty(), "SelectWithinLocked on an empty band");
  const WithinClassOrder order = OrderForLocked(cls);
  if (order == WithinClassOrder::kEdf) return 0;  // heap head
  if (order == WithinClassOrder::kValueDensity) {
    // Highest density first; FIFO among equal densities.
    size_t best = 0;
    for (size_t i = 1; i < band.size(); ++i) {
      if (band[i].value_density > band[best].value_density ||
          (band[i].value_density == band[best].value_density &&
           band[i].sequence < band[best].sequence)) {
        best = i;
      }
    }
    return best;
  }
  // kHybrid: highest density among still-feasible requests (ties: earlier
  // deadline, then sequence); EDF over everything once all are late.
  size_t best = band.size();
  for (size_t i = 0; i < band.size(); ++i) {
    if (band[i].deadline_s < now_s) continue;  // already late
    if (best == band.size() ||
        band[i].value_density > band[best].value_density ||
        (band[i].value_density == band[best].value_density &&
         (band[i].deadline_s < band[best].deadline_s ||
          (band[i].deadline_s == band[best].deadline_s &&
           band[i].sequence < band[best].sequence)))) {
      best = i;
    }
  }
  if (best < band.size()) return best;
  best = 0;
  for (size_t i = 1; i < band.size(); ++i) {
    if (band[i].deadline_s < band[best].deadline_s ||
        (band[i].deadline_s == band[best].deadline_s &&
         band[i].sequence < band[best].sequence)) {
      best = i;
    }
  }
  return best;
}

void AdmissionQueue::RemoveAtLocked(int cls, size_t i, QueuedRequest* out) {
  std::vector<QueuedRequest>& band = bands_[static_cast<size_t>(cls)].heap;
  if (OrderForLocked(cls) == WithinClassOrder::kEdf) {
    if (i == 0) {
      // The common case: popping the heap head through the heap primitive.
      std::pop_heap(band.begin(), band.end(), Later);
      *out = std::move(band.back());
      band.pop_back();
      return;
    }
    // Eviction from the middle breaks the heap property at one position;
    // re-heapify the bounded band.
    *out = std::move(band[i]);
    band[i] = std::move(band.back());
    band.pop_back();
    std::make_heap(band.begin(), band.end(), Later);
    return;
  }
  // Scan-ordered bands have no invariant beyond membership: swap-pop.
  *out = std::move(band[i]);
  band[i] = std::move(band.back());
  band.pop_back();
}

bool AdmissionQueue::BandHasTenantLocked(int cls, int tenant) const {
  const std::vector<QueuedRequest>& band =
      bands_[static_cast<size_t>(cls)].heap;
  for (const QueuedRequest& request : band) {
    if (request.tenant_id == tenant) return true;
  }
  return false;
}

void AdmissionQueue::EvictVictimLocked(int cls, int tenant_filter,
                                       QueuedRequest* victim) {
  std::vector<QueuedRequest>& band = bands_[static_cast<size_t>(cls)].heap;
  AMS_CHECK(!band.empty(), "no shed victim in the chosen class");
  const WithinClassOrder order = OrderForLocked(cls);
  // Linear scan over the bounded band: the oldest admission sequence under
  // kEdf, the lowest value density (ties: oldest) under value ordering.
  size_t chosen = band.size();
  for (size_t i = 0; i < band.size(); ++i) {
    if (tenant_filter >= 0 && band[i].tenant_id != tenant_filter) continue;
    if (chosen == band.size()) {
      chosen = i;
      continue;
    }
    if (order == WithinClassOrder::kEdf) {
      if (band[i].sequence < band[chosen].sequence) chosen = i;
    } else if (band[i].value_density < band[chosen].value_density ||
               (band[i].value_density == band[chosen].value_density &&
                band[i].sequence < band[chosen].sequence)) {
      chosen = i;
    }
  }
  AMS_CHECK(chosen < band.size(), "no shed victim matches the tenant filter");
  RemoveAtLocked(cls, chosen, victim);
}

AdmitOutcome AdmissionQueue::Enqueue(QueuedRequest&& request,
                                     std::vector<QueuedRequest>* bounced) {
  AMS_CHECK(bounced != nullptr);
  const int cls = static_cast<int>(request.priority_class);
  AMS_CHECK(cls >= 0 && cls < kNumPriorityClasses, "unknown priority class");
  // Negative ids would collide with EvictVictimLocked's "no tenant filter"
  // sentinel and corrupt quota accounting.
  AMS_CHECK(request.tenant_id >= 0, "tenant ids must be >= 0");
  const size_t bounced_at_entry = bounced->size();
  // Arrival stamps (before any kBlock wait: the latency clock starts when
  // the caller showed up, and EDF urgency is arrival + slack).
  request.enqueue_time_s = clock_->NowSeconds();
  request.deadline_s = request.enqueue_time_s + request.slack_s;

  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    lock.unlock();
    bounced->push_back(std::move(request));
    return AdmitOutcome::kClosed;
  }
  const OverloadPolicy policy = PolicyFor(request.priority_class);
  const TenantQuota* quota =
      track_tenants_ ? config_.tenant_quotas.QuotaFor(request.tenant_id)
                     : nullptr;
  TenantState* tenant =
      track_tenants_ ? &tenants_[request.tenant_id] : nullptr;
  if (quota != nullptr && quota->rate_per_s > 0.0) {
    // Lazy token-bucket refill on the arrival stamp. An empty bucket
    // bounces immediately whatever the policy: there is no wakeup source
    // for "time passed", and a rate limiter is fail-fast by design.
    // Arrival stamps are taken before the lock, so same-tenant enqueuers
    // can reach this point with out-of-order timestamps; clamping the
    // refill instant at last_refill_s keeps the delta non-negative and the
    // bucket monotone (a rewound stamp must neither drain tokens nor
    // double-count a refill window).
    const double burst = quota->burst > 0.0 ? quota->burst : 1.0;
    const double refill_s =
        std::max(request.enqueue_time_s, tenant->last_refill_s);
    if (!tenant->bucket_started) {
      tenant->tokens = burst;
      tenant->bucket_started = true;
    } else {
      tenant->tokens =
          std::min(burst, tenant->tokens + (refill_s - tenant->last_refill_s) *
                                               quota->rate_per_s);
    }
    tenant->last_refill_s = refill_s;
    if (tenant->tokens < 1.0) {
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejectedQuota;
    }
    // The token is spent by passing the rate gate, not by eventual
    // admission: reserving it here (before any kBlock wait releases the
    // lock) is what keeps concurrent same-tenant enqueuers from admitting
    // several requests against the same balance. A gate-passing request
    // that later bounces on capacity keeps its token spent — the bucket
    // limits arrival rate, not acceptance rate.
    tenant->tokens -= 1.0;
  }
  if (policy == OverloadPolicy::kBlock) {
    ++waiting_enqueuers_;
    not_full_.wait(lock, [this, cls, quota, tenant] {
      return closed_ || (HasSpaceLocked(cls) && TenantHasRoomLocked(quota, tenant));
    });
    --waiting_enqueuers_;
  }
  if (closed_) {
    lock.unlock();
    bounced->push_back(std::move(request));
    return AdmitOutcome::kClosed;
  }
  if (!TenantHasRoomLocked(quota, tenant)) {
    // Over quota (kBlock waited this out above, so the policy here is
    // kReject or kShedOldest).
    const bool queued_breach =
        quota->max_queued > 0 && tenant->queued >= quota->max_queued;
    if (policy == OverloadPolicy::kReject || !queued_breach) {
      // An in-flight breach is never sheddable: displacing queued work
      // frees no in-flight slot.
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejectedQuota;
    }
    // kShedOldest on a queued-cap breach: displace the tenant's own queued
    // work — least important class first, never a class more important than
    // the arrival (when the tenant only has more-important work resident,
    // the arrival bounces instead of inverting priority).
    int victim_class = -1;
    for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
      if (BandHasTenantLocked(c, request.tenant_id)) {
        victim_class = c;
        break;
      }
    }
    if (victim_class < 0) {
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejectedQuota;
    }
    QueuedRequest victim;
    EvictVictimLocked(victim_class, request.tenant_id, &victim);
    --tenant->queued;
    bounced->push_back(std::move(victim));
  }
  if (!HasSpaceLocked(cls)) {
    if (policy == OverloadPolicy::kReject) {
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejected;
    }
    // kShedOldest. A class-cap overflow sheds within the arriving class; a
    // queue-wide overflow sheds from the least important non-empty class
    // that is no more important than the arrival.
    const int class_cap =
        config_.classes[static_cast<size_t>(cls)].queue_capacity;
    int victim_class = -1;
    if (class_cap > 0 && bands_[static_cast<size_t>(cls)].heap.size() >=
                             static_cast<size_t>(class_cap)) {
      victim_class = cls;
    } else {
      for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
        if (!bands_[static_cast<size_t>(c)].heap.empty()) {
          victim_class = c;
          break;
        }
      }
    }
    if (victim_class < 0) {
      // Everything resident outranks the arrival: shedding would invert
      // priority, so the arrival bounces instead.
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejected;
    }
    QueuedRequest victim;
    EvictVictimLocked(victim_class, /*tenant_filter=*/-1, &victim);
    if (track_tenants_) --tenants_[victim.tenant_id].queued;
    bounced->push_back(std::move(victim));
  }
  if (tenant != nullptr) ++tenant->queued;
  std::vector<QueuedRequest>& band = bands_[static_cast<size_t>(cls)].heap;
  band.push_back(std::move(request));
  if (OrderForLocked(cls) == WithinClassOrder::kEdf) {
    std::push_heap(band.begin(), band.end(), Later);
  }
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  const bool wake = waiting_poppers_ > 0;
  // Any shed can satisfy a blocked enqueuer's predicate even though the
  // total depth did not drop: a victim from another band frees that band's
  // class cap, a victim of another tenant frees that tenant's queued
  // quota, and a double shed (quota victim + capacity victim) opens net
  // queue-wide space. So every shedding enqueue must wake the waiters.
  const bool wake_enqueuers =
      bounced->size() > bounced_at_entry && waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  if (wake_enqueuers) not_full_.notify_all();
  return AdmitOutcome::kAccepted;
}

bool AdmissionQueue::PopLocked(QueuedRequest* out) {
  if (TotalLocked() == 0) return false;
  const int cls = SelectClassLocked();
  // Only kHybrid feasibility needs the clock; spare the virtual call on the
  // kEdf/kValueDensity pop paths.
  const double now_s = OrderForLocked(cls) == WithinClassOrder::kHybrid
                           ? clock_->NowSeconds()
                           : 0.0;
  const size_t i = SelectWithinLocked(cls, now_s);
  RemoveAtLocked(cls, i, out);
  if (track_tenants_) {
    TenantState& tenant = tenants_[out->tenant_id];
    --tenant.queued;
    ++tenant.in_flight;
  }
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  return true;
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (!PopLocked(out)) return false;
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  // notify_all, not notify_one: blocked enqueuers wait on class- and
  // tenant-specific predicates (per-class caps, tenant quotas), so the
  // single woken thread might not be the one that gained space.
  if (wake) not_full_.notify_all();
  return true;
}

int AdmissionQueue::TryPopBatch(int max_requests,
                                std::vector<QueuedRequest>* out) {
  AMS_CHECK(out != nullptr);
  int popped = 0;
  std::unique_lock<std::mutex> lock(mu_);
  QueuedRequest request;
  while (popped < max_requests && PopLocked(&request)) {
    out->push_back(std::move(request));
    ++popped;
  }
  const bool wake = popped > 0 && waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) {
    // Several slots may have opened at once, across several classes.
    not_full_.notify_all();
  }
  return popped;
}

bool AdmissionQueue::WaitPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_poppers_;
  not_empty_.wait(lock, [this] { return closed_ || TotalLocked() > 0; });
  --waiting_poppers_;
  if (!PopLocked(out)) return false;  // closed and empty: no more work, ever
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_all();
  return true;
}

void AdmissionQueue::TenantFinished(int tenant_id) {
  if (!track_tenants_) return;
  std::unique_lock<std::mutex> lock(mu_);
  TenantState& tenant = tenants_[tenant_id];
  AMS_CHECK(tenant.in_flight > 0, "TenantFinished without a matching pop");
  --tenant.in_flight;
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  // A freed in-flight slot may unblock a kBlock enqueuer of this tenant.
  if (wake) not_full_.notify_all();
}

int AdmissionQueue::StealBatch(int max_requests,
                               std::vector<QueuedRequest>* out) {
  AMS_CHECK(out != nullptr);
  int stolen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return 0;
  while (stolen < max_requests && TotalLocked() > 0) {
    int cls = -1;
    for (int c = kNumPriorityClasses - 1; c >= 0; --c) {
      if (!bands_[static_cast<size_t>(c)].heap.empty()) {
        cls = c;
        break;
      }
    }
    const std::vector<QueuedRequest>& band = bands_[static_cast<size_t>(cls)].heap;
    const WithinClassOrder order = OrderForLocked(cls);
    // The band's last-served request: a kEdf heap only orders its head, so
    // the latest (deadline, sequence) is found by scan; value bands are
    // unordered slabs anyway.
    size_t chosen = 0;
    for (size_t i = 1; i < band.size(); ++i) {
      if (order == WithinClassOrder::kEdf) {
        if (band[i].deadline_s > band[chosen].deadline_s ||
            (band[i].deadline_s == band[chosen].deadline_s &&
             band[i].sequence > band[chosen].sequence)) {
          chosen = i;
        }
      } else if (band[i].value_density < band[chosen].value_density ||
                 (band[i].value_density == band[chosen].value_density &&
                  band[i].sequence > band[chosen].sequence)) {
        chosen = i;
      }
    }
    QueuedRequest request;
    RemoveAtLocked(cls, chosen, &request);
    if (track_tenants_) --tenants_[request.tenant_id].queued;
    out->push_back(std::move(request));
    ++stolen;
  }
  if (stolen == 0) return 0;
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  // Freed slots can unblock kBlock enqueuers (class- and tenant-specific
  // predicates, hence notify_all — see TryPop).
  if (wake) not_full_.notify_all();
  return stolen;
}

bool AdmissionQueue::Requeue(QueuedRequest&& request) {
  const int cls = static_cast<int>(request.priority_class);
  AMS_CHECK(cls >= 0 && cls < kNumPriorityClasses, "unknown priority class");
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return false;
  if (track_tenants_) ++tenants_[request.tenant_id].queued;
  std::vector<QueuedRequest>& band = bands_[static_cast<size_t>(cls)].heap;
  band.push_back(std::move(request));
  if (OrderForLocked(cls) == WithinClassOrder::kEdf) {
    std::push_heap(band.begin(), band.end(), Later);
  }
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  const bool wake = waiting_poppers_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t AdmissionQueue::class_size(PriorityClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bands_[static_cast<size_t>(cls)].heap.size();
}

int AdmissionQueue::tenant_queued(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.queued;
}

int AdmissionQueue::tenant_in_flight(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

int AdmissionQueue::waiting_enqueuers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_enqueuers_;
}

}  // namespace ams::serve
