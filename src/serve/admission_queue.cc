#include "serve/admission_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ams::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kReject:
      return "reject";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(const AdmissionConfig& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &Clock::Monotonic()),
      forced_service_after_(config.starvation_bound -
                            (kNumPriorityClasses - 1)) {
  AMS_CHECK(config_.capacity >= 1, "admission queue needs capacity >= 1");
  AMS_CHECK(config_.starvation_bound >= kNumPriorityClasses,
            "the starvation bound must cover one pop per class");
  for (const ClassConfig& cls : config_.classes) {
    AMS_CHECK(cls.weight >= 0, "class weights must be non-negative");
    AMS_CHECK(cls.queue_capacity >= 0,
              "per-class capacity must be >= 0 (0 = uncapped)");
  }
}

AdmissionQueue::AdmissionQueue(int capacity, OverloadPolicy policy)
    : AdmissionQueue([&] {
        AdmissionConfig config;
        config.capacity = capacity;
        config.overload = policy;
        return config;
      }()) {}

OverloadPolicy AdmissionQueue::PolicyFor(PriorityClass cls) const {
  const std::optional<OverloadPolicy>& per_class =
      config_.classes[static_cast<size_t>(cls)].overload;
  return per_class.has_value() ? *per_class : config_.overload;
}

size_t AdmissionQueue::TotalLocked() const {
  size_t total = 0;
  for (const ClassBand& band : bands_) total += band.heap.size();
  return total;
}

bool AdmissionQueue::HasSpaceLocked(int cls) const {
  if (TotalLocked() >= static_cast<size_t>(config_.capacity)) return false;
  const int class_cap = config_.classes[static_cast<size_t>(cls)].queue_capacity;
  return class_cap == 0 ||
         bands_[static_cast<size_t>(cls)].heap.size() <
             static_cast<size_t>(class_cap);
}

int AdmissionQueue::SelectClassLocked() {
  // 1. Starvation guard: a class passed over forced_service_after_ times
  //    while non-empty is served now; longest-passed-over first, ties to
  //    the more important class. Guard service does not touch the
  //    round-robin turn.
  int chosen = -1;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const ClassBand& band = bands_[static_cast<size_t>(c)];
    if (band.heap.empty() || band.passed_over < forced_service_after_) continue;
    if (chosen < 0 ||
        band.passed_over > bands_[static_cast<size_t>(chosen)].passed_over) {
      chosen = c;
    }
  }
  if (chosen < 0) {
    // 2. Weighted round-robin: the current class keeps its turn while it
    //    has work and credit; otherwise the turn advances cyclically to the
    //    next non-empty positive-weight class, reloading that class's
    //    credit from its weight.
    if (rr_credit_ > 0 && config_.classes[static_cast<size_t>(rr_class_)].weight > 0 &&
        !bands_[static_cast<size_t>(rr_class_)].heap.empty()) {
      chosen = rr_class_;
      --rr_credit_;
    } else {
      for (int step = 1; step <= kNumPriorityClasses; ++step) {
        const int c = (rr_class_ + step) % kNumPriorityClasses;
        if (config_.classes[static_cast<size_t>(c)].weight > 0 &&
            !bands_[static_cast<size_t>(c)].heap.empty()) {
          rr_class_ = c;
          rr_credit_ = config_.classes[static_cast<size_t>(c)].weight - 1;
          chosen = c;
          break;
        }
      }
    }
  }
  if (chosen < 0) {
    // 3. Strict fallback: only weight-0 (background) classes have work;
    //    serve the most important one.
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      if (!bands_[static_cast<size_t>(c)].heap.empty()) {
        chosen = c;
        break;
      }
    }
  }
  AMS_CHECK(chosen >= 0, "SelectClassLocked called on an empty queue");
  // Starvation accounting: every other class with queued work was passed
  // over by this pop; the served class (and empty classes) start fresh.
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    ClassBand& band = bands_[static_cast<size_t>(c)];
    if (c == chosen || band.heap.empty()) {
      band.passed_over = 0;
    } else {
      ++band.passed_over;
    }
  }
  return chosen;
}

void AdmissionQueue::EvictOldestLocked(int cls, QueuedRequest* victim) {
  std::vector<QueuedRequest>& heap = bands_[static_cast<size_t>(cls)].heap;
  AMS_CHECK(!heap.empty(), "no shed victim in the chosen class");
  // Linear scan over the bounded band; eviction breaks the heap property at
  // one position, so re-heapify.
  size_t oldest = 0;
  for (size_t i = 1; i < heap.size(); ++i) {
    if (heap[i].sequence < heap[oldest].sequence) oldest = i;
  }
  *victim = std::move(heap[oldest]);
  heap[oldest] = std::move(heap.back());
  heap.pop_back();
  std::make_heap(heap.begin(), heap.end(), Later);
}

AdmitOutcome AdmissionQueue::Enqueue(QueuedRequest&& request,
                                     std::vector<QueuedRequest>* bounced) {
  AMS_CHECK(bounced != nullptr);
  const int cls = static_cast<int>(request.priority_class);
  AMS_CHECK(cls >= 0 && cls < kNumPriorityClasses, "unknown priority class");
  // Arrival stamps (before any kBlock wait: the latency clock starts when
  // the caller showed up, and EDF urgency is arrival + slack).
  request.enqueue_time_s = clock_->NowSeconds();
  request.deadline_s = request.enqueue_time_s + request.slack_s;

  std::unique_lock<std::mutex> lock(mu_);
  const OverloadPolicy policy = PolicyFor(request.priority_class);
  if (policy == OverloadPolicy::kBlock) {
    ++waiting_enqueuers_;
    not_full_.wait(lock, [this, cls] { return closed_ || HasSpaceLocked(cls); });
    --waiting_enqueuers_;
  }
  if (closed_) {
    lock.unlock();
    bounced->push_back(std::move(request));
    return AdmitOutcome::kClosed;
  }
  if (!HasSpaceLocked(cls)) {
    if (policy == OverloadPolicy::kReject) {
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejected;
    }
    // kShedOldest. A class-cap overflow sheds within the arriving class; a
    // queue-wide overflow sheds from the least important non-empty class
    // that is no more important than the arrival.
    const int class_cap =
        config_.classes[static_cast<size_t>(cls)].queue_capacity;
    int victim_class = -1;
    if (class_cap > 0 && bands_[static_cast<size_t>(cls)].heap.size() >=
                             static_cast<size_t>(class_cap)) {
      victim_class = cls;
    } else {
      for (int c = kNumPriorityClasses - 1; c >= cls; --c) {
        if (!bands_[static_cast<size_t>(c)].heap.empty()) {
          victim_class = c;
          break;
        }
      }
    }
    if (victim_class < 0) {
      // Everything resident outranks the arrival: shedding would invert
      // priority, so the arrival bounces instead.
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejected;
    }
    QueuedRequest victim;
    EvictOldestLocked(victim_class, &victim);
    bounced->push_back(std::move(victim));
  }
  std::vector<QueuedRequest>& heap = bands_[static_cast<size_t>(cls)].heap;
  heap.push_back(std::move(request));
  std::push_heap(heap.begin(), heap.end(), Later);
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  const bool wake = waiting_poppers_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  return AdmitOutcome::kAccepted;
}

bool AdmissionQueue::PopLocked(QueuedRequest* out) {
  if (TotalLocked() == 0) return false;
  const int cls = SelectClassLocked();
  std::vector<QueuedRequest>& heap = bands_[static_cast<size_t>(cls)].heap;
  std::pop_heap(heap.begin(), heap.end(), Later);
  *out = std::move(heap.back());
  heap.pop_back();
  depth_.store(TotalLocked(), std::memory_order_relaxed);
  return true;
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (!PopLocked(out)) return false;
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  // notify_all, not notify_one: blocked enqueuers wait on class-specific
  // predicates (per-class caps), so the single woken thread might not be
  // the one whose class gained space.
  if (wake) not_full_.notify_all();
  return true;
}

int AdmissionQueue::TryPopBatch(int max_requests,
                                std::vector<QueuedRequest>* out) {
  AMS_CHECK(out != nullptr);
  int popped = 0;
  std::unique_lock<std::mutex> lock(mu_);
  QueuedRequest request;
  while (popped < max_requests && PopLocked(&request)) {
    out->push_back(std::move(request));
    ++popped;
  }
  const bool wake = popped > 0 && waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) {
    // Several slots may have opened at once, across several classes.
    not_full_.notify_all();
  }
  return popped;
}

bool AdmissionQueue::WaitPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_poppers_;
  not_empty_.wait(lock, [this] { return closed_ || TotalLocked() > 0; });
  --waiting_poppers_;
  if (!PopLocked(out)) return false;  // closed and empty: no more work, ever
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_all();
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t AdmissionQueue::class_size(PriorityClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bands_[static_cast<size_t>(cls)].heap.size();
}

int AdmissionQueue::waiting_enqueuers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_enqueuers_;
}

}  // namespace ams::serve
