#include "serve/admission_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ams::serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kReject:
      return "reject";
    case OverloadPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(int capacity, OverloadPolicy policy)
    : capacity_(capacity), policy_(policy) {
  AMS_CHECK(capacity >= 1, "admission queue needs capacity >= 1");
  heap_.reserve(static_cast<size_t>(capacity));
}

AdmitOutcome AdmissionQueue::Enqueue(QueuedRequest&& request,
                                     std::vector<QueuedRequest>* bounced) {
  AMS_CHECK(bounced != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == OverloadPolicy::kBlock) {
    ++waiting_enqueuers_;
    not_full_.wait(lock, [this] {
      return closed_ || heap_.size() < static_cast<size_t>(capacity_);
    });
    --waiting_enqueuers_;
  }
  if (closed_) {
    lock.unlock();
    bounced->push_back(std::move(request));
    return AdmitOutcome::kClosed;
  }
  if (heap_.size() >= static_cast<size_t>(capacity_)) {
    if (policy_ == OverloadPolicy::kReject) {
      lock.unlock();
      bounced->push_back(std::move(request));
      return AdmitOutcome::kRejected;
    }
    // kShedOldest: evict the stalest entry (smallest admission sequence).
    // Linear scan over the bounded heap; eviction breaks the heap property
    // at one position, so re-heapify.
    size_t victim = 0;
    for (size_t i = 1; i < heap_.size(); ++i) {
      if (heap_[i].sequence < heap_[victim].sequence) victim = i;
    }
    bounced->push_back(std::move(heap_[victim]));
    heap_[victim] = std::move(heap_.back());
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), Later);
  }
  heap_.push_back(std::move(request));
  std::push_heap(heap_.begin(), heap_.end(), Later);
  depth_.store(heap_.size(), std::memory_order_relaxed);
  const bool wake = waiting_poppers_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  return AdmitOutcome::kAccepted;
}

bool AdmissionQueue::PopLocked(QueuedRequest* out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  *out = std::move(heap_.back());
  heap_.pop_back();
  depth_.store(heap_.size(), std::memory_order_relaxed);
  return true;
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  if (!PopLocked(out)) return false;
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_one();
  return true;
}

int AdmissionQueue::TryPopBatch(int max_requests,
                                std::vector<QueuedRequest>* out) {
  AMS_CHECK(out != nullptr);
  int popped = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (popped < max_requests && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    out->push_back(std::move(heap_.back()));
    heap_.pop_back();
    ++popped;
  }
  depth_.store(heap_.size(), std::memory_order_relaxed);
  const bool wake = popped > 0 && waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) {
    // Several slots may have opened at once.
    not_full_.notify_all();
  }
  return popped;
}

bool AdmissionQueue::WaitPop(QueuedRequest* out) {
  AMS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_poppers_;
  not_empty_.wait(lock, [this] { return closed_ || !heap_.empty(); });
  --waiting_poppers_;
  if (!PopLocked(out)) return false;  // closed and empty: no more work, ever
  const bool wake = waiting_enqueuers_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_one();
  return true;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace ams::serve
