#ifndef AMS_SERVE_SERVER_RUNTIME_H_
#define AMS_SERVE_SERVER_RUNTIME_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/labeling_service.h"
#include "serve/admission_queue.h"
#include "serve/clock.h"
#include "serve/forward_coalescer.h"
#include "serve/metrics.h"
#include "serve/priority_class.h"
#include "serve/request.h"
#include "serve/value_estimator.h"

namespace ams::serve {

/// Serving-runtime knobs. Defaults favor throughput with backpressure and
/// an 8:4:1 interactive:standard:batch service ratio.
struct ServeOptions {
  /// Worker run-loops; <= 0 resolves to the session's worker count.
  int workers = 0;
  /// Bound on queued-but-not-admitted requests (admission control).
  int queue_capacity = 1024;
  /// Items one worker multiplexes at once. Larger than the SubmitBatch wave
  /// size (16): the run-loop refills continuously, so unlike a wave there
  /// are no straggler rounds, and a fuller resident set keeps amortizing
  /// the per-tick batched forward and bookkeeping (32 measures fastest in
  /// bench_serve_runtime; beyond that the working set stops fitting cache).
  int max_resident_per_worker = 32;
  /// What a full queue does with new work (per-class override in
  /// `classes`).
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Deadline slack granted to Enqueue() calls that do not pass their own:
  /// deadline = arrival + slack. Infinity = no deadline (pure FIFO order
  /// within a class).
  double default_slack_s = std::numeric_limits<double>::infinity();
  /// Per-class weight / queue cap / overload override / order override,
  /// indexed by PriorityClass (see AdmissionConfig).
  std::array<ClassConfig, kNumPriorityClasses> classes = kDefaultClassConfigs;
  /// Starvation bound K across classes (see AdmissionConfig).
  int starvation_bound = 16;
  /// Within-class admission order (per-class override in `classes`): kEdf
  /// reproduces the deadline-only PR-4 behavior; kValueDensity/kHybrid
  /// serve by estimated marginal recall per unit cost (see AdmissionConfig
  /// and ValueEstimator).
  WithinClassOrder within_class_order = WithinClassOrder::kEdf;
  /// Per-tenant quotas (queued cap, in-flight cap, rate bucket); empty =
  /// no tenant accounting.
  TenantQuotaTable tenant_quotas;
  /// Scores QueuedRequest::value_density at enqueue when any class orders
  /// by value; null = a ProfileValueEstimator over the session. Must
  /// outlive the runtime when set.
  const ValueEstimator* value_estimator = nullptr;
  /// Time source for every serve-side timestamp (admission stamps,
  /// deadlines, latencies, metrics uptime); null = Clock::Monotonic().
  /// Tests inject a ManualClock here for deterministic timing assertions.
  const Clock* clock = nullptr;
  /// Tracing seam: when set (and enabled), the runtime records lifecycle
  /// spans — enqueue/quota instants, queue-wait, exec, per-tick stepper and
  /// forward spans — into per-worker obs::TraceBuffer lanes, and the phase
  /// section of Metrics populates. Null (the default) keeps every
  /// instrumentation site at a single pointer test; a disabled tracer costs
  /// one extra relaxed load. Must outlive the runtime. A sharded router
  /// passes one shared tracer to every shard.
  obs::Tracer* tracer = nullptr;
  /// This runtime's shard index in a sharded deployment (trace lane keying
  /// and cluster-unique trace ids); 0 standalone.
  int shard_id = 0;
  /// Coalesce the per-tick Q-forwards of this runtime's workers into one
  /// batched forward per tick round (serve::ForwardCoalescer): opt-in
  /// because it trades per-worker independence for batch amortization —
  /// worth it when forwards dominate the tick and workers tick in similar
  /// rhythm. Results are bitwise identical either way. The AMS_COALESCE
  /// environment variable ("1"/"on"/"true") turns this on by default so CI
  /// can run the whole suite both ways. No-op for sessions without a
  /// predictor.
  bool coalesce_forwards = false;
  /// An externally owned coalescer to join instead of a runtime-private
  /// one — how route::ShardRouter coalesces forwards across ALL its shards
  /// (one device batch per cluster tick). Implies coalesce_forwards; must
  /// outlive the runtime.
  ForwardCoalescer* coalescer = nullptr;
};

/// The asynchronous serving runtime over a labeling session: admission in
/// front, long-lived worker run-loops behind. Each worker multiplexes up to
/// `max_resident_per_worker` in-flight items through a
/// core::LabelingService::ItemStepper, issuing one deduplicated batched
/// Q-forward per loop tick across all items resident on that worker — the
/// open-loop steady-state generalization of SubmitBatch's fixed waves. The
/// admission queue releases work per priority class (weighted round-robin
/// with a starvation bound, EDF within a class) and applies the configured
/// overload policy when full.
///
/// Per-item outcomes are identical to Submit() on the same session: items
/// are independent and the batched Q-path is bitwise identical to scalar,
/// so multiplexing changes scheduling cost, never results. (Sessions built
/// WithQuantizedInference(true) are the one exception: every worker serves
/// from a frozen int8 snapshot of the Q-net, trading exact Q values for
/// throughput while keeping recall within tolerance.)
///
/// Lifecycle: construction spawns the workers; Enqueue() hands back a
/// future; Drain() waits for all accepted work; Shutdown() (also run by the
/// destructor) stops admission, completes accepted work, and joins. The
/// session must outlive the runtime and must not serve SubmitBatch/Run
/// calls while the runtime is live (both sides share the session's
/// per-worker predictor clone pool).
class ServerRuntime {
 public:
  /// `session` must be predictor-driven or random-packing (stateful policy
  /// sessions cannot be multiplexed; see LabelingService::NewItemStepper).
  explicit ServerRuntime(core::LabelingService* session,
                         ServeOptions options = {});
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  /// Per-request admission parameters for the fully general Enqueue.
  struct RequestOptions {
    /// Latency budget (deadline = arrival + slack): positive, infinity =
    /// explicitly no deadline. Unset = ServeOptions::default_slack_s.
    std::optional<double> slack_s;
    PriorityClass priority_class = PriorityClass::kStandard;
    /// Tenant owning the request (quota accounting + metrics slice).
    int tenant_id = 0;
  };

  /// Submits one item in the default (kStandard) class with the default
  /// deadline slack, as the default tenant (0). The future always resolves
  /// — with the labeling outcome, or with a rejected/shed/shutdown status.
  /// Under OverloadPolicy::kBlock this call blocks while the queue is full
  /// (or while the tenant is over its queued/in-flight quota). Thread-safe;
  /// any number of concurrent enqueuers.
  std::future<ServeResult> Enqueue(const core::WorkItem& item);

  /// Same, with a per-request deadline of now + `slack_s` (EDF priority
  /// within the class: tighter slack pops sooner).
  std::future<ServeResult> Enqueue(const core::WorkItem& item, double slack_s);

  /// Same, in an explicit priority class with the default slack.
  std::future<ServeResult> Enqueue(const core::WorkItem& item,
                                   PriorityClass cls);

  /// Class + slack, default tenant.
  std::future<ServeResult> Enqueue(const core::WorkItem& item, double slack_s,
                                   PriorityClass cls);

  /// Fully explicit: slack + class + tenant.
  std::future<ServeResult> Enqueue(const core::WorkItem& item,
                                   const RequestOptions& request);

  /// Blocks until every request accepted so far has completed (queue empty
  /// and nothing in flight). The runtime keeps serving afterwards.
  void Drain();

  /// Stops admission, completes all accepted work, joins the workers.
  /// Idempotent; implied by destruction. Enqueues after (or racing with)
  /// shutdown resolve to ServeStatus::kShutdown, and enqueuers blocked on
  /// a full kBlock queue are woken with that status.
  void Shutdown();

  /// Migration seam for route::ShardRouter. Steals up to `max_requests`
  /// queued-but-not-started requests (the ones this runtime would serve
  /// last; see AdmissionQueue::StealBatch) with their promises and
  /// admission stamps intact, transferring ownership to the caller: this
  /// runtime's Drain() no longer waits on them and `migrated_out` is
  /// counted. Returns the number stolen (0 while shutting down). The caller
  /// must either RequeueMigrated each request on a peer runtime sharing the
  /// same serve Clock (deadlines are absolute clock readings) or resolve
  /// its promise itself.
  int StealQueued(int max_requests, std::vector<QueuedRequest>* out);

  /// Admits a request stolen from a peer runtime, preserving its stamps and
  /// bypassing admission gates (see AdmissionQueue::Requeue); counts
  /// `migrated_in` and makes Drain() wait on it. False iff this runtime is
  /// shutting down — the request is left intact for the caller.
  bool RequeueMigrated(QueuedRequest&& request);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  /// Metrics snapshot stamped with the runtime's uptime on the serve clock.
  std::string MetricsJson() const;

  const ServeOptions& options() const { return options_; }
  const Clock& clock() const { return *clock_; }
  /// Read-only admission-queue introspection (per-class depths, blocked
  /// enqueuers) for operators and deterministic tests.
  const AdmissionQueue& admission_queue() const { return queue_; }
  int worker_count() const { return static_cast<int>(workers_.size()); }

 private:
  /// A request a worker has admitted into its stepper, keyed by ticket.
  struct InFlightRequest {
    std::promise<ServeResult> promise;
    PriorityClass priority_class = PriorityClass::kStandard;
    int tenant_id = 0;
    /// The tenant's metrics slice, resolved once at admission (pointer
    /// stays valid for the registry's lifetime).
    TenantMetrics* tenant_metrics = nullptr;
    double deadline_s = std::numeric_limits<double>::infinity();
    double enqueue_time_s = 0.0;
    double admit_time_s = 0.0;
    /// Carried from the QueuedRequest so completion can close the exec span.
    obs::TraceContext trace;
  };

  static AdmissionConfig AdmissionConfigFrom(const ServeOptions& options);

  void WorkerLoop(int worker_index);
  /// Records an instant event for a sampled request on the admission lane
  /// (no-op when tracing is off/disabled).
  void RecordRequestInstant(obs::Phase phase, const obs::TraceContext& trace,
                            int a0, int a1, int a2);
  /// Resolves a bounced (rejected / shed / post-shutdown) request.
  void ResolveBounced(QueuedRequest&& request, ServeStatus status);
  /// Completed-work accounting shared by every resolution path.
  void FinishOne();

  core::LabelingService* session_;
  ServeOptions options_;
  /// The serve time source (options.clock or the monotonic default); every
  /// timestamp in the runtime, queue and metrics reads this. The metrics
  /// registry tracks uptime itself from AttachClock time (= construction).
  const Clock* clock_;
  Metrics metrics_;
  /// The default estimator when value ordering is on and no
  /// options.value_estimator was supplied.
  std::unique_ptr<ProfileValueEstimator> owned_estimator_;
  /// The estimator stamping QueuedRequest::value_density; null when every
  /// class orders kEdf (no density is computed — the PR-4 enqueue path).
  const ValueEstimator* estimator_ = nullptr;
  AdmissionQueue queue_;
  /// Tracing (options.tracer): `admission_lane_` takes the enqueue-side
  /// instants (enqueue/quota/migration events race from many caller
  /// threads; the ring's fetch_add ticketing makes that safe); each worker
  /// caches its own lane in WorkerLoop. Both null when tracing is off.
  obs::Tracer* tracer_ = nullptr;
  obs::TraceBuffer* admission_lane_ = nullptr;
  /// Forward coalescing (options.coalesce_forwards / options.coalescer):
  /// the runtime-private coalescer when no external one was supplied, and
  /// the pointer the workers join (null = coalescing off).
  std::unique_ptr<ForwardCoalescer> owned_coalescer_;
  ForwardCoalescer* coalescer_ = nullptr;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> sequence_{0};
  std::atomic<uint64_t> live_sequence_{0};
  /// Accepted but not yet finished (queued + in flight). Drain() waits on
  /// this reaching zero.
  std::atomic<long> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  /// Serializes Shutdown() calls (idempotent join); the queue's closed flag
  /// is the shutdown signal the workers and enqueuers observe.
  std::mutex shutdown_mu_;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_SERVER_RUNTIME_H_
