#ifndef AMS_SERVE_ADMISSION_QUEUE_H_
#define AMS_SERVE_ADMISSION_QUEUE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/clock.h"
#include "serve/priority_class.h"
#include "serve/request.h"

namespace ams::serve {

/// What a full admission queue does with new work.
enum class OverloadPolicy {
  /// Enqueue blocks until a worker frees a slot (backpressure onto the
  /// caller; nothing is ever refused or dropped).
  kBlock,
  /// Enqueue refuses immediately (fail-fast admission control; the caller
  /// gets ServeStatus::kRejected and decides whether to retry).
  kReject,
  /// A resident request is dropped (ServeStatus::kShed) to admit the new
  /// one — freshest-work-wins load shedding. Victims come from the least
  /// important non-empty class that is no more important than the arrival
  /// (batch work is shed before interactive work; an arrival never
  /// displaces more important work — when only more important work is
  /// resident, the arrival itself bounces as kRejected). Within the victim
  /// class, the oldest admission sequence is dropped.
  kShedOldest,
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// How AdmissionQueue::Enqueue disposed of a request.
enum class AdmitOutcome {
  /// Queued; the request was consumed.
  kAccepted,
  /// Refused (full queue under kReject, or under kShedOldest with only
  /// more-important work resident); the request is handed back via
  /// `bounced` for the caller to resolve.
  kRejected,
  /// Refused because Close() had been called; handed back via `bounced`.
  kClosed,
};

/// Per-class admission configuration.
struct ClassConfig {
  /// Weighted-round-robin share: consecutive pops granted to this class per
  /// RR turn while it has queued work. 0 = strict background — the class is
  /// never chosen by the round-robin and drains only when every
  /// positive-weight class is empty (strict priority) or when the
  /// starvation bound forces it.
  int weight = 1;
  /// Bound on this class's queued requests; 0 = bounded only by the
  /// queue-wide capacity.
  int queue_capacity = 0;
  /// Overload policy applied to arrivals of this class; unset = the
  /// queue-wide policy.
  std::optional<OverloadPolicy> overload;
};

/// The default per-class table (shared by AdmissionConfig and
/// ServeOptions so the defaults cannot diverge): 8:4:1
/// interactive:standard:batch weights, no per-class caps or overrides.
inline constexpr std::array<ClassConfig, kNumPriorityClasses>
    kDefaultClassConfigs = {ClassConfig{8, 0, std::nullopt},
                            ClassConfig{4, 0, std::nullopt},
                            ClassConfig{1, 0, std::nullopt}};

/// Admission-queue configuration. Defaults reproduce the single-band
/// behavior for uniform-class workloads (any weights do: with one non-empty
/// class every pop is that class's EDF head).
struct AdmissionConfig {
  /// Bound on the total queued (not yet popped) requests, >= 1.
  int capacity = 1024;
  /// Queue-wide overload policy (per-class override in `classes`).
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Starvation bound K, >= kNumPriorityClasses: whenever a class has
  /// queued work, it is served at least once within every K consecutive
  /// pops, whatever the weights (so a backlog of n requests drains within
  /// n*K pops). Internally a class is force-served once it has been passed
  /// over K - (kNumPriorityClasses - 1) times, which keeps the bound exact
  /// even when several classes starve at once.
  int starvation_bound = 16;
  /// Per-class weight/cap/policy, indexed by PriorityClass.
  std::array<ClassConfig, kNumPriorityClasses> classes = kDefaultClassConfigs;
  /// Timestamp source for admission stamps (enqueue_time_s, deadline_s);
  /// null = Clock::Monotonic().
  const Clock* clock = nullptr;
};

/// Bounded multi-tenant admission queue in front of the serving runtime:
/// one EDF band per PriorityClass (earliest deadline first, FIFO
/// tie-break), weighted round-robin service between classes with a hard
/// starvation bound, and per-class overload policy + queue cap on top of
/// the queue-wide capacity. Thread-safe; the blocking operations (kBlock
/// enqueues, WaitPop) are condition-variable based and wake on Close().
///
/// Pop-order contract (the reference model in
/// tests/serve_admission_model_test.cc mirrors this literally):
///  1. Starvation guard: a non-empty class that has been passed over for
///     starvation_bound - (kNumPriorityClasses - 1) consecutive pops is
///     served now; among several such classes, the longest-passed-over
///     wins, ties to the more important class.
///  2. Weighted round-robin: the current class keeps serving while it has
///     queued work and credit left (credit starts at its weight each turn);
///     otherwise the turn advances cyclically to the next non-empty class
///     with weight > 0.
///  3. Strict fallback: if no non-empty class has weight > 0, the most
///     important non-empty class is served.
/// Within the chosen class, pops are EDF (deadline, then admission
/// sequence). Single-class workloads therefore pop in exactly the
/// single-band EDF order.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config);
  /// Single-band convenience: queue-wide `capacity` and `policy`, default
  /// class table.
  AdmissionQueue(int capacity, OverloadPolicy policy);

  /// Stamps the request (enqueue_time_s = now, deadline_s = now + slack_s),
  /// applies the class's overload policy and queues it.
  ///  - kAccepted: the request was consumed; any shed victims (kShedOldest)
  ///    are appended to `bounced` with their original promises intact.
  ///  - kRejected / kClosed: the request itself is appended to `bounced`.
  /// The caller resolves every bounced promise — the queue never touches
  /// result semantics.
  AdmitOutcome Enqueue(QueuedRequest&& request,
                       std::vector<QueuedRequest>* bounced);

  /// Pops the next request per the pop-order contract; false when empty.
  bool TryPop(QueuedRequest* out);

  /// Pops up to `max_requests` under one lock (the worker refill path: one
  /// acquisition per tick instead of one per item). A single batch spans
  /// classes exactly as `max_requests` successive TryPops would. Returns
  /// the number appended to `out`.
  int TryPopBatch(int max_requests, std::vector<QueuedRequest>* out);

  /// Blocks until a request is available or the queue is closed AND empty
  /// (drain-then-stop: queued work survives Close). False means "no more
  /// work, ever" — the worker run-loops' exit signal.
  bool WaitPop(QueuedRequest* out);

  /// Stops admission (subsequent Enqueues return kClosed) and wakes every
  /// blocked enqueuer and popper. Queued requests remain poppable.
  void Close();

  bool closed() const;
  /// Current queued count; lock-free (updated under the queue mutex, read
  /// relaxed — a gauge, not a synchronization point).
  size_t size() const { return depth_.load(std::memory_order_relaxed); }
  /// Queued count of one class (under the queue mutex).
  size_t class_size(PriorityClass cls) const;
  /// Enqueuers currently blocked inside a kBlock Enqueue (under the queue
  /// mutex). Lets tests wait for "the enqueuer has parked" deterministically
  /// instead of sleeping.
  int waiting_enqueuers() const;
  int capacity() const { return config_.capacity; }
  OverloadPolicy policy() const { return config_.overload; }
  const AdmissionConfig& config() const { return config_; }

 private:
  /// Min-heap comparator on (deadline, sequence). Implemented as a
  /// std::push_heap/pop_heap max-heap with inverted comparison.
  static bool Later(const QueuedRequest& a, const QueuedRequest& b) {
    if (a.deadline_s != b.deadline_s) return a.deadline_s > b.deadline_s;
    return a.sequence > b.sequence;
  }

  struct ClassBand {
    /// EDF heap of this class's queued requests.
    std::vector<QueuedRequest> heap;
    /// Pops that served other classes while this one had queued work, since
    /// this class was last served. Reaching the forced-service threshold
    /// triggers the starvation guard.
    int passed_over = 0;
  };

  /// Effective overload policy for one class.
  OverloadPolicy PolicyFor(PriorityClass cls) const;
  /// Whether class `cls` can accept one more request (queue-wide and
  /// per-class caps).
  bool HasSpaceLocked(int cls) const;
  size_t TotalLocked() const;
  /// The pop-order contract: which class serves the next pop; -1 if all
  /// bands are empty. Updates the round-robin / starvation accounting as a
  /// side effect, so call exactly once per actual pop.
  int SelectClassLocked();
  bool PopLocked(QueuedRequest* out);
  /// Pops the oldest (smallest admission sequence) request of class `cls`
  /// into `victim`; the band is re-heapified.
  void EvictOldestLocked(int cls, QueuedRequest* victim);

  const AdmissionConfig config_;
  const Clock* const clock_;
  /// Forced-service threshold derived from config_.starvation_bound.
  const int forced_service_after_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::array<ClassBand, kNumPriorityClasses> bands_;
  /// Weighted-round-robin cursor: current class and pops left in its turn.
  /// Starts one before class 0 (cyclically) with no credit, so the first
  /// pop's turn scan begins at the most important class.
  int rr_class_ = kNumPriorityClasses - 1;
  int rr_credit_ = 0;
  std::atomic<size_t> depth_{0};  // mirrors the summed band sizes
  /// Sleeper counts, so the hot paths skip the condition-variable notify
  /// (a potential futex syscall) entirely while everyone is busy — the
  /// steady-state throughput regime.
  int waiting_poppers_ = 0;
  int waiting_enqueuers_ = 0;
  bool closed_ = false;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_ADMISSION_QUEUE_H_
