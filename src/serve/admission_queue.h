#ifndef AMS_SERVE_ADMISSION_QUEUE_H_
#define AMS_SERVE_ADMISSION_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace ams::serve {

/// What a full admission queue does with new work.
enum class OverloadPolicy {
  /// Enqueue blocks until a worker frees a slot (backpressure onto the
  /// caller; nothing is ever refused or dropped).
  kBlock,
  /// Enqueue refuses immediately (fail-fast admission control; the caller
  /// gets ServeStatus::kRejected and decides whether to retry).
  kReject,
  /// The oldest queued request is dropped (ServeStatus::kShed) to admit the
  /// new one — freshest-work-wins load shedding for streams where stale
  /// items lose their value.
  kShedOldest,
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// How AdmissionQueue::Enqueue disposed of a request.
enum class AdmitOutcome {
  /// Queued; the request was consumed.
  kAccepted,
  /// Refused (kReject policy, full queue); the request is handed back via
  /// `bounced` for the caller to resolve.
  kRejected,
  /// Refused because Close() had been called; handed back via `bounced`.
  kClosed,
};

/// Bounded, deadline-ordered (EDF) admission queue in front of the serving
/// runtime: requests pop earliest-deadline-first with FIFO tie-break, and a
/// full queue applies the configured overload policy. Thread-safe; the
/// blocking operations (kBlock enqueues, WaitPop) are condition-variable
/// based and wake on Close().
class AdmissionQueue {
 public:
  /// `capacity` >= 1 bounds the number of queued (not yet popped) requests.
  AdmissionQueue(int capacity, OverloadPolicy policy);

  /// Applies the overload policy and queues the request.
  ///  - kAccepted: the request was consumed; any shed victims (kShedOldest)
  ///    are appended to `bounced` with their original promises intact.
  ///  - kRejected / kClosed: the request itself is appended to `bounced`.
  /// The caller resolves every bounced promise — the queue never touches
  /// result semantics.
  AdmitOutcome Enqueue(QueuedRequest&& request,
                       std::vector<QueuedRequest>* bounced);

  /// Pops the earliest-deadline request without blocking; false when empty.
  bool TryPop(QueuedRequest* out);

  /// Pops up to `max_requests` in EDF order under one lock (the worker
  /// refill path: one acquisition per tick instead of one per item).
  /// Returns the number appended to `out`.
  int TryPopBatch(int max_requests, std::vector<QueuedRequest>* out);

  /// Blocks until a request is available or the queue is closed AND empty
  /// (drain-then-stop: queued work survives Close). False means "no more
  /// work, ever" — the worker run-loops' exit signal.
  bool WaitPop(QueuedRequest* out);

  /// Stops admission (subsequent Enqueues return kClosed) and wakes every
  /// blocked enqueuer and popper. Queued requests remain poppable.
  void Close();

  bool closed() const;
  /// Current queued count; lock-free (updated under the queue mutex, read
  /// relaxed — a gauge, not a synchronization point).
  size_t size() const { return depth_.load(std::memory_order_relaxed); }
  int capacity() const { return capacity_; }
  OverloadPolicy policy() const { return policy_; }

 private:
  /// Min-heap comparator on (deadline, sequence). Implemented as a
  /// std::push_heap/pop_heap max-heap with inverted comparison.
  static bool Later(const QueuedRequest& a, const QueuedRequest& b) {
    if (a.deadline_s != b.deadline_s) return a.deadline_s > b.deadline_s;
    return a.sequence > b.sequence;
  }

  bool PopLocked(QueuedRequest* out);

  const int capacity_;
  const OverloadPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<QueuedRequest> heap_;
  std::atomic<size_t> depth_{0};  // mirrors heap_.size()
  /// Sleeper counts, so the hot paths skip the condition-variable notify
  /// (a potential futex syscall) entirely while everyone is busy — the
  /// steady-state throughput regime.
  int waiting_poppers_ = 0;
  int waiting_enqueuers_ = 0;
  bool closed_ = false;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_ADMISSION_QUEUE_H_
