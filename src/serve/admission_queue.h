#ifndef AMS_SERVE_ADMISSION_QUEUE_H_
#define AMS_SERVE_ADMISSION_QUEUE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/clock.h"
#include "serve/priority_class.h"
#include "serve/request.h"

namespace ams::serve {

/// What a full admission queue does with new work.
enum class OverloadPolicy {
  /// Enqueue blocks until a worker frees a slot (backpressure onto the
  /// caller; nothing is ever refused or dropped).
  kBlock,
  /// Enqueue refuses immediately (fail-fast admission control; the caller
  /// gets ServeStatus::kRejected and decides whether to retry).
  kReject,
  /// A resident request is dropped (ServeStatus::kShed) to admit the new
  /// one — freshest-work-wins load shedding. Victims come from the least
  /// important non-empty class that is no more important than the arrival
  /// (batch work is shed before interactive work; an arrival never
  /// displaces more important work — when only more important work is
  /// resident, the arrival itself bounces as kRejected). Within the victim
  /// class, the victim is the oldest admission sequence under kEdf ordering
  /// and the lowest value density (ties: oldest) under kValueDensity and
  /// kHybrid ordering.
  kShedOldest,
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// How the requests queued within one priority class are ordered for
/// service. Paper-aware admission: the scheduler's scarce model-execution
/// budget should go where it buys the most marginal recall per unit cost,
/// so a band can serve by each request's stamped value density instead of
/// (or blended with) its deadline.
enum class WithinClassOrder {
  /// Earliest deadline first, FIFO among equal deadlines (the PR-4
  /// behavior; the default).
  kEdf,
  /// Highest QueuedRequest::value_density first, FIFO among equal
  /// densities. Deadlines still stamp latency metrics but do not order.
  kValueDensity,
  /// Deadline-feasible value density: among requests whose slack still
  /// admits them (deadline >= now at pop time), the highest density pops
  /// first (ties: earlier deadline, then FIFO); when every queued request
  /// has already missed its deadline, the band falls back to EDF so the
  /// least-late work drains first.
  kHybrid,
};

const char* WithinClassOrderName(WithinClassOrder order);

/// Parses "edf" / "value" / "hybrid"; false on anything else (`*out`
/// untouched).
bool WithinClassOrderFromName(const char* name, WithinClassOrder* out);

/// How AdmissionQueue::Enqueue disposed of a request.
enum class AdmitOutcome {
  /// Queued; the request was consumed.
  kAccepted,
  /// Refused (full queue under kReject, or under kShedOldest with only
  /// more-important work resident); the request is handed back via
  /// `bounced` for the caller to resolve.
  kRejected,
  /// Refused by the request's tenant quota (queued cap, in-flight cap, or
  /// an empty rate-token bucket); handed back via `bounced`. A distinct
  /// outcome so callers can account quota pressure separately from queue
  /// pressure.
  kRejectedQuota,
  /// Refused because Close() had been called; handed back via `bounced`.
  kClosed,
};

/// Per-class admission configuration.
struct ClassConfig {
  /// Weighted-round-robin share: consecutive pops granted to this class per
  /// RR turn while it has queued work. 0 = strict background — the class is
  /// never chosen by the round-robin and drains only when every
  /// positive-weight class is empty (strict priority) or when the
  /// starvation bound forces it.
  int weight = 1;
  /// Bound on this class's queued requests; 0 = bounded only by the
  /// queue-wide capacity.
  int queue_capacity = 0;
  /// Overload policy applied to arrivals of this class; unset = the
  /// queue-wide policy.
  std::optional<OverloadPolicy> overload;
  /// Within-class service order of this class's band; unset = the
  /// queue-wide AdmissionConfig::within_class_order.
  std::optional<WithinClassOrder> order;
};

/// The default per-class table (shared by AdmissionConfig and
/// ServeOptions so the defaults cannot diverge): 8:4:1
/// interactive:standard:batch weights, no per-class caps or overrides.
inline constexpr std::array<ClassConfig, kNumPriorityClasses>
    kDefaultClassConfigs = {ClassConfig{8, 0, std::nullopt, std::nullopt},
                            ClassConfig{4, 0, std::nullopt, std::nullopt},
                            ClassConfig{1, 0, std::nullopt, std::nullopt}};

/// Admission quota of one tenant. A zero limit means "unlimited" for that
/// dimension; the all-zero default constrains nothing.
struct TenantQuota {
  /// Bound on the tenant's queued (admitted, not yet popped) requests.
  int max_queued = 0;
  /// Bound on the tenant's popped-but-unfinished requests (the runtime
  /// reports completions back through AdmissionQueue::TenantFinished).
  int max_in_flight = 0;
  /// Token-bucket refill rate in requests/second; 0 disables the bucket.
  /// An arrival finding an empty bucket bounces kRejectedQuota whatever the
  /// overload policy — blocking on future tokens has no wakeup source, and
  /// a rate limiter is fail-fast by design. A token is spent by every
  /// arrival that passes the gate (even one that later bounces on
  /// capacity): the bucket limits arrival rate, not acceptance rate, which
  /// is also what keeps concurrent same-tenant kBlock enqueues from
  /// spending one balance twice.
  double rate_per_s = 0.0;
  /// Token-bucket size (burst allowance); <= 0 with rate_per_s > 0 means 1.
  /// Values in (0, 1) are rejected at construction (they could never admit
  /// a request).
  double burst = 0.0;

  bool Unconstrained() const {
    return max_queued == 0 && max_in_flight == 0 && rate_per_s == 0.0;
  }
};

/// Per-tenant quota table: explicit entries by tenant id plus an optional
/// default applied to every unlisted tenant. An empty table disables tenant
/// accounting entirely (the PR-4 fast path).
struct TenantQuotaTable {
  std::map<int, TenantQuota> per_tenant;
  std::optional<TenantQuota> default_quota;

  /// The quota governing `tenant_id`; nullptr = unconstrained.
  const TenantQuota* QuotaFor(int tenant_id) const {
    const auto it = per_tenant.find(tenant_id);
    if (it != per_tenant.end()) return &it->second;
    return default_quota.has_value() ? &*default_quota : nullptr;
  }
  bool empty() const {
    return per_tenant.empty() && !default_quota.has_value();
  }
};

/// Admission-queue configuration. Defaults reproduce the single-band
/// behavior for uniform-class workloads (any weights do: with one non-empty
/// class every pop is that class's EDF head).
struct AdmissionConfig {
  /// Bound on the total queued (not yet popped) requests, >= 1.
  int capacity = 1024;
  /// Queue-wide overload policy (per-class override in `classes`).
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Queue-wide within-class service order (per-class override in
  /// `classes`). kEdf reproduces the PR-4 pop/shed behavior exactly.
  WithinClassOrder within_class_order = WithinClassOrder::kEdf;
  /// Starvation bound K, >= kNumPriorityClasses: whenever a class has
  /// queued work, it is served at least once within every K consecutive
  /// pops, whatever the weights (so a backlog of n requests drains within
  /// n*K pops). Internally a class is force-served once it has been passed
  /// over K - (kNumPriorityClasses - 1) times, which keeps the bound exact
  /// even when several classes starve at once.
  int starvation_bound = 16;
  /// Per-class weight/cap/policy/order, indexed by PriorityClass.
  std::array<ClassConfig, kNumPriorityClasses> classes = kDefaultClassConfigs;
  /// Per-tenant quotas; empty = no tenant accounting (zero overhead).
  TenantQuotaTable tenant_quotas;
  /// Timestamp source for admission stamps (enqueue_time_s, deadline_s);
  /// null = Clock::Monotonic().
  const Clock* clock = nullptr;
};

/// Bounded multi-tenant admission queue in front of the serving runtime:
/// one band per PriorityClass ordered by the class's WithinClassOrder,
/// weighted round-robin service between classes with a hard starvation
/// bound, per-class overload policy + queue cap on top of the queue-wide
/// capacity, and per-tenant quotas (queued cap, in-flight cap, rate token
/// bucket). Thread-safe; the blocking operations (kBlock enqueues, WaitPop)
/// are condition-variable based and wake on Close().
///
/// Pop-order contract (the reference model in
/// tests/serve_admission_model_test.cc mirrors this literally):
///  1. Starvation guard: a non-empty class that has been passed over for
///     starvation_bound - (kNumPriorityClasses - 1) consecutive pops is
///     served now; among several such classes, the longest-passed-over
///     wins, ties to the more important class.
///  2. Weighted round-robin: the current class keeps serving while it has
///     queued work and credit left (credit starts at its weight each turn);
///     otherwise the turn advances cyclically to the next non-empty class
///     with weight > 0.
///  3. Strict fallback: if no non-empty class has weight > 0, the most
///     important non-empty class is served.
/// Within the chosen class, the band's effective WithinClassOrder picks the
/// request: kEdf pops (deadline, then admission sequence); kValueDensity
/// pops (highest value_density, then admission sequence); kHybrid pops the
/// highest-density request whose deadline is still >= now (ties: earlier
/// deadline, then sequence), falling back to the kEdf rule when every
/// queued request is already late. Single-class kEdf workloads therefore
/// pop in exactly the legacy single-band EDF order.
///
/// Tenant-quota contract: an arrival whose tenant is over quota is treated
/// as overload of the arrival's class — kReject bounces it kRejectedQuota;
/// kShedOldest shed a queued-cap breach by displacing the tenant's own
/// queued work (least important class first, never a class more important
/// than the arrival; the victim within the band follows the shed rule of
/// the band's order), and bounces kRejectedQuota when the tenant has
/// nothing sheddable (in-flight breach, or only more-important work);
/// kBlock waits until the tenant has room again (pops free queued slots,
/// TenantFinished frees in-flight slots). An empty rate-token bucket always
/// bounces kRejectedQuota immediately, whatever the policy.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config);
  /// Single-band convenience: queue-wide `capacity` and `policy`, default
  /// class table.
  AdmissionQueue(int capacity, OverloadPolicy policy);

  /// Stamps the request (enqueue_time_s = now, deadline_s = now + slack_s),
  /// applies the tenant quota and the class's overload policy, and queues
  /// it.
  ///  - kAccepted: the request was consumed; any shed victims (kShedOldest)
  ///    are appended to `bounced` with their original promises intact.
  ///  - kRejected / kRejectedQuota / kClosed: the request itself is
  ///    appended to `bounced` for the caller to resolve.
  /// The caller resolves every bounced promise — the queue never touches
  /// result semantics.
  AdmitOutcome Enqueue(QueuedRequest&& request,
                       std::vector<QueuedRequest>* bounced);

  /// Pops the next request per the pop-order contract; false when empty.
  bool TryPop(QueuedRequest* out);

  /// Pops up to `max_requests` under one lock (the worker refill path: one
  /// acquisition per tick instead of one per item). A single batch spans
  /// classes exactly as `max_requests` successive TryPops would. Returns
  /// the number appended to `out`.
  int TryPopBatch(int max_requests, std::vector<QueuedRequest>* out);

  /// Blocks until a request is available or the queue is closed AND empty
  /// (drain-then-stop: queued work survives Close). False means "no more
  /// work, ever" — the worker run-loops' exit signal.
  bool WaitPop(QueuedRequest* out);

  /// Reports one popped request of `tenant_id` as finished, freeing an
  /// in-flight quota slot and waking enqueuers blocked on it. Call exactly
  /// once per popped request (after completion); a no-op when tenant
  /// accounting is off.
  void TenantFinished(int tenant_id);

  /// Migration seam for the sharded router (route::ShardRouter): removes up
  /// to `max_requests` queued-but-not-started requests and appends them to
  /// `out` with every admission stamp intact — priority class, tenant,
  /// value density, slack, absolute deadline, sequence, and enqueue time
  /// all travel with the request, so a peer queue sharing the same Clock
  /// re-admits it with identical urgency. Victims are the requests this
  /// queue would serve LAST: the least important non-empty class first, and
  /// within a band the latest (deadline, sequence) under kEdf or the lowest
  /// value density (ties: newest) under value ordering — stealing never
  /// takes work the local shard was about to serve. The stolen tenants'
  /// queued counts are released here (the work now counts against the
  /// destination queue) and blocked enqueuers are woken by the freed space;
  /// round-robin and starvation accounting are untouched (no pop happened).
  /// Returns the number stolen; 0 on a closed queue — during shutdown work
  /// drains in place instead of migrating.
  int StealBatch(int max_requests, std::vector<QueuedRequest>* out);

  /// Re-admits a stolen request with its stamps preserved: arrival time and
  /// deadline are NOT re-stamped, and no admission gate runs — capacity,
  /// class caps, tenant quotas, and rate buckets were already applied at
  /// the original front door, and migration must never drop, bounce, or
  /// block a legitimately admitted request (transient capacity overshoot is
  /// bounded by the router's per-tick migration batch). The tenant's queued
  /// count moves to this queue so pops and quota sheds stay consistent.
  /// False iff this queue is closed; the request is left intact for the
  /// caller to route elsewhere or resolve.
  bool Requeue(QueuedRequest&& request);

  /// Stops admission (subsequent Enqueues return kClosed) and wakes every
  /// blocked enqueuer and popper. Queued requests remain poppable.
  void Close();

  bool closed() const;
  /// Current queued count; lock-free (updated under the queue mutex, read
  /// relaxed — a gauge, not a synchronization point).
  size_t size() const { return depth_.load(std::memory_order_relaxed); }
  /// Queued count of one class (under the queue mutex).
  size_t class_size(PriorityClass cls) const;
  /// Queued / popped-but-unfinished counts of one tenant (under the queue
  /// mutex); 0 when tenant accounting is off.
  int tenant_queued(int tenant_id) const;
  int tenant_in_flight(int tenant_id) const;
  /// Enqueuers currently blocked inside a kBlock Enqueue (under the queue
  /// mutex). Lets tests wait for "the enqueuer has parked" deterministically
  /// instead of sleeping.
  int waiting_enqueuers() const;
  int capacity() const { return config_.capacity; }
  OverloadPolicy policy() const { return config_.overload; }
  /// Effective within-class order of one class (per-class override or the
  /// queue-wide setting).
  WithinClassOrder OrderFor(PriorityClass cls) const;
  const AdmissionConfig& config() const { return config_; }

 private:
  /// Min-heap comparator on (deadline, sequence) for kEdf bands.
  /// Implemented as a std::push_heap/pop_heap max-heap with inverted
  /// comparison.
  static bool Later(const QueuedRequest& a, const QueuedRequest& b) {
    if (a.deadline_s != b.deadline_s) return a.deadline_s > b.deadline_s;
    return a.sequence > b.sequence;
  }

  struct ClassBand {
    /// This class's queued requests: a (deadline, sequence) heap for kEdf
    /// bands, an unordered slab (pop selects by linear scan) for
    /// kValueDensity/kHybrid bands.
    std::vector<QueuedRequest> heap;
    /// Pops that served other classes while this one had queued work, since
    /// this class was last served. Reaching the forced-service threshold
    /// triggers the starvation guard.
    int passed_over = 0;
  };

  /// Per-tenant accounting (only maintained when the quota table is
  /// non-empty).
  struct TenantState {
    int queued = 0;
    int in_flight = 0;
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool bucket_started = false;
  };

  /// Effective overload policy for one class.
  OverloadPolicy PolicyFor(PriorityClass cls) const;
  WithinClassOrder OrderForLocked(int cls) const;
  /// Whether class `cls` can accept one more request (queue-wide and
  /// per-class caps).
  bool HasSpaceLocked(int cls) const;
  /// Whether `tenant`'s queued and in-flight counts leave room under
  /// `quota` (null quota = always true).
  bool TenantHasRoomLocked(const TenantQuota* quota,
                           const TenantState* tenant) const;
  size_t TotalLocked() const;
  /// The pop-order contract: which class serves the next pop; -1 if all
  /// bands are empty. Updates the round-robin / starvation accounting as a
  /// side effect, so call exactly once per actual pop.
  int SelectClassLocked();
  /// Index of the request the band's order serves next (band non-empty).
  size_t SelectWithinLocked(int cls, double now_s) const;
  bool PopLocked(QueuedRequest* out);
  /// Pops the shed victim of class `cls` into `victim`: the oldest
  /// (smallest admission sequence) request under kEdf, the lowest value
  /// density (ties: oldest) under kValueDensity/kHybrid. When
  /// `tenant_filter` is non-negative only that tenant's requests are
  /// candidates (the band must contain one).
  void EvictVictimLocked(int cls, int tenant_filter, QueuedRequest* victim);
  /// Whether class `cls` holds at least one request of `tenant`.
  bool BandHasTenantLocked(int cls, int tenant) const;
  /// Removes band index `i` preserving the band's invariant (re-heapify for
  /// kEdf bands, swap-pop for scan bands) and moves it into `out`.
  void RemoveAtLocked(int cls, size_t i, QueuedRequest* out);

  const AdmissionConfig config_;
  const Clock* const clock_;
  /// Forced-service threshold derived from config_.starvation_bound.
  const int forced_service_after_;
  /// Tenant accounting enabled (config_.tenant_quotas non-empty).
  const bool track_tenants_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::array<ClassBand, kNumPriorityClasses> bands_;
  std::map<int, TenantState> tenants_;
  /// Weighted-round-robin cursor: current class and pops left in its turn.
  /// Starts one before class 0 (cyclically) with no credit, so the first
  /// pop's turn scan begins at the most important class.
  int rr_class_ = kNumPriorityClasses - 1;
  int rr_credit_ = 0;
  std::atomic<size_t> depth_{0};  // mirrors the summed band sizes
  /// Sleeper counts, so the hot paths skip the condition-variable notify
  /// (a potential futex syscall) entirely while everyone is busy — the
  /// steady-state throughput regime.
  int waiting_poppers_ = 0;
  int waiting_enqueuers_ = 0;
  bool closed_ = false;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_ADMISSION_QUEUE_H_
