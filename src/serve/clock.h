#ifndef AMS_SERVE_CLOCK_H_
#define AMS_SERVE_CLOCK_H_

#include <atomic>

namespace ams::serve {

/// Time source for the serving runtime: every timestamp the serve:: layer
/// takes (admission stamps, deadlines, latency measurements, metrics uptime)
/// goes through this seam, so tests can substitute a deterministic
/// ManualClock and assert exact latencies, deadline misses and EDF order
/// without sleeping. Implementations must be monotonic non-decreasing and
/// safe to read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds on this clock's own monotonic axis (only differences and
  /// orderings are meaningful; the epoch is implementation-defined).
  virtual double NowSeconds() const = 0;

  /// The process-wide default: a steady wall clock whose epoch is its first
  /// use. Never destroyed (safe to read during static teardown).
  static const Clock& Monotonic();
};

/// Deterministic test clock: time moves only when the test advances it.
/// Reads are lock-free; Advance is safe to call concurrently with readers
/// (but advancing from multiple threads at once makes "now" racy by
/// definition — tests should own time from one thread).
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_s = 0.0) : now_s_(start_s) {}

  double NowSeconds() const override {
    return now_s_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `seconds` (>= 0).
  void Advance(double seconds);

  /// Jumps to an absolute reading; must not move time backwards.
  void Set(double seconds);

 private:
  std::atomic<double> now_s_;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_CLOCK_H_
