#ifndef AMS_SERVE_CLOCK_H_
#define AMS_SERVE_CLOCK_H_

// The clock seam moved to util/clock.h so lower layers (obs:: tracing,
// core:: steppers) can take timestamps without depending on serve::. The
// serve::Clock / serve::ManualClock names stay valid as aliases — serve::
// code and tests keep reading naturally.
#include "util/clock.h"

namespace ams::serve {

using Clock = util::Clock;
using ManualClock = util::ManualClock;

}  // namespace ams::serve

#endif  // AMS_SERVE_CLOCK_H_
