#ifndef AMS_SERVE_PRIORITY_CLASS_H_
#define AMS_SERVE_PRIORITY_CLASS_H_

namespace ams::serve {

/// Multi-tenant service band of one serving request. Lower value = more
/// important. The admission queue keeps one EDF band per class and arbitrates
/// between classes with weighted round-robin plus a hard starvation bound
/// (see AdmissionQueue); the overload policy can be set per class so batch
/// work is shed before interactive work.
enum class PriorityClass {
  /// Latency-sensitive user-facing traffic (paid tier, dashboards).
  kInteractive = 0,
  /// The default band: everything without an explicit contract.
  kStandard = 1,
  /// Throughput traffic that tolerates delay (backfills, re-labeling).
  kBatch = 2,
};

inline constexpr int kNumPriorityClasses = 3;

const char* PriorityClassName(PriorityClass cls);

/// Parses "interactive" / "standard" / "batch"; false on anything else
/// (`*out` untouched).
bool PriorityClassFromName(const char* name, PriorityClass* out);

}  // namespace ams::serve

#endif  // AMS_SERVE_PRIORITY_CLASS_H_
