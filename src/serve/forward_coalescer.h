#ifndef AMS_SERVE_FORWARD_COALESCER_H_
#define AMS_SERVE_FORWARD_COALESCER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/decision_plane.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "util/arena.h"
#include "util/clock.h"

namespace ams::serve {

/// Cross-worker (and, shared through route::ShardRouter, cross-shard)
/// Q-forward coalescer: instead of every ItemStepper issuing its own small
/// batched forward per tick, the workers of a cluster rendezvous once per
/// tick, pool their stale Q-slot requests, dedup identical states across
/// ALL participants, run ONE PredictValuesBatchTo into an arena-backed
/// buffer, and scatter the rows back into each participant's DecisionPlane.
///
/// Soundness: every serving stepper wraps a frozen clone of the same
/// predictor, and a Q row is a pure function of the state's features —
/// bitwise identical whatever batch it rides in (the PredictValuesBatchTo
/// contract). So any grouping of rows into batches yields results bitwise
/// identical to the per-stepper path; coalescing changes only who issues
/// the forward.
///
/// Rendezvous protocol: workers Activate() their Handle while they hold
/// resident work and Deactivate() before parking on the admission queue (or
/// exiting), so membership tracks exactly the workers that are guaranteed
/// to keep ticking. Each tick, every active worker's stepper runs one
/// ExecuteRound (even when it has nothing stale); the last arrival leads
/// the round — dedup, one forward, scatter — then releases the others.
/// Deadlock-free because an active worker never blocks outside the
/// rendezvous: ticking is pure compute and queue refills are non-blocking.
///
/// The price is lock-step ticking across participants; the win is one
/// device-sized batch per cluster tick instead of N stepper-sized ones
/// (see BENCH_serve.json's route_coalesced_4 scenario).
class ForwardCoalescer {
 public:
  struct Options {
    /// Records one kCoalescedForward span per non-empty round (on the
    /// leader's shard, lane obs::kCoalescerLane) when enabled.
    obs::Tracer* tracer = nullptr;
    /// Span timing source; nullptr means util::Clock::Monotonic().
    const util::Clock* clock = nullptr;
  };

  /// One worker's participation handle. The worker attaches it to its
  /// stepper (core::ForwardRoundExecutor), Activate()s while it has
  /// resident work, and Deactivate()s before blocking for new work.
  class Handle : public core::ForwardRoundExecutor {
   public:
    /// Joins the round membership. Idempotent.
    void Activate();
    /// Leaves the membership; if every remaining member has already
    /// arrived, this call completes their round on the way out. Idempotent.
    void Deactivate();

    /// Gathers `plane`'s stale requests, rendezvouses with the other active
    /// members, and returns once this participant's rows are committed
    /// (bitwise identical to plane->Prefetch(views)). The handle must be
    /// Active. Called once per tick by the attached stepper.
    core::ForwardRoundExecutor::RoundStats ExecuteRound(
        core::DecisionPlane* plane,
        const std::vector<core::DecisionPlane::SlotView>& views) override;

   private:
    friend class ForwardCoalescer;
    Handle(ForwardCoalescer* owner, Metrics* metrics, int shard_id);

    ForwardCoalescer* owner_;
    /// The registering runtime's metrics; the round leader records each
    /// round here exactly once (cluster aggregation then sums correctly).
    Metrics* metrics_;
    int shard_id_;
    obs::TraceBuffer* span_lane_ = nullptr;  // (shard, kCoalescerLane)

    // All below guarded by owner_->mu_ (pending_/stats_ are additionally
    // touched by their own worker thread only while not arrived).
    bool active_ = false;
    bool arrived_ = false;
    core::DecisionPlane* plane_ = nullptr;  // valid while arrived
    std::vector<core::DecisionPlane::PendingRequest> pending_;
    core::ForwardRoundExecutor::RoundStats stats_;
  };

  ForwardCoalescer();
  explicit ForwardCoalescer(Options options);

  ForwardCoalescer(const ForwardCoalescer&) = delete;
  ForwardCoalescer& operator=(const ForwardCoalescer&) = delete;

  /// Creates a worker's handle (stable pointer, owned by the coalescer;
  /// created inactive). `metrics` may be null in tests; `shard_id` keys the
  /// round span lane.
  Handle* NewHandle(Metrics* metrics, int shard_id);

  /// Round accounting across the coalescer's lifetime (non-empty rounds).
  long rounds() const { return rounds_.load(std::memory_order_relaxed); }
  /// Stale rows gathered from all participants, duplicates included.
  long gathered_rows() const {
    return gathered_rows_.load(std::memory_order_relaxed);
  }
  /// Unique rows actually forwarded after cross-participant dedup.
  long unique_rows() const {
    return unique_rows_.load(std::memory_order_relaxed);
  }
  /// Largest single coalesced batch (unique rows).
  long max_batch_rows() const {
    return max_batch_rows_.load(std::memory_order_relaxed);
  }

 private:
  /// Executes the pending round: dedups the union of every arrived member's
  /// requests, runs one forward with the first requester's (frozen, clone-
  /// identical) predictor, scatters rows back through each member's plane,
  /// records stats + span, and releases the waiters. Caller holds mu_.
  /// `leader` supplies the metrics sink and span lane (it is the last
  /// arrival, or a deactivating handle completing the others' round).
  void RunRoundLocked(Handle* leader);

  obs::Tracer* tracer_;  // non-const: NewHandle registers the span lane
  const util::Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Handle>> handles_;
  int active_ = 0;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  /// Round scratch (request/dedup tables, the flat Q buffer); reset per
  /// round, so steady-state rounds never touch the heap. Guarded by mu_.
  util::Arena arena_;
  std::vector<Handle*> members_;  // round scratch, reused

  std::atomic<long> rounds_{0};
  std::atomic<long> gathered_rows_{0};
  std::atomic<long> unique_rows_{0};
  std::atomic<long> max_batch_rows_{0};
};

/// True when the AMS_COALESCE environment variable asks for coalescing by
/// default ("1"/"on"/"true", case-sensitive like AMS_SIMD). Lets CI run the
/// whole suite with coalescing on without touching every test's options.
bool CoalesceForwardsFromEnv();

}  // namespace ams::serve

#endif  // AMS_SERVE_FORWARD_COALESCER_H_
