#include "serve/value_estimator.h"

#include <algorithm>

#include "util/check.h"

namespace ams::serve {

ProfileValueEstimator::ProfileValueEstimator(
    const core::LabelingService* session)
    : session_(session) {
  AMS_CHECK(session != nullptr);
}

double ProfileValueEstimator::ValueDensity(const core::WorkItem& item) const {
  const core::WorkEstimate estimate = session_->EstimateWork(item);
  if (estimate.expected_value <= 0.0) return 0.0;
  return estimate.expected_value / std::max(estimate.expected_cost_s, 1e-3);
}

}  // namespace ams::serve
