#ifndef AMS_SERVE_REQUEST_H_
#define AMS_SERVE_REQUEST_H_

#include <cstdint>
#include <future>
#include <limits>

#include "core/labeling_service.h"
#include "obs/trace.h"
#include "serve/priority_class.h"

namespace ams::serve {

/// Terminal state of one serving request.
enum class ServeStatus {
  /// Labeled; `outcome` is valid.
  kOk,
  /// Refused at admission: the queue was full under OverloadPolicy::kReject.
  kRejected,
  /// Accepted, then dropped from a full queue to admit newer work
  /// (OverloadPolicy::kShedOldest).
  kShed,
  /// Refused because the runtime had already shut down.
  kShutdown,
};

const char* ServeStatusName(ServeStatus status);

/// What a request's future resolves to. Latency fields are measured on the
/// runtime's monotonic clock; only `kOk` results carry a valid outcome and
/// full timing breakdown.
struct ServeResult {
  ServeStatus status = ServeStatus::kOk;
  core::LabelOutcome outcome;
  /// Enqueue -> dequeued by a worker.
  double queue_delay_s = 0.0;
  /// Dequeued -> completed (multiplexed stepping time, wall clock).
  double service_s = 0.0;
  /// Enqueue -> completed (or refusal/shed instant for non-kOk results).
  double latency_s = 0.0;
  /// Completion-time slack against the request deadline; negative = missed.
  /// Infinity for requests without a deadline.
  double slack_s = std::numeric_limits<double>::infinity();

  bool ok() const { return status == ServeStatus::kOk; }
  bool deadline_met() const { return slack_s >= 0.0; }
};

/// One request resident in the admission queue. Within its priority class,
/// the band's WithinClassOrder decides who pops first: kEdf orders by
/// (deadline, sequence) — earliest deadline first, FIFO among equal
/// deadlines, deadline-less (infinite deadline) requests draining last in
/// order — while kValueDensity/kHybrid order by the request's stamped
/// value density (see AdmissionQueue). Service between classes is the
/// admission queue's weighted round-robin with a starvation bound.
struct QueuedRequest {
  core::WorkItem item;
  /// Which service band the request rides in (weight, cap and overload
  /// policy are per-class AdmissionQueue configuration).
  PriorityClass priority_class = PriorityClass::kStandard;
  /// Tenant owning the request: the unit of quota accounting (max queued,
  /// max in flight, rate bucket) and of per-tenant metrics slices. 0 is the
  /// default tenant.
  int tenant_id = 0;
  /// Estimated marginal value recall per second of predicted model-execution
  /// cost, stamped by the runtime's serve::ValueEstimator at enqueue (0 when
  /// value ordering is off). Under kValueDensity/kHybrid, higher density
  /// pops first and lowest density is shed first.
  double value_density = 0.0;
  /// Latency budget granted at enqueue: the admission queue stamps
  /// deadline_s = enqueue_time_s + slack_s on the serve clock. Infinity =
  /// no deadline (pure FIFO within the class).
  double slack_s = std::numeric_limits<double>::infinity();
  /// Absolute deadline on the serve clock; stamped by AdmissionQueue from
  /// `slack_s` at admission time.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Admission sequence number (FIFO tie-break, shed-oldest victim order).
  uint64_t sequence = 0;
  /// Seed for stream-dependent pickers: the stored item id, or a live
  /// admission sequence number (core::LabelingService::ItemStepper::Admit).
  uint64_t stream_id = 0;
  /// When the request entered the queue; stamped by AdmissionQueue on the
  /// serve clock (before any kBlock wait: arrival time, not admit time).
  double enqueue_time_s = 0.0;
  /// Tracing identity, stamped once at original admission (obs::Tracer
  /// sampling decision + cluster-unique id). Rides the request through
  /// StealBatch/Requeue migration so a request's span chain stays connected
  /// across shards; zero/unsampled when tracing is off.
  obs::TraceContext trace;
  std::promise<ServeResult> promise;
};

}  // namespace ams::serve

#endif  // AMS_SERVE_REQUEST_H_
