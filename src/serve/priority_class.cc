#include "serve/priority_class.h"

#include <cstring>

namespace ams::serve {

const char* PriorityClassName(PriorityClass cls) {
  switch (cls) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kStandard:
      return "standard";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "unknown";
}

bool PriorityClassFromName(const char* name, PriorityClass* out) {
  if (name == nullptr || out == nullptr) return false;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const PriorityClass cls = static_cast<PriorityClass>(c);
    if (std::strcmp(name, PriorityClassName(cls)) == 0) {
      *out = cls;
      return true;
    }
  }
  return false;
}

}  // namespace ams::serve
