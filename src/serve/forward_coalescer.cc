#include "serve/forward_coalescer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace ams::serve {

ForwardCoalescer::ForwardCoalescer() : ForwardCoalescer(Options()) {}

ForwardCoalescer::ForwardCoalescer(Options options)
    : tracer_(options.tracer),
      clock_(options.clock != nullptr ? options.clock
                                      : &util::Clock::Monotonic()) {}

ForwardCoalescer::Handle::Handle(ForwardCoalescer* owner, Metrics* metrics,
                                 int shard_id)
    : owner_(owner), metrics_(metrics), shard_id_(shard_id) {}

ForwardCoalescer::Handle* ForwardCoalescer::NewHandle(Metrics* metrics,
                                                      int shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  handles_.emplace_back(new Handle(this, metrics, shard_id));
  Handle* handle = handles_.back().get();
  if (tracer_ != nullptr) {
    handle->span_lane_ = tracer_->EnsureLane(
        static_cast<std::uint16_t>(shard_id), obs::kCoalescerLane);
  }
  return handle;
}

void ForwardCoalescer::Handle::Activate() {
  std::lock_guard<std::mutex> lock(owner_->mu_);
  if (active_) return;
  active_ = true;
  ++owner_->active_;
}

void ForwardCoalescer::Handle::Deactivate() {
  std::lock_guard<std::mutex> lock(owner_->mu_);
  if (!active_) return;
  AMS_CHECK(!arrived_, "a handle must not deactivate mid-round");
  active_ = false;
  --owner_->active_;
  // This worker may have been the arrival the rest of the membership was
  // waiting on; complete their round on the way out.
  if (owner_->active_ > 0 && owner_->arrived_ == owner_->active_) {
    owner_->RunRoundLocked(this);
  }
}

core::ForwardRoundExecutor::RoundStats ForwardCoalescer::Handle::ExecuteRound(
    core::DecisionPlane* plane,
    const std::vector<core::DecisionPlane::SlotView>& views) {
  AMS_CHECK(plane != nullptr);
  core::ForwardRoundExecutor::RoundStats my;
  // Gather outside the lock: pending_ belongs to this worker until it
  // arrives (the leader only reads arrived members' requests).
  pending_.clear();
  const long memo_before = plane->memo_hits();
  plane->GatherStale(views, &pending_);
  my.gathered = static_cast<int>(pending_.size());
  my.memo_hits = static_cast<int>(plane->memo_hits() - memo_before);

  std::unique_lock<std::mutex> lock(owner_->mu_);
  AMS_CHECK(active_, "ExecuteRound on an inactive coalescer handle");
  AMS_CHECK(!arrived_, "a handle arrived twice in one round");
  plane_ = plane;
  stats_ = core::ForwardRoundExecutor::RoundStats();
  arrived_ = true;
  ++owner_->arrived_;
  if (owner_->arrived_ == owner_->active_) {
    owner_->RunRoundLocked(this);
  } else {
    const std::uint64_t gen = owner_->generation_;
    owner_->cv_.wait(lock, [&] { return owner_->generation_ != gen; });
  }
  my.cluster_rows = stats_.cluster_rows;
  return my;
}

void ForwardCoalescer::RunRoundLocked(Handle* leader) {
  members_.clear();
  std::size_t total = 0;
  for (const std::unique_ptr<Handle>& handle : handles_) {
    if (!handle->arrived_) continue;
    members_.push_back(handle.get());
    total += handle->pending_.size();
  }

  if (total > 0) {
    // Flatten every member's requests into arena-backed parallel arrays,
    // then dedup identical states across ALL participants — the cross-item
    // sharing DecisionPlane::Prefetch exploits within one stepper, widened
    // to the whole cluster (every item starts all-zero, so cold bursts
    // across shards collapse especially hard).
    arena_.Reset();
    core::DecisionPlane::PendingRequest* requests =
        arena_.AllocArray<core::DecisionPlane::PendingRequest>(total);
    core::DecisionPlane** request_plane =
        arena_.AllocArray<core::DecisionPlane*>(total);
    std::size_t k = 0;
    core::ModelValuePredictor* predictor = nullptr;
    for (Handle* member : members_) {
      for (const core::DecisionPlane::PendingRequest& request :
           member->pending_) {
        requests[k] = request;
        request_plane[k] = member->plane_;
        ++k;
      }
      if (predictor == nullptr && !member->pending_.empty()) {
        predictor = member->plane_->predictor();
      }
    }
    const std::size_t stride =
        static_cast<std::size_t>(predictor->num_actions());
    for (Handle* member : members_) {
      if (member->pending_.empty()) continue;
      AMS_CHECK(static_cast<std::size_t>(
                    member->plane_->predictor()->num_actions()) == stride,
                "coalesced planes must serve clones of the same predictor");
    }

    const std::vector<float>** features =
        arena_.AllocArray<const std::vector<float>*>(total);
    const std::vector<int>** indices =
        arena_.AllocArray<const std::vector<int>*>(total);
    std::size_t* row_of = arena_.AllocArray<std::size_t>(total);
    std::size_t n_rows = 0;
    for (std::size_t i = 0; i < total; ++i) {
      const std::vector<int>& idx = requests[i].state->SetIndices();
      std::size_t row = n_rows;
      for (std::size_t u = 0; u < n_rows; ++u) {
        if (indices[u]->size() == idx.size() &&
            std::equal(idx.begin(), idx.end(), indices[u]->begin())) {
          row = u;
          break;
        }
      }
      if (row == n_rows) {
        features[n_rows] = &requests[i].state->Features();
        indices[n_rows] = &idx;
        ++n_rows;
      }
      row_of[i] = row;
    }

    const bool traced = tracer_ != nullptr && tracer_->enabled() &&
                        leader->span_lane_ != nullptr;
    const double start_s = traced ? clock_->NowSeconds() : 0.0;

    // ONE forward for the whole cluster round. Any member's predictor works
    // — they are frozen clones — and every owner is parked at the
    // rendezvous, so borrowing the first requester's is race-free.
    double* flat_q = arena_.AllocArray<double>(n_rows * stride);
    predictor->PredictValuesBatchTo(features, indices, n_rows, flat_q);

    for (std::size_t i = 0; i < total; ++i) {
      request_plane[i]->CommitRow(requests[i], flat_q + row_of[i] * stride,
                                  stride);
    }
    int shards = 0;
    for (std::size_t m = 0; m < members_.size(); ++m) {
      Handle* member = members_[m];
      member->plane_->NoteExternalRound(
          static_cast<long>(member->pending_.size()));
      member->stats_.cluster_rows = static_cast<int>(n_rows);
      bool seen = false;
      for (std::size_t p = 0; p < m; ++p) {
        if (members_[p]->shard_id_ == member->shard_id_) {
          seen = true;
          break;
        }
      }
      if (!seen) ++shards;
    }

    rounds_.fetch_add(1, std::memory_order_relaxed);
    gathered_rows_.fetch_add(static_cast<long>(total),
                             std::memory_order_relaxed);
    unique_rows_.fetch_add(static_cast<long>(n_rows),
                           std::memory_order_relaxed);
    long prev = max_batch_rows_.load(std::memory_order_relaxed);
    while (prev < static_cast<long>(n_rows) &&
           !max_batch_rows_.compare_exchange_weak(
               prev, static_cast<long>(n_rows), std::memory_order_relaxed)) {
    }

    Metrics* metrics = leader->metrics_;
    if (metrics == nullptr) {
      for (Handle* member : members_) {
        if (member->metrics_ != nullptr) {
          metrics = member->metrics_;
          break;
        }
      }
    }
    if (metrics != nullptr) {
      metrics->RecordCoalescedRound(static_cast<int>(total),
                                    static_cast<int>(n_rows));
    }

    if (traced) {
      obs::TraceEvent event;
      event.ts_s = start_s;
      event.dur_s = clock_->NowSeconds() - start_s;
      event.phase = static_cast<std::uint8_t>(obs::Phase::kCoalescedForward);
      event.a0 = static_cast<std::int32_t>(members_.size());
      event.a1 = static_cast<std::int32_t>(total);
      event.a2 = static_cast<std::int32_t>(n_rows);
      event.a3 = shards;
      leader->span_lane_->Record(event);
    }
  } else {
    for (Handle* member : members_) member->stats_.cluster_rows = 0;
  }

  for (Handle* member : members_) {
    member->arrived_ = false;
    member->plane_ = nullptr;
  }
  arrived_ = 0;
  ++generation_;
  cv_.notify_all();
}

bool CoalesceForwardsFromEnv() {
  const char* env = std::getenv("AMS_COALESCE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

}  // namespace ams::serve
