#include "serve/server_runtime.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace ams::serve {

AdmissionConfig ServerRuntime::AdmissionConfigFrom(
    const ServeOptions& options) {
  AdmissionConfig config;
  config.capacity = options.queue_capacity;
  config.overload = options.overload;
  config.within_class_order = options.within_class_order;
  config.starvation_bound = options.starvation_bound;
  config.classes = options.classes;
  config.tenant_quotas = options.tenant_quotas;
  config.clock = options.clock;
  return config;
}

namespace {

/// Whether any class's effective order consults value densities (in which
/// case enqueues must stamp them).
bool NeedsValueDensity(const ServeOptions& options) {
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const WithinClassOrder order =
        options.classes[static_cast<size_t>(c)].order.value_or(
            options.within_class_order);
    if (order != WithinClassOrder::kEdf) return true;
  }
  return false;
}

}  // namespace

ServerRuntime::ServerRuntime(core::LabelingService* session,
                             ServeOptions options)
    : session_(session),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : &Clock::Monotonic()),
      queue_(AdmissionConfigFrom(options)),
      tracer_(options.tracer) {
  AMS_CHECK(session != nullptr);
  if (options_.workers <= 0) options_.workers = session->worker_count();
  if (tracer_ != nullptr) {
    admission_lane_ = tracer_->EnsureLane(
        static_cast<uint16_t>(options_.shard_id), obs::kAdmissionLane);
  }
  AMS_CHECK(options_.max_resident_per_worker >= 1,
            "a worker must hold at least one resident item");
  AMS_CHECK(options_.default_slack_s > 0.0, "deadline slack must be positive");
  if (NeedsValueDensity(options_)) {
    if (options_.value_estimator != nullptr) {
      estimator_ = options_.value_estimator;
    } else {
      owned_estimator_ = std::make_unique<ProfileValueEstimator>(session);
      estimator_ = owned_estimator_.get();
    }
  }
  metrics_.AttachClock(clock_);
  // Resolve the forward coalescer before any worker spawns: a router-shared
  // instance wins, then an owned one when coalescing is requested (by option
  // or by AMS_COALESCE), else the per-stepper forward path stays in place.
  if (options_.coalescer != nullptr) {
    coalescer_ = options_.coalescer;
  } else {
    if (!options_.coalesce_forwards && CoalesceForwardsFromEnv()) {
      options_.coalesce_forwards = true;
    }
    if (options_.coalesce_forwards) {
      ForwardCoalescer::Options coalesce;
      coalesce.tracer = tracer_;
      coalesce.clock = clock_;
      owned_coalescer_ = std::make_unique<ForwardCoalescer>(coalesce);
      coalescer_ = owned_coalescer_.get();
    }
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(&ServerRuntime::WorkerLoop, this, w);
  }
}

ServerRuntime::~ServerRuntime() { Shutdown(); }

std::future<ServeResult> ServerRuntime::Enqueue(const core::WorkItem& item) {
  return Enqueue(item, RequestOptions{});
}

std::future<ServeResult> ServerRuntime::Enqueue(const core::WorkItem& item,
                                                double slack_s) {
  RequestOptions request;
  request.slack_s = slack_s;
  return Enqueue(item, request);
}

std::future<ServeResult> ServerRuntime::Enqueue(const core::WorkItem& item,
                                                PriorityClass cls) {
  RequestOptions request;
  request.priority_class = cls;
  return Enqueue(item, request);
}

std::future<ServeResult> ServerRuntime::Enqueue(const core::WorkItem& item,
                                                double slack_s,
                                                PriorityClass cls) {
  RequestOptions request;
  request.slack_s = slack_s;
  request.priority_class = cls;
  return Enqueue(item, request);
}

std::future<ServeResult> ServerRuntime::Enqueue(
    const core::WorkItem& item, const RequestOptions& request_options) {
  const double slack_s =
      request_options.slack_s.value_or(options_.default_slack_s);
  const PriorityClass cls = request_options.priority_class;
  AMS_CHECK(slack_s > 0.0, "deadline slack must be positive");
  QueuedRequest request;
  request.item = item;
  request.priority_class = cls;
  request.tenant_id = request_options.tenant_id;
  request.slack_s = slack_s;
  request.sequence = sequence_.fetch_add(1, std::memory_order_relaxed);
  request.stream_id =
      item.item >= 0
          ? static_cast<uint64_t>(item.item)
          : live_sequence_.fetch_add(1, std::memory_order_relaxed);
  if (estimator_ != nullptr) {
    // Stamped before admission: the density orders kValueDensity/kHybrid
    // bands and picks shed victims.
    request.value_density = estimator_->ValueDensity(item);
  }
  if (tracer_ != nullptr && tracer_->enabled() &&
      tracer_->ShouldSample(request.sequence)) {
    // Cluster-unique id: shard in the high bits, admission sequence below.
    // Stamped exactly once — migrated requests keep the id of the shard
    // that admitted them, which is what connects a cross-shard span chain.
    request.trace.id =
        (static_cast<uint64_t>(options_.shard_id) + 1) << 40 | request.sequence;
    request.trace.sampled = true;
  }
  const obs::TraceContext trace = request.trace;
  std::future<ServeResult> future = request.promise.get_future();

  metrics_.enqueued.fetch_add(1, std::memory_order_relaxed);
  metrics_.for_class(cls).enqueued.fetch_add(1, std::memory_order_relaxed);
  metrics_.for_tenant(request.tenant_id)
      .enqueued.fetch_add(1, std::memory_order_relaxed);
  // Count the request as outstanding BEFORE it becomes poppable, so Drain()
  // can never observe zero while a worker races us to completion; every
  // refusal path undoes this through FinishOne().
  outstanding_.fetch_add(1, std::memory_order_relaxed);

  std::vector<QueuedRequest> bounced;
  const AdmitOutcome outcome = queue_.Enqueue(std::move(request), &bounced);
  metrics_.queue_depth.store(static_cast<long>(queue_.size()),
                             std::memory_order_relaxed);
  if (trace.sampled) {
    RecordRequestInstant(obs::Phase::kEnqueue, trace, static_cast<int>(cls),
                         request_options.tenant_id,
                         static_cast<int>(outcome));
    if (outcome == AdmitOutcome::kRejectedQuota) {
      RecordRequestInstant(obs::Phase::kQuotaReject, trace,
                           static_cast<int>(cls), request_options.tenant_id,
                           0);
    }
  }
  switch (outcome) {
    case AdmitOutcome::kAccepted:
      // Anything bounced is a shed victim displaced by this request.
      for (QueuedRequest& victim : bounced) {
        ResolveBounced(std::move(victim), ServeStatus::kShed);
      }
      break;
    case AdmitOutcome::kRejected:
      ResolveBounced(std::move(bounced.back()), ServeStatus::kRejected);
      break;
    case AdmitOutcome::kRejectedQuota:
      metrics_.quota_rejected.fetch_add(1, std::memory_order_relaxed);
      metrics_.for_tenant(request_options.tenant_id)
          .quota_rejected.fetch_add(1, std::memory_order_relaxed);
      ResolveBounced(std::move(bounced.back()), ServeStatus::kRejected);
      break;
    case AdmitOutcome::kClosed:
      ResolveBounced(std::move(bounced.back()), ServeStatus::kShutdown);
      break;
  }
  return future;
}

void ServerRuntime::RecordRequestInstant(obs::Phase phase,
                                         const obs::TraceContext& trace,
                                         int a0, int a1, int a2) {
  if (admission_lane_ == nullptr || !tracer_->enabled()) return;
  obs::TraceEvent event;
  event.id = trace.id;
  event.ts_s = clock_->NowSeconds();
  event.phase = static_cast<uint8_t>(phase);
  event.a0 = a0;
  event.a1 = a1;
  event.a2 = a2;
  admission_lane_->Record(event);
}

void ServerRuntime::ResolveBounced(QueuedRequest&& request,
                                   ServeStatus status) {
  ClassMetrics& class_metrics = metrics_.for_class(request.priority_class);
  TenantMetrics& tenant_metrics = metrics_.for_tenant(request.tenant_id);
  switch (status) {
    case ServeStatus::kRejected:
      metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
      class_metrics.rejected.fetch_add(1, std::memory_order_relaxed);
      tenant_metrics.rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kShed:
      metrics_.shed.fetch_add(1, std::memory_order_relaxed);
      class_metrics.shed.fetch_add(1, std::memory_order_relaxed);
      tenant_metrics.shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kShutdown:
      metrics_.shutdown_refused.fetch_add(1, std::memory_order_relaxed);
      class_metrics.shutdown_refused.fetch_add(1, std::memory_order_relaxed);
      tenant_metrics.shutdown_refused.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kOk:
      AMS_CHECK(false, "completed requests are not bounced");
  }
  const double now = clock_->NowSeconds();
  ServeResult result;
  result.status = status;
  result.latency_s = now - request.enqueue_time_s;
  result.queue_delay_s = result.latency_s;
  result.slack_s = request.deadline_s - now;
  request.promise.set_value(std::move(result));
  FinishOne();
}

void ServerRuntime::FinishOne() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last one out: wake Drain() under the lock so the wakeup cannot fall
    // between a waiter's predicate check and its wait.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void ServerRuntime::WorkerLoop(int worker_index) {
  using Stepper = core::LabelingService::ItemStepper;
  const std::unique_ptr<Stepper> stepper =
      session_->NewItemStepper(worker_index);
  // This worker's trace lane: a single-producer ring the stepper's
  // tick/forward spans and this loop's queue-wait/exec spans share. All of
  // it stays null (and every site a single branch) when tracing is off.
  obs::TraceBuffer* lane = nullptr;
  if (tracer_ != nullptr) {
    lane = tracer_->EnsureLane(static_cast<uint16_t>(options_.shard_id),
                               static_cast<uint16_t>(worker_index));
    stepper->AttachTracer(tracer_, lane, clock_);
  }
  // Coalesced forwards: this worker's rendezvous handle. Membership brackets
  // the busy span — Activate() once work is resident, Deactivate() before
  // parking on the admission queue — so the round barrier only ever waits on
  // workers that are guaranteed to keep ticking.
  ForwardCoalescer::Handle* coalesce_handle = nullptr;
  bool coalesce_active = false;
  if (coalescer_ != nullptr && stepper->predictor_driven()) {
    coalesce_handle = coalescer_->NewHandle(&metrics_, options_.shard_id);
    stepper->AttachForwardExecutor(coalesce_handle);
  }
  // Tracked requests keyed by stepper ticket. A flat swap-pop slab instead
  // of a map: the resident set is tens of items, so a linear scan beats
  // hashing and — on the serving hot path — spares a node allocation per
  // request.
  std::vector<std::pair<uint64_t, InFlightRequest>> in_flight;
  in_flight.reserve(static_cast<size_t>(options_.max_resident_per_worker));
  std::vector<Stepper::Completion> done;
  std::vector<QueuedRequest> refill;

  while (true) {
    // Refill the resident set from the admission queue. An idle worker
    // parks in WaitPop; a busy one tops up its remaining capacity under one
    // queue lock, so admitted items keep stepping at full batch width while
    // traffic flows.
    const int space = options_.max_resident_per_worker - stepper->resident();
    if (space > 0) {
      refill.clear();
      if (stepper->idle() && in_flight.empty()) {
        if (coalesce_active) {
          // About to block for work: leave the round membership so the
          // other members' rendezvous never waits on a parked worker.
          coalesce_handle->Deactivate();
          coalesce_active = false;
        }
        QueuedRequest first;
        if (!queue_.WaitPop(&first)) return;  // closed and fully drained
        refill.push_back(std::move(first));
        if (space > 1) queue_.TryPopBatch(space - 1, &refill);
      } else if (queue_.size() > 0) {
        // The lock-free depth gauge gates the pop: a busy worker over an
        // empty queue never touches the queue mutex (a stale read costs one
        // tick of admission latency, never correctness — the queue is
        // re-checked every tick).
        queue_.TryPopBatch(space, &refill);
      }
      if (!refill.empty()) {
        metrics_.queue_depth.store(static_cast<long>(queue_.size()),
                                   std::memory_order_relaxed);
        metrics_.in_flight.fetch_add(static_cast<long>(refill.size()),
                                     std::memory_order_relaxed);
        const double now = clock_->NowSeconds();
        for (QueuedRequest& request : refill) {
          InFlightRequest tracked;
          tracked.promise = std::move(request.promise);
          tracked.priority_class = request.priority_class;
          tracked.tenant_id = request.tenant_id;
          tracked.tenant_metrics = &metrics_.for_tenant(request.tenant_id);
          tracked.deadline_s = request.deadline_s;
          tracked.enqueue_time_s = request.enqueue_time_s;
          tracked.admit_time_s = now;
          tracked.trace = request.trace;
          if (lane != nullptr && request.trace.sampled &&
              tracer_->enabled()) {
            // The queue-wait span is written retroactively at pop time —
            // its start is the (possibly remote-shard) enqueue stamp, so a
            // migrated request's wait covers the whole cross-shard journey.
            obs::TraceEvent event;
            event.id = request.trace.id;
            event.ts_s = request.enqueue_time_s;
            event.dur_s = now - request.enqueue_time_s;
            event.phase = static_cast<uint8_t>(obs::Phase::kQueueWait);
            event.a0 = static_cast<int32_t>(request.priority_class);
            event.a1 = request.tenant_id;
            lane->Record(event);
          }
          metrics_.queue_delay.Record(now - request.enqueue_time_s);
          metrics_.for_class(request.priority_class)
              .queue_delay.Record(now - request.enqueue_time_s);
          tracked.tenant_metrics->queue_delay.Record(now -
                                                     request.enqueue_time_s);
          const uint64_t ticket =
              stepper->Admit(request.item, request.stream_id);
          in_flight.emplace_back(ticket, std::move(tracked));
        }
      }
    }

    // One cooperative tick: one deduplicated batched Q-forward across every
    // resident item, then each kernel advances past one finish event.
    if (coalesce_handle != nullptr && !coalesce_active) {
      // Reaching here means resident work exists (an idle worker parks
      // above until WaitPop hands it an item), so this worker is now
      // guaranteed to keep ticking: join the round membership.
      coalesce_handle->Activate();
      coalesce_active = true;
    }
    done.clear();
    stepper->Tick(&done);
    {
      // Fold the stepper's phase timings into the metrics registry (traced
      // ticks only — untraced runs never touch the phase section). Atomic
      // bumps and histogram buckets only: the zero-allocation tick holds.
      const Stepper::TickStats& stats = stepper->last_tick_stats();
      if (stats.traced) {
        metrics_.RecordTick(stats.tick_s, stats.arena_used);
        if (stats.forward_rows > 0) {
          metrics_.RecordForward(stats.forward_s, stats.forward_rows);
        }
      }
    }
    if (done.empty()) continue;
    const double now = clock_->NowSeconds();
    for (Stepper::Completion& completion : done) {
      size_t slot = in_flight.size();
      for (size_t i = 0; i < in_flight.size(); ++i) {
        if (in_flight[i].first == completion.ticket) {
          slot = i;
          break;
        }
      }
      AMS_CHECK(slot < in_flight.size(), "completion for an unknown ticket");
      InFlightRequest tracked = std::move(in_flight[slot].second);
      in_flight[slot] = std::move(in_flight.back());
      in_flight.pop_back();

      ServeResult result;
      result.status = ServeStatus::kOk;
      result.outcome = std::move(completion.outcome);
      result.queue_delay_s = tracked.admit_time_s - tracked.enqueue_time_s;
      result.service_s = now - tracked.admit_time_s;
      result.latency_s = now - tracked.enqueue_time_s;
      result.slack_s = tracked.deadline_s - now;
      ClassMetrics& class_metrics = metrics_.for_class(tracked.priority_class);
      TenantMetrics& tenant_metrics = *tracked.tenant_metrics;
      metrics_.service_time.Record(result.service_s);
      metrics_.total_latency.Record(result.latency_s);
      class_metrics.total_latency.Record(result.latency_s);
      tenant_metrics.total_latency.Record(result.latency_s);
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      class_metrics.completed.fetch_add(1, std::memory_order_relaxed);
      tenant_metrics.completed.fetch_add(1, std::memory_order_relaxed);
      if (!result.deadline_met()) {
        metrics_.deadline_misses.fetch_add(1, std::memory_order_relaxed);
        class_metrics.deadline_misses.fetch_add(1, std::memory_order_relaxed);
        tenant_metrics.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      }
      metrics_.in_flight.fetch_sub(1, std::memory_order_relaxed);
      if (lane != nullptr && tracked.trace.sampled && tracer_->enabled()) {
        // Exec span, admit -> completion, closed retroactively like the
        // queue wait (the resident set multiplexes, so no RAII scope brackets
        // a single request's execution).
        obs::TraceEvent event;
        event.id = tracked.trace.id;
        event.ts_s = tracked.admit_time_s;
        event.dur_s = now - tracked.admit_time_s;
        event.phase = static_cast<uint8_t>(obs::Phase::kExec);
        event.a0 = static_cast<int32_t>(tracked.priority_class);
        event.a1 = result.deadline_met() ? 0 : 1;
        lane->Record(event);
      }
      tracked.promise.set_value(std::move(result));
      // Free the tenant's in-flight quota slot (no-op without quotas).
      queue_.TenantFinished(tracked.tenant_id);
      FinishOne();
    }
  }
}

int ServerRuntime::StealQueued(int max_requests,
                               std::vector<QueuedRequest>* out) {
  const int stolen = queue_.StealBatch(max_requests, out);
  if (stolen == 0) return 0;
  metrics_.queue_depth.store(static_cast<long>(queue_.size()),
                             std::memory_order_relaxed);
  metrics_.migrated_out.fetch_add(stolen, std::memory_order_relaxed);
  // Ownership left with the batch: this runtime's Drain() must not wait on
  // requests another shard will complete.
  for (int i = 0; i < stolen; ++i) FinishOne();
  return stolen;
}

bool ServerRuntime::RequeueMigrated(QueuedRequest&& request) {
  // Count outstanding before the queue sees the request, mirroring Enqueue:
  // a worker could pop and finish it before we returned.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.Requeue(std::move(request))) {
    FinishOne();  // undo; the caller still owns the request
    return false;
  }
  metrics_.migrated_in.fetch_add(1, std::memory_order_relaxed);
  metrics_.queue_depth.store(static_cast<long>(queue_.size()),
                             std::memory_order_relaxed);
  return true;
}

void ServerRuntime::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void ServerRuntime::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::string ServerRuntime::MetricsJson() const {
  return metrics_.SnapshotJson();
}

}  // namespace ams::serve
