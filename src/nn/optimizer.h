#ifndef AMS_NN_OPTIMIZER_H_
#define AMS_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace ams::nn {

/// First-order optimizer over a fixed set of parameter tensors.
///
/// Optimizer state (momentum/moment buffers) is keyed by position in the
/// `params` vector, so callers must pass the same CollectParams() output in
/// the same order on every Step().
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored next to each
  /// parameter tensor.
  virtual void Step(const std::vector<ParamGrad>& params) = 0;

  virtual std::string name() const = 0;
};

/// SGD with classical momentum: v = mu*v - lr*g; p += v.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void Step(const std::vector<ParamGrad>& params) override;
  std::string name() const override { return "sgd"; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// RMSProp: s = rho*s + (1-rho)*g^2; p -= lr * g / (sqrt(s)+eps).
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(float lr, float rho = 0.99f, float eps = 1e-8f);
  void Step(const std::vector<ParamGrad>& params) override;
  std::string name() const override { return "rmsprop"; }

 private:
  float lr_;
  float rho_;
  float eps_;
  std::vector<std::vector<float>> sq_avg_;
};

/// Adam (Kingma & Ba) with bias correction. The default optimizer for all
/// DRL trainers in this repo.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);
  void Step(const std::vector<ParamGrad>& params) override;
  std::string name() const override { return "adam"; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Factory by name ("sgd" | "rmsprop" | "adam"); crashes on unknown name.
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, float lr);

}  // namespace ams::nn

#endif  // AMS_NN_OPTIMIZER_H_
