#include "nn/matrix.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace ams::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
  AMS_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::RandomNormal(int rows, int cols, float stddev, util::Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::FromRowVector(const std::vector<float>& v) {
  Matrix m(1, static_cast<int>(v.size()));
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Resize(int rows, int cols) {
  AMS_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
}

void Matrix::CopyRowFrom(const Matrix& src, int src_row, int dst_row) {
  AMS_DCHECK(src.cols() == cols_);
  std::memcpy(Row(dst_row), src.Row(src_row), sizeof(float) * cols_);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.cols() == b.rows(), "gemm shape mismatch");
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0f);
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // Row-blocked traversal: 4 rows of a share each loaded row of b, cutting
  // the b traffic and per-kk loop overhead 4x for batched inputs — the part
  // of a batched forward pass a single-row call can never amortize. Each
  // out[i][j] still accumulates over kk in strictly increasing order, so
  // results are bitwise identical to the single-row traversal. __restrict
  // on the row pointers (out never aliases the inputs — see the contract in
  // the header) is what lets the j-loops vectorize.
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    float* __restrict o0 = out->Row(i);
    float* __restrict o1 = out->Row(i + 1);
    float* __restrict o2 = out->Row(i + 2);
    float* __restrict o3 = out->Row(i + 3);
    const float* __restrict a0 = a.Row(i);
    const float* __restrict a1 = a.Row(i + 1);
    const float* __restrict a2 = a.Row(i + 2);
    const float* __restrict a3 = a.Row(i + 3);
    for (int kk = 0; kk < k; ++kk) {
      const float* __restrict b_row = b.Row(kk);
      // Per-row zero skip: label states are sparse binary vectors.
      const float v0 = a0[kk];
      if (v0 != 0.0f) {
        for (int j = 0; j < n; ++j) o0[j] += v0 * b_row[j];
      }
      const float v1 = a1[kk];
      if (v1 != 0.0f) {
        for (int j = 0; j < n; ++j) o1[j] += v1 * b_row[j];
      }
      const float v2 = a2[kk];
      if (v2 != 0.0f) {
        for (int j = 0; j < n; ++j) o2[j] += v2 * b_row[j];
      }
      const float v3 = a3[kk];
      if (v3 != 0.0f) {
        for (int j = 0; j < n; ++j) o3[j] += v3 * b_row[j];
      }
    }
  }
  for (; i < m; ++i) {
    float* __restrict out_row = out->Row(i);
    const float* __restrict a_row = a.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      const float aik = a_row[kk];
      if (aik == 0.0f) continue;
      const float* __restrict b_row = b.Row(kk);
      for (int j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.rows() == b.rows(), "gemmTA shape mismatch");
  out->Resize(a.cols(), b.cols());
  out->Fill(0.0f);
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int r = 0; r < m; ++r) {
    const float* __restrict a_row = a.Row(r);
    const float* __restrict b_row = b.Row(r);
    for (int i = 0; i < k; ++i) {
      const float ari = a_row[i];
      if (ari == 0.0f) continue;
      float* __restrict out_row = out->Row(i);
      for (int j = 0; j < n; ++j) out_row[j] += ari * b_row[j];
    }
  }
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.cols() == b.cols(), "gemmTB shape mismatch");
  out->Resize(a.rows(), b.rows());
  const int m = a.rows(), n = a.cols(), p = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (int j = 0; j < p; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (int c = 0; c < n; ++c) acc += a_row[c] * b_row[c];
      out_row[j] = acc;
    }
  }
}

void AddRowVector(Matrix* m, const std::vector<float>& bias) {
  AMS_CHECK(static_cast<int>(bias.size()) == m->cols());
  const int cols = m->cols();
  const float* __restrict b = bias.data();
  for (int i = 0; i < m->rows(); ++i) {
    float* __restrict row = m->Row(i);
    for (int j = 0; j < cols; ++j) row[j] += b[j];
  }
}

void ReluForward(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  const float* src = in.data();
  float* dst = out->data();
  const int n = in.size();
  for (int i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReluBackward(const Matrix& pre_act, const Matrix& grad_out, Matrix* grad_in) {
  AMS_CHECK(pre_act.rows() == grad_out.rows() && pre_act.cols() == grad_out.cols());
  grad_in->Resize(pre_act.rows(), pre_act.cols());
  const float* pre = pre_act.data();
  const float* go = grad_out.data();
  float* gi = grad_in->data();
  const int n = pre_act.size();
  for (int i = 0; i < n; ++i) gi[i] = pre[i] > 0.0f ? go[i] : 0.0f;
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(static_cast<size_t>(m.cols()), 0.0f);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (int j = 0; j < m.cols(); ++j) (*out)[j] += row[j];
  }
}

}  // namespace ams::nn
