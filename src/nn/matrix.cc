#include "nn/matrix.h"

#include <algorithm>
#include <cstring>

#include "nn/simd.h"
#include "util/check.h"

// Compiled with -ffp-contract=off (CMakeLists.txt): the scalar remainder
// loops here are the bitwise reference for the SIMD tiers, so the compiler
// must not FMA-contract them even under AMS_NATIVE_ARCH=-march=native.

namespace ams::nn {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
  AMS_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::RandomNormal(int rows, int cols, float stddev, util::Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::FromRowVector(const std::vector<float>& v) {
  Matrix m(1, static_cast<int>(v.size()));
  std::copy(v.begin(), v.end(), m.data_.begin());
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Resize(int rows, int cols) {
  AMS_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
}

void Matrix::CopyRowFrom(const Matrix& src, int src_row, int dst_row) {
  AMS_DCHECK(src.cols() == cols_);
  std::memcpy(Row(dst_row), src.Row(src_row), sizeof(float) * cols_);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.cols() == b.rows(), "gemm shape mismatch");
  out->Resize(a.rows(), b.cols());
  out->Fill(0.0f);  // accumulating variant — see the zero-init contract
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // Row-blocked traversal: 4 rows of a share each loaded row of b, cutting
  // the b traffic and per-kk loop overhead 4x for batched inputs — the part
  // of a batched forward pass a single-row call can never amortize. Each
  // out[i][j] still accumulates over kk in strictly increasing order, so
  // results are bitwise identical to the single-row traversal. The j-loops
  // run through the dispatched SIMD kernels (nn/simd.h), which preserve
  // that per-element mul+add order exactly.
  const simd::Kernels& K = simd::Active();
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    float* o0 = out->Row(i);
    float* o1 = out->Row(i + 1);
    float* o2 = out->Row(i + 2);
    float* o3 = out->Row(i + 3);
    const float* a0 = a.Row(i);
    const float* a1 = a.Row(i + 1);
    const float* a2 = a.Row(i + 2);
    const float* a3 = a.Row(i + 3);
    for (int kk = 0; kk < k; ++kk) {
      const float* b_row = b.Row(kk);
      // Per-row zero skip: label states are sparse binary vectors. axpy4
      // requires all four values nonzero (it has no skip of its own).
      const float v0 = a0[kk];
      const float v1 = a1[kk];
      const float v2 = a2[kk];
      const float v3 = a3[kk];
      if (v0 != 0.0f && v1 != 0.0f && v2 != 0.0f && v3 != 0.0f) {
        K.axpy4(v0, v1, v2, v3, b_row, o0, o1, o2, o3, n);
      } else {
        if (v0 != 0.0f) K.axpy(v0, b_row, o0, n);
        if (v1 != 0.0f) K.axpy(v1, b_row, o1, n);
        if (v2 != 0.0f) K.axpy(v2, b_row, o2, n);
        if (v3 != 0.0f) K.axpy(v3, b_row, o3, n);
      }
    }
  }
  for (; i < m; ++i) {
    float* out_row = out->Row(i);
    const float* a_row = a.Row(i);
    for (int kk = 0; kk < k; ++kk) {
      const float aik = a_row[kk];
      if (aik == 0.0f) continue;
      K.axpy(aik, b.Row(kk), out_row, n);
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.rows() == b.rows(), "gemmTA shape mismatch");
  out->Resize(a.cols(), b.cols());
  out->Fill(0.0f);  // accumulating variant — see the zero-init contract
  const int m = a.rows(), k = a.cols(), n = b.cols();
  const simd::Kernels& K = simd::Active();
  for (int r = 0; r < m; ++r) {
    const float* a_row = a.Row(r);
    const float* b_row = b.Row(r);
    for (int i = 0; i < k; ++i) {
      const float ari = a_row[i];
      if (ari == 0.0f) continue;
      K.axpy(ari, b_row, out->Row(i), n);
    }
  }
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  AMS_CHECK(a.cols() == b.cols(), "gemmTB shape mismatch");
  // No Fill(0): every out[i][j] below is computed into a fresh accumulator
  // and stored exactly once, so stale Resize contents cannot leak through
  // (the zero-init contract in the header).
  out->Resize(a.rows(), b.rows());
  const int m = a.rows(), n = a.cols(), p = b.rows();
  const simd::Kernels& K = simd::Active();
  // 8-column panels: transpose 8 rows of b into an n x 8 scratch so one
  // dot8 call produces 8 outputs per pass over a_row. Each lane still sums
  // over c in index order, bitwise identical to the scalar column loop.
  static thread_local util::AlignedVector<float> panel;
  int j = 0;
  for (; j + 8 <= p; j += 8) {
    panel.resize(static_cast<size_t>(n) * 8);
    for (int l = 0; l < 8; ++l) {
      const float* b_row = b.Row(j + l);
      for (int c = 0; c < n; ++c) panel[static_cast<size_t>(c) * 8 + l] = b_row[c];
    }
    for (int i = 0; i < m; ++i) {
      float acc8[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
      K.dot8(a.Row(i), panel.data(), n, acc8);
      float* out_row = out->Row(i);
      for (int l = 0; l < 8; ++l) out_row[j + l] = acc8[l];
    }
  }
  for (; j < p; ++j) {
    const float* b_row = b.Row(j);
    for (int i = 0; i < m; ++i) {
      const float* a_row = a.Row(i);
      float acc = 0.0f;
      for (int c = 0; c < n; ++c) acc += a_row[c] * b_row[c];
      out->Row(i)[j] = acc;
    }
  }
}

void AddRowVector(Matrix* m, const std::vector<float>& bias) {
  AMS_CHECK(static_cast<int>(bias.size()) == m->cols());
  const int cols = m->cols();
  const float* b = bias.data();
  const simd::Kernels& K = simd::Active();
  for (int i = 0; i < m->rows(); ++i) {
    K.add_inplace(b, m->Row(i), cols);
  }
}

void ReluForward(const Matrix& in, Matrix* out) {
  out->Resize(in.rows(), in.cols());
  simd::Active().relu(in.data(), out->data(), in.size());
}

void ReluBackward(const Matrix& pre_act, const Matrix& grad_out, Matrix* grad_in) {
  AMS_CHECK(pre_act.rows() == grad_out.rows() && pre_act.cols() == grad_out.cols());
  grad_in->Resize(pre_act.rows(), pre_act.cols());
  const float* pre = pre_act.data();
  const float* go = grad_out.data();
  float* gi = grad_in->data();
  const int n = pre_act.size();
  for (int i = 0; i < n; ++i) gi[i] = pre[i] > 0.0f ? go[i] : 0.0f;
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(static_cast<size_t>(m.cols()), 0.0f);
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.Row(i);
    for (int j = 0; j < m.cols(); ++j) (*out)[j] += row[j];
  }
}

}  // namespace ams::nn
