#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/loss.h"
#include "util/check.h"

namespace ams::nn {

GradCheckResult CheckGradients(QValueNet* net, const Matrix& x,
                               const Matrix& target, float epsilon,
                               size_t stride) {
  AMS_CHECK(stride >= 1);
  Matrix q, grad;
  net->Forward(x, &q);
  MseLoss(q, target, &grad);
  net->Backward(grad);

  // Snapshot analytic gradients before probing perturbs any state.
  std::vector<ParamGrad> params;
  net->CollectParams(&params);
  std::vector<std::vector<float>> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.emplace_back(p.grad, p.grad + p.size);
  }

  auto loss_at = [&]() {
    Matrix qq, gg;
    net->Forward(x, &qq);
    return MseLoss(qq, target, &gg);
  };

  GradCheckResult result;
  for (size_t t = 0; t < params.size(); ++t) {
    const ParamGrad& p = params[t];
    for (size_t i = 0; i < p.size; i += stride) {
      const float original = p.param[i];
      p.param[i] = original + epsilon;
      const double loss_plus = loss_at();
      p.param[i] = original - epsilon;
      const double loss_minus = loss_at();
      p.param[i] = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double diff = std::fabs(numeric - analytic[t][i]);
      const double scale =
          std::max({1e-8, std::fabs(numeric), std::fabs(static_cast<double>(
                                                  analytic[t][i]))});
      result.max_abs_diff = std::max(result.max_abs_diff, diff);
      result.max_rel_diff = std::max(result.max_rel_diff, diff / scale);
      ++result.params_checked;
    }
  }
  return result;
}

}  // namespace ams::nn
