#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace ams::nn {

namespace {

// Lazily sizes `state` to mirror `params` (all zeros) on first use.
void EnsureState(std::vector<std::vector<float>>* state,
                 const std::vector<ParamGrad>& params) {
  if (!state->empty()) {
    AMS_CHECK(state->size() == params.size(),
              "optimizer reused with different parameter set");
    return;
  }
  state->reserve(params.size());
  for (const auto& p : params) state->emplace_back(p.size, 0.0f);
}

}  // namespace

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  AMS_CHECK(lr > 0.0f);
  AMS_CHECK(momentum >= 0.0f && momentum < 1.0f);
}

void Sgd::Step(const std::vector<ParamGrad>& params) {
  EnsureState(&velocity_, params);
  for (size_t t = 0; t < params.size(); ++t) {
    const ParamGrad& p = params[t];
    AMS_DCHECK(velocity_[t].size() == p.size);
    float* v = velocity_[t].data();
    for (size_t i = 0; i < p.size; ++i) {
      v[i] = momentum_ * v[i] - lr_ * p.grad[i];
      p.param[i] += v[i];
    }
  }
}

RmsProp::RmsProp(float lr, float rho, float eps) : lr_(lr), rho_(rho), eps_(eps) {
  AMS_CHECK(lr > 0.0f);
  AMS_CHECK(rho > 0.0f && rho < 1.0f);
}

void RmsProp::Step(const std::vector<ParamGrad>& params) {
  EnsureState(&sq_avg_, params);
  for (size_t t = 0; t < params.size(); ++t) {
    const ParamGrad& p = params[t];
    float* s = sq_avg_[t].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      s[i] = rho_ * s[i] + (1.0f - rho_) * g * g;
      p.param[i] -= lr_ * g / (std::sqrt(s[i]) + eps_);
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  AMS_CHECK(lr > 0.0f);
  AMS_CHECK(beta1 >= 0.0f && beta1 < 1.0f);
  AMS_CHECK(beta2 >= 0.0f && beta2 < 1.0f);
}

void Adam::Step(const std::vector<ParamGrad>& params) {
  EnsureState(&m_, params);
  EnsureState(&v_, params);
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t t = 0; t < params.size(); ++t) {
    const ParamGrad& p = params[t];
    float* m = m_[t].data();
    float* v = v_[t].data();
    for (size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      p.param[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name, float lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr, 0.9f);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  AMS_CHECK(false, "unknown optimizer: " + name);
  return nullptr;
}

}  // namespace ams::nn
