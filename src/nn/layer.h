#ifndef AMS_NN_LAYER_H_
#define AMS_NN_LAYER_H_

#include <cstddef>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ams::nn {

/// View over one parameter tensor and its gradient, consumed by optimizers.
struct ParamGrad {
  float* param;
  float* grad;
  size_t size;
};

/// Fully connected layer y = x*W + b with cached gradients.
///
/// Backward() overwrites dW/db for the most recent Forward() batch; the
/// trainer calls optimizer.Step() before the next Backward().
class DenseLayer {
 public:
  /// He-normal initialization: W ~ N(0, 2/in_dim), b = 0.
  DenseLayer(int in_dim, int out_dim, util::Rng* rng);

  /// y = x*W + b. x is [batch, in_dim]; y becomes [batch, out_dim].
  void Forward(const Matrix& x, Matrix* y) const;

  /// Forward for a batch of sparse rows passed by pointer, skipping the
  /// dense input-matrix build entirely (the scheduling states feeding the
  /// Q-net are near-empty binary vectors, so materializing them dominates
  /// the actual math). Bitwise identical to Forward on the stacked rows:
  /// contributions accumulate in the same kk order, bias is added last.
  ///
  /// `indices` may be empty (every row is scanned densely) or parallel to
  /// `rows`; a non-null indices[i] lists the nonzero positions of rows[i] in
  /// ascending order (LabelingState::SetIndices), letting that row skip the
  /// dense zero scan entirely while keeping the same accumulation order.
  void ForwardSparseRows(const std::vector<const std::vector<float>*>& rows,
                         const std::vector<const std::vector<int>*>& indices,
                         Matrix* y) const;
  void ForwardSparseRows(const std::vector<const std::vector<float>*>& rows,
                         Matrix* y) const {
    ForwardSparseRows(rows, {}, y);
  }

  /// Given the input batch `x` used in Forward and dL/dy, computes dW, db and
  /// (if grad_x != nullptr) dL/dx.
  void Backward(const Matrix& x, const Matrix& grad_y, Matrix* grad_x);

  void CollectParams(std::vector<ParamGrad>* out);

  void Save(util::BinaryWriter* w) const;
  /// Returns false on malformed input.
  bool Load(util::BinaryReader* r);

  int in_dim() const { return w_.rows(); }
  int out_dim() const { return w_.cols(); }

  Matrix& weights() { return w_; }
  std::vector<float>& bias() { return b_; }
  const Matrix& weights() const { return w_; }
  const std::vector<float>& bias() const { return b_; }

 private:
  Matrix w_;   // [in_dim, out_dim]
  Matrix dw_;  // same shape
  std::vector<float> b_;
  std::vector<float> db_;
};

}  // namespace ams::nn

#endif  // AMS_NN_LAYER_H_
