#ifndef AMS_NN_QUANTIZED_H_
#define AMS_NN_QUANTIZED_H_

#include <memory>
#include <vector>

#include "nn/matrix.h"
#include "nn/net.h"
#include "util/aligned.h"

namespace ams::nn {

/// int8 dense layer for the quantized inference path.
///
/// Weights are quantized symmetrically per OUTPUT column (scale_j =
/// max|W[:,j]| / 127) so every output unit keeps its own dynamic range;
/// inputs are quantized per layer with a scale calibrated offline from
/// observed activations (max|x| / 127). The forward accumulates in int32 —
/// |q_x| <= 127, |q_w| <= 127, so even a 100k-wide layer cannot overflow —
/// and dequantizes once per output: y_j = acc_j * (s_x * s_wj) + b_j.
/// Inference-only and held to recall tolerance, not bitwise parity.
class QuantizedDenseLayer {
 public:
  /// Quantizes `w` [in,out] and captures `input_maxabs`, the calibration
  /// max |x| this layer's inputs showed (0 degrades to a unit scale).
  QuantizedDenseLayer(const Matrix& w, const std::vector<float>& bias,
                      float input_maxabs);

  int in_dim() const { return in_; }
  int out_dim() const { return out_; }
  float input_scale() const { return input_scale_; }

  /// y[0..out) = dequant(sum_kk q(x[kk]) * wq[kk][:]) + bias. `idx`, when
  /// non-null, lists the nonzero positions of x in ascending order (the
  /// sparse binary label states); otherwise x is scanned densely. Reuses
  /// an internal accumulator — not thread-safe (nets never are).
  void ForwardRow(const float* x, const std::vector<int>* idx, float* y) const;

 private:
  int in_ = 0;
  int out_ = 0;
  float input_scale_ = 1.0f;
  float inv_input_scale_ = 1.0f;
  util::AlignedVector<int8_t> wq_;     // [in, out] row-major
  std::vector<float> combined_scale_;  // input_scale_ * per-column w scale
  std::vector<float> bias_;
  mutable util::AlignedVector<int32_t> acc_;  // [out] scratch
};

/// int8 snapshot of an Mlp, built by Mlp::Quantize(). Inference-only:
/// Backward/CollectParams/Save abort, weight syncs skip it (IsQuantized).
class QuantizedMlp : public QValueNet {
 public:
  QuantizedMlp(const MlpConfig& config,
               std::vector<QuantizedDenseLayer> layers);

  int input_dim() const override { return config_.input_dim; }
  int output_dim() const override { return config_.output_dim; }
  bool IsQuantized() const override { return true; }

  void Forward(const Matrix& x, Matrix* q) override;
  using QValueNet::PredictBatch;
  void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                    const std::vector<const std::vector<int>*>& indices,
                    Matrix* q) override;
  void Backward(const Matrix& grad_q) override;
  void CollectParams(std::vector<ParamGrad>* out) override;
  void Save(util::BinaryWriter* w) const override;
  bool Load(util::BinaryReader* r) override;
  std::unique_ptr<QValueNet> Clone() const override;

 private:
  void ForwardRow(const float* x, const std::vector<int>* idx, float* q_row);

  MlpConfig config_;
  std::vector<QuantizedDenseLayer> layers_;
  std::vector<float> act_a_, act_b_;  // per-row activation scratch
};

/// int8 snapshot of a DuelingMlp, built by DuelingMlp::Quantize().
class QuantizedDuelingMlp : public QValueNet {
 public:
  QuantizedDuelingMlp(const MlpConfig& config,
                      std::vector<QuantizedDenseLayer> trunk,
                      QuantizedDenseLayer value_head,
                      QuantizedDenseLayer advantage_head);

  int input_dim() const override { return config_.input_dim; }
  int output_dim() const override { return config_.output_dim; }
  bool IsQuantized() const override { return true; }

  void Forward(const Matrix& x, Matrix* q) override;
  using QValueNet::PredictBatch;
  void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                    const std::vector<const std::vector<int>*>& indices,
                    Matrix* q) override;
  void Backward(const Matrix& grad_q) override;
  void CollectParams(std::vector<ParamGrad>* out) override;
  void Save(util::BinaryWriter* w) const override;
  bool Load(util::BinaryReader* r) override;
  std::unique_ptr<QValueNet> Clone() const override;

 private:
  void ForwardRow(const float* x, const std::vector<int>* idx, float* q_row);

  MlpConfig config_;
  std::vector<QuantizedDenseLayer> trunk_;
  QuantizedDenseLayer value_head_;
  QuantizedDenseLayer advantage_head_;
  std::vector<float> act_a_, act_b_;
};

}  // namespace ams::nn

#endif  // AMS_NN_QUANTIZED_H_
