#include "nn/layer.h"

#include <cmath>

#include "nn/simd.h"
#include "util/check.h"

// Compiled with -ffp-contract=off (CMakeLists.txt) so the scalar fallback
// loops stay bitwise identical to the SIMD tiers under -march=native.

namespace ams::nn {

DenseLayer::DenseLayer(int in_dim, int out_dim, util::Rng* rng)
    : w_(Matrix::RandomNormal(in_dim, out_dim,
                              std::sqrt(2.0f / static_cast<float>(in_dim)), rng)),
      dw_(in_dim, out_dim),
      b_(static_cast<size_t>(out_dim), 0.0f),
      db_(static_cast<size_t>(out_dim), 0.0f) {
  AMS_CHECK(in_dim > 0 && out_dim > 0);
}

void DenseLayer::Forward(const Matrix& x, Matrix* y) const {
  AMS_CHECK(x.cols() == w_.rows(), "dense layer input dim mismatch");
  Gemm(x, w_, y);
  AddRowVector(y, b_);
}

void DenseLayer::ForwardSparseRows(
    const std::vector<const std::vector<float>*>& rows,
    const std::vector<const std::vector<int>*>& indices, Matrix* y) const {
  const int n = static_cast<int>(rows.size());
  const int in = w_.rows();
  const int out = w_.cols();
  AMS_CHECK(indices.empty() || indices.size() == rows.size(),
            "sparse index lists must be absent or parallel to the rows");
  y->Resize(n, out);
  y->Fill(0.0f);
  const simd::Kernels& K = simd::Active();
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& x = *rows[static_cast<size_t>(i)];
    AMS_CHECK(static_cast<int>(x.size()) == in,
              "dense layer input dim mismatch");
    float* y_row = y->Row(i);
    const float* x_data = x.data();
    const std::vector<int>* idx =
        indices.empty() ? nullptr : indices[static_cast<size_t>(i)];
    if (idx != nullptr) {
      // Set positions are known: touch only those weight rows. Ascending
      // index order keeps the float accumulation identical to the dense
      // scan below (zero entries contribute nothing there).
      for (const int kk : *idx) {
        const float v = x_data[kk];
        if (v == 0.0f) continue;
        K.axpy(v, w_.Row(kk), y_row, out);
      }
    } else {
      for (int kk = 0; kk < in; ++kk) {
        const float v = x_data[kk];
        if (v == 0.0f) continue;
        K.axpy(v, w_.Row(kk), y_row, out);
      }
    }
    K.add_inplace(b_.data(), y_row, out);
  }
}

void DenseLayer::Backward(const Matrix& x, const Matrix& grad_y, Matrix* grad_x) {
  AMS_CHECK(grad_y.cols() == w_.cols());
  AMS_CHECK(x.rows() == grad_y.rows());
  GemmTransA(x, grad_y, &dw_);      // dW = x^T * dY
  ColumnSums(grad_y, &db_);         // db = column sums of dY
  if (grad_x != nullptr) {
    GemmTransB(grad_y, w_, grad_x);  // dX = dY * W^T
  }
}

void DenseLayer::CollectParams(std::vector<ParamGrad>* out) {
  out->push_back({w_.data(), dw_.data(), static_cast<size_t>(w_.size())});
  out->push_back({b_.data(), db_.data(), b_.size()});
}

void DenseLayer::Save(util::BinaryWriter* w) const {
  w->WriteI32(w_.rows());
  w->WriteI32(w_.cols());
  std::vector<float> flat(w_.data(), w_.data() + w_.size());
  w->WriteFloatVector(flat);
  w->WriteFloatVector(b_);
}

bool DenseLayer::Load(util::BinaryReader* r) {
  const int in_dim = r->ReadI32();
  const int out_dim = r->ReadI32();
  if (!r->ok() || in_dim <= 0 || out_dim <= 0) return false;
  std::vector<float> flat = r->ReadFloatVector();
  std::vector<float> bias = r->ReadFloatVector();
  if (!r->ok()) return false;
  if (static_cast<int>(flat.size()) != in_dim * out_dim) return false;
  if (static_cast<int>(bias.size()) != out_dim) return false;
  w_.Resize(in_dim, out_dim);
  std::copy(flat.begin(), flat.end(), w_.data());
  dw_.Resize(in_dim, out_dim);
  dw_.Fill(0.0f);
  b_ = std::move(bias);
  db_.assign(b_.size(), 0.0f);
  return true;
}

}  // namespace ams::nn
