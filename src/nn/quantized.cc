#include "nn/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "nn/simd.h"
#include "util/check.h"

namespace ams::nn {

namespace {

/// Symmetric int8 quantum for a tensor whose values reach max |v| = maxabs.
float QuantScale(float maxabs) {
  return maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
}

int32_t QuantClamp(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<int32_t>(std::max(-127L, std::min(127L, q)));
}

float MaxAbs(const Matrix& m) {
  float best = 0.0f;
  const float* data = m.data();
  const int n = m.size();
  for (int i = 0; i < n; ++i) best = std::max(best, std::fabs(data[i]));
  return best;
}

[[noreturn]] void InferenceOnly(const char* op) {
  AMS_CHECK(false, std::string("quantized nets are inference-only: ") + op);
  std::abort();  // unreachable; AMS_CHECK above is noreturn
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantizedDenseLayer

QuantizedDenseLayer::QuantizedDenseLayer(const Matrix& w,
                                         const std::vector<float>& bias,
                                         float input_maxabs)
    : in_(w.rows()),
      out_(w.cols()),
      bias_(bias),
      acc_(static_cast<size_t>(w.cols()), 0) {
  AMS_CHECK(static_cast<int>(bias.size()) == out_, "bias/weight mismatch");
  input_scale_ = QuantScale(input_maxabs);
  inv_input_scale_ = 1.0f / input_scale_;
  wq_.resize(static_cast<size_t>(in_) * static_cast<size_t>(out_));
  combined_scale_.resize(static_cast<size_t>(out_));
  for (int j = 0; j < out_; ++j) {
    float col_max = 0.0f;
    for (int kk = 0; kk < in_; ++kk) {
      col_max = std::max(col_max, std::fabs(w.At(kk, j)));
    }
    const float ws = QuantScale(col_max);
    combined_scale_[static_cast<size_t>(j)] = input_scale_ * ws;
    const float inv_ws = 1.0f / ws;
    for (int kk = 0; kk < in_; ++kk) {
      wq_[static_cast<size_t>(kk) * out_ + j] =
          static_cast<int8_t>(QuantClamp(w.At(kk, j), inv_ws));
    }
  }
}

void QuantizedDenseLayer::ForwardRow(const float* x,
                                     const std::vector<int>* idx,
                                     float* y) const {
  std::memset(acc_.data(), 0, acc_.size() * sizeof(int32_t));
  const simd::Kernels& K = simd::Active();
  int32_t* acc = acc_.data();
  if (idx != nullptr) {
    for (const int kk : *idx) {
      const float v = x[kk];
      if (v == 0.0f) continue;
      const int32_t qv = QuantClamp(v, inv_input_scale_);
      if (qv == 0) continue;
      K.qaxpy(qv, wq_.data() + static_cast<size_t>(kk) * out_, acc, out_);
    }
  } else {
    for (int kk = 0; kk < in_; ++kk) {
      const float v = x[kk];
      if (v == 0.0f) continue;
      const int32_t qv = QuantClamp(v, inv_input_scale_);
      if (qv == 0) continue;
      K.qaxpy(qv, wq_.data() + static_cast<size_t>(kk) * out_, acc, out_);
    }
  }
  K.dequant(acc, combined_scale_.data(), bias_.data(), y, out_);
}

// ---------------------------------------------------------------------------
// QuantizedMlp

QuantizedMlp::QuantizedMlp(const MlpConfig& config,
                           std::vector<QuantizedDenseLayer> layers)
    : config_(config), layers_(std::move(layers)) {
  AMS_CHECK(!layers_.empty());
  size_t max_dim = 0;
  for (const auto& layer : layers_) {
    max_dim = std::max(max_dim, static_cast<size_t>(layer.out_dim()));
  }
  act_a_.resize(max_dim);
  act_b_.resize(max_dim);
}

void QuantizedMlp::ForwardRow(const float* x, const std::vector<int>* idx,
                              float* q_row) {
  const simd::Kernels& K = simd::Active();
  const size_t n = layers_.size();
  const float* cur = x;
  float* scratch = act_a_.data();
  float* other = act_b_.data();
  for (size_t i = 0; i < n; ++i) {
    const bool last = i + 1 == n;
    float* dst = last ? q_row : scratch;
    layers_[i].ForwardRow(cur, idx, dst);
    idx = nullptr;  // only the input row is sparse
    if (!last) {
      K.relu(dst, dst, layers_[i].out_dim());
      cur = dst;
      std::swap(scratch, other);
    }
  }
}

void QuantizedMlp::Forward(const Matrix& x, Matrix* q) {
  AMS_CHECK(x.cols() == config_.input_dim, "quantized mlp input dim mismatch");
  q->Resize(x.rows(), config_.output_dim);
  for (int i = 0; i < x.rows(); ++i) {
    ForwardRow(x.Row(i), nullptr, q->Row(i));
  }
}

void QuantizedMlp::PredictBatch(
    const std::vector<const std::vector<float>*>& rows,
    const std::vector<const std::vector<int>*>& indices, Matrix* q) {
  AMS_CHECK(indices.empty() || indices.size() == rows.size(),
            "sparse index lists must be absent or parallel to the rows");
  const int n = static_cast<int>(rows.size());
  q->Resize(n, config_.output_dim);
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& x = *rows[static_cast<size_t>(i)];
    AMS_CHECK(static_cast<int>(x.size()) == config_.input_dim);
    const std::vector<int>* idx =
        indices.empty() ? nullptr : indices[static_cast<size_t>(i)];
    ForwardRow(x.data(), idx, q->Row(i));
  }
}

void QuantizedMlp::Backward(const Matrix& grad_q) {
  (void)grad_q;
  InferenceOnly("Backward");
}

void QuantizedMlp::CollectParams(std::vector<ParamGrad>* out) {
  (void)out;
  InferenceOnly("CollectParams");
}

void QuantizedMlp::Save(util::BinaryWriter* w) const {
  (void)w;
  InferenceOnly("Save");
}

bool QuantizedMlp::Load(util::BinaryReader* r) {
  (void)r;
  InferenceOnly("Load");
}

std::unique_ptr<QValueNet> QuantizedMlp::Clone() const {
  return std::make_unique<QuantizedMlp>(*this);
}

// ---------------------------------------------------------------------------
// QuantizedDuelingMlp

QuantizedDuelingMlp::QuantizedDuelingMlp(const MlpConfig& config,
                                         std::vector<QuantizedDenseLayer> trunk,
                                         QuantizedDenseLayer value_head,
                                         QuantizedDenseLayer advantage_head)
    : config_(config),
      trunk_(std::move(trunk)),
      value_head_(std::move(value_head)),
      advantage_head_(std::move(advantage_head)) {
  AMS_CHECK(!trunk_.empty());
  size_t max_dim = 1;
  for (const auto& layer : trunk_) {
    max_dim = std::max(max_dim, static_cast<size_t>(layer.out_dim()));
  }
  act_a_.resize(max_dim);
  act_b_.resize(max_dim);
}

void QuantizedDuelingMlp::ForwardRow(const float* x,
                                     const std::vector<int>* idx,
                                     float* q_row) {
  const simd::Kernels& K = simd::Active();
  const float* cur = x;
  float* scratch = act_a_.data();
  float* other = act_b_.data();
  for (auto& layer : trunk_) {
    layer.ForwardRow(cur, idx, scratch);
    idx = nullptr;
    K.relu(scratch, scratch, layer.out_dim());
    cur = scratch;
    std::swap(scratch, other);
  }
  // cur now points at the trunk output. The advantage head writes straight
  // into q_row; Q_j = V + A_j - mean(A) is applied in place.
  float value = 0.0f;
  value_head_.ForwardRow(cur, nullptr, &value);
  advantage_head_.ForwardRow(cur, nullptr, q_row);
  const int out = config_.output_dim;
  float mean_adv = 0.0f;
  for (int j = 0; j < out; ++j) mean_adv += q_row[j];
  mean_adv /= static_cast<float>(out);
  const float shift = value - mean_adv;
  for (int j = 0; j < out; ++j) q_row[j] += shift;
}

void QuantizedDuelingMlp::Forward(const Matrix& x, Matrix* q) {
  AMS_CHECK(x.cols() == config_.input_dim,
            "quantized dueling input dim mismatch");
  q->Resize(x.rows(), config_.output_dim);
  for (int i = 0; i < x.rows(); ++i) {
    ForwardRow(x.Row(i), nullptr, q->Row(i));
  }
}

void QuantizedDuelingMlp::PredictBatch(
    const std::vector<const std::vector<float>*>& rows,
    const std::vector<const std::vector<int>*>& indices, Matrix* q) {
  AMS_CHECK(indices.empty() || indices.size() == rows.size(),
            "sparse index lists must be absent or parallel to the rows");
  const int n = static_cast<int>(rows.size());
  q->Resize(n, config_.output_dim);
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& x = *rows[static_cast<size_t>(i)];
    AMS_CHECK(static_cast<int>(x.size()) == config_.input_dim);
    const std::vector<int>* idx =
        indices.empty() ? nullptr : indices[static_cast<size_t>(i)];
    ForwardRow(x.data(), idx, q->Row(i));
  }
}

void QuantizedDuelingMlp::Backward(const Matrix& grad_q) {
  (void)grad_q;
  InferenceOnly("Backward");
}

void QuantizedDuelingMlp::CollectParams(std::vector<ParamGrad>* out) {
  (void)out;
  InferenceOnly("CollectParams");
}

void QuantizedDuelingMlp::Save(util::BinaryWriter* w) const {
  (void)w;
  InferenceOnly("Save");
}

bool QuantizedDuelingMlp::Load(util::BinaryReader* r) {
  (void)r;
  InferenceOnly("Load");
}

std::unique_ptr<QValueNet> QuantizedDuelingMlp::Clone() const {
  return std::make_unique<QuantizedDuelingMlp>(*this);
}

// ---------------------------------------------------------------------------
// Quantize factories (declared on the fp32 nets in nn/net.h; defined here so
// net.cc stays free of quantization concerns).

namespace {

/// Stacks calibration rows into a dense batch, checking dimensions.
Matrix StackCalibration(const std::vector<std::vector<float>>& rows,
                        int input_dim) {
  AMS_CHECK(!rows.empty(), "quantization needs calibration rows");
  Matrix x(static_cast<int>(rows.size()), input_dim);
  for (size_t i = 0; i < rows.size(); ++i) {
    AMS_CHECK(static_cast<int>(rows[i].size()) == input_dim,
              "calibration row dim mismatch");
    std::copy(rows[i].begin(), rows[i].end(), x.Row(static_cast<int>(i)));
  }
  return x;
}

}  // namespace

std::unique_ptr<QValueNet> Mlp::Quantize(
    const std::vector<std::vector<float>>& calibration_rows) {
  const Matrix x = StackCalibration(calibration_rows, config_.input_dim);
  Matrix q;
  Forward(x, &q);  // populates post_act_ with this batch's activations
  std::vector<QuantizedDenseLayer> qlayers;
  qlayers.reserve(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Matrix& input = (i == 0) ? x : post_act_[i - 1];
    qlayers.emplace_back(layers_[i].weights(), layers_[i].bias(),
                         MaxAbs(input));
  }
  return std::make_unique<QuantizedMlp>(config_, std::move(qlayers));
}

std::unique_ptr<QValueNet> DuelingMlp::Quantize(
    const std::vector<std::vector<float>>& calibration_rows) {
  const Matrix x = StackCalibration(calibration_rows, config_.input_dim);
  Matrix q;
  Forward(x, &q);
  std::vector<QuantizedDenseLayer> qtrunk;
  qtrunk.reserve(trunk_.size());
  for (size_t i = 0; i < trunk_.size(); ++i) {
    const Matrix& input = (i == 0) ? x : post_act_[i - 1];
    qtrunk.emplace_back(trunk_[i].weights(), trunk_[i].bias(), MaxAbs(input));
  }
  const float trunk_out_maxabs = MaxAbs(post_act_.back());
  QuantizedDenseLayer qvalue(value_head_->weights(), value_head_->bias(),
                             trunk_out_maxabs);
  QuantizedDenseLayer qadvantage(advantage_head_->weights(),
                                 advantage_head_->bias(), trunk_out_maxabs);
  return std::make_unique<QuantizedDuelingMlp>(
      config_, std::move(qtrunk), std::move(qvalue), std::move(qadvantage));
}

}  // namespace ams::nn
