#ifndef AMS_NN_MATRIX_H_
#define AMS_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace ams::nn {

/// Dense row-major float32 matrix. The only tensor type the NN substrate
/// needs: batches are rows, features are columns. Storage is 64-byte
/// aligned (util::AlignedVector) so the SIMD kernels in nn/simd.h start
/// from a cache-line-aligned base; rows themselves begin at arbitrary
/// offsets (stride = cols), so kernels still use unaligned loads.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  /// Matrix with entries drawn i.i.d. from N(0, stddev^2).
  static Matrix RandomNormal(int rows, int cols, float stddev, util::Rng* rng);

  /// Builds a 1 x n matrix from a vector (copies).
  static Matrix FromRowVector(const std::vector<float>& v);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  float& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to v.
  void Fill(float v);

  /// Resizes (contents unspecified afterwards unless dims unchanged).
  void Resize(int rows, int cols);

  /// Copies row r of `src` into row r of this matrix (same column count).
  void CopyRowFrom(const Matrix& src, int src_row, int dst_row);

 private:
  int rows_ = 0;
  int cols_ = 0;
  util::AlignedVector<float> data_;
};

// Zero-init contract for the three Gemm variants: Resize() leaves contents
// unspecified, so each variant must neutralize stale output storage itself.
// Gemm and GemmTransA accumulate (+=) into the output and therefore Fill(0)
// first; GemmTransB computes each out[i][j] into a fresh accumulator and
// stores it exactly once, so it deliberately skips the fill. All three are
// safe to call on a Matrix holding arbitrary garbage (regression-tested in
// nn_matrix_test).

/// out = a * b. Shapes: a[m,k], b[k,n], out[m,n]. out may not alias inputs.
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: a[m,k], b[m,n], out[k,n].
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: a[m,n], b[p,n], out[m,p]. Writes every output
/// element exactly once (no Fill(0) — see the zero-init contract above).
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out);

/// Adds bias vector (size = m->cols()) to every row of m.
void AddRowVector(Matrix* m, const std::vector<float>& bias);

/// out = max(in, 0). Shapes must match.
void ReluForward(const Matrix& in, Matrix* out);

/// grad_in = grad_out where pre_act > 0, else 0.
void ReluBackward(const Matrix& pre_act, const Matrix& grad_out, Matrix* grad_in);

/// Column-sum of m into out (size m.cols()); used for bias gradients.
void ColumnSums(const Matrix& m, std::vector<float>* out);

}  // namespace ams::nn

#endif  // AMS_NN_MATRIX_H_
