#include "nn/loss.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace ams::nn {

double QLoss(const Matrix& q, const std::vector<int>& actions,
             const std::vector<float>& targets, LossKind kind, Matrix* grad) {
  const int batch = q.rows();
  AMS_CHECK(static_cast<int>(actions.size()) == batch);
  AMS_CHECK(static_cast<int>(targets.size()) == batch);
  grad->Resize(q.rows(), q.cols());
  grad->Fill(0.0f);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double loss = 0.0;
  for (int b = 0; b < batch; ++b) {
    const int a = actions[b];
    AMS_DCHECK(a >= 0 && a < q.cols(), "action out of range");
    const float err = q.At(b, a) - targets[b];
    if (kind == LossKind::kMse) {
      loss += 0.5 * static_cast<double>(err) * static_cast<double>(err);
      grad->At(b, a) = err * inv_batch;
    } else {  // Huber with delta = 1
      const float abs_err = std::fabs(err);
      if (abs_err <= 1.0f) {
        loss += 0.5 * static_cast<double>(err) * static_cast<double>(err);
        grad->At(b, a) = err * inv_batch;
      } else {
        loss += static_cast<double>(abs_err) - 0.5;
        grad->At(b, a) = (err > 0.0f ? 1.0f : -1.0f) * inv_batch;
      }
    }
  }
  return loss / batch;
}

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  AMS_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  grad->Resize(pred.rows(), pred.cols());
  const int n = pred.size();
  const float inv_n = 1.0f / static_cast<float>(n);
  const float* p = pred.data();
  const float* t = target.data();
  float* g = grad->data();
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float err = p[i] - t[i];
    loss += 0.5 * static_cast<double>(err) * static_cast<double>(err);
    g[i] = err * inv_n;
  }
  return loss / n;
}

}  // namespace ams::nn
