// AVX2 kernel tier. This translation unit is compiled with
// -mavx2 -mno-fma -ffp-contract=off (see CMakeLists.txt) on x86 and is an
// empty stub elsewhere; the #if below keys on __AVX2__ so the file is inert
// whenever those flags are absent. -mno-fma matters: with FMA available the
// compiler may contract the separate mul+add intrinsics below into fused
// ops, which would round once instead of twice and break the bitwise parity
// contract with the scalar kernels.

#include "nn/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ams::nn::simd::internal {

namespace {

// Rows start at arbitrary offsets (row stride = cols), so all loads are
// unaligned even though Matrix buffers are 64-byte aligned.

void Avx2Axpy(float v, const float* b, float* out, int n) {
  const __m256 vv = _mm256_set1_ps(v);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(vv, _mm256_loadu_ps(b + j));
    _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), prod));
  }
  for (; j < n; ++j) out[j] += v * b[j];
}

void Avx2Axpy4(float v0, float v1, float v2, float v3, const float* b,
               float* o0, float* o1, float* o2, float* o3, int n) {
  const __m256 w0 = _mm256_set1_ps(v0);
  const __m256 w1 = _mm256_set1_ps(v1);
  const __m256 w2 = _mm256_set1_ps(v2);
  const __m256 w3 = _mm256_set1_ps(v3);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 bj = _mm256_loadu_ps(b + j);
    _mm256_storeu_ps(
        o0 + j, _mm256_add_ps(_mm256_loadu_ps(o0 + j), _mm256_mul_ps(w0, bj)));
    _mm256_storeu_ps(
        o1 + j, _mm256_add_ps(_mm256_loadu_ps(o1 + j), _mm256_mul_ps(w1, bj)));
    _mm256_storeu_ps(
        o2 + j, _mm256_add_ps(_mm256_loadu_ps(o2 + j), _mm256_mul_ps(w2, bj)));
    _mm256_storeu_ps(
        o3 + j, _mm256_add_ps(_mm256_loadu_ps(o3 + j), _mm256_mul_ps(w3, bj)));
  }
  for (; j < n; ++j) {
    const float bj = b[j];
    o0[j] += v0 * bj;
    o1[j] += v1 * bj;
    o2[j] += v2 * bj;
    o3[j] += v3 * bj;
  }
}

void Avx2AddInplace(const float* b, float* out, int n) {
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(
        out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), _mm256_loadu_ps(b + j)));
  }
  for (; j < n; ++j) out[j] += b[j];
}

void Avx2Relu(const float* in, float* out, int n) {
  // maxps(x, 0) returns the SECOND operand when x is NaN or the compare
  // ties (-0.0 vs +0.0), which is exactly the scalar `x > 0 ? x : 0`.
  const __m256 zero = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(out + j, _mm256_max_ps(_mm256_loadu_ps(in + j), zero));
  }
  for (; j < n; ++j) out[j] = in[j] > 0.0f ? in[j] : 0.0f;
}

void Avx2Dot8(const float* a, const float* bt8, int n, float* acc8) {
  // One vector register holds the 8 accumulators; lane l sums
  // a[c] * bt8[c*8+l] over c in index order — the same per-lane sequence as
  // the scalar kernel, so the result is bitwise identical.
  __m256 acc = _mm256_loadu_ps(acc8);
  for (int c = 0; c < n; ++c) {
    const __m256 panel = _mm256_loadu_ps(bt8 + static_cast<size_t>(c) * 8);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[c]), panel));
  }
  _mm256_storeu_ps(acc8, acc);
}

void Avx2Qaxpy(int32_t v, const int8_t* w, int32_t* acc, int n) {
  const __m256i vv = _mm256_set1_epi32(v);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i w8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + j));
    const __m256i w32 = _mm256_cvtepi8_epi32(w8);
    const __m256i prod = _mm256_mullo_epi32(vv, w32);
    __m256i* slot = reinterpret_cast<__m256i*>(acc + j);
    _mm256_storeu_si256(slot,
                        _mm256_add_epi32(_mm256_loadu_si256(slot), prod));
  }
  for (; j < n; ++j) acc[j] += v * static_cast<int32_t>(w[j]);
}

void Avx2Dequant(const int32_t* acc, const float* scale, const float* bias,
                 float* out, int n) {
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 a = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
    const __m256 scaled = _mm256_mul_ps(a, _mm256_loadu_ps(scale + j));
    _mm256_storeu_ps(out + j, _mm256_add_ps(scaled, _mm256_loadu_ps(bias + j)));
  }
  for (; j < n; ++j) {
    out[j] = static_cast<float>(acc[j]) * scale[j] + bias[j];
  }
}

const Kernels kAvx2Kernels = {
    Avx2Axpy,   Avx2Axpy4, Avx2AddInplace, Avx2Relu,
    Avx2Dot8,   Avx2Qaxpy, Avx2Dequant,
};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace ams::nn::simd::internal

#else  // !__AVX2__

namespace ams::nn::simd::internal {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace ams::nn::simd::internal

#endif  // __AVX2__
