// NEON kernel tier (aarch64 baseline — no runtime probe needed). Compiled
// with -ffp-contract=off and written with separate vmul/vadd intrinsics
// (never vmla/vfma, which fuse) so results stay bitwise identical to the
// scalar kernels. An empty stub on other architectures.

#include "nn/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace ams::nn::simd::internal {

namespace {

void NeonAxpy(float v, const float* b, float* out, int n) {
  const float32x4_t vv = vdupq_n_f32(v);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t prod = vmulq_f32(vv, vld1q_f32(b + j));
    vst1q_f32(out + j, vaddq_f32(vld1q_f32(out + j), prod));
  }
  for (; j < n; ++j) out[j] += v * b[j];
}

void NeonAxpy4(float v0, float v1, float v2, float v3, const float* b,
               float* o0, float* o1, float* o2, float* o3, int n) {
  const float32x4_t w0 = vdupq_n_f32(v0);
  const float32x4_t w1 = vdupq_n_f32(v1);
  const float32x4_t w2 = vdupq_n_f32(v2);
  const float32x4_t w3 = vdupq_n_f32(v3);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t bj = vld1q_f32(b + j);
    vst1q_f32(o0 + j, vaddq_f32(vld1q_f32(o0 + j), vmulq_f32(w0, bj)));
    vst1q_f32(o1 + j, vaddq_f32(vld1q_f32(o1 + j), vmulq_f32(w1, bj)));
    vst1q_f32(o2 + j, vaddq_f32(vld1q_f32(o2 + j), vmulq_f32(w2, bj)));
    vst1q_f32(o3 + j, vaddq_f32(vld1q_f32(o3 + j), vmulq_f32(w3, bj)));
  }
  for (; j < n; ++j) {
    const float bj = b[j];
    o0[j] += v0 * bj;
    o1[j] += v1 * bj;
    o2[j] += v2 * bj;
    o3[j] += v3 * bj;
  }
}

void NeonAddInplace(const float* b, float* out, int n) {
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f32(out + j, vaddq_f32(vld1q_f32(out + j), vld1q_f32(b + j)));
  }
  for (; j < n; ++j) out[j] += b[j];
}

void NeonRelu(const float* in, float* out, int n) {
  // Compare-and-select (not vmaxq, whose NaN behavior differs): x > 0 picks
  // x, else +0.0 — identical to the scalar ternary for -0.0 and NaN.
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t x = vld1q_f32(in + j);
    const uint32x4_t pos = vcgtq_f32(x, zero);
    vst1q_f32(out + j, vbslq_f32(pos, x, zero));
  }
  for (; j < n; ++j) out[j] = in[j] > 0.0f ? in[j] : 0.0f;
}

void NeonDot8(const float* a, const float* bt8, int n, float* acc8) {
  float32x4_t lo = vld1q_f32(acc8);
  float32x4_t hi = vld1q_f32(acc8 + 4);
  for (int c = 0; c < n; ++c) {
    const float32x4_t ac = vdupq_n_f32(a[c]);
    const float* panel = bt8 + static_cast<size_t>(c) * 8;
    lo = vaddq_f32(lo, vmulq_f32(ac, vld1q_f32(panel)));
    hi = vaddq_f32(hi, vmulq_f32(ac, vld1q_f32(panel + 4)));
  }
  vst1q_f32(acc8, lo);
  vst1q_f32(acc8 + 4, hi);
}

void NeonQaxpy(int32_t v, const int8_t* w, int32_t* acc, int n) {
  const int32x4_t vv = vdupq_n_s32(v);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const int16x8_t w16 = vmovl_s8(vld1_s8(w + j));
    const int32x4_t lo = vmovl_s16(vget_low_s16(w16));
    const int32x4_t hi = vmovl_s16(vget_high_s16(w16));
    vst1q_s32(acc + j, vaddq_s32(vld1q_s32(acc + j), vmulq_s32(vv, lo)));
    vst1q_s32(acc + j + 4,
              vaddq_s32(vld1q_s32(acc + j + 4), vmulq_s32(vv, hi)));
  }
  for (; j < n; ++j) acc[j] += v * static_cast<int32_t>(w[j]);
}

void NeonDequant(const int32_t* acc, const float* scale, const float* bias,
                 float* out, int n) {
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t a = vcvtq_f32_s32(vld1q_s32(acc + j));
    const float32x4_t scaled = vmulq_f32(a, vld1q_f32(scale + j));
    vst1q_f32(out + j, vaddq_f32(scaled, vld1q_f32(bias + j)));
  }
  for (; j < n; ++j) {
    out[j] = static_cast<float>(acc[j]) * scale[j] + bias[j];
  }
}

const Kernels kNeonKernels = {
    NeonAxpy,   NeonAxpy4, NeonAddInplace, NeonRelu,
    NeonDot8,   NeonQaxpy, NeonDequant,
};

}  // namespace

const Kernels* NeonKernelsOrNull() { return &kNeonKernels; }

}  // namespace ams::nn::simd::internal

#else  // !__aarch64__

namespace ams::nn::simd::internal {
const Kernels* NeonKernelsOrNull() { return nullptr; }
}  // namespace ams::nn::simd::internal

#endif  // __aarch64__
