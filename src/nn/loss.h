#ifndef AMS_NN_LOSS_H_
#define AMS_NN_LOSS_H_

#include <vector>

#include "nn/matrix.h"

namespace ams::nn {

enum class LossKind {
  kMse,
  kHuber,  // delta = 1 (smooth L1), the standard DQN choice
};

/// Temporal-difference loss for Q-learning batches.
///
/// For each row b, compares q.At(b, actions[b]) against targets[b]; entries
/// for non-selected actions receive zero gradient. Returns the mean loss and
/// fills `grad` (same shape as q) with dLoss/dQ (already divided by batch).
double QLoss(const Matrix& q, const std::vector<int>& actions,
             const std::vector<float>& targets, LossKind kind, Matrix* grad);

/// Plain elementwise MSE between `pred` and `target` (used by tests and the
/// gradient checker). Fills grad with dLoss/dPred.
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

}  // namespace ams::nn

#endif  // AMS_NN_LOSS_H_
