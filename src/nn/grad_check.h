#ifndef AMS_NN_GRAD_CHECK_H_
#define AMS_NN_GRAD_CHECK_H_

#include "nn/matrix.h"
#include "nn/net.h"

namespace ams::nn {

/// Result of comparing analytic vs. central-difference gradients.
struct GradCheckResult {
  double max_abs_diff = 0.0;
  double max_rel_diff = 0.0;
  size_t params_checked = 0;
};

/// Verifies net.Backward against numerical differentiation of an MSE loss on
/// (x, target). Checks every `stride`-th parameter to bound runtime.
/// The net's weights are restored on exit.
GradCheckResult CheckGradients(QValueNet* net, const Matrix& x,
                               const Matrix& target, float epsilon = 1e-3f,
                               size_t stride = 1);

}  // namespace ams::nn

#endif  // AMS_NN_GRAD_CHECK_H_
