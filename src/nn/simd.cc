#include "nn/simd.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/check.h"

// This file (like every kernel file) is compiled with -ffp-contract=off so
// that even an AMS_NATIVE_ARCH=-march=native build cannot fuse the separate
// mul+add below into an FMA — bitwise parity across tiers depends on it.

namespace ams::nn::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics every vector tier must
// reproduce bitwise (fp32) — they are also the portable fallback.

void ScalarAxpy(float v, const float* b, float* out, int n) {
  for (int j = 0; j < n; ++j) out[j] += v * b[j];
}

void ScalarAxpy4(float v0, float v1, float v2, float v3, const float* b,
                 float* o0, float* o1, float* o2, float* o3, int n) {
  for (int j = 0; j < n; ++j) {
    const float bj = b[j];
    o0[j] += v0 * bj;
    o1[j] += v1 * bj;
    o2[j] += v2 * bj;
    o3[j] += v3 * bj;
  }
}

void ScalarAddInplace(const float* b, float* out, int n) {
  for (int j = 0; j < n; ++j) out[j] += b[j];
}

void ScalarRelu(const float* in, float* out, int n) {
  for (int j = 0; j < n; ++j) out[j] = in[j] > 0.0f ? in[j] : 0.0f;
}

void ScalarDot8(const float* a, const float* bt8, int n, float* acc8) {
  for (int c = 0; c < n; ++c) {
    const float ac = a[c];
    const float* panel = bt8 + static_cast<size_t>(c) * 8;
    for (int l = 0; l < 8; ++l) acc8[l] += ac * panel[l];
  }
}

void ScalarQaxpy(int32_t v, const int8_t* w, int32_t* acc, int n) {
  for (int j = 0; j < n; ++j) acc[j] += v * static_cast<int32_t>(w[j]);
}

void ScalarDequant(const int32_t* acc, const float* scale, const float* bias,
                   float* out, int n) {
  for (int j = 0; j < n; ++j) {
    out[j] = static_cast<float>(acc[j]) * scale[j] + bias[j];
  }
}

const Kernels kScalarKernels = {
    ScalarAxpy,   ScalarAxpy4, ScalarAddInplace, ScalarRelu,
    ScalarDot8,   ScalarQaxpy, ScalarDequant,
};

// ---------------------------------------------------------------------------
// Dispatch. Resolved once (thread-safe via static init); ForceTier is a
// single-threaded test hook.

struct DispatchState {
  Tier tier;
  const Kernels* kernels;
};

DispatchState Resolve(Tier tier) { return {tier, &KernelsFor(tier)}; }

std::string LowerEnv(const char* value) {
  std::string s(value);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

DispatchState ResolveFromEnv() {
  const char* env = std::getenv("AMS_SIMD");
  if (env == nullptr || *env == '\0') return Resolve(BestSupportedTier());
  const std::string value = LowerEnv(env);
  if (value == "off" || value == "scalar" || value == "0") {
    return Resolve(Tier::kScalar);
  }
  if (value == "on" || value == "auto" || value == "1") {
    return Resolve(BestSupportedTier());
  }
  if (value == "avx2") return Resolve(Tier::kAvx2);  // KernelsFor aborts if unsupported
  if (value == "neon") return Resolve(Tier::kNeon);
  AMS_CHECK(false, "unrecognized AMS_SIMD value '" + std::string(env) +
                       "' (expected off|on|auto|scalar|avx2|neon)");
  return Resolve(Tier::kScalar);  // unreachable
}

DispatchState& State() {
  static DispatchState state = ResolveFromEnv();
  return state;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
  }
  return "unknown";
}

bool TierSupported(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return internal::Avx2KernelsOrNull() != nullptr &&
             __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Tier::kNeon:
      return internal::NeonKernelsOrNull() != nullptr;
  }
  return false;
}

Tier BestSupportedTier() {
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  if (TierSupported(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

const Kernels& KernelsFor(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return kScalarKernels;
    case Tier::kAvx2: {
      AMS_CHECK(TierSupported(Tier::kAvx2),
                "AVX2 kernels requested but unsupported on this machine");
      return *internal::Avx2KernelsOrNull();
    }
    case Tier::kNeon: {
      AMS_CHECK(TierSupported(Tier::kNeon),
                "NEON kernels requested but unsupported on this machine");
      return *internal::NeonKernelsOrNull();
    }
  }
  AMS_CHECK(false, "unknown kernel tier");
  return kScalarKernels;  // unreachable
}

Tier ActiveTier() { return State().tier; }

const Kernels& Active() { return *State().kernels; }

void ForceTier(Tier tier) { State() = Resolve(tier); }

void ResetForcedTier() { State() = ResolveFromEnv(); }

}  // namespace ams::nn::simd
