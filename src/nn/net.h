#ifndef AMS_NN_NET_H_
#define AMS_NN_NET_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/matrix.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace ams::nn {

/// Abstract Q-value network mapping a state batch to per-action values.
///
/// Forward() caches activations so that Backward() can compute gradients for
/// the same batch; a net instance is therefore NOT thread-safe. Clone() for
/// per-thread use or for target networks.
class QValueNet {
 public:
  virtual ~QValueNet() = default;

  virtual int input_dim() const = 0;
  virtual int output_dim() const = 0;

  /// q becomes [batch, output_dim]; caches intermediates for Backward.
  virtual void Forward(const Matrix& x, Matrix* q) = 0;

  /// Computes parameter gradients for the cached batch given dL/dQ.
  virtual void Backward(const Matrix& grad_q) = 0;

  virtual void CollectParams(std::vector<ParamGrad>* out) = 0;

  virtual void Save(util::BinaryWriter* w) const = 0;
  virtual bool Load(util::BinaryReader* r) = 0;

  virtual std::unique_ptr<QValueNet> Clone() const = 0;

  /// Copies all weights from `src` (same architecture); used to sync target
  /// networks.
  void CopyWeightsFrom(QValueNet* src);

  /// Inference-only batched forward over sparse state rows: q becomes
  /// [rows.size(), output_dim], bitwise identical to Forward on the stacked
  /// rows. Implementations skip the dense input build and the
  /// activation-caching copies that only Backward needs, so this is the fast
  /// path for batched prediction. Clobbers cached activations — do not call
  /// Backward for a batch forwarded this way. The base implementation stacks
  /// the rows and calls Forward (ignoring `indices`).
  ///
  /// `indices` may be empty or parallel to `rows`: a non-null indices[i]
  /// lists the nonzero positions of rows[i] in ascending order, so the first
  /// layer skips the dense feature scan (DenseLayer::ForwardSparseRows).
  virtual void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                            const std::vector<const std::vector<int>*>& indices,
                            Matrix* q);
  void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                    Matrix* q) {
    PredictBatch(rows, {}, q);
  }

  /// Convenience single-state forward pass.
  std::vector<float> Predict1(const std::vector<float>& x);

  /// Builds an int8 inference-only snapshot of this net (nn/quantized.h):
  /// per-output-column weight scales, per-layer input scales calibrated
  /// from the max |activation| that `calibration_rows` (a sample of
  /// observed input rows) produce. Runs calibration forwards, clobbering
  /// cached activations — call on a clone. Returns nullptr when the
  /// architecture has no quantized form (the default).
  virtual std::unique_ptr<QValueNet> Quantize(
      const std::vector<std::vector<float>>& calibration_rows);

  /// True for the int8 inference-only nets: they cannot Backward, Save, or
  /// CopyWeightsFrom, and weight syncs must skip them.
  virtual bool IsQuantized() const { return false; }

  /// Total parameter count.
  size_t NumParams();
};

/// Plain multilayer perceptron with ReLU hidden activations. The paper's
/// architecture is one 256-unit hidden layer: {input=1104, hidden={256},
/// output=31}.
struct MlpConfig {
  int input_dim = 0;
  std::vector<int> hidden_dims;
  int output_dim = 0;
};

class Mlp : public QValueNet {
 public:
  Mlp(const MlpConfig& config, uint64_t seed);

  int input_dim() const override { return config_.input_dim; }
  int output_dim() const override { return config_.output_dim; }

  void Forward(const Matrix& x, Matrix* q) override;
  using QValueNet::PredictBatch;
  void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                    const std::vector<const std::vector<int>*>& indices,
                    Matrix* q) override;
  void Backward(const Matrix& grad_q) override;
  void CollectParams(std::vector<ParamGrad>* out) override;
  void Save(util::BinaryWriter* w) const override;
  bool Load(util::BinaryReader* r) override;
  std::unique_ptr<QValueNet> Clone() const override;
  std::unique_ptr<QValueNet> Quantize(
      const std::vector<std::vector<float>>& calibration_rows) override;

 private:
  MlpConfig config_;
  std::vector<DenseLayer> layers_;
  // Cached per-layer tensors from the last Forward.
  Matrix input_;
  std::vector<Matrix> pre_act_;   // layer outputs before ReLU
  std::vector<Matrix> post_act_;  // after ReLU (inputs to the next layer)
  // Separate scratch buffers for dL/d(post-activation) and
  // dL/d(pre-activation): layer backward reads one and writes the other, so
  // they must not alias.
  std::vector<Matrix> grad_post_;
  std::vector<Matrix> grad_pre_;
};

/// Dueling architecture (Wang et al. 2015): shared ReLU trunk, then a scalar
/// state-value head V and an advantage head A; Q = V + A - mean(A).
class DuelingMlp : public QValueNet {
 public:
  /// `config.hidden_dims` defines the shared trunk; the two heads are single
  /// dense layers on the trunk output.
  DuelingMlp(const MlpConfig& config, uint64_t seed);

  int input_dim() const override { return config_.input_dim; }
  int output_dim() const override { return config_.output_dim; }

  void Forward(const Matrix& x, Matrix* q) override;
  using QValueNet::PredictBatch;
  void PredictBatch(const std::vector<const std::vector<float>*>& rows,
                    const std::vector<const std::vector<int>*>& indices,
                    Matrix* q) override;
  void Backward(const Matrix& grad_q) override;
  void CollectParams(std::vector<ParamGrad>* out) override;
  void Save(util::BinaryWriter* w) const override;
  bool Load(util::BinaryReader* r) override;
  std::unique_ptr<QValueNet> Clone() const override;
  std::unique_ptr<QValueNet> Quantize(
      const std::vector<std::vector<float>>& calibration_rows) override;

 private:
  /// Q = V + A - mean(A) per row, shared by Forward and PredictBatch.
  void CombineHeads(int batch, Matrix* q) const;

  MlpConfig config_;
  std::vector<DenseLayer> trunk_;
  std::unique_ptr<DenseLayer> value_head_;      // trunk_out -> 1
  std::unique_ptr<DenseLayer> advantage_head_;  // trunk_out -> output_dim
  // Cached tensors.
  Matrix input_;
  std::vector<Matrix> pre_act_;
  std::vector<Matrix> post_act_;
  Matrix value_out_;      // [batch, 1]
  Matrix advantage_out_;  // [batch, out]
  std::vector<Matrix> grad_post_;  // dL/d(post-activation), see Mlp
  std::vector<Matrix> grad_pre_;   // dL/d(pre-activation)
  Matrix grad_value_;
  Matrix grad_advantage_;
  Matrix grad_trunk_v_;
  Matrix grad_trunk_a_;
};

/// Architecture tags used in checkpoints.
enum class NetKind : int32_t {
  kMlp = 1,
  kDueling = 2,
};

/// Serializes kind + net so the counterpart LoadNet can reconstruct.
void SaveNet(const QValueNet& net, NetKind kind, util::BinaryWriter* w);

/// Reconstructs a net saved by SaveNet; returns nullptr on malformed input.
std::unique_ptr<QValueNet> LoadNet(util::BinaryReader* r, NetKind* kind_out);

}  // namespace ams::nn

#endif  // AMS_NN_NET_H_
