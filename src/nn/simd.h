#ifndef AMS_NN_SIMD_H_
#define AMS_NN_SIMD_H_

#include <cstdint>

namespace ams::nn::simd {

/// Instruction-set tiers the inference kernels can run at. The scalar tier
/// is always compiled; the vector tiers are compiled on their architecture
/// and picked at runtime, so one Release binary runs (fast) everywhere.
enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,  // x86-64, runtime-detected via CPUID
  kNeon = 2,  // aarch64 baseline
};

/// The vectorizable inner loops of the nn substrate, as a function-pointer
/// table resolved once at startup. Every fp32 kernel is elementwise
/// equivalent to its scalar counterpart — vector lanes map to output
/// columns, each lane performs the same mul-then-add sequence in the same
/// order, and no tier may use FMA contraction — so switching tiers never
/// changes results bitwise. (The int8 kernels feed the quantized path,
/// which is held to recall tolerance, not bitwise parity.)
struct Kernels {
  /// out[j] += v * b[j] for j in [0, n). Callers skip v == 0 themselves
  /// (the scalar kernels' sparse zero-skip; adding 0 * b[j] would differ
  /// for inf/NaN inputs).
  void (*axpy)(float v, const float* b, float* out, int n);
  /// Four axpys sharing one pass over b. All four v's must be nonzero —
  /// callers fall back to individual axpy calls otherwise to preserve the
  /// zero-skip exactly.
  void (*axpy4)(float v0, float v1, float v2, float v3, const float* b,
                float* o0, float* o1, float* o2, float* o3, int n);
  /// out[j] += b[j].
  void (*add_inplace)(const float* b, float* out, int n);
  /// out[j] = in[j] > 0 ? in[j] : 0, with scalar-identical -0.0/NaN
  /// behavior (both map to +0.0). in == out is allowed.
  void (*relu)(const float* in, float* out, int n);
  /// acc8[l] += sum_c a[c] * bt8[c*8 + l] for l in [0, 8): eight
  /// dot-products against the columns of an n x 8 panel, each lane
  /// accumulating sequentially over c in index order.
  void (*dot8)(const float* a, const float* bt8, int n, float* acc8);
  /// acc[j] += v * w[j] with int8 weights widened to int32.
  void (*qaxpy)(int32_t v, const int8_t* w, int32_t* acc, int n);
  /// out[j] = float(acc[j]) * scale[j] + bias[j].
  void (*dequant)(const int32_t* acc, const float* scale, const float* bias,
                  float* out, int n);
};

/// Human-readable tier name ("scalar", "avx2", "neon").
const char* TierName(Tier tier);

/// Whether this binary both compiled the tier and runs on hardware that
/// supports it.
bool TierSupported(Tier tier);

/// Highest supported tier on this machine.
Tier BestSupportedTier();

/// The tier Active() dispatches to. Resolved once from the AMS_SIMD
/// environment variable: unset/"on"/"auto" pick BestSupportedTier(),
/// "off"/"scalar" force the scalar kernels (kill switch), "avx2"/"neon"
/// force a specific tier and abort if it is unsupported.
Tier ActiveTier();

/// Kernel table for an explicit tier; aborts if unsupported.
const Kernels& KernelsFor(Tier tier);

/// The active kernel table. Hot loops hoist this reference once per call.
const Kernels& Active();

/// Test/bench hook: overrides the active tier (aborts if unsupported).
/// Not thread-safe — call before spawning workers.
void ForceTier(Tier tier);
/// Undoes ForceTier, returning to the AMS_SIMD/auto resolution.
void ResetForcedTier();

namespace internal {
/// Defined in simd_kernels_avx2.cc / simd_kernels_neon.cc; null when the
/// tier was not compiled into this binary.
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();
}  // namespace internal

}  // namespace ams::nn::simd

#endif  // AMS_NN_SIMD_H_
