#include "nn/net.h"

#include <sstream>

#include "util/check.h"

namespace ams::nn {

void QValueNet::CopyWeightsFrom(QValueNet* src) {
  std::vector<ParamGrad> dst_params, src_params;
  CollectParams(&dst_params);
  src->CollectParams(&src_params);
  AMS_CHECK(dst_params.size() == src_params.size(), "architecture mismatch");
  for (size_t i = 0; i < dst_params.size(); ++i) {
    AMS_CHECK(dst_params[i].size == src_params[i].size, "tensor size mismatch");
    std::copy(src_params[i].param, src_params[i].param + src_params[i].size,
              dst_params[i].param);
  }
}

void QValueNet::PredictBatch(const std::vector<const std::vector<float>*>& rows,
                             const std::vector<const std::vector<int>*>& indices,
                             Matrix* q) {
  (void)indices;  // the dense fallback stacks every row in full
  const int n = static_cast<int>(rows.size());
  Matrix x;
  x.Resize(n, input_dim());  // no zero-fill: every row is overwritten
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& row = *rows[static_cast<size_t>(i)];
    AMS_CHECK(static_cast<int>(row.size()) == input_dim());
    std::copy(row.begin(), row.end(), x.Row(i));
  }
  Forward(x, q);
}

std::vector<float> QValueNet::Predict1(const std::vector<float>& x) {
  AMS_CHECK(static_cast<int>(x.size()) == input_dim());
  Matrix in = Matrix::FromRowVector(x);
  Matrix q;
  Forward(in, &q);
  return std::vector<float>(q.Row(0), q.Row(0) + q.cols());
}

std::unique_ptr<QValueNet> QValueNet::Quantize(
    const std::vector<std::vector<float>>& calibration_rows) {
  (void)calibration_rows;
  return nullptr;  // no quantized form for this architecture
}

size_t QValueNet::NumParams() {
  std::vector<ParamGrad> params;
  CollectParams(&params);
  size_t n = 0;
  for (const auto& p : params) n += p.size;
  return n;
}

// ---------------------------------------------------------------------------
// Mlp

Mlp::Mlp(const MlpConfig& config, uint64_t seed) : config_(config) {
  AMS_CHECK(config.input_dim > 0 && config.output_dim > 0);
  util::Rng rng(seed);
  int prev = config.input_dim;
  for (int h : config.hidden_dims) {
    AMS_CHECK(h > 0);
    layers_.emplace_back(prev, h, &rng);
    prev = h;
  }
  layers_.emplace_back(prev, config.output_dim, &rng);
  pre_act_.resize(layers_.size());
  post_act_.resize(layers_.size());
  grad_post_.resize(layers_.size());
  grad_pre_.resize(layers_.size());
}

void Mlp::Forward(const Matrix& x, Matrix* q) {
  input_ = x;
  const Matrix* cur = &input_;
  const size_t n = layers_.size();
  for (size_t i = 0; i < n; ++i) {
    layers_[i].Forward(*cur, &pre_act_[i]);
    if (i + 1 < n) {
      ReluForward(pre_act_[i], &post_act_[i]);
      cur = &post_act_[i];
    }
  }
  *q = pre_act_.back();  // linear output layer
}

void Mlp::PredictBatch(const std::vector<const std::vector<float>*>& rows,
                       const std::vector<const std::vector<int>*>& indices,
                       Matrix* q) {
  // Inference only: the sparse rows feed the first layer directly — no
  // dense input build, no input_ cache copy. Later layers run the normal
  // dense path on the (small) hidden activations.
  const size_t n = layers_.size();
  layers_[0].ForwardSparseRows(rows, indices, &pre_act_[0]);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) layers_[i].Forward(post_act_[i - 1], &pre_act_[i]);
    if (i + 1 < n) ReluForward(pre_act_[i], &post_act_[i]);
  }
  *q = pre_act_.back();
}

void Mlp::Backward(const Matrix& grad_q) {
  const int n = static_cast<int>(layers_.size());
  const Matrix* grad = &grad_q;
  for (int i = n - 1; i >= 0; --i) {
    const Matrix& layer_input = (i == 0) ? input_ : post_act_[i - 1];
    Matrix* grad_x = (i == 0) ? nullptr : &grad_post_[i - 1];
    layers_[i].Backward(layer_input, *grad, grad_x);
    if (i > 0) {
      // Route through the ReLU that produced this layer's input.
      ReluBackward(pre_act_[i - 1], grad_post_[i - 1], &grad_pre_[i - 1]);
      grad = &grad_pre_[i - 1];
    }
  }
}

void Mlp::CollectParams(std::vector<ParamGrad>* out) {
  for (auto& layer : layers_) layer.CollectParams(out);
}

void Mlp::Save(util::BinaryWriter* w) const {
  w->WriteI32(config_.input_dim);
  w->WriteI32(static_cast<int32_t>(config_.hidden_dims.size()));
  for (int h : config_.hidden_dims) w->WriteI32(h);
  w->WriteI32(config_.output_dim);
  for (const auto& layer : layers_) layer.Save(w);
}

bool Mlp::Load(util::BinaryReader* r) {
  MlpConfig cfg;
  cfg.input_dim = r->ReadI32();
  const int num_hidden = r->ReadI32();
  if (!r->ok() || num_hidden < 0 || num_hidden > 64) return false;
  for (int i = 0; i < num_hidden; ++i) cfg.hidden_dims.push_back(r->ReadI32());
  cfg.output_dim = r->ReadI32();
  if (!r->ok() || cfg.input_dim <= 0 || cfg.output_dim <= 0) return false;
  *this = Mlp(cfg, /*seed=*/0);
  for (auto& layer : layers_) {
    if (!layer.Load(r)) return false;
  }
  return true;
}

std::unique_ptr<QValueNet> Mlp::Clone() const {
  auto clone = std::make_unique<Mlp>(config_, /*seed=*/0);
  std::stringstream buf;
  util::BinaryWriter w(&buf);
  Save(&w);
  util::BinaryReader r(&buf);
  AMS_CHECK(clone->Load(&r), "clone round-trip failed");
  return clone;
}

// ---------------------------------------------------------------------------
// DuelingMlp

DuelingMlp::DuelingMlp(const MlpConfig& config, uint64_t seed) : config_(config) {
  AMS_CHECK(config.input_dim > 0 && config.output_dim > 0);
  AMS_CHECK(!config.hidden_dims.empty(), "dueling net needs a trunk");
  util::Rng rng(seed);
  int prev = config.input_dim;
  for (int h : config.hidden_dims) {
    AMS_CHECK(h > 0);
    trunk_.emplace_back(prev, h, &rng);
    prev = h;
  }
  value_head_ = std::make_unique<DenseLayer>(prev, 1, &rng);
  advantage_head_ = std::make_unique<DenseLayer>(prev, config.output_dim, &rng);
  pre_act_.resize(trunk_.size());
  post_act_.resize(trunk_.size());
  grad_post_.resize(trunk_.size());
  grad_pre_.resize(trunk_.size());
}

void DuelingMlp::CombineHeads(int batch, Matrix* q) const {
  const int out = config_.output_dim;
  q->Resize(batch, out);
  for (int b = 0; b < batch; ++b) {
    const float* adv = advantage_out_.Row(b);
    float mean_adv = 0.0f;
    for (int j = 0; j < out; ++j) mean_adv += adv[j];
    mean_adv /= static_cast<float>(out);
    const float v = value_out_.At(b, 0);
    float* q_row = q->Row(b);
    for (int j = 0; j < out; ++j) q_row[j] = v + adv[j] - mean_adv;
  }
}

void DuelingMlp::Forward(const Matrix& x, Matrix* q) {
  input_ = x;
  const Matrix* cur = &input_;
  for (size_t i = 0; i < trunk_.size(); ++i) {
    trunk_[i].Forward(*cur, &pre_act_[i]);
    ReluForward(pre_act_[i], &post_act_[i]);
    cur = &post_act_[i];
  }
  value_head_->Forward(*cur, &value_out_);
  advantage_head_->Forward(*cur, &advantage_out_);
  CombineHeads(x.rows(), q);
}

void DuelingMlp::PredictBatch(
    const std::vector<const std::vector<float>*>& rows,
    const std::vector<const std::vector<int>*>& indices, Matrix* q) {
  // Inference only: sparse rows feed the first trunk layer directly (see
  // Mlp::PredictBatch).
  trunk_[0].ForwardSparseRows(rows, indices, &pre_act_[0]);
  ReluForward(pre_act_[0], &post_act_[0]);
  for (size_t i = 1; i < trunk_.size(); ++i) {
    trunk_[i].Forward(post_act_[i - 1], &pre_act_[i]);
    ReluForward(pre_act_[i], &post_act_[i]);
  }
  const Matrix& trunk_out = post_act_.back();
  value_head_->Forward(trunk_out, &value_out_);
  advantage_head_->Forward(trunk_out, &advantage_out_);
  CombineHeads(static_cast<int>(rows.size()), q);
}

void DuelingMlp::Backward(const Matrix& grad_q) {
  const int batch = grad_q.rows();
  const int out = config_.output_dim;
  AMS_CHECK(grad_q.cols() == out);
  // Q_j = V + A_j - mean(A)  =>  dL/dV = sum_j dL/dQ_j,
  // dL/dA_i = dL/dQ_i - mean_j(dL/dQ_j).
  grad_value_.Resize(batch, 1);
  grad_advantage_.Resize(batch, out);
  for (int b = 0; b < batch; ++b) {
    const float* gq = grad_q.Row(b);
    float total = 0.0f;
    for (int j = 0; j < out; ++j) total += gq[j];
    grad_value_.At(b, 0) = total;
    const float mean = total / static_cast<float>(out);
    float* ga = grad_advantage_.Row(b);
    for (int j = 0; j < out; ++j) ga[j] = gq[j] - mean;
  }
  const Matrix& trunk_out = post_act_.back();
  value_head_->Backward(trunk_out, grad_value_, &grad_trunk_v_);
  advantage_head_->Backward(trunk_out, grad_advantage_, &grad_trunk_a_);
  // Sum head gradients flowing into the trunk output.
  Matrix grad_trunk = grad_trunk_v_;
  {
    float* dst = grad_trunk.data();
    const float* src = grad_trunk_a_.data();
    const int n = grad_trunk.size();
    for (int i = 0; i < n; ++i) dst[i] += src[i];
  }
  const int nt = static_cast<int>(trunk_.size());
  Matrix relu_grad;
  ReluBackward(pre_act_[nt - 1], grad_trunk, &relu_grad);
  const Matrix* grad = &relu_grad;
  for (int i = nt - 1; i >= 0; --i) {
    const Matrix& layer_input = (i == 0) ? input_ : post_act_[i - 1];
    Matrix* grad_x = (i == 0) ? nullptr : &grad_post_[i - 1];
    trunk_[i].Backward(layer_input, *grad, grad_x);
    if (i > 0) {
      ReluBackward(pre_act_[i - 1], grad_post_[i - 1], &grad_pre_[i - 1]);
      grad = &grad_pre_[i - 1];
    }
  }
}

void DuelingMlp::CollectParams(std::vector<ParamGrad>* out) {
  for (auto& layer : trunk_) layer.CollectParams(out);
  value_head_->CollectParams(out);
  advantage_head_->CollectParams(out);
}

void DuelingMlp::Save(util::BinaryWriter* w) const {
  w->WriteI32(config_.input_dim);
  w->WriteI32(static_cast<int32_t>(config_.hidden_dims.size()));
  for (int h : config_.hidden_dims) w->WriteI32(h);
  w->WriteI32(config_.output_dim);
  for (const auto& layer : trunk_) layer.Save(w);
  value_head_->Save(w);
  advantage_head_->Save(w);
}

bool DuelingMlp::Load(util::BinaryReader* r) {
  MlpConfig cfg;
  cfg.input_dim = r->ReadI32();
  const int num_hidden = r->ReadI32();
  if (!r->ok() || num_hidden <= 0 || num_hidden > 64) return false;
  for (int i = 0; i < num_hidden; ++i) cfg.hidden_dims.push_back(r->ReadI32());
  cfg.output_dim = r->ReadI32();
  if (!r->ok() || cfg.input_dim <= 0 || cfg.output_dim <= 0) return false;
  *this = DuelingMlp(cfg, /*seed=*/0);
  for (auto& layer : trunk_) {
    if (!layer.Load(r)) return false;
  }
  if (!value_head_->Load(r)) return false;
  if (!advantage_head_->Load(r)) return false;
  return true;
}

std::unique_ptr<QValueNet> DuelingMlp::Clone() const {
  auto clone = std::make_unique<DuelingMlp>(config_, /*seed=*/0);
  std::stringstream buf;
  util::BinaryWriter w(&buf);
  Save(&w);
  util::BinaryReader r(&buf);
  AMS_CHECK(clone->Load(&r), "clone round-trip failed");
  return clone;
}

// ---------------------------------------------------------------------------

void SaveNet(const QValueNet& net, NetKind kind, util::BinaryWriter* w) {
  w->WriteI32(static_cast<int32_t>(kind));
  net.Save(w);
}

std::unique_ptr<QValueNet> LoadNet(util::BinaryReader* r, NetKind* kind_out) {
  const int32_t kind = r->ReadI32();
  if (!r->ok()) return nullptr;
  std::unique_ptr<QValueNet> net;
  if (kind == static_cast<int32_t>(NetKind::kMlp)) {
    MlpConfig placeholder{1, {}, 1};
    auto mlp = std::make_unique<Mlp>(placeholder, 0);
    if (!mlp->Load(r)) return nullptr;
    net = std::move(mlp);
  } else if (kind == static_cast<int32_t>(NetKind::kDueling)) {
    MlpConfig placeholder{1, {1}, 1};
    auto dueling = std::make_unique<DuelingMlp>(placeholder, 0);
    if (!dueling->Load(r)) return nullptr;
    net = std::move(dueling);
  } else {
    return nullptr;
  }
  if (kind_out != nullptr) *kind_out = static_cast<NetKind>(kind);
  return net;
}

}  // namespace ams::nn
