#include "core/schedule_kernel.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/reward.h"
#include "util/check.h"
#include "util/rng.h"

namespace ams::core {

void ScheduleConstraints::Validate() const {
  AMS_CHECK(!std::isnan(time_budget_s) && time_budget_s >= 0.0,
            "ScheduleConstraints: time budget must be a non-negative number");
  AMS_CHECK(!std::isnan(memory_budget_mb) && memory_budget_mb >= 0.0,
            "ScheduleConstraints: memory budget must be a non-negative number");
}

LiveExecutionContext::LiveExecutionContext(const zoo::ModelZoo* zoo,
                                           const zoo::LatentScene* scene)
    : zoo_(zoo), scene_(scene) {
  AMS_CHECK(zoo != nullptr && scene != nullptr);
}

double LiveExecutionContext::PlannedTime(int model) const {
  return zoo_->model(model).time_s;
}

double LiveExecutionContext::RealizedTime(int model) const {
  return zoo_->SampleExecutionTime(model, *scene_);
}

const std::vector<zoo::LabelOutput>& LiveExecutionContext::Execute(
    int model) const {
  last_outputs_ = zoo_->Execute(model, *scene_);
  return last_outputs_;
}

ReplayExecutionContext::ReplayExecutionContext(const data::Oracle* oracle,
                                               int item)
    : oracle_(oracle), item_(item) {
  AMS_CHECK(oracle != nullptr);
  AMS_CHECK(item >= 0 && item < oracle->num_items());
}

double ReplayExecutionContext::PlannedTime(int model) const {
  return oracle_->ExecutionTime(item_, model);
}

double ReplayExecutionContext::RealizedTime(int model) const {
  return oracle_->ExecutionTime(item_, model);
}

const std::vector<zoo::LabelOutput>& ReplayExecutionContext::Execute(
    int model) const {
  return oracle_->Output(item_, model);
}

CachedReplayExecutionContext::CachedReplayExecutionContext(
    const ExecutionContext* inner)
    : inner_(inner) {
  Init();
}

CachedReplayExecutionContext::CachedReplayExecutionContext(
    std::unique_ptr<ExecutionContext> inner)
    : owned_inner_(std::move(inner)), inner_(owned_inner_.get()) {
  Init();
}

void CachedReplayExecutionContext::Init() {
  AMS_CHECK(inner_ != nullptr);
  num_entries_ = inner_->num_models();
  entries_ = std::make_unique<Entry[]>(static_cast<size_t>(num_entries_));
  planned_times_.reserve(static_cast<size_t>(num_entries_));
  for (int m = 0; m < num_entries_; ++m) {
    planned_times_.push_back(inner_->PlannedTime(m));
  }
}

CachedReplayExecutionContext::CachedReplayExecutionContext(
    const data::Oracle* oracle, int item)
    : CachedReplayExecutionContext(
          std::make_unique<ReplayExecutionContext>(oracle, item)) {}

CachedReplayExecutionContext::Entry& CachedReplayExecutionContext::EntryFor(
    int model) const {
  AMS_CHECK(model >= 0 && model < num_entries_);
  return entries_[static_cast<size_t>(model)];
}

double CachedReplayExecutionContext::PlannedTime(int model) const {
  // Preloaded at construction: the feasibility loops of the pickers query
  // planned times for every model every round.
  return planned_times_[static_cast<size_t>(model)];
}

double CachedReplayExecutionContext::RealizedTime(int model) const {
  Entry& entry = EntryFor(model);
  if (!entry.time_ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!entry.time_ready.load(std::memory_order_relaxed)) {
      entry.realized_time = inner_->RealizedTime(model);
      entry.time_ready.store(true, std::memory_order_release);
    }
  }
  return entry.realized_time;
}

const std::vector<zoo::LabelOutput>& CachedReplayExecutionContext::Execute(
    int model) const {
  Entry& entry = EntryFor(model);
  if (!entry.outputs_ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!entry.outputs_ready.load(std::memory_order_relaxed)) {
      // Stable-storage contexts (replay, nested caches) are served by
      // reference; anything that may recycle its buffer is copied once.
      if (inner_->StableOutputs()) {
        entry.outputs = &inner_->Execute(model);
      } else {
        entry.owned_outputs = inner_->Execute(model);
        entry.outputs = &entry.owned_outputs;
      }
      entry.outputs_ready.store(true, std::memory_order_release);
    }
  }
  return *entry.outputs;
}

ScheduleKernel::ScheduleKernel(const ExecutionContext* exec,
                               const ScheduleConstraints& constraints,
                               ModelPicker picker, KernelHooks hooks,
                               KernelMode mode)
    : exec_(exec),
      constraints_(constraints),
      picker_(std::move(picker)),
      hooks_(std::move(hooks)),
      mode_(mode),
      state_(exec->zoo().labels().total_labels(), exec->num_models()),
      started_(static_cast<size_t>(exec->num_models()), false),
      mem_free_(constraints.memory_budget_mb),
      best_conf_(static_cast<size_t>(exec->zoo().labels().total_labels()),
                 0.0) {
  constraints_.Validate();
  AMS_CHECK(picker_ != nullptr);
  // Worst-case capacities up front so steady-state Steps never allocate.
  touched_labels_.reserve(best_conf_.size());
  running_.reserve(static_cast<size_t>(exec->num_models()));
  scratch_record_.fresh.reserve(best_conf_.size());
}

void ScheduleKernel::StartModels() {
  while (!stopped_) {
    PickContext pick;
    pick.exec = exec_;
    pick.state = &state_;
    pick.started = &started_;
    pick.now = now_;
    pick.deadline = constraints_.time_budget_s;
    pick.mem_free = mem_free_;
    pick.idle = running_.empty();
    const int m = picker_(pick);
    if (m < 0) break;
    AMS_CHECK(m < exec_->num_models() && !started_[static_cast<size_t>(m)],
              "picker returned an already-started model");
    started_[static_cast<size_t>(m)] = true;
    const double mem = exec_->model(m).mem_mb;
    running_.push_back({m, now_, now_ + exec_->RealizedTime(m), mem});
    mem_free_ -= mem;
    mem_used_ += mem;
    result_.peak_mem_mb = std::max(result_.peak_mem_mb, mem_used_);
  }
}

bool ScheduleKernel::Step() {
  if (done_) return false;

  // (a) Start everything the picker wants at this instant.
  StartModels();
  if (running_.empty()) {
    done_ = true;
    return false;
  }

  // (b) Advance to the earliest finish event and apply its outputs.
  size_t next = 0;
  for (size_t i = 1; i < running_.size(); ++i) {
    if (running_[i].finish_s < running_[next].finish_s) next = i;
  }
  const Running done_run = running_[next];
  running_.erase(running_.begin() + static_cast<long>(next));
  now_ = done_run.finish_s;
  mem_free_ += done_run.mem_mb;
  mem_used_ -= done_run.mem_mb;

  const std::vector<zoo::LabelOutput>& outputs =
      exec_->Execute(done_run.model_id);

  // f(S, d): credit each valuable label with its best confidence so far.
  // best == 0 means never credited (valuable confidences are > 0), so the
  // first credit also records the label in the touched list.
  for (const auto& out : outputs) {
    if (out.confidence < zoo::kValuableConfidence) continue;
    double& best = best_conf_[static_cast<size_t>(out.label_id)];
    if (out.confidence > best) {
      if (best == 0.0) touched_labels_.push_back(out.label_id);
      result_.value += out.confidence - best;
      best = out.confidence;
    }
  }
  result_.makespan_s = std::max(result_.makespan_s, done_run.finish_s);
  ++result_.num_executions;

  const ExecutionRecord* record = nullptr;
  if (mode_ == KernelMode::kFull) {
    ExecutionRecord full;
    full.model_id = done_run.model_id;
    full.start_s = done_run.start_s;
    full.finish_s = done_run.finish_s;
    full.outputs = outputs;
    full.fresh = state_.Apply(done_run.model_id, outputs);
    full.reward = ModelReward(full.fresh, exec_->model(done_run.model_id).theta);
    result_.executions.push_back(std::move(full));
    record = &result_.executions.back();
  } else {
    // Lean: reuse one scratch record — no output copies, no reward, no
    // per-event allocations once the fresh buffer has grown.
    scratch_record_.model_id = done_run.model_id;
    scratch_record_.start_s = done_run.start_s;
    scratch_record_.finish_s = done_run.finish_s;
    state_.ApplyInto(done_run.model_id, outputs, &scratch_record_.fresh);
    record = &scratch_record_;
  }

  if (hooks_.on_executed && hooks_.on_executed(*record, state_)) {
    stopped_ = true;
  }
  if (now_ >= constraints_.time_budget_s) stopped_ = true;

  if (running_.empty() && stopped_) done_ = true;
  return !done_;
}

ScheduleResult ScheduleKernel::TakeResult() {
  AMS_CHECK(done_, "TakeResult before the schedule completed");
  AMS_CHECK(!result_taken_, "TakeResult called twice");
  result_taken_ = true;
  if (mode_ == KernelMode::kFull) {
    // Ascending label order, matching the sorted-map export this replaces.
    std::sort(touched_labels_.begin(), touched_labels_.end());
    result_.recalled_labels.reserve(touched_labels_.size());
    for (const int label : touched_labels_) {
      result_.recalled_labels.push_back(
          {label, best_conf_[static_cast<size_t>(label)]});
    }
  }
  return std::move(result_);
}

ScheduleResult RunScheduleKernel(const ExecutionContext& exec,
                                 const ScheduleConstraints& constraints,
                                 const ModelPicker& picker,
                                 const KernelHooks& hooks, KernelMode mode) {
  ScheduleKernel kernel(&exec, constraints, picker, hooks, mode);
  while (kernel.Step()) {
  }
  return kernel.TakeResult();
}

namespace {

// Adapts the predictor-taking picker factories to the slot-based ones: each
// legacy call site gets a private single-slot DecisionPlane, so its cost
// profile stays one forward pass per event round, exactly as before.
struct PrivateSlot {
  explicit PrivateSlot(ModelValuePredictor* predictor)
      : plane(predictor), slot(plane.NewSlot()) {}
  DecisionPlane plane;
  DecisionPlane::Slot* slot;
};

int GreedyPick(DecisionPlane::Slot* slot, const PickContext& pick) {
  if (!pick.idle) return -1;
  const std::vector<double>& q = slot->Values(*pick.state);
  const int end_action = pick.exec->num_models();
  int best = -1;
  double best_q = q[static_cast<size_t>(end_action)];
  for (int m = 0; m < pick.exec->num_models(); ++m) {
    if ((*pick.started)[static_cast<size_t>(m)]) continue;
    if (best == -1 || q[static_cast<size_t>(m)] > best_q) {
      best = m;
      best_q = q[static_cast<size_t>(m)];
    }
  }
  // Stop when END outranks every remaining model.
  if (best == -1 || q[static_cast<size_t>(end_action)] >= best_q) return -1;
  return best;
}

int DeadlinePick(DecisionPlane::Slot* slot, const PickContext& pick) {
  if (!pick.idle) return -1;
  const std::vector<double>& q = slot->Values(*pick.state);
  // Algorithm 1 lines 3-4: among models that still fit the budget, pick
  // the one maximizing Q / time.
  int best = -1;
  double best_ratio = 0.0;
  for (int m = 0; m < pick.exec->num_models(); ++m) {
    if ((*pick.started)[static_cast<size_t>(m)]) continue;
    const double planned = pick.exec->PlannedTime(m);
    if (planned > pick.remaining_time()) continue;
    const double ratio = SchedulingProfit(q[static_cast<size_t>(m)]) / planned;
    if (best == -1 || ratio > best_ratio) {
      best = m;
      best_ratio = ratio;
    }
  }
  return best;
}

int DeadlineMemoryPick(DecisionPlane::Slot* slot, const PickContext& pick) {
  const std::vector<double>& q = slot->Values(*pick.state);
  int best = -1;
  double best_score = 0.0;
  for (int m = 0; m < pick.exec->num_models(); ++m) {
    if ((*pick.started)[static_cast<size_t>(m)]) continue;
    const auto& spec = pick.exec->model(m);
    if (spec.mem_mb > pick.mem_free) continue;
    if (pick.now + pick.exec->PlannedTime(m) > pick.deadline) continue;
    // Algorithm 2 line 4 (idle: anchor by Q / (time * mem)) or lines 7-12
    // (fill remaining memory by Q / mem). Fills are bounded by the global
    // deadline rather than the literal anchor window: taken literally the
    // filter degenerates to near-serial execution whenever the
    // value-density anchor is a short model.
    const double profit = SchedulingProfit(q[static_cast<size_t>(m)]);
    const double score = pick.idle ? profit / (spec.time_s * spec.mem_mb)
                                   : profit / spec.mem_mb;
    if (best == -1 || score > best_score) {
      best = m;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

ModelPicker MakeGreedyPicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto owned = std::make_shared<PrivateSlot>(predictor);
  return [owned](const PickContext& pick) {
    return GreedyPick(owned->slot, pick);
  };
}

ModelPicker MakeGreedyPicker(DecisionPlane::Slot* slot) {
  AMS_CHECK(slot != nullptr);
  return [slot](const PickContext& pick) { return GreedyPick(slot, pick); };
}

ModelPicker MakeDeadlinePicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto owned = std::make_shared<PrivateSlot>(predictor);
  return [owned](const PickContext& pick) {
    return DeadlinePick(owned->slot, pick);
  };
}

ModelPicker MakeDeadlinePicker(DecisionPlane::Slot* slot) {
  AMS_CHECK(slot != nullptr);
  return [slot](const PickContext& pick) { return DeadlinePick(slot, pick); };
}

ModelPicker MakeDeadlineMemoryPicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto owned = std::make_shared<PrivateSlot>(predictor);
  return [owned](const PickContext& pick) {
    return DeadlineMemoryPick(owned->slot, pick);
  };
}

ModelPicker MakeDeadlineMemoryPicker(DecisionPlane::Slot* slot) {
  AMS_CHECK(slot != nullptr);
  return [slot](const PickContext& pick) {
    return DeadlineMemoryPick(slot, pick);
  };
}

ModelPicker MakeRandomPackingPicker(uint64_t seed) {
  struct PackState {
    util::Rng rng;
    std::vector<int> order;
    int shuffled_at = -1;
    explicit PackState(uint64_t s) : rng(s) {}
  };
  auto pack = std::make_shared<PackState>(seed);
  return [pack](const PickContext& pick) -> int {
    // One shuffle per event round (the state advances exactly once per
    // finish event), then pack feasible models in that order.
    if (pack->shuffled_at != pick.state->num_executed()) {
      const int n = pick.exec->num_models();
      pack->order.resize(static_cast<size_t>(n));
      for (int m = 0; m < n; ++m) pack->order[static_cast<size_t>(m)] = m;
      pack->rng.Shuffle(&pack->order);
      pack->shuffled_at = pick.state->num_executed();
    }
    for (int m : pack->order) {
      if ((*pick.started)[static_cast<size_t>(m)]) continue;
      if (pick.exec->model(m).mem_mb > pick.mem_free) continue;
      if (pick.now + pick.exec->PlannedTime(m) > pick.deadline) continue;
      return m;
    }
    return -1;
  };
}

}  // namespace ams::core
