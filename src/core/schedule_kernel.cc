#include "core/schedule_kernel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "core/reward.h"
#include "util/check.h"
#include "util/rng.h"

namespace ams::core {

namespace {

// Tracks the best-confidence union of valuable labels for f(S, d).
class LiveValue {
 public:
  double Add(const std::vector<zoo::LabelOutput>& outputs) {
    double gain = 0.0;
    for (const auto& out : outputs) {
      if (out.confidence < zoo::kValuableConfidence) continue;
      double& best = best_[out.label_id];
      if (out.confidence > best) {
        gain += out.confidence - best;
        best = out.confidence;
      }
    }
    value_ += gain;
    return gain;
  }

  double value() const { return value_; }

  std::vector<zoo::LabelOutput> RecalledLabels() const {
    std::vector<zoo::LabelOutput> labels;
    labels.reserve(best_.size());
    for (const auto& [label, conf] : best_) labels.push_back({label, conf});
    return labels;
  }

 private:
  std::map<int, double> best_;
  double value_ = 0.0;
};

// Recomputes the predictor's Q values only when the labeling state changed
// (it changes exactly at finish events), so a pick round costs one forward
// pass no matter how many models it starts — same cost profile as the three
// hand-written loops this kernel replaces.
class CachedQ {
 public:
  explicit CachedQ(ModelValuePredictor* predictor) : predictor_(predictor) {}

  const std::vector<double>& Values(const LabelingState& state) {
    if (state.num_executed() != executed_at_) {
      q_ = predictor_->PredictValues(state.Features());
      executed_at_ = state.num_executed();
    }
    return q_;
  }

 private:
  ModelValuePredictor* predictor_;
  std::vector<double> q_;
  int executed_at_ = -1;
};

}  // namespace

void ScheduleConstraints::Validate() const {
  AMS_CHECK(!std::isnan(time_budget_s) && time_budget_s >= 0.0,
            "ScheduleConstraints: time budget must be a non-negative number");
  AMS_CHECK(!std::isnan(memory_budget_mb) && memory_budget_mb >= 0.0,
            "ScheduleConstraints: memory budget must be a non-negative number");
}

LiveExecutionContext::LiveExecutionContext(const zoo::ModelZoo* zoo,
                                           const zoo::LatentScene* scene)
    : zoo_(zoo), scene_(scene) {
  AMS_CHECK(zoo != nullptr && scene != nullptr);
}

double LiveExecutionContext::PlannedTime(int model) const {
  return zoo_->model(model).time_s;
}

double LiveExecutionContext::RealizedTime(int model) const {
  return zoo_->SampleExecutionTime(model, *scene_);
}

std::vector<zoo::LabelOutput> LiveExecutionContext::Execute(int model) const {
  return zoo_->Execute(model, *scene_);
}

ReplayExecutionContext::ReplayExecutionContext(const data::Oracle* oracle,
                                               int item)
    : oracle_(oracle), item_(item) {
  AMS_CHECK(oracle != nullptr);
  AMS_CHECK(item >= 0 && item < oracle->num_items());
}

double ReplayExecutionContext::PlannedTime(int model) const {
  return oracle_->ExecutionTime(item_, model);
}

double ReplayExecutionContext::RealizedTime(int model) const {
  return oracle_->ExecutionTime(item_, model);
}

std::vector<zoo::LabelOutput> ReplayExecutionContext::Execute(
    int model) const {
  return oracle_->Output(item_, model);
}

ScheduleResult RunScheduleKernel(const ExecutionContext& exec,
                                 const ScheduleConstraints& constraints,
                                 const ModelPicker& picker,
                                 const KernelHooks& hooks) {
  constraints.Validate();
  AMS_CHECK(picker != nullptr);

  const int num_models = exec.num_models();
  LabelingState state(exec.zoo().labels().total_labels(), num_models);
  LiveValue value;
  ScheduleResult result;

  struct Running {
    int model_id;
    double start_s;
    double finish_s;
    double mem_mb;
  };
  std::vector<Running> running;
  std::vector<bool> started(static_cast<size_t>(num_models), false);
  const double deadline = constraints.time_budget_s;
  double mem_free = constraints.memory_budget_mb;
  double mem_used = 0.0;
  double now = 0.0;
  bool stopped = false;

  for (;;) {
    // (a) Start everything the picker wants at this instant.
    while (!stopped) {
      PickContext pick;
      pick.exec = &exec;
      pick.state = &state;
      pick.started = &started;
      pick.now = now;
      pick.deadline = deadline;
      pick.mem_free = mem_free;
      pick.idle = running.empty();
      const int m = picker(pick);
      if (m < 0) break;
      AMS_CHECK(m < num_models && !started[static_cast<size_t>(m)],
                "picker returned an already-started model");
      started[static_cast<size_t>(m)] = true;
      const double mem = exec.model(m).mem_mb;
      running.push_back({m, now, now + exec.RealizedTime(m), mem});
      mem_free -= mem;
      mem_used += mem;
      result.peak_mem_mb = std::max(result.peak_mem_mb, mem_used);
    }
    if (running.empty()) break;

    // (b) Advance to the earliest finish event and apply its outputs.
    size_t next = 0;
    for (size_t i = 1; i < running.size(); ++i) {
      if (running[i].finish_s < running[next].finish_s) next = i;
    }
    const Running done = running[next];
    running.erase(running.begin() + static_cast<long>(next));
    now = done.finish_s;
    mem_free += done.mem_mb;
    mem_used -= done.mem_mb;

    ExecutionRecord record;
    record.model_id = done.model_id;
    record.start_s = done.start_s;
    record.finish_s = done.finish_s;
    record.outputs = exec.Execute(done.model_id);
    record.fresh = state.Apply(done.model_id, record.outputs);
    record.reward =
        ModelReward(record.fresh, exec.model(done.model_id).theta);
    value.Add(record.outputs);
    result.makespan_s = std::max(result.makespan_s, record.finish_s);
    result.executions.push_back(std::move(record));
    if (hooks.on_executed &&
        hooks.on_executed(result.executions.back(), state)) {
      stopped = true;
    }
    if (now >= deadline) stopped = true;
  }
  result.value = value.value();
  result.recalled_labels = value.RecalledLabels();
  return result;
}

ModelPicker MakeGreedyPicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto cache = std::make_shared<CachedQ>(predictor);
  return [cache](const PickContext& pick) -> int {
    if (!pick.idle) return -1;
    const std::vector<double>& q = cache->Values(*pick.state);
    const int end_action = pick.exec->num_models();
    int best = -1;
    double best_q = q[static_cast<size_t>(end_action)];
    for (int m = 0; m < pick.exec->num_models(); ++m) {
      if ((*pick.started)[static_cast<size_t>(m)]) continue;
      if (best == -1 || q[static_cast<size_t>(m)] > best_q) {
        best = m;
        best_q = q[static_cast<size_t>(m)];
      }
    }
    // Stop when END outranks every remaining model.
    if (best == -1 || q[static_cast<size_t>(end_action)] >= best_q) return -1;
    return best;
  };
}

ModelPicker MakeDeadlinePicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto cache = std::make_shared<CachedQ>(predictor);
  return [cache](const PickContext& pick) -> int {
    if (!pick.idle) return -1;
    const std::vector<double>& q = cache->Values(*pick.state);
    // Algorithm 1 lines 3-4: among models that still fit the budget, pick
    // the one maximizing Q / time.
    int best = -1;
    double best_ratio = 0.0;
    for (int m = 0; m < pick.exec->num_models(); ++m) {
      if ((*pick.started)[static_cast<size_t>(m)]) continue;
      const double planned = pick.exec->PlannedTime(m);
      if (planned > pick.remaining_time()) continue;
      const double ratio =
          SchedulingProfit(q[static_cast<size_t>(m)]) / planned;
      if (best == -1 || ratio > best_ratio) {
        best = m;
        best_ratio = ratio;
      }
    }
    return best;
  };
}

ModelPicker MakeDeadlineMemoryPicker(ModelValuePredictor* predictor) {
  AMS_CHECK(predictor != nullptr);
  auto cache = std::make_shared<CachedQ>(predictor);
  return [cache](const PickContext& pick) -> int {
    const std::vector<double>& q = cache->Values(*pick.state);
    int best = -1;
    double best_score = 0.0;
    for (int m = 0; m < pick.exec->num_models(); ++m) {
      if ((*pick.started)[static_cast<size_t>(m)]) continue;
      const auto& spec = pick.exec->model(m);
      if (spec.mem_mb > pick.mem_free) continue;
      if (pick.now + pick.exec->PlannedTime(m) > pick.deadline) continue;
      // Algorithm 2 line 4 (idle: anchor by Q / (time * mem)) or lines 7-12
      // (fill remaining memory by Q / mem). Fills are bounded by the global
      // deadline rather than the literal anchor window: taken literally the
      // filter degenerates to near-serial execution whenever the
      // value-density anchor is a short model.
      const double profit = SchedulingProfit(q[static_cast<size_t>(m)]);
      const double score =
          pick.idle ? profit / (spec.time_s * spec.mem_mb)
                    : profit / spec.mem_mb;
      if (best == -1 || score > best_score) {
        best = m;
        best_score = score;
      }
    }
    return best;
  };
}

ModelPicker MakeRandomPackingPicker(uint64_t seed) {
  struct PackState {
    util::Rng rng;
    std::vector<int> order;
    int shuffled_at = -1;
    explicit PackState(uint64_t s) : rng(s) {}
  };
  auto pack = std::make_shared<PackState>(seed);
  return [pack](const PickContext& pick) -> int {
    // One shuffle per event round (the state advances exactly once per
    // finish event), then pack feasible models in that order.
    if (pack->shuffled_at != pick.state->num_executed()) {
      const int n = pick.exec->num_models();
      pack->order.resize(static_cast<size_t>(n));
      for (int m = 0; m < n; ++m) pack->order[static_cast<size_t>(m)] = m;
      pack->rng.Shuffle(&pack->order);
      pack->shuffled_at = pick.state->num_executed();
    }
    for (int m : pack->order) {
      if ((*pick.started)[static_cast<size_t>(m)]) continue;
      if (pick.exec->model(m).mem_mb > pick.mem_free) continue;
      if (pick.now + pick.exec->PlannedTime(m) > pick.deadline) continue;
      return m;
    }
    return -1;
  };
}

}  // namespace ams::core
