#include "core/scheduler_api.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace ams::core {

namespace {

// Tracks the best-confidence union of valuable labels for f(S, d).
class LiveValue {
 public:
  double Add(const std::vector<zoo::LabelOutput>& outputs) {
    double gain = 0.0;
    for (const auto& out : outputs) {
      if (out.confidence < zoo::kValuableConfidence) continue;
      double& best = best_[out.label_id];
      if (out.confidence > best) {
        gain += out.confidence - best;
        best = out.confidence;
      }
    }
    value_ += gain;
    return gain;
  }

  double value() const { return value_; }

  std::vector<zoo::LabelOutput> RecalledLabels() const {
    std::vector<zoo::LabelOutput> labels;
    labels.reserve(best_.size());
    for (const auto& [label, conf] : best_) labels.push_back({label, conf});
    return labels;
  }

 private:
  std::map<int, double> best_;
  double value_ = 0.0;
};

}  // namespace

AdaptiveModelScheduler::AdaptiveModelScheduler(const zoo::ModelZoo* zoo,
                                               ModelValuePredictor* predictor)
    : zoo_(zoo), predictor_(predictor) {
  AMS_CHECK(zoo != nullptr && predictor != nullptr);
  AMS_CHECK(predictor->num_actions() == zoo->num_models() + 1,
            "predictor action space must be num_models + END");
}

ScheduleResult AdaptiveModelScheduler::LabelItemGreedy(
    const zoo::LatentScene& scene) {
  ScheduleResult result;
  LabelingState state(zoo_->labels().total_labels(), zoo_->num_models());
  LiveValue value;
  const int end_action = zoo_->num_models();
  double now = 0.0;
  while (state.num_executed() < zoo_->num_models()) {
    const std::vector<double> q = predictor_->PredictValues(state.Features());
    int best = -1;
    double best_q = q[static_cast<size_t>(end_action)];
    for (int m = 0; m < zoo_->num_models(); ++m) {
      if (state.model_executed(m)) continue;
      if (best == -1 || q[static_cast<size_t>(m)] > best_q) {
        best = m;
        best_q = q[static_cast<size_t>(m)];
      }
    }
    // Stop when END outranks every remaining model.
    if (best == -1 || q[static_cast<size_t>(end_action)] >= best_q) break;

    ExecutionRecord record;
    record.model_id = best;
    record.start_s = now;
    record.outputs = zoo_->Execute(best, scene);
    record.fresh = state.Apply(best, record.outputs);
    record.reward = ModelReward(record.fresh, zoo_->model(best).theta);
    now += zoo_->SampleExecutionTime(best, scene);
    record.finish_s = now;
    value.Add(record.outputs);
    result.executions.push_back(std::move(record));
  }
  result.makespan_s = now;
  result.value = value.value();
  result.recalled_labels = value.RecalledLabels();
  return result;
}

ScheduleResult AdaptiveModelScheduler::LabelItem(
    const zoo::LatentScene& scene, const ScheduleConstraints& constraints) {
  ScheduleResult result;
  LabelingState state(zoo_->labels().total_labels(), zoo_->num_models());
  LiveValue value;
  double remaining = constraints.time_budget_s;
  double now = 0.0;
  for (;;) {
    const std::vector<double> q = predictor_->PredictValues(state.Features());
    // Algorithm 1 line 3-4: among models that still fit the budget, pick the
    // one maximizing Q / time. (Planned with the spec's mean time; the
    // realized jittered time is charged.)
    int best = -1;
    double best_ratio = 0.0;
    for (int m = 0; m < zoo_->num_models(); ++m) {
      if (state.model_executed(m)) continue;
      const double planned = zoo_->model(m).time_s;
      if (planned > remaining) continue;
      const double ratio = SchedulingProfit(q[static_cast<size_t>(m)]) / planned;
      if (best == -1 || ratio > best_ratio) {
        best = m;
        best_ratio = ratio;
      }
    }
    if (best == -1) break;  // nothing fits the remaining budget

    ExecutionRecord record;
    record.model_id = best;
    record.start_s = now;
    record.outputs = zoo_->Execute(best, scene);
    record.fresh = state.Apply(best, record.outputs);
    record.reward = ModelReward(record.fresh, zoo_->model(best).theta);
    const double elapsed = zoo_->SampleExecutionTime(best, scene);
    now += elapsed;
    remaining -= elapsed;
    record.finish_s = now;
    value.Add(record.outputs);
    result.executions.push_back(std::move(record));
    if (remaining <= 0.0) break;
  }
  result.makespan_s = now;
  result.value = value.value();
  result.recalled_labels = value.RecalledLabels();
  return result;
}

ScheduleResult AdaptiveModelScheduler::LabelItemParallel(
    const zoo::LatentScene& scene, const ScheduleConstraints& constraints) {
  ScheduleResult result;
  LabelingState state(zoo_->labels().total_labels(), zoo_->num_models());
  LiveValue value;
  const double deadline = constraints.time_budget_s;
  double mem_free = constraints.memory_budget_mb;
  double now = 0.0;

  struct Running {
    int model_id;
    double start_s;
    double finish_s;
    double mem_mb;
  };
  std::vector<Running> running;
  std::vector<bool> started(static_cast<size_t>(zoo_->num_models()), false);
  double window_end = 0.0;  // the "temporary deadline" B^t_time of Algorithm 2

  auto start_model = [&](int m) {
    started[static_cast<size_t>(m)] = true;
    const double duration = zoo_->SampleExecutionTime(m, scene);
    running.push_back({m, now, now + duration, zoo_->model(m).mem_mb});
    mem_free -= zoo_->model(m).mem_mb;
    window_end = std::max(window_end, now + zoo_->model(m).time_s);
  };

  for (;;) {
    const std::vector<double> q = predictor_->PredictValues(state.Features());
    if (running.empty()) {
      // Algorithm 2 line 4: anchor model by Q / (time * mem); its planned
      // finish becomes the temporary deadline for co-scheduled models.
      int anchor = -1;
      double best_score = 0.0;
      for (int m = 0; m < zoo_->num_models(); ++m) {
        if (started[static_cast<size_t>(m)]) continue;
        const auto& spec = zoo_->model(m);
        if (spec.mem_mb > mem_free) continue;
        if (now + spec.time_s > deadline) continue;
        const double score = SchedulingProfit(q[static_cast<size_t>(m)]) /
                             (spec.time_s * spec.mem_mb);
        if (anchor == -1 || score > best_score) {
          anchor = m;
          best_score = score;
        }
      }
      if (anchor == -1) break;  // nothing feasible at all
      window_end = 0.0;
      start_model(anchor);
    }
    // Algorithm 2 lines 7-12: fill the remaining memory by Q / mem. Fills
    // are bounded by the global deadline rather than the literal anchor
    // window (see DESIGN.md: the literal filter degenerates to serial
    // execution when the value-density anchor is a short model).
    for (;;) {
      int best = -1;
      double best_score = 0.0;
      for (int m = 0; m < zoo_->num_models(); ++m) {
        if (started[static_cast<size_t>(m)]) continue;
        const auto& spec = zoo_->model(m);
        if (spec.mem_mb > mem_free) continue;
        if (now + spec.time_s > deadline) continue;
        const double score =
            SchedulingProfit(q[static_cast<size_t>(m)]) / spec.mem_mb;
        if (best == -1 || score > best_score) {
          best = m;
          best_score = score;
        }
      }
      if (best == -1) break;
      start_model(best);
    }
    // Algorithm 2 lines 14-17: advance to the earliest finish, apply its
    // outputs, release its memory.
    AMS_CHECK(!running.empty());
    size_t next = 0;
    for (size_t i = 1; i < running.size(); ++i) {
      if (running[i].finish_s < running[next].finish_s) next = i;
    }
    const Running done = running[next];
    running.erase(running.begin() + static_cast<long>(next));
    now = done.finish_s;
    mem_free += done.mem_mb;

    ExecutionRecord record;
    record.model_id = done.model_id;
    record.start_s = done.start_s;
    record.finish_s = done.finish_s;
    record.outputs = zoo_->Execute(done.model_id, scene);
    record.fresh = state.Apply(done.model_id, record.outputs);
    record.reward = ModelReward(record.fresh, zoo_->model(done.model_id).theta);
    value.Add(record.outputs);
    result.executions.push_back(std::move(record));
    result.makespan_s = std::max(result.makespan_s, record.finish_s);
    if (now >= deadline) break;
  }
  // Drain models still in flight (all were scheduled to finish within the
  // deadline, so their outputs count).
  std::sort(running.begin(), running.end(),
            [](const Running& a, const Running& b) {
              return a.finish_s < b.finish_s;
            });
  for (const Running& r : running) {
    ExecutionRecord record;
    record.model_id = r.model_id;
    record.start_s = r.start_s;
    record.finish_s = r.finish_s;
    record.outputs = zoo_->Execute(r.model_id, scene);
    record.fresh = state.Apply(r.model_id, record.outputs);
    record.reward = ModelReward(record.fresh, zoo_->model(r.model_id).theta);
    value.Add(record.outputs);
    result.executions.push_back(std::move(record));
    result.makespan_s = std::max(result.makespan_s, record.finish_s);
  }
  result.value = value.value();
  result.recalled_labels = value.RecalledLabels();
  return result;
}

}  // namespace ams::core
