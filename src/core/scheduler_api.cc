#include "core/scheduler_api.h"

#include <limits>

#include "util/check.h"

namespace ams::core {

AdaptiveModelScheduler::AdaptiveModelScheduler(const zoo::ModelZoo* zoo,
                                               ModelValuePredictor* predictor)
    : zoo_(zoo), predictor_(predictor) {
  AMS_CHECK(zoo != nullptr && predictor != nullptr);
  AMS_CHECK(predictor->num_actions() == zoo->num_models() + 1,
            "predictor action space must be num_models + END");
}

ScheduleResult AdaptiveModelScheduler::LabelItemGreedy(
    const zoo::LatentScene& scene) {
  LiveExecutionContext exec(zoo_, &scene);
  return RunScheduleKernel(exec, ScheduleConstraints{},
                           MakeGreedyPicker(predictor_));
}

ScheduleResult AdaptiveModelScheduler::LabelItem(
    const zoo::LatentScene& scene, const ScheduleConstraints& constraints) {
  LiveExecutionContext exec(zoo_, &scene);
  // Algorithm 1 is time-only; whatever memory budget the caller carries in
  // `constraints` must not throttle the serial schedule.
  ScheduleConstraints serial = constraints;
  serial.memory_budget_mb = std::numeric_limits<double>::infinity();
  return RunScheduleKernel(exec, serial, MakeDeadlinePicker(predictor_));
}

ScheduleResult AdaptiveModelScheduler::LabelItemParallel(
    const zoo::LatentScene& scene, const ScheduleConstraints& constraints) {
  LiveExecutionContext exec(zoo_, &scene);
  return RunScheduleKernel(exec, constraints,
                           MakeDeadlineMemoryPicker(predictor_));
}

}  // namespace ams::core
