#include "core/decision_plane.h"

#include "util/check.h"

namespace ams::core {

DecisionPlane::DecisionPlane(ModelValuePredictor* predictor)
    : predictor_(predictor) {
  AMS_CHECK(predictor != nullptr);
}

const std::vector<double>& DecisionPlane::Slot::Values(
    const LabelingState& state) {
  if (!Fresh(state)) {
    q_ = plane_->predictor_->PredictValues(state.Features());
    labels_at_ = state.num_labels_set();
    ++plane_->scalar_predictions_;
  }
  return q_;
}

DecisionPlane::Slot* DecisionPlane::NewSlot() {
  slots_.emplace_back(Slot(this));
  return &slots_.back();
}

void DecisionPlane::Prefetch(const std::vector<SlotView>& views) {
  stale_.clear();
  for (const SlotView& view : views) {
    AMS_CHECK(view.first != nullptr && view.second != nullptr);
    if (!view.first->Fresh(*view.second)) stale_.push_back(view);
  }
  if (stale_.empty()) return;

  // Deduplicate identical states across items: co-scheduled items share
  // feature vectors often (every item starts all-zero, and sparse label
  // states collide), and the predictor is a pure function of the features,
  // so duplicates ride along on one forward row. This cross-item sharing is
  // exactly what per-item caches cannot see.
  features_.clear();
  row_labels_.clear();
  row_of_.assign(stale_.size(), 0);
  for (size_t i = 0; i < stale_.size(); ++i) {
    const std::vector<float>& f = stale_[i].second->Features();
    const int labels = stale_[i].second->num_labels_set();
    size_t row = features_.size();
    for (size_t u = 0; u < features_.size(); ++u) {
      // Count first: states with different label counts can never be equal,
      // so the full compare only runs on genuine candidates.
      if (row_labels_[u] == labels && features_[u]->size() == f.size() &&
          std::equal(f.begin(), f.end(), features_[u]->begin())) {
        row = u;
        break;
      }
    }
    if (row == features_.size()) {
      features_.push_back(&f);
      row_labels_.push_back(labels);
    }
    row_of_[i] = row;
  }

  std::vector<std::vector<double>> rows =
      predictor_->PredictValuesBatch(features_);
  AMS_CHECK(rows.size() == features_.size(),
            "predictor returned a wrong-sized batch");
  ++batched_predictions_;
  batched_rows_ += static_cast<long>(features_.size());
  for (size_t i = 0; i < stale_.size(); ++i) {
    const std::vector<double>& row = rows[row_of_[i]];
    stale_[i].first->q_.assign(row.begin(), row.end());
    stale_[i].first->labels_at_ = stale_[i].second->num_labels_set();
  }
}

}  // namespace ams::core
