#include "core/decision_plane.h"

#include <algorithm>

#include "util/check.h"

namespace ams::core {

DecisionPlane::DecisionPlane(ModelValuePredictor* predictor, bool memoize_rows)
    : predictor_(predictor), memoize_rows_(memoize_rows) {
  AMS_CHECK(predictor != nullptr);
}

bool DecisionPlane::ServeFromMemo(Slot* slot, const LabelingState& state) {
  if (!memoize_rows_) return false;
  const auto it = row_memo_.find(state.SetIndices());
  if (it == row_memo_.end()) return false;
  slot->q_ = it->second;
  slot->labels_at_ = state.num_labels_set();
  ++memo_hits_;
  return true;
}

void DecisionPlane::MemoizeRow(const std::vector<int>& indices,
                               const double* row, size_t stride) {
  if (!memoize_rows_ || row_memo_.size() >= kRowMemoCap) return;
  std::vector<double>& entry = row_memo_[indices];
  if (entry.empty()) entry.assign(row, row + stride);
}

const std::vector<double>& DecisionPlane::Slot::Values(
    const LabelingState& state) {
  if (!Fresh(state) && !plane_->ServeFromMemo(this, state)) {
    q_ = plane_->predictor_->PredictValues(state.Features());
    labels_at_ = state.num_labels_set();
    ++plane_->scalar_predictions_;
    plane_->MemoizeRow(state.SetIndices(), q_.data(), q_.size());
  }
  return q_;
}

DecisionPlane::Slot* DecisionPlane::NewSlot() {
  if (!free_slots_.empty()) {
    Slot* slot = free_slots_.back();
    free_slots_.pop_back();
    slot->labels_at_ = -1;  // stale until its first query
    return slot;
  }
  slots_.emplace_back(Slot(this));
  return &slots_.back();
}

void DecisionPlane::ReleaseSlot(Slot* slot) {
  AMS_CHECK(slot != nullptr && slot->plane_ == this,
            "slot released to a foreign plane");
  free_slots_.push_back(slot);
}

size_t DecisionPlane::GatherStale(const std::vector<SlotView>& views,
                                  std::vector<PendingRequest>* out) {
  AMS_CHECK(out != nullptr);
  size_t appended = 0;
  for (const SlotView& view : views) {
    AMS_CHECK(view.first != nullptr && view.second != nullptr);
    if (view.first->Fresh(*view.second)) continue;
    if (ServeFromMemo(view.first, *view.second)) continue;
    out->push_back(PendingRequest{view.first, view.second});
    ++appended;
  }
  return appended;
}

void DecisionPlane::CommitRow(const PendingRequest& request, const double* row,
                              size_t stride) {
  AMS_CHECK(request.slot != nullptr && request.state != nullptr &&
            row != nullptr);
  AMS_CHECK(stride == static_cast<size_t>(predictor_->num_actions()),
            "committed row stride does not match this plane's predictor");
  request.slot->q_.assign(row, row + stride);
  request.slot->labels_at_ = request.state->num_labels_set();
  MemoizeRow(request.state->SetIndices(), row, stride);
}

void DecisionPlane::NoteExternalRound(long refreshed_rows) {
  if (refreshed_rows <= 0) return;
  ++batched_predictions_;
  batched_rows_ += refreshed_rows;
}

void DecisionPlane::PrefetchArena(const std::vector<SlotView>& views) {
  // Parallel arrays instead of a SlotView array: std::pair is not
  // trivially copyable, which Arena::AllocArray requires.
  Slot** stale_slots = arena_->AllocArray<Slot*>(views.size());
  const LabelingState** stale_states =
      arena_->AllocArray<const LabelingState*>(views.size());
  size_t n_stale = 0;
  for (const SlotView& view : views) {
    AMS_CHECK(view.first != nullptr && view.second != nullptr);
    if (view.first->Fresh(*view.second)) continue;
    if (ServeFromMemo(view.first, *view.second)) continue;
    stale_slots[n_stale] = view.first;
    stale_states[n_stale] = view.second;
    ++n_stale;
  }
  if (n_stale == 0) return;

  // Same cross-item dedup as the member-vector path below.
  const std::vector<float>** features =
      arena_->AllocArray<const std::vector<float>*>(n_stale);
  const std::vector<int>** indices =
      arena_->AllocArray<const std::vector<int>*>(n_stale);
  size_t* row_of = arena_->AllocArray<size_t>(n_stale);
  size_t n_rows = 0;
  for (size_t i = 0; i < n_stale; ++i) {
    const std::vector<int>& idx = stale_states[i]->SetIndices();
    size_t row = n_rows;
    for (size_t u = 0; u < n_rows; ++u) {
      if (indices[u]->size() == idx.size() &&
          std::equal(idx.begin(), idx.end(), indices[u]->begin())) {
        row = u;
        break;
      }
    }
    if (row == n_rows) {
      features[n_rows] = &stale_states[i]->Features();
      indices[n_rows] = &idx;
      ++n_rows;
    }
    row_of[i] = row;
  }

  const size_t stride = static_cast<size_t>(predictor_->num_actions());
  double* flat_q = arena_->AllocArray<double>(n_rows * stride);
  predictor_->PredictValuesBatchTo(features, indices, n_rows, flat_q);
  ++batched_predictions_;
  batched_rows_ += static_cast<long>(n_rows);
  for (size_t u = 0; u < n_rows; ++u) {
    MemoizeRow(*indices[u], flat_q + u * stride, stride);
  }
  for (size_t i = 0; i < n_stale; ++i) {
    const double* row = flat_q + row_of[i] * stride;
    stale_slots[i]->q_.assign(row, row + stride);
    stale_slots[i]->labels_at_ = stale_states[i]->num_labels_set();
  }
}

void DecisionPlane::Prefetch(const std::vector<SlotView>& views) {
  if (arena_ != nullptr) {
    PrefetchArena(views);
    return;
  }
  stale_.clear();
  for (const SlotView& view : views) {
    AMS_CHECK(view.first != nullptr && view.second != nullptr);
    if (view.first->Fresh(*view.second)) continue;
    // States seen before — by any item, any time in the plane's life — are
    // served straight from the row memo without a forward pass.
    if (ServeFromMemo(view.first, *view.second)) continue;
    stale_.push_back(view);
  }
  if (stale_.empty()) return;

  // Deduplicate identical states across items: co-scheduled items share
  // feature vectors often (every item starts all-zero, and sparse label
  // states collide), and the predictor is a pure function of the features,
  // so duplicates ride along on one forward row. This cross-item sharing is
  // exactly what per-item caches cannot see. States are compared through
  // their sorted set-index lists — tens of ints instead of the full
  // 1000+-entry feature vector — which fully determine the binary features.
  features_.clear();
  indices_.clear();
  row_of_.assign(stale_.size(), 0);
  for (size_t i = 0; i < stale_.size(); ++i) {
    const std::vector<int>& idx = stale_[i].second->SetIndices();
    size_t row = features_.size();
    for (size_t u = 0; u < features_.size(); ++u) {
      if (indices_[u]->size() == idx.size() &&
          std::equal(idx.begin(), idx.end(), indices_[u]->begin())) {
        row = u;
        break;
      }
    }
    if (row == features_.size()) {
      features_.push_back(&stale_[i].second->Features());
      indices_.push_back(&idx);
    }
    row_of_[i] = row;
  }

  // One batched pass into the plane's flat buffer, reused across refreshes
  // (the per-pass vector-of-rows allocation used to show up in profiles).
  predictor_->PredictValuesBatchInto(features_, indices_, &flat_q_);
  const size_t stride = static_cast<size_t>(predictor_->num_actions());
  AMS_CHECK(flat_q_.size() == features_.size() * stride,
            "predictor returned a wrong-sized batch");
  ++batched_predictions_;
  batched_rows_ += static_cast<long>(features_.size());
  for (size_t u = 0; u < features_.size(); ++u) {
    MemoizeRow(*indices_[u], flat_q_.data() + u * stride, stride);
  }
  for (size_t i = 0; i < stale_.size(); ++i) {
    const double* row = flat_q_.data() + row_of_[i] * stride;
    stale_[i].first->q_.assign(row, row + stride);
    stale_[i].first->labels_at_ = stale_[i].second->num_labels_set();
  }
}

}  // namespace ams::core
