#include "core/labeling_state.h"

#include <algorithm>

#include "util/check.h"

namespace ams::core {

LabelingState::LabelingState(int num_labels, int num_models)
    : labels_(static_cast<size_t>(num_labels), 0.0f),
      executed_(static_cast<size_t>(num_models), false) {
  AMS_CHECK(num_labels > 0 && num_models > 0);
  // Worst-case capacities so ApplyInto never allocates in steady state.
  set_indices_.reserve(static_cast<size_t>(num_labels));
  order_.reserve(static_cast<size_t>(num_models));
}

void LabelingState::Reset() {
  std::fill(labels_.begin(), labels_.end(), 0.0f);
  set_indices_.clear();
  std::fill(executed_.begin(), executed_.end(), false);
  order_.clear();
  num_executed_ = 0;
  num_labels_set_ = 0;
}

std::vector<zoo::LabelOutput> LabelingState::Apply(
    int model_id, const std::vector<zoo::LabelOutput>& outputs) {
  std::vector<zoo::LabelOutput> fresh;
  ApplyInto(model_id, outputs, &fresh);
  return fresh;
}

void LabelingState::ApplyInto(int model_id,
                              const std::vector<zoo::LabelOutput>& outputs,
                              std::vector<zoo::LabelOutput>* fresh) {
  AMS_CHECK(model_id >= 0 && model_id < num_models());
  AMS_CHECK(!executed_[static_cast<size_t>(model_id)],
            "model executed twice on one item");
  executed_[static_cast<size_t>(model_id)] = true;
  order_.push_back(model_id);
  ++num_executed_;
  if (fresh != nullptr) fresh->clear();
  for (const auto& out : outputs) {
    if (out.confidence < zoo::kValuableConfidence) continue;
    float& bit = labels_[static_cast<size_t>(out.label_id)];
    if (bit == 0.0f) {
      bit = 1.0f;
      ++num_labels_set_;
      // Sorted insert keeps SetIndices ascending; states carry tens of set
      // labels at most, so the shift stays cheap.
      set_indices_.insert(std::lower_bound(set_indices_.begin(),
                                           set_indices_.end(), out.label_id),
                          out.label_id);
      if (fresh != nullptr) fresh->push_back(out);
    }
  }
}

}  // namespace ams::core
