#ifndef AMS_CORE_PREDICTOR_H_
#define AMS_CORE_PREDICTOR_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace ams::core {

/// Maps a predicted Q value to the positive profit used in the cost ratios
/// of Algorithms 1 and 2 (Q/time, Q/mem, Q/(time*mem)).
///
/// Two corrections are folded into one strictly increasing transform:
///  1. Positivity. Trained Q values are legitimately negative for models
///     expected to yield nothing (the Eq. 3 punishment). A raw negative
///     numerator would *favour* expensive models (negative over a big cost
///     is "less bad"), and a hard floor would erase the ordering among
///     negative predictions. softplus(3q)/3 is positive and order-preserving.
///  2. Decompression. The Eq. 3 reward is ln(sum_conf + 1), so Q estimates
///     live on a log scale; a ratio of log-values under-weights expensive
///     many-label models exactly where the value concentrates (keypoint
///     tasks). expm1 inverts the log so the ratio compares (approximately)
///     confidence mass per unit cost, which is what the knapsack greedy of
///     Algorithm 1/2 assumes.
inline double SchedulingProfit(double q) {
  const double x = 3.0 * std::min(q, 10.0);
  const double softplus = std::log1p(std::exp(x)) / 3.0;
  return std::expm1(softplus);
}

/// Interface of the model-value prediction component (§IV): maps the binary
/// labeling state to the predicted value (Q-value) of every action.
///
/// Implementations return `num_models + 1` entries; the last entry is the
/// END action's value. The DRL agent in src/rl implements this; tests use
/// deterministic fakes.
class ModelValuePredictor {
 public:
  virtual ~ModelValuePredictor() = default;

  /// Predicted action values given state features (size = label count).
  virtual std::vector<double> PredictValues(
      const std::vector<float>& state_features) = 0;

  /// Predicted action values for a batch of states, written row-major into a
  /// caller-owned flat buffer: `*out` is resized to
  /// `states.size() * num_actions()` and row i occupies
  /// [i * num_actions(), (i+1) * num_actions()). The flat form lets hot
  /// drivers (core::DecisionPlane) reuse one buffer across refreshes instead
  /// of allocating a vector-of-vectors per batched pass. States are passed by
  /// pointer so callers batching live per-item feature vectors do not copy
  /// them just to build the argument.
  ///
  /// `set_indices` may be empty or parallel to `states`: a non-null
  /// set_indices[i] lists the nonzero positions of states[i] in ascending
  /// order (LabelingState::SetIndices), letting sparse-aware backends skip
  /// the dense feature scan. Indices are an optimization hint only — rows
  /// must be bitwise identical with and without them.
  ///
  /// The default loops the scalar path; implementations backed by a batched
  /// forward pass (rl::Agent) override it with a single pass whose rows are
  /// bitwise identical to the scalar results.
  virtual void PredictValuesBatchInto(
      const std::vector<const std::vector<float>*>& states,
      const std::vector<const std::vector<int>*>& set_indices,
      std::vector<double>* out) {
    (void)set_indices;
    const size_t stride = static_cast<size_t>(num_actions());
    out->resize(states.size() * stride);
    for (size_t i = 0; i < states.size(); ++i) {
      const std::vector<double> row = PredictValues(*states[i]);
      std::copy(row.begin(), row.end(), out->begin() + i * stride);
    }
  }

  /// Raw-buffer form of PredictValuesBatchInto for allocation-free hot
  /// paths: writes exactly `count * num_actions()` doubles into `out`
  /// (caller-sized, typically util::Arena storage). `set_indices` may be
  /// null (no hint for any row) or point at `count` entries parallel to
  /// `states` with the same per-row semantics as the Into form. Rows are
  /// bitwise identical to PredictValuesBatchInto.
  ///
  /// The default wraps the virtual Into form through temporary vectors —
  /// allocating, but it keeps fakes/wrappers that only override Into on
  /// the path. rl::Agent overrides this with the real zero-allocation
  /// forward and implements Into on top of it.
  virtual void PredictValuesBatchTo(
      const std::vector<float>* const* states,
      const std::vector<int>* const* set_indices, size_t count, double* out) {
    std::vector<const std::vector<float>*> state_vec(states, states + count);
    std::vector<const std::vector<int>*> index_vec;
    if (set_indices != nullptr) {
      index_vec.assign(set_indices, set_indices + count);
    }
    std::vector<double> flat;
    PredictValuesBatchInto(state_vec, index_vec, &flat);
    std::copy(flat.begin(), flat.end(), out);
  }

  /// Convenience vector-of-rows form of PredictValuesBatchInto (same rows,
  /// one allocation per row — use the Into form in hot loops).
  std::vector<std::vector<double>> PredictValuesBatch(
      const std::vector<const std::vector<float>*>& states) {
    std::vector<double> flat;
    PredictValuesBatchInto(states, {}, &flat);
    const size_t stride = static_cast<size_t>(num_actions());
    std::vector<std::vector<double>> rows(states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      rows[i].assign(flat.begin() + i * stride, flat.begin() + (i + 1) * stride);
    }
    return rows;
  }

  virtual int num_actions() const = 0;

  /// Observability descriptor of the inference backend, surfaced as args on
  /// kForward trace spans. `simd_tier` is the numeric nn::simd::Tier the
  /// kernels dispatch to (-1 when the backend is not nn-based or unknown,
  /// the default); `int8` marks a quantized (frozen) serving snapshot.
  struct BackendInfo {
    int simd_tier = -1;
    bool int8 = false;
  };
  virtual BackendInfo backend_info() const { return BackendInfo(); }

  /// Independent copy for concurrent use, or nullptr when the predictor
  /// cannot be cloned. Stateful predictors (rl::Agent caches activations)
  /// must implement this to be fanned out by LabelingService; predictors
  /// returning nullptr are shared across workers and must be thread-safe.
  virtual std::unique_ptr<ModelValuePredictor> ClonePredictor() const {
    return nullptr;
  }

  /// Builds a FROZEN int8-quantized snapshot of this predictor for serving
  /// clones, calibrated against `calibration_rows` (a sample of observed
  /// state-feature rows). Returns nullptr when unsupported (the default) —
  /// callers then fall back to fp32 clones. Unlike fp32 clones, a quantized
  /// clone cannot SyncWeightsFrom its source: later weight updates are not
  /// picked up until it is rebuilt.
  virtual std::unique_ptr<ModelValuePredictor> CloneQuantized(
      const std::vector<std::vector<float>>& calibration_rows) const {
    (void)calibration_rows;
    return nullptr;
  }

  /// Updates this predictor's parameters in place from `source` (a
  /// same-architecture original this one was cloned from). Lets clone pools
  /// track a live source cheaply — rl::Agent copies raw weights instead of
  /// re-cloning through the checkpoint format. Returns false when
  /// unsupported; callers then rebuild the clone to pick up changes.
  virtual bool SyncWeightsFrom(ModelValuePredictor* source) {
    (void)source;
    return false;
  }
};

}  // namespace ams::core

#endif  // AMS_CORE_PREDICTOR_H_
