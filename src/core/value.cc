#include "core/value.h"

#include "util/check.h"

namespace ams::core {

ValueAccumulator::ValueAccumulator(const data::Oracle* oracle, int item)
    : oracle_(oracle),
      item_(item),
      best_conf_(static_cast<size_t>(oracle->zoo().labels().total_labels()), 0.0),
      added_(static_cast<size_t>(oracle->num_models()), false) {
  AMS_CHECK(item >= 0 && item < oracle->num_items());
}

double ValueAccumulator::MarginalGain(int model) const {
  if (added_[static_cast<size_t>(model)]) return 0.0;
  double gain = 0.0;
  for (const auto& out : oracle_->ValuableOutput(item_, model)) {
    const double prev = best_conf_[static_cast<size_t>(out.label_id)];
    if (out.confidence > prev) gain += out.confidence - prev;
  }
  return gain;
}

double ValueAccumulator::AddModel(int model) {
  AMS_CHECK(!added_[static_cast<size_t>(model)], "model added twice");
  added_[static_cast<size_t>(model)] = true;
  double gain = 0.0;
  for (const auto& out : oracle_->ValuableOutput(item_, model)) {
    double& best = best_conf_[static_cast<size_t>(out.label_id)];
    if (out.confidence > best) {
      gain += out.confidence - best;
      best = out.confidence;
    }
  }
  value_ += gain;
  return gain;
}

double ValueAccumulator::Recall() const {
  const double total = oracle_->TrueTotalValue(item_);
  if (total <= 0.0) return 1.0;
  return value_ / total;
}

}  // namespace ams::core
