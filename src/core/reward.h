#ifndef AMS_CORE_REWARD_H_
#define AMS_CORE_REWARD_H_

#include <vector>

#include "zoo/model_zoo.h"

namespace ams::core {

/// Reward-shaping variants. The paper's reward (Eq. 3) uses the log
/// smoothing; the alternatives exist for the §IV-A ablation ("other
/// smoothing functions such as the average confidence ... achieve a similar
/// effect"), and the raw sum demonstrates the label-count bias the log fixes.
enum class RewardShaping {
  kLogSum,   // ln(theta * sum conf + 1)      — Eq. (3), the default
  kAverage,  // theta * mean(conf)            — alternative smoothing
  kRawSum,   // theta * sum conf              — biased toward many-label models
};

/// Reward received when the "END" action is selected (§IV-B).
inline constexpr double kEndActionReward = 0.0;

/// Punishment when a model emits nothing new (O' empty), Eq. (3).
inline constexpr double kNoOutputPunishment = -1.0;

/// Computes the reward of Eq. (3) for executing a model that produced the
/// new-label set `fresh_outputs` (= O'(m, d)), with priority theta.
double ModelReward(const std::vector<zoo::LabelOutput>& fresh_outputs,
                   double theta, RewardShaping shaping = RewardShaping::kLogSum);

}  // namespace ams::core

#endif  // AMS_CORE_REWARD_H_
