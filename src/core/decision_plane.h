#ifndef AMS_CORE_DECISION_PLANE_H_
#define AMS_CORE_DECISION_PLANE_H_

#include <deque>
#include <utility>
#include <vector>

#include "core/labeling_state.h"
#include "core/predictor.h"

namespace ams::core {

/// The decision plane of the scheduling substrate: every picker Q-query goes
/// through a DecisionPlane slot instead of hitting the predictor directly.
///
/// A slot caches one item's Q vector keyed by the item's state version (the
/// labeling state changes exactly at finish events), so a pick round costs at
/// most one forward pass regardless of how many models it starts. On top of
/// that, a driver co-scheduling many items (LabelingService::SubmitBatch
/// workers) calls Prefetch() between event rounds to coalesce all stale
/// slots into ONE batched forward pass — one prediction per round instead of
/// one per item. Slots left stale still fall back to the scalar path, so
/// Prefetch is an optimization, never a correctness requirement.
///
/// Not thread-safe: one plane per worker, like the predictor it wraps.
class DecisionPlane {
 public:
  explicit DecisionPlane(ModelValuePredictor* predictor);

  /// One item's cached view of the predictor.
  class Slot {
   public:
    /// Q values for `state`; served from cache when fresh, recomputed with a
    /// scalar forward pass otherwise.
    const std::vector<double>& Values(const LabelingState& state);

    /// True when the cache already matches `state` (no forward pass
    /// needed). Keyed on the number of set labels, not executions: the
    /// Q-net's input is the label bit-vector alone, so an execution that
    /// emitted nothing fresh cannot change any predicted value — a large
    /// fraction of per-event recomputes skip entirely.
    bool Fresh(const LabelingState& state) const {
      return labels_at_ == state.num_labels_set();
    }

   private:
    friend class DecisionPlane;
    explicit Slot(DecisionPlane* plane) : plane_(plane) {}

    DecisionPlane* plane_;
    std::vector<double> q_;
    int labels_at_ = -1;  // num_labels_set() the cache was computed at
  };

  /// A (slot, state) pair eligible for batched refresh.
  using SlotView = std::pair<Slot*, const LabelingState*>;

  /// Creates a slot owned by the plane (pointer stays valid for the plane's
  /// lifetime).
  Slot* NewSlot();

  /// Refreshes every stale slot among `views` with one batched forward pass
  /// (fresh slots are skipped; an all-fresh call costs nothing). Rows are
  /// bitwise identical to the scalar path for batch-capable predictors.
  void Prefetch(const std::vector<SlotView>& views);

  ModelValuePredictor* predictor() const { return predictor_; }

  /// Forward passes issued so far, for tests and perf accounting.
  long scalar_predictions() const { return scalar_predictions_; }
  long batched_predictions() const { return batched_predictions_; }
  long batched_rows() const { return batched_rows_; }

 private:
  ModelValuePredictor* predictor_;
  std::deque<Slot> slots_;  // deque: slot pointers must stay stable
  // Prefetch scratch, reused across rounds to avoid per-round allocations.
  std::vector<SlotView> stale_;
  std::vector<const std::vector<float>*> features_;  // deduplicated rows
  std::vector<int> row_labels_;  // num_labels_set per deduplicated row
  std::vector<size_t> row_of_;   // stale slot index -> row in features_
  long scalar_predictions_ = 0;
  long batched_predictions_ = 0;
  long batched_rows_ = 0;
};

}  // namespace ams::core

#endif  // AMS_CORE_DECISION_PLANE_H_
