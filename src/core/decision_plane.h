#ifndef AMS_CORE_DECISION_PLANE_H_
#define AMS_CORE_DECISION_PLANE_H_

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/labeling_state.h"
#include "core/predictor.h"
#include "util/arena.h"

namespace ams::core {

/// The decision plane of the scheduling substrate: every picker Q-query goes
/// through a DecisionPlane slot instead of hitting the predictor directly.
///
/// A slot caches one item's Q vector keyed by the item's state version (the
/// labeling state changes exactly at finish events), so a pick round costs at
/// most one forward pass regardless of how many models it starts. On top of
/// that, a driver co-scheduling many items (LabelingService::SubmitBatch
/// workers, the serve:: runtime's steppers) calls Prefetch() between event
/// rounds to coalesce all stale slots into ONE batched forward pass — one
/// prediction per round instead of one per item. Slots left stale still fall
/// back to the scalar path, so Prefetch is an optimization, never a
/// correctness requirement.
///
/// Not thread-safe: one plane per worker, like the predictor it wraps.
class DecisionPlane {
 public:
  /// `memoize_rows` opts into the plane-lifetime Q-row memo (see row_memo_
  /// below): computed rows are kept keyed by state signature and later
  /// queries for the same state skip the forward pass entirely. Worth it
  /// only for long-lived planes (the serve runtime's steppers, where steady
  /// state becomes mostly memo hits); per-call planes (SubmitBatch blocks)
  /// pay the insert cost without living long enough to profit.
  explicit DecisionPlane(ModelValuePredictor* predictor,
                         bool memoize_rows = false);

  /// One item's cached view of the predictor.
  class Slot {
   public:
    /// Q values for `state`; served from cache when fresh, recomputed with a
    /// scalar forward pass otherwise.
    const std::vector<double>& Values(const LabelingState& state);

    /// True when the cache already matches `state` (no forward pass
    /// needed). Keyed on the number of set labels, not executions: the
    /// Q-net's input is the label bit-vector alone, so an execution that
    /// emitted nothing fresh cannot change any predicted value — a large
    /// fraction of per-event recomputes skip entirely.
    bool Fresh(const LabelingState& state) const {
      return labels_at_ == state.num_labels_set();
    }

   private:
    friend class DecisionPlane;
    explicit Slot(DecisionPlane* plane) : plane_(plane) {}

    DecisionPlane* plane_;
    std::vector<double> q_;
    int labels_at_ = -1;  // num_labels_set() the cache was computed at
  };

  /// A (slot, state) pair eligible for batched refresh.
  using SlotView = std::pair<Slot*, const LabelingState*>;

  /// One stale slot awaiting a Q row from an externally executed forward
  /// round (see GatherStale/CommitRow). Plain pointers, trivially copyable,
  /// so collectors can stage these in arenas or reused flat vectors.
  struct PendingRequest {
    Slot* slot;
    const LabelingState* state;
  };

  /// Creates a slot owned by the plane (pointer stays valid for the plane's
  /// lifetime). Released slots are recycled, so a long-lived driver admitting
  /// an unbounded stream of items (serve::ServerRuntime) keeps a bounded
  /// resident slot set instead of growing the plane forever.
  Slot* NewSlot();

  /// Returns a slot to the plane's free list once its item completed. The
  /// pointer must have come from NewSlot() and must not be used afterwards.
  void ReleaseSlot(Slot* slot);

  /// Refreshes every stale slot among `views` with one batched forward pass
  /// (fresh slots are skipped; an all-fresh call costs nothing). Rows are
  /// bitwise identical to the scalar path for batch-capable predictors. The
  /// batched pass reuses one flat Q buffer across refreshes and hands the
  /// predictor each state's sparse set-index list, so neither side rescans
  /// or reallocates per round.
  void Prefetch(const std::vector<SlotView>& views);

  /// Routes Prefetch scratch (stale list, dedup tables, the flat Q buffer)
  /// through a caller-owned bump arena instead of the plane's member
  /// vectors, and the batched forward through the raw-buffer
  /// PredictValuesBatchTo. The owner resets the arena once per tick/round,
  /// so scratch never mallocs in steady state regardless of round size.
  /// Pass nullptr to detach. The arena must outlive the plane or be
  /// detached first; arena storage is only valid within one Prefetch call.
  void AttachArena(util::Arena* arena) { arena_ = arena; }

  /// The gather half of Prefetch, for callers that execute the forward
  /// elsewhere (a cross-worker/shard coalescer): filters `views` exactly
  /// like Prefetch — fresh slots skipped, memo-servable slots served and
  /// counted as memo hits — and appends the remaining stale requests to
  /// `out` WITHOUT issuing any forward. Every appended request must later
  /// receive its row through CommitRow (before the underlying states
  /// change). Returns the number of requests appended.
  size_t GatherStale(const std::vector<SlotView>& views,
                     std::vector<PendingRequest>* out);

  /// The scatter half: writes one externally computed Q row (stride ==
  /// predictor()->num_actions()) into a gathered request's slot, marks it
  /// fresh for the request's state version, and memoizes the row. The row
  /// must come from a predictor with weights identical to this plane's
  /// (frozen serving clones), so results are bitwise identical to Prefetch.
  void CommitRow(const PendingRequest& request, const double* row,
                 size_t stride);

  /// Accounting for one externally executed batched round this plane took
  /// part in: counts as one batched prediction with `refreshed_rows` rows
  /// (this plane's gathered requests, duplicates included — the external
  /// round dedups across planes, so unique-row counts live with it).
  void NoteExternalRound(long refreshed_rows);

  ModelValuePredictor* predictor() const { return predictor_; }

  /// Forward passes issued so far, for tests and perf accounting.
  long scalar_predictions() const { return scalar_predictions_; }
  long batched_predictions() const { return batched_predictions_; }
  long batched_rows() const { return batched_rows_; }
  /// Q rows served from the plane-lifetime row memo without any forward.
  long memo_hits() const { return memo_hits_; }

 private:
  /// FNV-1a over a state's sorted set-index list — the state's identity
  /// (the binary features are fully determined by the set indices).
  struct IndexListHash {
    size_t operator()(const std::vector<int>& indices) const {
      size_t h = 1469598103934665603ull;
      for (const int i : indices) {
        h ^= static_cast<size_t>(i) + 0x9E3779B9u;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  /// Serves `slot` from the plane-lifetime row memo; false on miss.
  bool ServeFromMemo(Slot* slot, const LabelingState& state);
  /// Prefetch body when an arena is attached: identical dedup/refresh
  /// semantics, arena-backed scratch, raw-buffer batched forward.
  void PrefetchArena(const std::vector<SlotView>& views);
  /// Memoizes a computed row (first-come bounded; see kRowMemoCap).
  void MemoizeRow(const std::vector<int>& indices, const double* row,
                  size_t stride);

  /// Bound on memoized rows. ~31 doubles + key per entry keeps the memo in
  /// the tens of MB at the cap; beyond it new states simply stay unmemoized
  /// (first-come: the common early states are exactly the hot ones).
  static constexpr size_t kRowMemoCap = 32768;

  ModelValuePredictor* predictor_;
  std::deque<Slot> slots_;  // deque: slot pointers must stay stable
  std::vector<Slot*> free_slots_;  // recycled by ReleaseSlot
  // Prefetch scratch, reused across rounds to avoid per-round allocations.
  std::vector<SlotView> stale_;
  std::vector<const std::vector<float>*> features_;  // deduplicated rows
  std::vector<const std::vector<int>*> indices_;  // set-index list per row
  std::vector<size_t> row_of_;   // stale slot index -> row in features_
  std::vector<double> flat_q_;   // one flat [rows x actions] result buffer
  /// Plane-lifetime Q-row memo keyed by state signature: items pass through
  /// shared sparse label-states (every item starts all-zero, common label
  /// combinations recur across items), so a long-lived driver — the serve
  /// runtime's steppers above all — serves most decision points without any
  /// forward pass at steady state. Sound because a plane wraps one frozen
  /// predictor instance (the same assumption every slot cache already
  /// makes), and rows are bitwise identical however they were computed.
  std::unordered_map<std::vector<int>, std::vector<double>, IndexListHash>
      row_memo_;
  bool memoize_rows_ = false;
  util::Arena* arena_ = nullptr;  // optional; see AttachArena
  long scalar_predictions_ = 0;
  long batched_predictions_ = 0;
  long batched_rows_ = 0;
  long memo_hits_ = 0;
};

/// Seam through which a stepper hands its per-tick forward round to an
/// external collector (serve::ForwardCoalescer) instead of issuing it
/// itself via Prefetch. Lives in core:: so ItemStepper can hold the hook
/// without a dependency on the serving layer.
///
/// Contract: ExecuteRound must leave `plane` in exactly the state
/// Prefetch(views) would — every stale slot refreshed with a bitwise
/// identical row (sound when all participating planes wrap frozen clones
/// of the same predictor). It may block while other participants' rounds
/// rendezvous; callers treat the call as their forward phase.
class ForwardRoundExecutor {
 public:
  /// Per-participant accounting for one round.
  struct RoundStats {
    /// This plane's stale rows handed to the round (post memo/fresh filter).
    int gathered = 0;
    /// Rows served from this plane's memo during the gather.
    int memo_hits = 0;
    /// Unique rows in the whole coalesced batch (same value reported to
    /// every participant of the round; 0 for an empty round).
    int cluster_rows = 0;
  };

  virtual ~ForwardRoundExecutor() = default;

  virtual RoundStats ExecuteRound(DecisionPlane* plane,
                                  const std::vector<DecisionPlane::SlotView>& views) = 0;
};

}  // namespace ams::core

#endif  // AMS_CORE_DECISION_PLANE_H_
