#ifndef AMS_CORE_ENV_H_
#define AMS_CORE_ENV_H_

#include <vector>

#include "core/labeling_state.h"
#include "core/reward.h"
#include "core/value.h"
#include "data/oracle.h"

namespace ams::core {

/// Configuration of the scheduling MDP.
struct EnvConfig {
  RewardShaping shaping = RewardShaping::kLogSum;
  /// Whether selecting the END action is allowed (it is during training,
  /// §IV-B; scheduling-time stop conditions are resource budgets instead).
  bool enable_end_action = true;
};

/// Result of one environment step.
struct StepResult {
  double reward = 0.0;
  bool done = false;
  /// Newly emitted valuable labels (empty for END or duplicate output).
  std::vector<zoo::LabelOutput> fresh;
};

/// The "prediction–scheduling–execution" loop's environment (§III-B):
/// an episode labels one data item; actions are model executions (replayed
/// from the oracle) plus the END action; observations are the binary
/// labeling state.
class SchedulingEnv {
 public:
  SchedulingEnv(const data::Oracle* oracle, const EnvConfig& config);

  /// Starts an episode on `item`; returns the initial (all-zero) state.
  void Reset(int item);

  /// Number of model actions (END is action index num_models()).
  int num_models() const { return oracle_->num_models(); }
  int end_action() const { return oracle_->num_models(); }
  int num_actions() const { return oracle_->num_models() + 1; }
  int feature_dim() const {
    return oracle_->zoo().labels().total_labels();
  }

  /// Executes an action. `action` must be a not-yet-executed model or END.
  StepResult Step(int action);

  bool done() const { return done_; }
  int item() const { return item_; }
  const LabelingState& state() const { return state_; }
  const std::vector<float>& Features() const { return state_.Features(); }

  /// True if `action` may be selected now (unexecuted model, or END when
  /// enabled and the episode is live).
  bool ActionValid(int action) const;

  /// Actions currently selectable (used by epsilon-greedy exploration).
  std::vector<int> ValidActions() const;

  /// Value recall accumulated so far in this episode.
  double Recall() const { return value_.Recall(); }
  double Value() const { return value_.Value(); }

  /// Simulated execution time spent on models so far in this episode.
  double TimeSpent() const { return time_spent_; }

  const data::Oracle& oracle() const { return *oracle_; }

 private:
  const data::Oracle* oracle_;
  EnvConfig config_;
  LabelingState state_;
  ValueAccumulator value_;
  int item_ = -1;
  bool done_ = true;
  double time_spent_ = 0.0;
};

}  // namespace ams::core

#endif  // AMS_CORE_ENV_H_
