#ifndef AMS_CORE_LABELING_STATE_H_
#define AMS_CORE_LABELING_STATE_H_

#include <vector>

#include "zoo/model_zoo.h"

namespace ams::core {

/// The DRL environment observation of §IV: an n-dimensional binary vector
/// over the label space, where bit i says whether label i has been emitted
/// (valuably) by any executed model, plus bookkeeping of which models ran.
///
/// Design decision: only valuable outputs (conf >= kValuableConfidence) set
/// state bits and count as "new labels" for O'(m, d). Low-confidence outputs
/// are treated as waste, consistent with Fig. 1 grouping "no output" and
/// "low-confidence output" together as useless executions.
class LabelingState {
 public:
  LabelingState(int num_labels, int num_models);

  /// Clears all bits and the executed-model set.
  void Reset();

  /// Registers the execution of `model_id` with the given raw outputs.
  /// Returns O'(m, d): the valuable outputs whose labels were not yet set.
  /// Marks the model executed even if nothing new is produced.
  std::vector<zoo::LabelOutput> Apply(int model_id,
                                      const std::vector<zoo::LabelOutput>& outputs);

  /// Allocation-free form of Apply for hot loops: clears `*fresh` and fills
  /// it with O'(m, d), reusing its capacity. `fresh` may be null when the
  /// caller only needs the state transition.
  void ApplyInto(int model_id, const std::vector<zoo::LabelOutput>& outputs,
                 std::vector<zoo::LabelOutput>* fresh);

  bool label_set(int label_id) const {
    return labels_[static_cast<size_t>(label_id)] != 0.0f;
  }
  bool model_executed(int model_id) const {
    return executed_[static_cast<size_t>(model_id)];
  }
  int num_executed() const { return num_executed_; }
  int num_labels_set() const { return num_labels_set_; }
  int num_labels() const { return static_cast<int>(labels_.size()); }
  int num_models() const { return static_cast<int>(executed_.size()); }

  /// The binary feature vector fed to the Q-network (size = num_labels).
  const std::vector<float>& Features() const { return labels_; }

  /// Indices of the set labels in ascending order — the sparse complement of
  /// Features(). Kept sorted so a sparse consumer accumulating in index
  /// order (DenseLayer::ForwardSparseRows) is bitwise identical to the dense
  /// ascending scan over Features().
  const std::vector<int>& SetIndices() const { return set_indices_; }

  /// Model ids in execution order.
  const std::vector<int>& execution_order() const { return order_; }

 private:
  std::vector<float> labels_;   // 0/1 floats: directly usable as NN input
  std::vector<int> set_indices_;  // ascending indices of set bits
  std::vector<bool> executed_;
  std::vector<int> order_;
  int num_executed_ = 0;
  int num_labels_set_ = 0;
};

}  // namespace ams::core

#endif  // AMS_CORE_LABELING_STATE_H_
